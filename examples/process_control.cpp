// Process control over TCP: the paper's second target domain (Sections 1
// and 6). Two plant brokers on real loopback TCP; sensors publish telemetry
// into a "telemetry" information space; an alarm console subscribes to
// dangerous operating ranges, an auditor logs everything from one unit, and
// a flaky dashboard exercises disconnect/replay.
//
//   $ ./process_control
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "broker/broker.h"
#include "broker/client.h"
#include "broker/tcp_transport.h"
#include "topology/builders.h"

using namespace gryphon;

namespace {

/// Breaks the transport/handler construction cycle.
struct Relay : TransportHandler {
  TransportHandler* target{nullptr};
  void on_connect(ConnId c) override { target->on_connect(c); }
  void on_frame(ConnId c, std::span<const std::uint8_t> f) override { target->on_frame(c, f); }
  void on_disconnect(ConnId c) override { target->on_disconnect(c); }
};

void wait_for_subscription(Client& client, std::uint64_t token) {
  for (int i = 0; i < 500 && !client.subscription_id(token); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace

int main() {
  const SchemaPtr telemetry =
      make_schema("telemetry", {Attribute{"unit", AttributeType::kString, {}},
                                Attribute{"sensor", AttributeType::kString, {}},
                                Attribute{"celsius", AttributeType::kDouble, {}},
                                Attribute{"bar", AttributeType::kDouble, {}}});

  // Two brokers: the plant floor and the control room.
  const BrokerNetwork topology = make_line(2, ticks_from_millis(5), 0, 0);
  Relay floor_relay, control_relay;
  TcpTransport floor_transport(floor_relay);
  TcpTransport control_transport(control_relay);
  Broker floor(BrokerId{0}, topology, {telemetry}, floor_transport);
  Broker control(BrokerId{1}, topology, {telemetry}, control_transport);
  floor_relay.target = &floor;
  control_relay.target = &control;
  const std::uint16_t floor_port = floor_transport.listen(0);
  const std::uint16_t control_port = control_transport.listen(0);
  floor.attach_broker_link(floor_transport.connect("127.0.0.1", control_port), BrokerId{1});
  std::printf("plant floor broker on :%u, control room broker on :%u\n\n", floor_port,
              control_port);

  // The alarm console (control room) wants dangerous readings only.
  Relay alarm_relay;
  TcpTransport alarm_transport(alarm_relay);
  Client alarms("alarm-console", alarm_transport, {telemetry});
  alarm_relay.target = &alarms;
  alarms.bind(alarm_transport.connect("127.0.0.1", control_port));
  wait_for_subscription(alarms, alarms.subscribe(0, "celsius > 90"));
  wait_for_subscription(alarms, alarms.subscribe(0, "bar > 8.5"));

  // The auditor (control room) wants everything from reactor-2.
  Relay audit_relay;
  TcpTransport audit_transport(audit_relay);
  Client auditor("auditor", audit_transport, {telemetry});
  audit_relay.target = &auditor;
  auditor.bind(audit_transport.connect("127.0.0.1", control_port));
  wait_for_subscription(auditor, auditor.subscribe(0, "unit = 'reactor-2'"));

  // Give the subscriptions a moment to propagate to the plant floor.
  for (int i = 0; i < 500 && floor.subscription_count() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Sensors on the plant floor.
  Relay sensor_relay;
  TcpTransport sensor_transport(sensor_relay);
  Client sensors("sensor-gateway", sensor_transport, {telemetry});
  sensor_relay.target = &sensors;
  sensors.bind(sensor_transport.connect("127.0.0.1", floor_port));

  struct Reading {
    const char* unit;
    const char* sensor;
    double celsius;
    double bar;
  };
  const Reading readings[] = {
      {"reactor-1", "t-101", 72.0, 4.2},  {"reactor-1", "t-102", 93.5, 4.1},
      {"reactor-2", "t-201", 65.0, 3.9},  {"reactor-2", "p-202", 66.0, 9.1},
      {"boiler-7", "t-701", 88.0, 8.49},  {"reactor-2", "t-203", 64.0, 4.0},
  };
  for (const Reading& r : readings) {
    sensors.publish(0, Event(telemetry, {Value(r.unit), Value(r.sensor), Value(r.celsius),
                                         Value(r.bar)}));
  }

  alarms.wait_for_deliveries(2, 5000);
  auditor.wait_for_deliveries(3, 5000);

  std::printf("alarm console (celsius > 90 OR bar > 8.5):\n");
  for (const auto& d : alarms.take_deliveries()) {
    std::printf("  ALARM %s\n", d.event.to_text().c_str());
  }
  std::printf("auditor (unit = reactor-2):\n");
  for (const auto& d : auditor.take_deliveries()) {
    std::printf("  log %s\n", d.event.to_text().c_str());
  }

  // A dashboard that crashes and reconnects: the event log replays what it
  // missed (Section 4.2's transient-failure handling).
  {
    auto dash_relay = std::make_unique<Relay>();
    auto dash_transport = std::make_unique<TcpTransport>(*dash_relay);
    auto dashboard = std::make_unique<Client>("dashboard", *dash_transport,
                                              std::vector<SchemaPtr>{telemetry});
    dash_relay->target = dashboard.get();
    dashboard->bind(dash_transport->connect("127.0.0.1", control_port));
    wait_for_subscription(*dashboard, dashboard->subscribe(0, "unit = 'boiler-7'"));
    for (int i = 0; i < 500 && floor.subscription_count() < 4; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    dash_transport->shutdown();  // crash
    dashboard.reset();
    dash_transport.reset();
  }
  sensors.publish(0, Event(telemetry, {Value("boiler-7"), Value("t-702"), Value(91.0),
                                       Value(8.6)}));
  for (int i = 0; i < 500 && control.client_log_size("dashboard") < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  Relay dash_relay2;
  TcpTransport dash_transport2(dash_relay2);
  Client dashboard2("dashboard", dash_transport2, {telemetry});
  dash_relay2.target = &dashboard2;
  dashboard2.bind(dash_transport2.connect("127.0.0.1", control_port));
  dashboard2.wait_for_deliveries(1, 5000);
  std::printf("dashboard after reconnect (replayed from the event log):\n");
  for (const auto& d : dashboard2.take_deliveries()) {
    std::printf("  replay %s\n", d.event.to_text().c_str());
  }

  dash_transport2.shutdown();
  sensor_transport.shutdown();
  audit_transport.shutdown();
  alarm_transport.shutdown();
  control_transport.shutdown();
  floor_transport.shutdown();
  return 0;
}
