// Stock ticker: the paper's motivating financial-trading scenario on a
// three-broker network (e.g. exchanges in three cities), demonstrating that
// content-based subscribers filter along arbitrary dimensions — issue,
// price, volume, or combinations — with events multicast hop by hop via
// link matching, and at most one copy per link.
//
//   $ ./stock_ticker
#include <cstdio>
#include <string>

#include "broker/broker.h"
#include "broker/client.h"
#include "broker/inproc_transport.h"
#include "common/rng.h"
#include "topology/builders.h"

using namespace gryphon;

namespace {

struct City {
  std::string name;
  Broker* broker;
};

}  // namespace

int main() {
  const SchemaPtr schema =
      make_schema("trades", {Attribute{"issue", AttributeType::kString, {}},
                             Attribute{"price", AttributeType::kDouble, {}},
                             Attribute{"volume", AttributeType::kInt, {}}});

  // Brokers in New York - London - Tokyo, connected in a line.
  const BrokerNetwork topology = make_line(3, ticks_from_millis(30), 0, 0);
  InProcNetwork net;
  std::vector<std::unique_ptr<Broker>> brokers;
  const char* cities[] = {"new-york", "london", "tokyo"};
  for (int b = 0; b < 3; ++b) {
    auto* endpoint = net.create_endpoint(cities[b]);
    brokers.push_back(
        std::make_unique<Broker>(BrokerId{b}, topology, std::vector<SchemaPtr>{schema},
                                 *endpoint));
    endpoint->set_handler(brokers.back().get());
  }
  brokers[0]->attach_broker_link(net.connect("new-york", "london"), BrokerId{1});
  brokers[1]->attach_broker_link(net.connect("london", "tokyo"), BrokerId{2});
  net.pump();

  // Subscribers filter along orthogonal dimensions (the paper's point:
  // subject-based systems would force everyone to subscribe by issue).
  const auto make_client = [&](const char* name, const char* city) -> Client& {
    auto* endpoint = net.create_endpoint(name);
    static std::vector<std::unique_ptr<Client>> clients;
    clients.push_back(
        std::make_unique<Client>(name, *endpoint, std::vector<SchemaPtr>{schema}));
    endpoint->set_handler(clients.back().get());
    clients.back()->bind(net.connect(name, city));
    net.pump();
    return *clients.back();
  };

  Client& value_investor = make_client("value-investor", "tokyo");
  value_investor.subscribe(0, "issue = \"IBM\" & price < 120 & volume > 1000");

  Client& whale_watcher = make_client("whale-watcher", "london");
  whale_watcher.subscribe(0, "volume > 50000");  // any issue, big blocks only

  Client& ibm_desk = make_client("ibm-desk", "new-york");
  ibm_desk.subscribe(0, "issue = \"IBM\"");
  net.pump();

  // The New York feed publishes the day's trades.
  Client& feed = make_client("nyse-feed", "new-york");
  struct Trade {
    const char* issue;
    double price;
    int volume;
  };
  const Trade tape[] = {
      {"IBM", 119.5, 3000},  {"IBM", 122.0, 800},    {"HP", 54.0, 120000},
      {"SUN", 88.8, 52000},  {"IBM", 118.0, 60000},  {"HP", 55.5, 100},
  };
  for (const Trade& t : tape) {
    feed.publish(0, Event(schema, {Value(t.issue), Value(t.price), Value(t.volume)}));
  }
  net.pump();

  const auto report = [](const char* who, Client& client) {
    std::printf("%s:\n", who);
    for (const auto& delivery : client.take_deliveries()) {
      std::printf("  %s\n", delivery.event.to_text().c_str());
    }
  };
  report("value-investor (IBM & price<120 & volume>1000, in Tokyo)", value_investor);
  report("whale-watcher (volume>50000, in London)", whale_watcher);
  report("ibm-desk (issue=IBM, in New York)", ibm_desk);

  std::printf("\nbroker event forwarding (copies per inter-broker link):\n");
  for (int b = 0; b < 3; ++b) {
    const auto stats = brokers[static_cast<std::size_t>(b)]->stats();
    std::printf("  %-9s published=%llu relayed=%llu forwarded=%llu delivered=%llu\n",
                cities[b], static_cast<unsigned long long>(stats.events_published),
                static_cast<unsigned long long>(stats.events_relayed),
                static_cast<unsigned long long>(stats.events_forwarded),
                static_cast<unsigned long long>(stats.events_delivered));
  }
  return 0;
}
