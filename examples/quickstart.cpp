// Quickstart: one broker, one subscriber, one publisher, in-process.
//
//   $ ./quickstart
//
// Shows the core public API end to end: define an information space
// (schema), run a Broker over a Transport, connect Clients, register a
// content-based subscription from predicate text, publish events, and
// receive exactly the matching ones.
#include <cstdio>

#include "broker/broker.h"
#include "broker/client.h"
#include "broker/inproc_transport.h"
#include "topology/builders.h"

using namespace gryphon;

int main() {
  // 1. The information space: every event is [issue, price, volume].
  const SchemaPtr schema =
      make_schema("trades", {Attribute{"issue", AttributeType::kString, {}},
                             Attribute{"price", AttributeType::kDouble, {}},
                             Attribute{"volume", AttributeType::kInt, {}}});

  // 2. A broker network with a single broker node (no inter-broker links)
  //    and an in-process transport.
  const BrokerNetwork topology = make_line(/*brokers=*/1, /*delay=*/0,
                                           /*clients_per_broker=*/0, /*client_delay=*/0);
  InProcNetwork net;
  auto* broker_endpoint = net.create_endpoint("broker");
  Broker broker(BrokerId{0}, topology, {schema}, *broker_endpoint);
  broker_endpoint->set_handler(&broker);

  // 3. A subscriber with the paper's example predicate (Section 1).
  auto* sub_endpoint = net.create_endpoint("alice");
  Client alice("alice", *sub_endpoint, {schema});
  sub_endpoint->set_handler(&alice);
  alice.bind(net.connect("alice", "broker"));
  net.pump();
  alice.subscribe(0, "issue = \"IBM\" & price < 120 & volume > 1000");
  net.pump();

  // 4. A publisher posts three trades; only one satisfies the predicate.
  auto* pub_endpoint = net.create_endpoint("bob");
  Client bob("bob", *pub_endpoint, {schema});
  pub_endpoint->set_handler(&bob);
  bob.bind(net.connect("bob", "broker"));
  net.pump();
  bob.publish(0, Event(schema, {Value("IBM"), Value(119.5), Value(3000)}));  // match
  bob.publish(0, Event(schema, {Value("IBM"), Value(121.0), Value(3000)}));  // price too high
  bob.publish(0, Event(schema, {Value("HP"), Value(50.0), Value(9999)}));    // wrong issue
  net.pump();

  // 5. Alice received exactly the matching trade.
  for (const auto& delivery : alice.take_deliveries()) {
    std::printf("alice received: %s\n", delivery.event.to_text().c_str());
  }
  return 0;
}
