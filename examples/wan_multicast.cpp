// WAN multicast: drives the paper's Figure 6 simulation directly from the
// public API — 39 brokers in three intercontinental trees, 390 subscribing
// clients with regional locality of interest — and prints a side-by-side
// load profile of link matching, flooding, and match-first for the same
// event stream.
//
//   $ ./wan_multicast [subscriptions] [events] [rate]
#include <cstdio>
#include <cstdlib>

#include "common/zipf.h"
#include "sim/simulation.h"
#include "topology/builders.h"
#include "workload/generators.h"

using namespace gryphon;

int main(int argc, char** argv) {
  const std::size_t n_subscriptions = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;
  const std::size_t n_events = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 500;
  const double rate = argc > 3 ? std::strtod(argv[3], nullptr) : 100.0;

  const Figure6Topology topo = make_figure6();
  const SchemaPtr schema = make_synthetic_schema(10, 5);
  std::printf("Figure 6 WAN: %zu brokers, %zu subscribing clients, 3 publishers\n",
              topo.network.broker_count(), topo.network.client_count());
  std::printf("workload: %zu subscriptions (~0.1%% selectivity), %zu events @ %.0f/sec\n\n",
              n_subscriptions, n_events, rate);

  Rng rng(2024);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.98, 0.85, 1.0});
  std::vector<SimSubscription> subscriptions;
  for (std::size_t i = 0; i < n_subscriptions; ++i) {
    const ClientId client = topo.subscribers[rng.below(topo.subscribers.size())];
    const auto region = static_cast<std::uint32_t>(
        topo.region_of[static_cast<std::size_t>(topo.network.client_home(client).value)]);
    const auto perm = locality_permutation(5, region);
    subscriptions.push_back(SimSubscription{SubscriptionId{static_cast<std::int64_t>(i)},
                                            gen.generate(rng, &perm), client});
  }
  EventGenerator ev_gen(schema);
  std::vector<Event> events;
  for (std::size_t i = 0; i < n_events; ++i) events.push_back(ev_gen.generate(rng));

  PstMatcherOptions matcher_options;
  matcher_options.factoring_levels = 2;

  std::printf("%15s %12s %12s %13s %12s %10s %10s\n", "protocol", "broker msgs",
              "client msgs", "bytes", "steps", "latency ms", "max util");
  for (const Protocol protocol :
       {Protocol::kLinkMatching, Protocol::kFlooding, Protocol::kMatchFirst}) {
    SimConfig config;
    config.protocol = protocol;
    BrokerSimulation sim(topo.network, schema, topo.publisher_brokers, subscriptions,
                         matcher_options, config);
    Rng sched_rng(7);
    const auto schedule =
        make_poisson_schedule(topo.publisher_brokers, events.size(), rate, sched_rng);
    const SimResult result = sim.run(events, schedule);
    std::printf("%15s %12llu %12llu %13llu %12llu %10.1f %10.3f%s\n", to_string(protocol),
                static_cast<unsigned long long>(result.broker_messages),
                static_cast<unsigned long long>(result.client_messages),
                static_cast<unsigned long long>(result.bytes_on_wire),
                static_cast<unsigned long long>(result.total_matching_steps),
                result.mean_delivery_latency_ms, result.max_utilization,
                result.overloaded ? "  OVERLOADED" : "");
  }
  std::printf("\nAll protocols deliver the identical destination set; they differ only in\n"
              "where the matching work happens and how many copies cross the WAN.\n");
  return 0;
}
