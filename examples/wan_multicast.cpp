// WAN multicast: drives the paper's Figure 6 simulation directly from the
// public API — 39 brokers in three intercontinental trees, 390 subscribing
// clients with regional locality of interest — and prints a side-by-side
// load profile of link matching, flooding, and match-first for the same
// event stream.
//
//   $ ./wan_multicast [subscriptions] [events] [rate]
#include <cstdio>
#include <cstdlib>

#include "sim/simulation.h"

using namespace gryphon;

int main(int argc, char** argv) {
  const std::size_t n_subscriptions = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;
  const std::size_t n_events = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 500;
  const double rate = argc > 3 ? std::strtod(argv[3], nullptr) : 100.0;

  SimSpec spec;
  spec.seed = 2024;
  spec.attributes = 10;
  spec.values_per_attribute = 5;
  spec.topology.kind = TopologyKind::kFigure6;
  spec.workload.subscriptions = n_subscriptions;
  spec.workload.events = n_events;
  spec.workload.rate_eps = rate;
  spec.workload.subscription_config = SubscriptionWorkloadConfig{0.98, 0.85, 1.0};
  spec.matcher.factoring_levels = 2;

  // One shared instance: every protocol replays the identical subscription
  // set, event stream, and publish schedule.
  Simulation sim(spec);
  std::printf("Figure 6 WAN: %zu brokers, %zu subscribing clients, %zu publishers\n",
              sim.network().broker_count(), sim.network().client_count(),
              sim.publishers().size());
  std::printf("workload: %zu subscriptions (~0.1%% selectivity), %zu events @ %.0f/sec\n\n",
              n_subscriptions, n_events, rate);

  std::printf("%15s %12s %12s %13s %12s %10s %10s\n", "protocol", "broker msgs",
              "client msgs", "bytes", "steps", "latency ms", "max util");
  for (const Protocol protocol :
       {Protocol::kLinkMatching, Protocol::kFlooding, Protocol::kMatchFirst}) {
    SimSpec run_spec = spec;
    run_spec.protocol = protocol;
    const SimResult result = simulate(run_spec);
    std::printf("%15s %12llu %12llu %13llu %12llu %10.1f %10.3f%s\n", to_string(protocol),
                static_cast<unsigned long long>(result.broker_messages),
                static_cast<unsigned long long>(result.client_messages),
                static_cast<unsigned long long>(result.bytes_on_wire),
                static_cast<unsigned long long>(result.total_matching_steps),
                result.mean_delivery_latency_ms, result.max_utilization,
                result.overloaded ? "  OVERLOADED" : "");
  }
  std::printf("\nAll protocols deliver the identical destination set; they differ only in\n"
              "where the matching work happens and how many copies cross the WAN.\n");
  return 0;
}
