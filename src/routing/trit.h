// Trits and trit vectors (paper Section 3).
//
// A trit is Yes / No / Maybe. Each broker annotates every PST node with a
// trit vector holding one trit per outgoing link: Yes — a search reaching
// this node is guaranteed to match a subscriber reachable through the link;
// No — it definitely will not; Maybe — further searching must decide.
//
// The two combine operators of Figure 4:
//   Alternative Combine — merges annotations of sibling value-branches
//     (mutually exclusive alternatives): the least specific result wins,
//     i.e. A(x, y) = x when x == y, Maybe otherwise.
//   Parallel Combine — merges the value-branch result with the `*` branch
//     (both searched in parallel): the most liberal result wins, i.e.
//     P = max under the order No < Maybe < Yes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/ids.h"

namespace gryphon {

enum class Trit : std::uint8_t { No = 0, Maybe = 1, Yes = 2 };

/// Read-only view over a stored trit vector (annotations are stored flat,
/// one row per PST node, to keep per-node overhead at one byte per link).
using TritSpan = std::span<const Trit>;

/// Mutable view over a trit row owned elsewhere — the dispatch search's
/// per-level scratch masks (routing/compiled_annotation.cpp).
using MutableTritSpan = std::span<Trit>;

constexpr Trit alternative_combine(Trit a, Trit b) noexcept {
  return a == b ? a : Trit::Maybe;
}

constexpr Trit parallel_combine(Trit a, Trit b) noexcept { return a > b ? a : b; }

constexpr char to_char(Trit t) noexcept {
  return t == Trit::Yes ? 'Y' : (t == Trit::No ? 'N' : 'M');
}

/// Span forms of the mask operations, shared by TritVector and the
/// allocation-free dispatch search, which keeps its masks in reusable
/// scratch buffers instead of TritVector temporaries. Size mismatches
/// throw std::invalid_argument, matching the TritVector methods.
void alternative_with(MutableTritSpan mask, TritSpan other);
void parallel_with(MutableTritSpan mask, TritSpan other);
/// Mask refinement (Section 3.3, step 2): every Maybe in `mask` is replaced
/// by the corresponding annotation trit.
void refine_with(MutableTritSpan mask, TritSpan annotation);
/// Subsearch merge (step 3): every Maybe in `mask` with a Yes in the
/// subsearch result becomes Yes.
void promote_yes_from(MutableTritSpan mask, TritSpan subsearch_result);
/// Step 3 epilogue: remaining Maybes become No.
void maybes_to_no(MutableTritSpan mask);
[[nodiscard]] bool has_maybe(TritSpan mask);

/// A fixed-width vector of trits, one per outgoing link of a broker.
class TritVector {
 public:
  TritVector() = default;
  explicit TritVector(std::size_t size, Trit fill = Trit::No) : trits_(size, fill) {}

  /// Parse from a string like "YMN" (test convenience).
  static TritVector from_string(std::string_view text);

  [[nodiscard]] std::size_t size() const { return trits_.size(); }
  [[nodiscard]] Trit at(std::size_t i) const { return trits_[i]; }
  void set(std::size_t i, Trit t) { trits_[i] = t; }
  [[nodiscard]] Trit at(LinkIndex link) const {
    return trits_[static_cast<std::size_t>(link.value)];
  }
  void set(LinkIndex link, Trit t) { trits_[static_cast<std::size_t>(link.value)] = t; }

  void fill(Trit t) { std::fill(trits_.begin(), trits_.end(), t); }

  [[nodiscard]] TritSpan span() const { return TritSpan(trits_); }
  [[nodiscard]] MutableTritSpan mutable_span() { return MutableTritSpan(trits_); }
  operator TritSpan() const { return span(); }

  /// this[i] = Alternative(this[i], other[i]).
  void alternative_with(TritSpan other);
  /// this[i] = Parallel(this[i], other[i]).
  void parallel_with(TritSpan other);

  /// Mask refinement (Section 3.3, step 2): every Maybe in this mask is
  /// replaced by the corresponding annotation trit.
  void refine_with(TritSpan annotation);

  /// Subsearch merge (step 3): every Maybe in this mask with a Yes in the
  /// returned subsearch mask becomes Yes.
  void promote_yes_from(const TritVector& subsearch_result);

  /// Step 3 epilogue: remaining Maybes become No.
  void maybes_to_no();

  [[nodiscard]] bool has_maybe() const;
  [[nodiscard]] bool any_yes() const;
  [[nodiscard]] std::size_t count(Trit t) const;

  /// Indices of Yes positions — the links to forward the event on.
  [[nodiscard]] std::vector<LinkIndex> yes_links() const;

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool equals(TritSpan other) const {
    return trits_.size() == other.size() &&
           std::equal(trits_.begin(), trits_.end(), other.begin());
  }

  friend bool operator==(const TritVector& a, const TritVector& b) {
    return a.trits_ == b.trits_;
  }
  friend bool operator!=(const TritVector& a, const TritVector& b) { return !(a == b); }

 private:
  std::vector<Trit> trits_;
};

}  // namespace gryphon
