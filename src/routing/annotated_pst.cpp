#include "routing/annotated_pst.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace gryphon {

AnnotatedPst::AnnotatedPst(const Pst& tree, std::size_t link_count, SubscriptionLinkFn link_of)
    : tree_(&tree), link_count_(link_count), link_of_(std::move(link_of)) {
  if (!link_of_) throw std::invalid_argument("AnnotatedPst: null link function");
  if (link_count_ == 0) throw std::invalid_argument("AnnotatedPst: zero links");
  rebuild();
}

TritVector AnnotatedPst::compute_leaf(Pst::NodeId node) const {
  TritVector v(link_count_, Trit::No);
  for (const SubscriptionId sub : tree_->subscribers(node)) {
    const LinkIndex link = link_of_(sub);
    if (!link.valid() || static_cast<std::size_t>(link.value) >= link_count_) {
      throw std::logic_error("AnnotatedPst: subscription resolved to a bad link");
    }
    v.set(link, Trit::Yes);
  }
  return v;
}

TritVector AnnotatedPst::compute_interior(Pst::NodeId node) const {
  const auto eq = tree_->eq_children(node);
  const auto other = tree_->other_children(node);

  // Alternative-combine the non-star branches, including the implicit
  // all-No alternative for event values with no branch. The implicit
  // alternative is skippable only when the equality branches cover the
  // attribute's whole finite domain and no general (range / not-equals)
  // branches exist.
  //
  // The paper restricts annotation to equality-only trees (Section 3.1) and
  // defers the general case to a "parallel search graph". The treatment
  // here is the sound conservative generalization: general branches join
  // the Alternative combine, and because they force the implicit all-No
  // alternative, the merge can only produce Maybe or No for them — a Yes
  // can then only arise from the `*` branch's Parallel combine. Overlapping
  // branches firing simultaneously never break soundness: Yes still means
  // "some subscriber on this link must match", No still means "none can".
  TritVector alt;
  bool first = true;
  if (!tree_->eq_children_cover_domain(node)) {
    alt = TritVector(link_count_, Trit::No);
    first = false;
  }
  const auto fold = [&](Pst::NodeId child) {
    if (first) {
      alt = TritVector(link_count_, Trit::No);
      alt.parallel_with(annotation(child));  // copy via identity (P with all-No)
      first = false;
    } else {
      alt.alternative_with(annotation(child));
    }
  };
  for (const auto& [value, child] : eq) {
    (void)value;
    fold(child);
  }
  for (const auto& [test, child] : other) {
    (void)test;
    fold(child);
  }
  if (first) alt = TritVector(link_count_, Trit::No);  // no branches at all

  const Pst::NodeId star = tree_->star_child(node);
  if (star != Pst::kNoNode) alt.parallel_with(annotation(star));
  return alt;
}

TritVector AnnotatedPst::compute(Pst::NodeId node) const {
  return tree_->is_leaf(node) ? compute_leaf(node) : compute_interior(node);
}

void AnnotatedPst::store(Pst::NodeId node, const TritVector& v) {
  std::copy(v.span().begin(), v.span().end(),
            flat_.begin() + static_cast<std::ptrdiff_t>(static_cast<std::size_t>(node) *
                                                        link_count_));
}

void AnnotatedPst::ensure_capacity() {
  if (tree_->node_slot_count() * link_count_ > flat_.size()) {
    flat_.resize(tree_->node_slot_count() * link_count_, Trit::No);
  }
}

void AnnotatedPst::recompute_subtree(Pst::NodeId node) {
  // Iterative post-order to survive deep trees.
  struct Frame {
    Pst::NodeId node;
    bool expanded;
  };
  std::vector<Frame> stack{{node, false}};
  while (!stack.empty()) {
    // Copy: pushes below may reallocate the stack and invalidate references.
    const Frame top = stack.back();
    if (top.expanded || tree_->is_leaf(top.node)) {
      store(top.node, compute(top.node));
      stack.pop_back();
      continue;
    }
    stack.back().expanded = true;
    for (const auto& [value, child] : tree_->eq_children(top.node)) {
      (void)value;
      stack.push_back({child, false});
    }
    for (const auto& [test, child] : tree_->other_children(top.node)) {
      (void)test;
      stack.push_back({child, false});
    }
    if (tree_->star_child(top.node) != Pst::kNoNode) {
      stack.push_back({tree_->star_child(top.node), false});
    }
  }
}

void AnnotatedPst::rebuild() {
  flat_.assign(tree_->node_slot_count() * link_count_, Trit::No);
  recompute_subtree(tree_->root());
  epoch_ = tree_->epoch();
}

void AnnotatedPst::recompute_spine(Pst::NodeId from) {
  Pst::NodeId node = from;
  while (node != Pst::kNoNode) {
    const TritVector fresh = compute(node);
    if (fresh.equals(annotation(node))) break;  // no change propagates upward
    store(node, fresh);
    node = tree_->parent(node);
  }
  epoch_ = tree_->epoch();
}

void AnnotatedPst::apply(const Pst::Mutation& mutation) {
  ensure_capacity();
  // Zero pruned rows so a later arena reuse of the slot can never alias a
  // stale annotation. With that guarantee, a node whose freshly computed
  // row equals its stored row is genuinely unchanged (a node's row always
  // contains a Yes or Maybe once any subscriber is reachable below it, so
  // an all-No fresh slot can't accidentally match), and the early exit of
  // recompute_spine is sound.
  const TritVector zero(link_count_, Trit::No);
  for (const Pst::NodeId freed : mutation.freed) store(freed, zero);
  const Pst::NodeId start = mutation.leaf != Pst::kNoNode ? mutation.leaf : mutation.start;
  if (start == Pst::kNoNode) {
    epoch_ = tree_->epoch();
    return;
  }
  recompute_spine(start);
}

void AnnotatedPst::check_consistency() const {
  AnnotatedPst fresh(*tree_, link_count_, link_of_);
  std::vector<Pst::NodeId> stack{tree_->root()};
  while (!stack.empty()) {
    const Pst::NodeId n = stack.back();
    stack.pop_back();
    const TritSpan have = annotation(n);
    const TritSpan want = fresh.annotation(n);
    if (!std::equal(have.begin(), have.end(), want.begin(), want.end())) {
      std::string have_s, want_s;
      for (const Trit t : have) have_s.push_back(to_char(t));
      for (const Trit t : want) want_s.push_back(to_char(t));
      throw std::logic_error("AnnotatedPst: incremental annotation diverged at node " +
                             std::to_string(n) + " (have " + have_s + ", want " + want_s + ")");
    }
    if (tree_->is_leaf(n)) continue;
    for (const auto& [value, child] : tree_->eq_children(n)) {
      (void)value;
      stack.push_back(child);
    }
    for (const auto& [test, child] : tree_->other_children(n)) {
      (void)test;
      stack.push_back(child);
    }
    if (tree_->star_child(n) != Pst::kNoNode) stack.push_back(tree_->star_child(n));
  }
}

}  // namespace gryphon
