// ContentRoutingNetwork: the complete link-matching control plane for a
// broker network (paper Section 3).
//
// Every broker in the network holds a copy of all subscriptions organized
// into a PST (Section 3.1). This class keeps ONE shared PstMatcher (the
// trees are identical at every broker anyway) and, per broker:
//   * one trit-annotation set per distinct destination->link map. On
//     acyclic ("tree-like") networks every spanning tree induces the same
//     map, so brokers hold a single annotation set; with lateral links a
//     broker holds one per distinct map, deduplicated by signature — the
//     "virtual links" refinement sketched in the paper's footnote 1;
//   * one initialization mask per spanning tree (Section 3.2): Maybe on
//     links leading to descendant destinations, No elsewhere.
//
// route(broker, event, tree_root) performs the mask-refinement search of
// Section 3.3 and returns the links (broker links and local client links)
// the event must be forwarded on.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "matching/pst_matcher.h"
#include "routing/annotated_pst.h"
#include "routing/link_matcher.h"
#include "routing/trit.h"
#include "topology/network.h"
#include "topology/routing_table.h"
#include "topology/spanning_tree.h"

namespace gryphon {

class ContentRoutingNetwork {
 public:
  /// `tree_roots` are the brokers that host publishers — one spanning tree
  /// is built per entry (Section 3.2: "at worst, there will be one spanning
  /// tree for each broker that has publisher neighbors").
  ContentRoutingNetwork(const BrokerNetwork& network, SchemaPtr schema,
                        std::vector<BrokerId> tree_roots,
                        PstMatcherOptions matcher_options = PstMatcherOptions());

  [[nodiscard]] const BrokerNetwork& network() const { return *network_; }
  [[nodiscard]] const RoutingTable& routing() const { return routing_; }
  [[nodiscard]] const SpanningTree& spanning_tree(BrokerId root) const;
  [[nodiscard]] const PstMatcher& matcher() const { return *matcher_; }
  [[nodiscard]] const SchemaPtr& schema() const { return schema_; }
  [[nodiscard]] std::size_t subscription_count() const {
    return matcher_->subscription_count();
  }

  /// Registers a subscription for `subscriber` network-wide: the shared PST
  /// is extended and every broker's annotations are updated incrementally.
  void subscribe(SubscriptionId id, const Subscription& subscription, ClientId subscriber);

  /// Removes a subscription network-wide; false when the id is unknown.
  bool unsubscribe(SubscriptionId id);

  [[nodiscard]] ClientId destination_of(SubscriptionId id) const;

  struct RouteResult {
    /// Ports of `broker` (broker links and client links) with a final Yes.
    std::vector<LinkIndex> links;
    /// Matching steps spent at this broker (node visitations + index probe).
    std::uint64_t steps{0};
  };

  /// The per-hop forwarding decision of the link-matching protocol: which
  /// of `broker`'s links should carry `event`, published via the spanning
  /// tree rooted at `tree_root`.
  [[nodiscard]] RouteResult route(BrokerId broker, const Event& event,
                                  BrokerId tree_root) const;

  /// Centralized matching (Section 2): the full destination list, as the
  /// match-first baseline would compute at the publisher's broker.
  [[nodiscard]] std::vector<SubscriptionId> match(const Event& event,
                                                  MatchStats* stats = nullptr) const;

  /// The initialization mask of `broker` for the given spanning tree.
  [[nodiscard]] const TritVector& initialization_mask(BrokerId broker,
                                                      BrokerId tree_root) const;

  /// Distinct annotation sets held by a broker (1 on acyclic networks).
  [[nodiscard]] std::size_t annotation_group_count(BrokerId broker) const;

  /// Test hook: re-derives every annotation from scratch and compares with
  /// the incrementally maintained state. Throws std::logic_error on drift.
  void check_consistency() const;

 private:
  struct Group {
    const SpanningTree* representative{nullptr};
    SubscriptionLinkFn link_of;
    std::unordered_map<const Pst*, std::unique_ptr<AnnotatedPst>> annotations;
  };
  struct BrokerState {
    std::size_t link_count{0};
    std::vector<std::unique_ptr<Group>> groups;
    std::unordered_map<BrokerId, Group*> group_of_root;
    std::unordered_map<BrokerId, TritVector> init_masks;
  };

  void apply_touched(const PstMatcher::TouchedTrees& touched);

  const BrokerNetwork* network_;
  SchemaPtr schema_;
  RoutingTable routing_;
  std::map<BrokerId, std::unique_ptr<SpanningTree>> trees_;
  std::unique_ptr<PstMatcher> matcher_;
  std::unordered_map<SubscriptionId, ClientId> destinations_;
  std::vector<BrokerState> broker_states_;
};

}  // namespace gryphon
