// Frozen trit annotations over the compiled PST kernel, plus the compiled
// dispatch search — the data-plane form of the Section 3.3 link matching.
//
// AnnotatedPsg (psg_annotation.h) annotates a FrozenPsg; it remains the
// reference implementation and the differential-test oracle. This layer
// produces the same annotation rows laid out for the dispatch walk:
//
//  * all rows of all spanning-tree groups live in one flat arena indexed
//    [group][node][link], so the mask-refinement search for one group walks
//    a single contiguous region whose row offsets are the compiled node
//    ids — the annotation of a node sits a multiply-add away from its
//    branch tables;
//  * the locally-owned subscriber ids of every leaf are precomputed into a
//    contiguous arena (per-leaf slices), replacing the vector-per-node
//    layout of AnnotatedPsg.
//
// Annotation semantics are identical to AnnotatedPsg (paper Section 3.1):
// leaves get Yes at the link of each subscriber, interiors fold value
// branches with Alternative Combine — seeded with the implicit all-No
// alternative unless the node's equality branches cover the attribute's
// finite domain (a flag precomputed by CompiledPst) — and merge the `*`
// branch with Parallel Combine. Rows are computed in one forward pass over
// CompiledPst::bottom_up_order().
//
// A CompiledAnnotation is deeply immutable after construction; any number
// of threads may run compiled_dispatch() concurrently, each with its own
// MatchScratch.
#pragma once

#include <span>
#include <vector>

#include "common/ids.h"
#include "matching/compiled_pst.h"
#include "matching/match_scratch.h"
#include "routing/annotated_pst.h"  // SubscriptionLinkFn
#include "routing/trit.h"

namespace gryphon {

class CompiledAnnotation {
 public:
  /// Builds annotation rows for every spanning-tree group over `kernel`,
  /// which must outlive this object. `group_link_fns[g]` resolves a
  /// subscription to its link under group g; all groups must agree on the
  /// local link (they map owner == self to `local_link`), which is what
  /// makes the shared local-subscriber arena sound. Pass an invalid
  /// `local_link` when local enumeration is never wanted.
  CompiledAnnotation(const CompiledPst& kernel, std::size_t link_count,
                     std::span<const SubscriptionLinkFn> group_link_fns, LinkIndex local_link);

  [[nodiscard]] const CompiledPst& kernel() const { return *kernel_; }
  [[nodiscard]] std::size_t link_count() const { return link_count_; }
  [[nodiscard]] std::size_t group_count() const { return group_count_; }
  [[nodiscard]] LinkIndex local_link() const { return local_link_; }

  /// The annotation row of a node under one spanning-tree group.
  [[nodiscard]] TritSpan annotation(std::size_t group, CompiledPst::NodeId node) const {
    return TritSpan(
        rows_.data() + (group * node_count_ + static_cast<std::size_t>(node)) * link_count_,
        link_count_);
  }

  /// The subscriber ids at leaf `node` owned by the local link (empty for
  /// interior nodes and when no local link was configured).
  [[nodiscard]] std::span<const SubscriptionId> local_subscribers(
      CompiledPst::NodeId node) const {
    const auto& slice = local_slices_[static_cast<std::size_t>(node)];
    return {local_subs_.data() + slice.first, slice.second};
  }

 private:
  const CompiledPst* kernel_;
  std::size_t link_count_;
  std::size_t group_count_;
  std::size_t node_count_;
  LinkIndex local_link_;
  std::vector<Trit> rows_;  // [group][node][link]
  std::vector<SubscriptionId> local_subs_;  // leaf slices
  std::vector<std::pair<std::uint32_t, std::uint32_t>> local_slices_;  // begin, count
};

/// The outcome of one compiled dispatch search.
struct CompiledDispatchResult {
  /// Fully refined mask: Yes marks every link to forward the event on.
  TritVector mask;
  /// Matching steps — node visitations, the paper's Chart 2 unit.
  std::uint64_t steps{0};
};

/// Scratch byte-slot layout for the allocation-free dispatch path
/// (MatchScratch::byte_slot): slots [0, kDispatchCallerSlots) belong to the
/// caller — BrokerCore::dispatch_pinned's per-segment accumulator pair —
/// and compiled_dispatch_into claims slot kDispatchCallerSlots + depth for
/// the search level at `depth`.
inline constexpr std::size_t kDispatchCallerSlots = 2;

/// A trit mask over scratch byte slot `slot`, sized to `width`. The
/// returned span stays valid across later slot claims: growing the slot
/// table moves the inner buffers' handles, never their heap blocks.
[[nodiscard]] MutableTritSpan dispatch_mask_slot(MatchScratch& scratch, std::size_t slot,
                                                 std::size_t width);

/// The link-matching search of Section 3.3 over the compiled kernel,
/// simultaneously enumerating local matches when `local_out` is non-null.
/// Behaviour is bit-identical to psg_dispatch() over the equivalent
/// AnnotatedPsg: same refined mask, same local-match set, same step count —
/// the differential churn test in tests/test_compiled_pst.cpp holds the two
/// implementations to that.
///
/// The event is resolved to interned equality keys once (into
/// `scratch.value_keys()`), not per node. Thread-safe: concurrent calls
/// with distinct scratches share only the immutable annotation.
///
/// This form writes the refined mask into `out_mask` (width == link_count)
/// and returns the step count. A warm scratch allocates nothing; a cold one
/// grows the per-level mask arena once.
std::uint64_t compiled_dispatch_into(const CompiledAnnotation& annotated, std::size_t group,
                                     const Event& event, TritSpan initialization_mask,
                                     MatchScratch& scratch,
                                     std::vector<SubscriptionId>* local_out,
                                     MutableTritSpan out_mask);

/// Convenience wrapper over compiled_dispatch_into returning the mask by
/// value — the differential-test and oracle entry point; the dispatch hot
/// path calls the _into form to stay allocation-free.
CompiledDispatchResult compiled_dispatch(const CompiledAnnotation& annotated, std::size_t group,
                                         const Event& event,
                                         const TritVector& initialization_mask,
                                         MatchScratch& scratch,
                                         std::vector<SubscriptionId>* local_out);

}  // namespace gryphon
