#include "routing/psg_annotation.h"

#include <algorithm>
#include <stdexcept>

namespace gryphon {

AnnotatedPsg::AnnotatedPsg(const FrozenPsg& graph, std::size_t link_count,
                           const SubscriptionLinkFn& link_of, LinkIndex local_link)
    : graph_(&graph), link_count_(link_count), local_link_(local_link) {
  if (!link_of) throw std::invalid_argument("AnnotatedPsg: null link function");
  if (link_count_ == 0) throw std::invalid_argument("AnnotatedPsg: zero links");
  const std::size_t n_nodes = graph.node_count();
  flat_.assign(n_nodes * link_count_, Trit::No);
  local_subs_.resize(n_nodes);

  const auto store = [&](FrozenPsg::NodeId n, const TritVector& v) {
    std::copy(v.span().begin(), v.span().end(),
              flat_.begin() + static_cast<std::ptrdiff_t>(static_cast<std::size_t>(n) *
                                                          link_count_));
  };

  // Children carry strictly smaller ids than parents (FrozenPsg contract),
  // so one forward pass computes every row bottom-up.
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const auto n = static_cast<FrozenPsg::NodeId>(i);
    if (graph.is_leaf(n)) {
      TritVector v(link_count_, Trit::No);
      for (const SubscriptionId sub : graph.subscribers(n)) {
        const LinkIndex link = link_of(sub);
        if (!link.valid() || static_cast<std::size_t>(link.value) >= link_count_) {
          throw std::logic_error("AnnotatedPsg: subscription resolved to a bad link");
        }
        v.set(link, Trit::Yes);
        if (local_link_.valid() && link == local_link_) local_subs_[i].push_back(sub);
      }
      store(n, v);
      continue;
    }
    // Alternative-combine the non-star branches, seeded with the implicit
    // all-No alternative unless the equality branches cover the attribute's
    // whole finite domain with no general branches (same treatment as
    // AnnotatedPst — see annotated_pst.cpp for the soundness argument).
    TritVector alt;
    bool first = true;
    if (!graph.eq_children_cover_domain(n)) {
      alt = TritVector(link_count_, Trit::No);
      first = false;
    }
    const auto fold = [&](FrozenPsg::NodeId child) {
      if (first) {
        alt = TritVector(link_count_, Trit::No);
        alt.parallel_with(annotation(child));  // copy via identity (P with all-No)
        first = false;
      } else {
        alt.alternative_with(annotation(child));
      }
    };
    for (const auto& [value, child] : graph.eq_children(n)) {
      (void)value;
      fold(child);
    }
    for (const auto& [test, child] : graph.other_children(n)) {
      (void)test;
      fold(child);
    }
    if (first) alt = TritVector(link_count_, Trit::No);  // no branches at all
    const FrozenPsg::NodeId star = graph.star_child(n);
    if (star != FrozenPsg::kNoNode) alt.parallel_with(annotation(star));
    store(n, alt);
  }
}

namespace {

// The link-matching search of Section 3.3 over the frozen graph, extended
// with local-match enumeration. Star-only chains were eliminated
// structurally when the graph was frozen, so no trivial-test skipping is
// needed here; delayed branching still orders the `*` subsearch last.
class DispatchSearch {
 public:
  DispatchSearch(const AnnotatedPsg& annotated, const Event& event, MatchScratch& scratch,
                 std::vector<SubscriptionId>* local_out)
      : annotated_(annotated),
        graph_(annotated.graph()),
        event_(event),
        scratch_(scratch),
        local_out_(local_out),
        local_(annotated.local_link()),
        delayed_star_(graph_.options().delayed_star) {}

  TritVector run(FrozenPsg::NodeId node, TritVector mask) {
    ++steps_;
    // Step 2: refinement against this node's annotation.
    mask.refine_with(annotated_.annotation(node));
    // Stamping marks "local matches at or below this node are collected by
    // this call": a later path reaching the shared node skips local work,
    // which is sound because the leaf union below it is path-independent.
    const bool local_here = wants_local(node);
    if (local_here) scratch_.visit(static_cast<std::size_t>(node));

    if (graph_.is_leaf(node)) {
      if (local_here) {
        const auto& subs = annotated_.local_subscribers(node);
        local_out_->insert(local_out_->end(), subs.begin(), subs.end());
      }
      mask.maybes_to_no();
      return mask;
    }
    if (!mask.has_maybe() && !local_here) return mask;  // nothing left to decide below

    // Step 3: perform the test, subsearch each selected child that can
    // still contribute — a Maybe to resolve, or uncollected local matches.
    const std::size_t attr = graph_.order()[static_cast<std::size_t>(graph_.level(node))];
    const Value& v = event_.value(attr);

    const auto subsearch = [&](FrozenPsg::NodeId child) {
      if (!mask.has_maybe() && !(local_here && wants_local(child))) return;
      mask.promote_yes_from(run(child, mask));
    };

    const FrozenPsg::NodeId star = graph_.star_child(node);
    if (!delayed_star_ && star != FrozenPsg::kNoNode) subsearch(star);
    for (const auto& [test, child] : graph_.other_children(node)) {
      if (test.accepts(v)) subsearch(child);
    }
    const auto eq = graph_.eq_children(node);
    if (!eq.empty()) {
      const auto it = std::lower_bound(
          eq.begin(), eq.end(), v,
          [](const auto& entry, const Value& key) { return entry.first < key; });
      if (it != eq.end() && it->first == v) subsearch(it->second);
    }
    if (delayed_star_ && star != FrozenPsg::kNoNode) subsearch(star);

    mask.maybes_to_no();
    return mask;
  }

  [[nodiscard]] std::uint64_t steps() const { return steps_; }

 private:
  [[nodiscard]] bool wants_local(FrozenPsg::NodeId node) const {
    return local_out_ != nullptr && local_.valid() &&
           !scratch_.visited(static_cast<std::size_t>(node)) &&
           annotated_.annotation(node)[static_cast<std::size_t>(local_.value)] != Trit::No;
  }

  const AnnotatedPsg& annotated_;
  const FrozenPsg& graph_;
  const Event& event_;
  MatchScratch& scratch_;
  std::vector<SubscriptionId>* local_out_;
  LinkIndex local_;
  bool delayed_star_;
  std::uint64_t steps_{0};
};

}  // namespace

PsgDispatchResult psg_dispatch(const AnnotatedPsg& annotated, const Event& event,
                               const TritVector& initialization_mask, MatchScratch& scratch,
                               std::vector<SubscriptionId>* local_out) {
  if (initialization_mask.size() != annotated.link_count()) {
    throw std::invalid_argument("psg_dispatch: mask width != link count");
  }
  PsgDispatchResult result;
  const FrozenPsg& graph = annotated.graph();
  if (graph.subscription_count() == 0 || graph.root() < 0) {
    result.mask = initialization_mask;
    result.mask.maybes_to_no();  // nothing downstream can match
    return result;
  }
  const bool want_local = local_out != nullptr && annotated.local_link().valid();
  if (!initialization_mask.has_maybe() && !want_local) {
    result.mask = initialization_mask;  // already final, and no local work
    return result;
  }
  scratch.begin(graph.node_count());
  DispatchSearch search(annotated, event, scratch, local_out);
  result.mask = search.run(graph.root(), initialization_mask);
  result.steps = search.steps();
  return result;
}

}  // namespace gryphon
