#include "routing/content_router.h"

#include <stdexcept>

namespace gryphon {

ContentRoutingNetwork::ContentRoutingNetwork(const BrokerNetwork& network, SchemaPtr schema,
                                             std::vector<BrokerId> tree_roots,
                                             PstMatcherOptions matcher_options)
    : network_(&network), schema_(std::move(schema)), routing_(network) {
  if (tree_roots.empty()) {
    throw std::invalid_argument("ContentRoutingNetwork: need at least one tree root");
  }
  matcher_ = std::make_unique<PstMatcher>(schema_, std::move(matcher_options));

  for (const BrokerId root : tree_roots) {
    if (!trees_.contains(root)) {
      trees_.emplace(root, std::make_unique<SpanningTree>(network, routing_, root));
    }
  }

  const std::size_t n = network.broker_count();
  broker_states_.resize(n);
  for (std::size_t b = 0; b < n; ++b) {
    const BrokerId broker{static_cast<BrokerId::rep_type>(b)};
    BrokerState& state = broker_states_[b];
    state.link_count = network.ports(broker).size();
    // Group spanning trees by their destination->link map at this broker.
    std::map<std::vector<LinkIndex::rep_type>, Group*> by_signature;
    for (const auto& [root, tree] : trees_) {
      std::vector<LinkIndex::rep_type> signature;
      signature.reserve(n);
      for (std::size_t d = 0; d < n; ++d) {
        signature.push_back(
            tree->tree_next_hop(broker, BrokerId{static_cast<BrokerId::rep_type>(d)}).value);
      }
      Group*& group = by_signature[signature];
      if (group == nullptr) {
        auto owned = std::make_unique<Group>();
        owned->representative = tree.get();
        const SpanningTree* rep = tree.get();
        owned->link_of = [this, rep, broker](SubscriptionId id) {
          return rep->tree_next_hop_to_client(broker, destinations_.at(id));
        };
        group = owned.get();
        state.groups.push_back(std::move(owned));
      }
      state.group_of_root.emplace(root, group);

      // Initialization mask: Maybe on links with descendant destinations.
      const auto& ports = network.ports(broker);
      TritVector mask(ports.size(), Trit::No);
      for (std::size_t pi = 0; pi < ports.size(); ++pi) {
        if (tree->downstream_client_count(broker, LinkIndex{static_cast<LinkIndex::rep_type>(
                                                      pi)}) > 0) {
          mask.set(pi, Trit::Maybe);
        }
      }
      state.init_masks.emplace(root, std::move(mask));
    }
  }
}

const SpanningTree& ContentRoutingNetwork::spanning_tree(BrokerId root) const {
  const auto it = trees_.find(root);
  if (it == trees_.end()) {
    throw std::invalid_argument("ContentRoutingNetwork: unknown spanning tree root");
  }
  return *it->second;
}

void ContentRoutingNetwork::apply_touched(const PstMatcher::TouchedTrees& touched) {
  for (BrokerState& state : broker_states_) {
    for (const auto& group : state.groups) {
      for (const auto& t : touched) {
        auto it = group->annotations.find(t.tree);
        if (it == group->annotations.end()) {
          // A new factoring bucket tree: build its annotation from scratch
          // (it already reflects the mutation).
          group->annotations.emplace(
              t.tree,
              std::make_unique<AnnotatedPst>(*t.tree, state.link_count, group->link_of));
        } else {
          it->second->apply(t.mutation);
        }
      }
    }
  }
}

void ContentRoutingNetwork::subscribe(SubscriptionId id, const Subscription& subscription,
                                      ClientId subscriber) {
  if (!subscriber.valid() ||
      static_cast<std::size_t>(subscriber.value) >= network_->client_count()) {
    throw std::invalid_argument("ContentRoutingNetwork::subscribe: bad subscriber");
  }
  if (destinations_.contains(id)) {
    throw std::invalid_argument("ContentRoutingNetwork::subscribe: duplicate id");
  }
  destinations_.emplace(id, subscriber);
  PstMatcher::TouchedTrees touched;
  try {
    touched = matcher_->add_with_result(id, subscription);
  } catch (...) {
    destinations_.erase(id);
    throw;
  }
  apply_touched(touched);
}

bool ContentRoutingNetwork::unsubscribe(SubscriptionId id) {
  if (!destinations_.contains(id)) return false;
  const PstMatcher::TouchedTrees touched = matcher_->remove_with_result(id);
  apply_touched(touched);
  destinations_.erase(id);
  return true;
}

ClientId ContentRoutingNetwork::destination_of(SubscriptionId id) const {
  const auto it = destinations_.find(id);
  if (it == destinations_.end()) {
    throw std::invalid_argument("ContentRoutingNetwork: unknown subscription");
  }
  return it->second;
}

ContentRoutingNetwork::RouteResult ContentRoutingNetwork::route(BrokerId broker,
                                                                const Event& event,
                                                                BrokerId tree_root) const {
  const BrokerState& state = broker_states_.at(static_cast<std::size_t>(broker.value));
  const auto group_it = state.group_of_root.find(tree_root);
  if (group_it == state.group_of_root.end()) {
    throw std::invalid_argument("ContentRoutingNetwork::route: unknown tree root");
  }
  RouteResult result;
  const Pst* tree = matcher_->tree_for_event(event);
  if (matcher_->options().factoring_levels > 0) ++result.steps;  // bucket index probe
  // No tree, or a tree with no subscriptions (annotations are created on
  // first subscribe): no subscription anywhere can match this event.
  if (tree == nullptr || tree->subscription_count() == 0) return result;

  const auto ann_it = group_it->second->annotations.find(tree);
  if (ann_it == group_it->second->annotations.end()) {
    throw std::logic_error("ContentRoutingNetwork::route: missing annotation for tree");
  }
  const LinkMatchResult lm =
      link_match(*ann_it->second, event, state.init_masks.at(tree_root));
  result.links = lm.mask.yes_links();
  result.steps += lm.steps;
  return result;
}

std::vector<SubscriptionId> ContentRoutingNetwork::match(const Event& event,
                                                         MatchStats* stats) const {
  std::vector<SubscriptionId> out;
  matcher_->match_into(event, out, stats);
  return out;
}

const TritVector& ContentRoutingNetwork::initialization_mask(BrokerId broker,
                                                             BrokerId tree_root) const {
  return broker_states_.at(static_cast<std::size_t>(broker.value)).init_masks.at(tree_root);
}

std::size_t ContentRoutingNetwork::annotation_group_count(BrokerId broker) const {
  return broker_states_.at(static_cast<std::size_t>(broker.value)).groups.size();
}

void ContentRoutingNetwork::check_consistency() const {
  for (const BrokerState& state : broker_states_) {
    for (const auto& group : state.groups) {
      for (const auto& [tree, annotated] : group->annotations) {
        (void)tree;
        annotated->check_consistency();
      }
    }
  }
}

}  // namespace gryphon
