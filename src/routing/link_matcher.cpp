#include "routing/link_matcher.h"

#include <stdexcept>

namespace gryphon {

namespace {

class Search {
 public:
  Search(const AnnotatedPst& annotated, const Event& event)
      : annotated_(annotated),
        tree_(annotated.tree()),
        event_(event),
        tte_(tree_.options().trivial_test_elimination),
        delayed_star_(tree_.options().delayed_star) {}

  TritVector run(Pst::NodeId node, TritVector mask) {
    // Trivial-test elimination: a star-only node's annotation equals its
    // star child's, so the chain refines nothing and performs no test.
    if (tte_) {
      while (!tree_.is_leaf(node) && is_star_only(node)) node = tree_.star_child(node);
    }
    ++steps_;

    // Step 2: refinement against this node's annotation.
    mask.refine_with(annotated_.annotation(node));
    if (!mask.has_maybe()) return mask;

    if (tree_.is_leaf(node)) {
      // A leaf annotation holds only Yes/No, so refinement above cannot
      // leave a Maybe; defensive for robustness.
      mask.maybes_to_no();
      return mask;
    }

    // Step 3: perform the test, subsearch each selected child.
    const std::size_t attr = tree_.order()[static_cast<std::size_t>(tree_.level(node))];
    const Value& v = event_.value(attr);

    const auto subsearch = [&](Pst::NodeId child) {
      const TritVector result = run(child, mask);
      mask.promote_yes_from(result);
    };

    const Pst::NodeId star = tree_.star_child(node);
    if (!delayed_star_ && star != Pst::kNoNode) subsearch(star);

    if (mask.has_maybe()) {
      for (const auto& [test, child] : tree_.other_children(node)) {
        if (test.accepts(v)) {
          subsearch(child);
          if (!mask.has_maybe()) break;
        }
      }
    }
    if (mask.has_maybe()) {
      const auto eq = tree_.eq_children(node);
      const auto it = std::lower_bound(
          eq.begin(), eq.end(), v,
          [](const auto& entry, const Value& key) { return entry.first < key; });
      if (it != eq.end() && it->first == v) subsearch(it->second);
    }
    if (delayed_star_ && star != Pst::kNoNode && mask.has_maybe()) subsearch(star);

    mask.maybes_to_no();
    return mask;
  }

  [[nodiscard]] std::uint64_t steps() const { return steps_; }

 private:
  [[nodiscard]] bool is_star_only(Pst::NodeId node) const {
    return tree_.eq_children(node).empty() && tree_.other_children(node).empty() &&
           tree_.star_child(node) != Pst::kNoNode;
  }

  const AnnotatedPst& annotated_;
  const Pst& tree_;
  const Event& event_;
  bool tte_;
  bool delayed_star_;
  std::uint64_t steps_{0};
};

}  // namespace

LinkMatchResult link_match(const AnnotatedPst& annotated, const Event& event,
                           const TritVector& initialization_mask) {
  if (initialization_mask.size() != annotated.link_count()) {
    throw std::invalid_argument("link_match: mask width != link count");
  }
  if (!annotated.in_sync()) {
    throw std::logic_error("link_match: annotation is stale (missed tree mutation)");
  }
  LinkMatchResult result;
  if (!initialization_mask.has_maybe()) {
    // Nothing downstream could ever match; the mask is already final.
    result.mask = initialization_mask;
    return result;
  }
  Search search(annotated, event);
  result.mask = search.run(annotated.tree().root(), initialization_mask);
  result.steps = search.steps();
  return result;
}

}  // namespace gryphon
