#include "routing/trit.h"

#include <algorithm>
#include <stdexcept>

namespace gryphon {

TritVector TritVector::from_string(std::string_view text) {
  TritVector v(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    switch (text[i]) {
      case 'Y': case 'y': v.trits_[i] = Trit::Yes; break;
      case 'N': case 'n': v.trits_[i] = Trit::No; break;
      case 'M': case 'm': v.trits_[i] = Trit::Maybe; break;
      default: throw std::invalid_argument("TritVector::from_string: bad character");
    }
  }
  return v;
}

namespace {
void check_same_size(const TritVector& a, TritSpan b) {
  if (a.size() != b.size()) throw std::invalid_argument("TritVector: size mismatch");
}
}  // namespace

void TritVector::alternative_with(TritSpan other) {
  check_same_size(*this, other);
  for (std::size_t i = 0; i < trits_.size(); ++i) {
    trits_[i] = alternative_combine(trits_[i], other[i]);
  }
}

void TritVector::parallel_with(TritSpan other) {
  check_same_size(*this, other);
  for (std::size_t i = 0; i < trits_.size(); ++i) {
    trits_[i] = parallel_combine(trits_[i], other[i]);
  }
}

void TritVector::refine_with(TritSpan annotation) {
  check_same_size(*this, annotation);
  for (std::size_t i = 0; i < trits_.size(); ++i) {
    if (trits_[i] == Trit::Maybe) trits_[i] = annotation[i];
  }
}

void TritVector::promote_yes_from(const TritVector& subsearch_result) {
  check_same_size(*this, subsearch_result);
  for (std::size_t i = 0; i < trits_.size(); ++i) {
    if (trits_[i] == Trit::Maybe && subsearch_result.trits_[i] == Trit::Yes) {
      trits_[i] = Trit::Yes;
    }
  }
}

void TritVector::maybes_to_no() {
  for (Trit& t : trits_) {
    if (t == Trit::Maybe) t = Trit::No;
  }
}

bool TritVector::has_maybe() const {
  return std::find(trits_.begin(), trits_.end(), Trit::Maybe) != trits_.end();
}

bool TritVector::any_yes() const {
  return std::find(trits_.begin(), trits_.end(), Trit::Yes) != trits_.end();
}

std::size_t TritVector::count(Trit t) const {
  return static_cast<std::size_t>(std::count(trits_.begin(), trits_.end(), t));
}

std::vector<LinkIndex> TritVector::yes_links() const {
  std::vector<LinkIndex> out;
  for (std::size_t i = 0; i < trits_.size(); ++i) {
    if (trits_[i] == Trit::Yes) out.push_back(LinkIndex{static_cast<LinkIndex::rep_type>(i)});
  }
  return out;
}

std::string TritVector::to_string() const {
  std::string s;
  s.reserve(trits_.size());
  for (const Trit t : trits_) s.push_back(to_char(t));
  return s;
}

}  // namespace gryphon
