#include "routing/trit.h"

#include <algorithm>
#include <stdexcept>

namespace gryphon {

TritVector TritVector::from_string(std::string_view text) {
  TritVector v(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    switch (text[i]) {
      case 'Y': case 'y': v.trits_[i] = Trit::Yes; break;
      case 'N': case 'n': v.trits_[i] = Trit::No; break;
      case 'M': case 'm': v.trits_[i] = Trit::Maybe; break;
      default: throw std::invalid_argument("TritVector::from_string: bad character");
    }
  }
  return v;
}

namespace {
void check_same_size(TritSpan a, TritSpan b) {
  if (a.size() != b.size()) throw std::invalid_argument("TritVector: size mismatch");
}
}  // namespace

void alternative_with(MutableTritSpan mask, TritSpan other) {
  check_same_size(mask, other);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask[i] = alternative_combine(mask[i], other[i]);
  }
}

void parallel_with(MutableTritSpan mask, TritSpan other) {
  check_same_size(mask, other);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask[i] = parallel_combine(mask[i], other[i]);
  }
}

void refine_with(MutableTritSpan mask, TritSpan annotation) {
  check_same_size(mask, annotation);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] == Trit::Maybe) mask[i] = annotation[i];
  }
}

void promote_yes_from(MutableTritSpan mask, TritSpan subsearch_result) {
  check_same_size(mask, subsearch_result);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] == Trit::Maybe && subsearch_result[i] == Trit::Yes) mask[i] = Trit::Yes;
  }
}

void maybes_to_no(MutableTritSpan mask) {
  for (Trit& t : mask) {
    if (t == Trit::Maybe) t = Trit::No;
  }
}

bool has_maybe(TritSpan mask) {
  return std::find(mask.begin(), mask.end(), Trit::Maybe) != mask.end();
}

void TritVector::alternative_with(TritSpan other) {
  gryphon::alternative_with(mutable_span(), other);
}

void TritVector::parallel_with(TritSpan other) { gryphon::parallel_with(mutable_span(), other); }

void TritVector::refine_with(TritSpan annotation) {
  gryphon::refine_with(mutable_span(), annotation);
}

void TritVector::promote_yes_from(const TritVector& subsearch_result) {
  gryphon::promote_yes_from(mutable_span(), subsearch_result.span());
}

void TritVector::maybes_to_no() { gryphon::maybes_to_no(mutable_span()); }

bool TritVector::has_maybe() const { return gryphon::has_maybe(span()); }

bool TritVector::any_yes() const {
  return std::find(trits_.begin(), trits_.end(), Trit::Yes) != trits_.end();
}

std::size_t TritVector::count(Trit t) const {
  return static_cast<std::size_t>(std::count(trits_.begin(), trits_.end(), t));
}

std::vector<LinkIndex> TritVector::yes_links() const {
  std::vector<LinkIndex> out;
  for (std::size_t i = 0; i < trits_.size(); ++i) {
    if (trits_[i] == Trit::Yes) out.push_back(LinkIndex{static_cast<LinkIndex::rep_type>(i)});
  }
  return out;
}

std::string TritVector::to_string() const {
  std::string s;
  s.reserve(trits_.size());
  for (const Trit t : trits_) s.push_back(to_char(t));
  return s;
}

}  // namespace gryphon
