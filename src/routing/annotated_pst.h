// Trit annotation of a parallel search tree (paper Section 3.1).
//
// Leaves are annotated with Yes at link l when one of the leaf's subscribers
// is reached through link l, No otherwise. Annotations propagate toward the
// root: sibling value-branches merge with Alternative Combine — including an
// implicit all-No alternative representing event values for which no value
// branch exists (unless the branches cover the attribute's entire declared
// finite domain) — and the result merges with the `*` branch via Parallel
// Combine.
//
// The paper defines annotation for trees with only equality tests and
// don't-care branches, deferring the general case to a "parallel search
// graph". This implementation additionally handles general branches (range
// and not-equals tests) with the sound conservative generalization: they
// participate in the Alternative combine and always force the implicit
// all-No alternative, so they can contribute Maybe (search deeper) or No
// (prune) but never an unsound Yes.
//
// The annotation is maintained incrementally: after a subscribe/unsubscribe
// touches a leaf, only the changed spine (leaf to root, stopping early when
// a node's annotation is unchanged) is recomputed.
//
// Storage is a flat Trit array (one row of `link_count` trits per node id),
// so a broker network holding one annotation set per broker stays compact.
#pragma once

#include <functional>
#include <vector>

#include "common/ids.h"
#include "matching/pst.h"
#include "routing/trit.h"

namespace gryphon {

/// Resolves the link a subscription's events must be forwarded on: the
/// composition of subscription -> destination client -> outgoing link. The
/// link map differs per spanning tree on non-tree networks, so a broker may
/// hold several AnnotatedPst instances over one shared Pst.
using SubscriptionLinkFn = std::function<LinkIndex(SubscriptionId)>;

class AnnotatedPst {
 public:
  /// Builds the full annotation. `link_count` is the broker's outgoing port
  /// count (trit vector width); `link_of` must stay valid for the lifetime
  /// of this object and be consistent across rebuilds.
  AnnotatedPst(const Pst& tree, std::size_t link_count, SubscriptionLinkFn link_of);

  [[nodiscard]] const Pst& tree() const { return *tree_; }
  [[nodiscard]] std::size_t link_count() const { return link_count_; }

  /// The annotation row of a node. Valid for live nodes only.
  [[nodiscard]] TritSpan annotation(Pst::NodeId node) const {
    return TritSpan(flat_.data() + static_cast<std::size_t>(node) * link_count_, link_count_);
  }

  /// Recomputes everything from the current tree state.
  void rebuild();

  /// Incremental update after Pst::add / Pst::remove. Must be called with
  /// the mutation result of every tree change, in order.
  void apply(const Pst::Mutation& mutation);

  /// True when the stored epoch matches the tree's (no missed mutations).
  [[nodiscard]] bool in_sync() const { return epoch_ == tree_->epoch(); }

  /// Test hook: verifies the incremental annotation equals a from-scratch
  /// recomputation. Throws std::logic_error on divergence.
  void check_consistency() const;

 private:
  [[nodiscard]] TritVector compute_leaf(Pst::NodeId node) const;
  [[nodiscard]] TritVector compute_interior(Pst::NodeId node) const;
  [[nodiscard]] TritVector compute(Pst::NodeId node) const;
  void store(Pst::NodeId node, const TritVector& v);
  void ensure_capacity();
  void recompute_spine(Pst::NodeId from);
  void recompute_subtree(Pst::NodeId node);

  const Pst* tree_;
  std::size_t link_count_;
  SubscriptionLinkFn link_of_;
  std::vector<Trit> flat_;  // node_slot_count rows of link_count trits
  std::uint64_t epoch_{0};
};

}  // namespace gryphon
