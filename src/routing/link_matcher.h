// The link-matching search (paper Section 3.3).
//
// Given an event, an annotated PST, and the initialization mask of the
// publisher's spanning tree, refine the mask until every trit is Yes or No:
//
//  1. mask := initialization mask;
//  2. at the current node, every Maybe in the mask is replaced by the
//     node's annotation trit; a fully refined mask ends the search;
//  3. otherwise the node's test selects 0, 1, or 2 children; each child is
//     subsearched with a copy of the current mask; on each return, Maybes
//     with a Yes in the subsearch result become Yes; after all children,
//     remaining Maybes become No;
//  4. the event is sent on every link whose final trit is Yes.
//
// Two search-order refinements from Section 2.1 apply here: trivial-test
// elimination skips star-only chains (their annotations are identities),
// and delayed branching subsearches value branches before the `*` branch so
// a mask fully refined by value branches prunes the `*` subtree. Remaining
// subsearches are skipped as soon as the current mask has no Maybe left —
// they could only re-derive Yes trits the mask already has.
#pragma once

#include "event/event.h"
#include "matching/matcher.h"
#include "routing/annotated_pst.h"
#include "routing/trit.h"

namespace gryphon {

struct LinkMatchResult {
  /// Fully refined mask: Yes marks every link to forward the event on.
  TritVector mask;
  /// Matching steps — node visitations, the unit reported in Chart 2.
  std::uint64_t steps{0};
};

/// Runs the search. `initialization_mask` must have one trit per broker link
/// (same width as the annotation). The tree's Options govern trivial-test
/// elimination and delayed branching.
LinkMatchResult link_match(const AnnotatedPst& annotated, const Event& event,
                           const TritVector& initialization_mask);

}  // namespace gryphon
