#include "routing/compiled_annotation.h"

#include <algorithm>
#include <stdexcept>

#include "event/event.h"

namespace gryphon {

CompiledAnnotation::CompiledAnnotation(const CompiledPst& kernel, std::size_t link_count,
                                       std::span<const SubscriptionLinkFn> group_link_fns,
                                       LinkIndex local_link)
    : kernel_(&kernel),
      link_count_(link_count),
      group_count_(group_link_fns.size()),
      node_count_(kernel.node_count()),
      local_link_(local_link) {
  if (link_count_ == 0) throw std::invalid_argument("CompiledAnnotation: zero links");
  if (group_count_ == 0) throw std::invalid_argument("CompiledAnnotation: zero groups");
  rows_.assign(group_count_ * node_count_ * link_count_, Trit::No);
  local_slices_.assign(node_count_, {0, 0});

  // The shared local-subscriber arena: the local-link column never depends
  // on the spanning tree (every group maps owner == self to local_link), so
  // any group's link function identifies the local subscribers.
  if (local_link_.valid()) {
    const SubscriptionLinkFn& link_of = group_link_fns.front();
    if (!link_of) throw std::invalid_argument("CompiledAnnotation: null link function");
    for (std::size_t i = 0; i < node_count_; ++i) {
      const auto n = static_cast<CompiledPst::NodeId>(i);
      if (!kernel.is_leaf(n)) continue;
      const auto begin = static_cast<std::uint32_t>(local_subs_.size());
      for (const SubscriptionId sub : kernel.subscribers(n)) {
        if (link_of(sub) == local_link_) local_subs_.push_back(sub);
      }
      local_slices_[i] = {begin, static_cast<std::uint32_t>(local_subs_.size()) - begin};
    }
  }

  for (std::size_t g = 0; g < group_count_; ++g) {
    const SubscriptionLinkFn& link_of = group_link_fns[g];
    if (!link_of) throw std::invalid_argument("CompiledAnnotation: null link function");
    Trit* const base = rows_.data() + g * node_count_ * link_count_;
    const auto row_of = [&](CompiledPst::NodeId n) {
      return TritSpan(base + static_cast<std::size_t>(n) * link_count_, link_count_);
    };
    const auto store = [&](CompiledPst::NodeId n, const TritVector& v) {
      std::copy(v.span().begin(), v.span().end(),
                base + static_cast<std::size_t>(n) * link_count_);
    };

    // One forward pass over the bottom-up order computes every row with its
    // children's rows already final.
    for (const CompiledPst::NodeId n : kernel.bottom_up_order()) {
      if (kernel.is_leaf(n)) {
        TritVector v(link_count_, Trit::No);
        for (const SubscriptionId sub : kernel.subscribers(n)) {
          const LinkIndex link = link_of(sub);
          if (!link.valid() || static_cast<std::size_t>(link.value) >= link_count_) {
            throw std::logic_error("CompiledAnnotation: subscription resolved to a bad link");
          }
          v.set(link, Trit::Yes);
        }
        store(n, v);
        continue;
      }
      // Alternative-combine the non-star branches, seeded with the implicit
      // all-No alternative unless the equality branches cover the whole
      // finite domain (flag precomputed at kernel compile time; same
      // soundness argument as AnnotatedPst / AnnotatedPsg).
      TritVector alt;
      bool first = true;
      if (!kernel.covers_domain(n)) {
        alt = TritVector(link_count_, Trit::No);
        first = false;
      }
      const auto fold = [&](CompiledPst::NodeId child) {
        if (first) {
          alt = TritVector(link_count_, Trit::No);
          alt.parallel_with(row_of(child));  // copy via identity (P with all-No)
          first = false;
        } else {
          alt.alternative_with(row_of(child));
        }
      };
      for (const CompiledPst::NodeId child : kernel.eq_targets(n)) fold(child);
      for (const CompiledPst::NodeId child : kernel.other_targets(n)) fold(child);
      if (first) alt = TritVector(link_count_, Trit::No);  // no branches at all
      const CompiledPst::NodeId star = kernel.star_child(n);
      if (star != CompiledPst::kNoNode) alt.parallel_with(row_of(star));
      store(n, alt);
    }
  }
}

namespace {

// The Section 3.3 search over the compiled kernel. Control flow mirrors
// psg_dispatch's DispatchSearch exactly (the differential test depends on
// bit-identical results); the differences are purely representational —
// equality tests consume the pre-resolved key vector, and annotation rows /
// branch tables come from flat arenas.
class CompiledDispatchSearch {
 public:
  CompiledDispatchSearch(const CompiledAnnotation& annotated, std::size_t group,
                         const Event& event, const std::uint64_t* keys, MatchScratch& scratch,
                         std::vector<SubscriptionId>* local_out)
      : annotated_(annotated),
        kernel_(annotated.kernel()),
        group_(group),
        event_(event),
        keys_(keys),
        scratch_(scratch),
        local_out_(local_out),
        local_(annotated.local_link()),
        delayed_star_(kernel_.delayed_star()) {}

  /// Refines `mask` in place. Each recursion level copies the current mask
  /// into its own scratch byte slot instead of a TritVector temporary, so
  /// the search performs no per-event heap allocation (slot spans survive
  /// deeper claims; see dispatch_mask_slot).
  void run(CompiledPst::NodeId node, MutableTritSpan mask, std::size_t depth) {
    ++steps_;
    // Step 2: refinement against this node's annotation.
    refine_with(mask, annotated_.annotation(group_, node));
    // Stamping marks "local matches at or below this node are collected by
    // this call" — sound on the DAG because the leaf union below a shared
    // node is path-independent.
    const bool local_here = wants_local(node);
    if (local_here) scratch_.visit(static_cast<std::size_t>(node));

    if (kernel_.is_leaf(node)) {
      if (local_here) {
        const auto subs = annotated_.local_subscribers(node);
        // gryphon-analyze: allow(alloc): local-match staging reuses the
        // Decision's capacity once the batch is warm.
        local_out_->insert(local_out_->end(), subs.begin(), subs.end());
      }
      maybes_to_no(mask);
      return;
    }
    if (!has_maybe(mask) && !local_here) return;  // nothing left to decide below

    // Step 3: perform the test, subsearch each selected child that can
    // still contribute — a Maybe to resolve, or uncollected local matches.
    const auto subsearch = [&](CompiledPst::NodeId child) {
      if (!has_maybe(mask) && !(local_here && wants_local(child))) return;
      const MutableTritSpan child_mask =
          dispatch_mask_slot(scratch_, kDispatchCallerSlots + depth, mask.size());
      std::copy(mask.begin(), mask.end(), child_mask.begin());
      run(child, child_mask, depth + 1);
      promote_yes_from(mask, child_mask);
    };

    const CompiledPst::NodeId star = kernel_.star_child(node);
    if (!delayed_star_ && star != CompiledPst::kNoNode) subsearch(star);
    const auto other_tests = kernel_.other_tests(node);
    if (!other_tests.empty()) {
      const Value& v = event_.value(kernel_.order()[static_cast<std::size_t>(kernel_.level(node))]);
      const auto other_targets = kernel_.other_targets(node);
      for (std::size_t i = 0; i < other_tests.size(); ++i) {
        if (other_tests[i].accepts(v)) subsearch(other_targets[i]);
      }
    }
    const CompiledPst::NodeId eq =
        kernel_.eq_child(node, keys_[static_cast<std::size_t>(kernel_.level(node))]);
    if (eq != CompiledPst::kNoNode) subsearch(eq);
    if (delayed_star_ && star != CompiledPst::kNoNode) subsearch(star);

    maybes_to_no(mask);
  }

  [[nodiscard]] std::uint64_t steps() const { return steps_; }

 private:
  [[nodiscard]] bool wants_local(CompiledPst::NodeId node) const {
    return local_out_ != nullptr && local_.valid() &&
           !scratch_.visited(static_cast<std::size_t>(node)) &&
           annotated_.annotation(group_, node)[static_cast<std::size_t>(local_.value)] !=
               Trit::No;
  }

  const CompiledAnnotation& annotated_;
  const CompiledPst& kernel_;
  std::size_t group_;
  const Event& event_;
  const std::uint64_t* keys_;
  MatchScratch& scratch_;
  std::vector<SubscriptionId>* local_out_;
  LinkIndex local_;
  bool delayed_star_;
  std::uint64_t steps_{0};
};

}  // namespace

MutableTritSpan dispatch_mask_slot(MatchScratch& scratch, std::size_t slot, std::size_t width) {
  static_assert(sizeof(Trit) == sizeof(std::uint8_t) && alignof(Trit) == alignof(std::uint8_t));
  std::vector<std::uint8_t>& raw = scratch.byte_slot(slot);
  // gryphon-analyze: allow(alloc): cold-path slot growth; the resize is a
  // no-op once the slot has seen this mask width.
  raw.resize(width);
  return MutableTritSpan(reinterpret_cast<Trit*>(raw.data()), width);
}

std::uint64_t compiled_dispatch_into(const CompiledAnnotation& annotated, std::size_t group,
                                     const Event& event, TritSpan initialization_mask,
                                     MatchScratch& scratch,
                                     std::vector<SubscriptionId>* local_out,
                                     MutableTritSpan out_mask) {
  if (initialization_mask.size() != annotated.link_count() ||
      out_mask.size() != annotated.link_count()) {
    throw std::invalid_argument("compiled_dispatch: mask width != link count");
  }
  if (group >= annotated.group_count()) {
    throw std::invalid_argument("compiled_dispatch: bad group index");
  }
  const CompiledPst& kernel = annotated.kernel();
  std::copy(initialization_mask.begin(), initialization_mask.end(), out_mask.begin());
  if (kernel.subscription_count() == 0 || kernel.root() < 0) {
    maybes_to_no(out_mask);  // nothing downstream can match
    return 0;
  }
  const bool want_local = local_out != nullptr && annotated.local_link().valid();
  if (!has_maybe(out_mask) && !want_local) return 0;  // already final, and no local work
  kernel.resolve(event, scratch.value_keys());
  scratch.begin(kernel.node_count());
  CompiledDispatchSearch search(annotated, group, event, scratch.value_keys().data(), scratch,
                                local_out);
  search.run(kernel.root(), out_mask, 0);
  return search.steps();
}

CompiledDispatchResult compiled_dispatch(const CompiledAnnotation& annotated, std::size_t group,
                                         const Event& event,
                                         const TritVector& initialization_mask,
                                         MatchScratch& scratch,
                                         std::vector<SubscriptionId>* local_out) {
  CompiledDispatchResult result;
  result.mask = TritVector(annotated.link_count());
  result.steps = compiled_dispatch_into(annotated, group, event, initialization_mask.span(),
                                        scratch, local_out, result.mask.mutable_span());
  return result;
}

}  // namespace gryphon
