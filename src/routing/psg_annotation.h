// Trit annotation of a frozen parallel search graph, plus the combined
// dispatch search that refines a link mask and enumerates local matches in
// one pruned walk.
//
// AnnotatedPst (annotated_pst.h) annotates the *mutable* Pst and follows it
// incrementally; it powers the simulator's long-lived routers. AnnotatedPsg
// instead annotates an immutable FrozenPsg snapshot, is itself immutable
// after construction, and therefore needs no synchronization: any number of
// threads may run psg_dispatch() against one instance concurrently, each
// with its own MatchScratch. The broker's snapshot-published routing state
// (broker/core_snapshot.h) is built from these.
//
// Annotation semantics are identical to AnnotatedPst (paper Section 3.1):
// leaves get Yes at the link of each subscriber, interiors fold value
// branches with Alternative Combine (seeded with the implicit all-No
// alternative unless the equality branches cover the attribute's finite
// domain and no general branches exist) and merge the `*` branch with
// Parallel Combine. The annotation is well defined on the hash-consed DAG:
// merged nodes have byte-identical subtrees — including leaf subscriber
// ids — so every path to a shared node yields the same row. Rows are
// computed in one forward pass over node ids, relying on FrozenPsg's
// bottom-up id contract (children strictly smaller than parents).
//
// One link is distinguished as the *local* link (the broker's pseudo-link
// for subscriptions owned by directly attached clients). For each leaf the
// locally-owned subscriber ids are precomputed so the dispatch search can
// enumerate local matches without a second walk.
#pragma once

#include <vector>

#include "common/ids.h"
#include "matching/match_scratch.h"
#include "matching/psg.h"
#include "routing/annotated_pst.h"  // SubscriptionLinkFn
#include "routing/trit.h"

namespace gryphon {

class AnnotatedPsg {
 public:
  /// Builds the full annotation over `graph`, which must outlive this
  /// object. `local_link` selects which link's leaf subscribers are
  /// precomputed for local enumeration; pass an invalid LinkIndex when the
  /// caller never wants local lists.
  AnnotatedPsg(const FrozenPsg& graph, std::size_t link_count,
               const SubscriptionLinkFn& link_of, LinkIndex local_link = LinkIndex{});

  [[nodiscard]] const FrozenPsg& graph() const { return *graph_; }
  [[nodiscard]] std::size_t link_count() const { return link_count_; }
  [[nodiscard]] LinkIndex local_link() const { return local_link_; }

  /// The annotation row of a node.
  [[nodiscard]] TritSpan annotation(FrozenPsg::NodeId node) const {
    return TritSpan(flat_.data() + static_cast<std::size_t>(node) * link_count_, link_count_);
  }

  /// The subscriber ids at leaf `node` owned by the local link (empty for
  /// interior nodes and when no local link was configured).
  [[nodiscard]] const std::vector<SubscriptionId>& local_subscribers(
      FrozenPsg::NodeId node) const {
    return local_subs_[static_cast<std::size_t>(node)];
  }

 private:
  const FrozenPsg* graph_;
  std::size_t link_count_;
  LinkIndex local_link_;
  std::vector<Trit> flat_;  // node_count rows of link_count trits
  std::vector<std::vector<SubscriptionId>> local_subs_;
};

/// The outcome of one combined dispatch search.
struct PsgDispatchResult {
  /// Fully refined mask: Yes marks every link to forward the event on.
  TritVector mask;
  /// Matching steps — node visitations, the paper's Chart 2 unit.
  std::uint64_t steps{0};
};

/// Runs the link-matching search of Section 3.3 over the annotated graph,
/// simultaneously enumerating local matches when `local_out` is non-null:
/// a subtree is descended iff the mask still has a Maybe or the local-link
/// annotation says a not-yet-collected local subscriber may match below.
/// Local enumeration is memoized on `scratch` (a shared DAG node
/// contributes its leaves once), so `local_out` receives no duplicates.
///
/// Thread-safe: concurrent calls with distinct scratches share only the
/// immutable annotation.
PsgDispatchResult psg_dispatch(const AnnotatedPsg& annotated, const Event& event,
                               const TritVector& initialization_mask, MatchScratch& scratch,
                               std::vector<SubscriptionId>* local_out);

}  // namespace gryphon
