// DispatchBatch: the native call shape of the broker data plane.
//
// Dispatch is batch-first: callers stage a group of events (add), hand the
// whole batch to BrokerCore::dispatch, and read back one Decision per event
// in staging order. Batching is what makes the sharded data plane pay off —
// the core pins the published CoreSnapshot once per batch instead of once
// per event, groups the staged events by (space, serving shard) so each
// shard's compiled tables stay hot across consecutive matches, and the
// broker's egress path can coalesce the resulting link frames into one
// flush per neighbor.
//
// The batch owns the MatchScratch, so "who provides scratch?" has exactly
// one answer: the batch context. One DispatchBatch per thread; neither it
// nor BrokerCore::dispatch(batch) may be shared across threads
// concurrently. Staged events are borrowed (const Event*): the caller
// keeps them alive and unchanged until dispatch returns.
//
// This is a data-plane translation unit (gryphon-analyze planes rule,
// tools/analyze): nothing here may reference mutable-matcher or
// control-plane state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "event/event.h"
#include "matching/match_scratch.h"

namespace gryphon {

/// What the broker must do with one published event: which neighbor links
/// to forward it on, which local subscriptions matched, and the work spent
/// deciding. `shard` records which data-plane shard served the match (0
/// for unfactored spaces and misses) so callers can attribute throughput
/// per shard.
struct Decision {
  std::vector<BrokerId> forward;
  std::vector<SubscriptionId> local_matches;
  bool deliver_locally{false};
  std::uint64_t steps{0};
  std::uint32_t shard{0};

  /// Field-wise reset that keeps vector capacity, so a reused batch stops
  /// allocating once warm.
  void reset() {
    forward.clear();
    local_matches.clear();
    deliver_locally = false;
    steps = 0;
    shard = 0;
  }
};

class DispatchBatch {
 public:
  DispatchBatch() = default;
  DispatchBatch(const DispatchBatch&) = delete;
  DispatchBatch& operator=(const DispatchBatch&) = delete;

  /// Drops staged events and prior decisions; capacity is retained.
  void clear() {
    items_.clear();
    // decisions_ entries are reset lazily as items are staged into them.
  }

  /// Stages one event. The caller owns `event` and must keep it alive and
  /// unmodified until dispatch() on this batch returns.
  void add(SpaceId space, const Event& event, BrokerId tree_root) {
    items_.push_back(Item{space, &event, tree_root});
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

  /// Decisions from the most recent dispatch of this batch, in add() order.
  [[nodiscard]] std::span<const Decision> decisions() const {
    return std::span<const Decision>(decisions_.data(), items_.size());
  }

  [[nodiscard]] MatchScratch& scratch() { return scratch_; }

 private:
  friend class BrokerCore;  // fills decisions_ / order_ during dispatch

  struct Item {
    SpaceId space;
    const Event* event;
    BrokerId tree_root;
  };

  std::vector<Item> items_;
  std::vector<Decision> decisions_;   // parallel to items_ after dispatch
  std::vector<std::uint32_t> order_;  // shard-sorted visit order, reused
  MatchScratch scratch_;
};

}  // namespace gryphon
