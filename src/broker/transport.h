// Transport abstraction (paper Section 4.2, Figure 7).
//
// "The transport layer sends and receives messages to and from clients and
// other brokers in the network." Sends are asynchronous: implementations
// enqueue the frame and return immediately (the TCP transport drains the
// per-connection queues with a pool of sending threads, exactly as the
// paper describes).
//
// Two implementations:
//  * InProcTransport — deterministic in-process message passing for tests
//    and examples (frames pumped explicitly);
//  * TcpTransport    — real TCP/IP with length-prefixed frames.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gryphon {

/// Transport-level connection handle; unique within one Transport.
using ConnId = std::int64_t;
inline constexpr ConnId kInvalidConn = -1;

/// Callbacks a transport delivers to its owner (a broker or a client).
/// Implementations must tolerate calls from transport-internal threads.
class TransportHandler {
 public:
  virtual ~TransportHandler() = default;
  /// A new inbound connection was accepted.
  virtual void on_connect(ConnId conn) = 0;
  /// One whole frame arrived.
  virtual void on_frame(ConnId conn, std::span<const std::uint8_t> frame) = 0;
  /// The connection is gone (peer close or failure). `conn` is dead.
  virtual void on_disconnect(ConnId conn) = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Enqueues one frame for asynchronous delivery. Frames on one connection
  /// preserve order. Sending on a dead connection is a silent no-op (the
  /// disconnect callback governs cleanup).
  virtual void send(ConnId conn, std::vector<std::uint8_t> frame) = 0;

  /// Enqueues a group of frames for one connection as a single flush.
  /// Ordering is exactly `send` called per frame in sequence; the batch
  /// form lets implementations amortize queue locking and coalesce the
  /// frames into one writev-style wire write (each frame keeps its own
  /// length prefix, so receiver framing is unchanged). The default is the
  /// per-frame loop — decorators (fault injection) and deterministic test
  /// transports inherit per-frame semantics unchanged.
  virtual void send_batch(ConnId conn, std::vector<std::vector<std::uint8_t>> frames) {
    for (std::vector<std::uint8_t>& frame : frames) send(conn, std::move(frame));
  }

  /// Closes the connection; the peer observes a disconnect.
  virtual void close(ConnId conn) = 0;

 protected:
  Transport() = default;
};

}  // namespace gryphon
