// Immutable routing state snapshots for the concurrent broker core.
//
// A BrokerCore serves two kinds of traffic: a low-rate control plane
// (subscribe / unsubscribe) and a high-rate data plane (event dispatch).
// Rather than lock the matching trees around every event, the core keeps
// its live Pst trees writer-only and publishes an immutable *snapshot* of
// the derived read-side state after every control-plane change:
//
//   CoreSnapshot -> FrozenSpace (per information space)
//                -> shard      (per factoring-key hash slice)
//                -> FrozenBucket (per factoring bucket)
//                -> CompiledPst + CompiledAnnotation (all groups).
//
// Freezing a bucket *compiles* its tree: the mutable Pst is snapshotted
// into a FrozenPsg (star-chain collapse, hash-consing), flattened into a
// CompiledPst — the struct-of-arrays kernel with interned u64 equality
// keys — and annotated with the flat per-group trit rows of
// CompiledAnnotation. The intermediate FrozenPsg is discarded; readers only
// ever touch the compiled form.
//
// Sharding: a factored space's buckets are partitioned into
// `shard_count` independently matchable shards by hashing the factoring
// key (matching/shard_router.h). Placement is a pure function of the key,
// so the builder (distributing buckets below) and batch dispatch (grouping
// events by serving shard) agree without coordination. An unfactored space
// has one bucket and one effective shard. The two-level split mirrors the
// control-plane/data-plane idiom of SNIPPETS.md's cuckoo router: the
// mutable control plane assembles the shards, the immutable hot plane is
// what the existing SnapshotSlot swap publishes.
//
// The current snapshot hangs off a SnapshotSlot in BrokerCore; readers pin
// it once per event batch and then touch only deeply-immutable objects, so
// dispatch never blocks on subscription churn for longer than a pointer
// copy and any number of threads can match concurrently (each with its own
// MatchScratch).
//
// Rebuild (= recompile) cost is bounded by reuse: an unchanged space is
// carried into the next snapshot wholesale (shared FrozenSpace), and within
// a rebuilt space every bucket whose source tree is untouched — identified
// by its stable Pst pointer plus the tree's mutation epoch — keeps its
// compiled kernel and annotations (shared FrozenBucket). Shard placement is
// deterministic, so the reuse probe looks in exactly one shard. A subscribe
// therefore recompiles only the buckets its subscription actually lives in.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "matching/compiled_pst.h"
#include "matching/pst_matcher.h"
#include "matching/shard_router.h"
#include "routing/compiled_annotation.h"

namespace gryphon {

/// One factoring bucket, frozen and compiled: the flat match kernel of the
/// bucket's tree and its trit annotations for every spanning-tree group of
/// the owning broker. `source` + `epoch` identify the tree state this was
/// compiled from; they are used only as a reuse key, never dereferenced by
/// readers.
struct FrozenBucket {
  const Pst* source{nullptr};
  std::uint64_t epoch{0};
  std::size_t subscriptions{0};
  std::unique_ptr<const CompiledPst> kernel;
  std::unique_ptr<const CompiledAnnotation> annotations;
};

/// One information space, frozen and sharded. Buckets holding no
/// subscriptions are omitted: a missing bucket means nothing in the network
/// can match.
class FrozenSpace {
 public:
  /// Shards of this space: 1 for unfactored spaces, the builder's
  /// configured count otherwise.
  [[nodiscard]] std::size_t shard_count() const {
    return factoring_ == nullptr ? 1 : shards_.size();
  }

  /// The shard that would serve `event`. Computes the factoring key into
  /// the reused scratch buffer; 0 for unfactored spaces.
  [[nodiscard]] std::size_t shard_of(const Event& event,
                                     FactoringIndex::Key& scratch_key) const {
    if (factoring_ == nullptr) return 0;
    factoring_->event_key_into(event, scratch_key);
    return router_.shard_of_key(scratch_key);
  }

  /// The bucket an event would be matched against, or nullptr. The
  /// overload taking a scratch key (MatchScratch::factoring_key()) is the
  /// hot path: it assigns into the reused buffer instead of allocating a
  /// fresh vector of Value copies per event.
  [[nodiscard]] const FrozenBucket* bucket_for(const Event& event) const {
    if (factoring_ == nullptr) return single_.get();
    FactoringIndex::Key key = factoring_->event_key(event);
    return find_bucket(key);
  }
  [[nodiscard]] const FrozenBucket* bucket_for(const Event& event,
                                               FactoringIndex::Key& scratch_key) const {
    if (factoring_ == nullptr) return single_.get();
    factoring_->event_key_into(event, scratch_key);
    return find_bucket(scratch_key);
  }

  /// As bucket_for, when the caller already computed the serving shard
  /// (batch dispatch resolves shard_of first to group events by shard).
  /// `scratch_key` must still hold the event's factoring key.
  [[nodiscard]] const FrozenBucket* bucket_in_shard(
      std::size_t shard, const FactoringIndex::Key& scratch_key) const {
    if (factoring_ == nullptr) return single_.get();
    const auto& buckets = shards_[shard].buckets;
    const auto it = buckets.find(scratch_key);
    return it == buckets.end() ? nullptr : it->second.get();
  }

  [[nodiscard]] bool factored() const { return factoring_ != nullptr; }
  [[nodiscard]] std::size_t subscription_count() const { return subscription_count_; }
  /// Subscription replicas living in one shard's buckets (replicated
  /// subscriptions count once per bucket they occupy).
  [[nodiscard]] std::size_t shard_subscription_count(std::size_t shard) const {
    if (factoring_ == nullptr) return single_ != nullptr ? single_->subscriptions : 0;
    return shards_[shard].subscription_count;
  }
  [[nodiscard]] std::size_t bucket_count() const {
    if (factoring_ == nullptr) return single_ != nullptr ? 1 : 0;
    std::size_t n = 0;
    for (const Shard& shard : shards_) n += shard.buckets.size();
    return n;
  }

 private:
  friend class SnapshotBuilder;

  /// One shard's slice of the bucket table. Deeply immutable once the
  /// builder publishes the owning snapshot.
  struct Shard {
    std::unordered_map<FactoringIndex::Key, std::shared_ptr<const FrozenBucket>,
                       FactoringIndex::KeyHash>
        buckets;
    std::size_t subscription_count{0};
  };

  [[nodiscard]] const FrozenBucket* find_bucket(const FactoringIndex::Key& key) const {
    const auto& buckets = shards_[router_.shard_of_key(key)].buckets;
    const auto it = buckets.find(key);
    return it == buckets.end() ? nullptr : it->second.get();
  }

  const FactoringIndex* factoring_{nullptr};  // owned by the core's matcher
  ShardRouter router_{1};
  std::shared_ptr<const FrozenBucket> single_;  // unfactored spaces only
  std::vector<Shard> shards_;                   // factored spaces only
  std::size_t subscription_count_{0};
};

/// The read-side state of a whole BrokerCore at one control-plane version.
struct CoreSnapshot {
  std::uint64_t version{0};
  std::vector<std::shared_ptr<const FrozenSpace>> spaces;
};

/// The publication point: holds the current snapshot, swapped atomically by
/// the writer, pinned (copied) by readers. A hand-rolled mutexed slot
/// instead of std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic is a
/// pointer-packed spinlock whose relaxed unlock ThreadSanitizer cannot
/// model, and the critical section here — one refcount bump — is the same
/// cost either way.
class SnapshotSlot {
 public:
  [[nodiscard]] std::shared_ptr<const CoreSnapshot> load() const {
    MutexLock lock(mutex_);
    return current_;
  }
  void store(std::shared_ptr<const CoreSnapshot> next) {
    MutexLock lock(mutex_);
    current_ = std::move(next);
  }

 private:
  mutable Mutex mutex_;
  std::shared_ptr<const CoreSnapshot> current_ GUARDED_BY(mutex_);
};

/// Builds FrozenSpace instances and assembles CoreSnapshots for BrokerCore.
/// Stateless besides the broker-shape parameters; call the build methods
/// under the writer serialization. This is the *only* place CoreSnapshots
/// are constructed — tools/check_planes.py enforces that statically, so
/// every snapshot the data plane can ever pin went through the compile/reuse
/// pipeline below.
class SnapshotBuilder {
 public:
  SnapshotBuilder(std::size_t link_count, LinkIndex local_link,
                  std::vector<SubscriptionLinkFn> group_link_fns,
                  std::size_t shard_count = 1)
      : link_count_(link_count),
        local_link_(local_link),
        group_link_fns_(std::move(group_link_fns)),
        router_(shard_count) {}

  [[nodiscard]] std::size_t shard_count() const { return router_.shard_count(); }

  /// Freezes the current state of `matcher`, reusing buckets from
  /// `previous` (may be null) whose source tree epoch is unchanged.
  [[nodiscard]] std::shared_ptr<const FrozenSpace> freeze(const PstMatcher& matcher,
                                                          const FrozenSpace* previous) const;

  /// The initial (version 0) snapshot: every space frozen from scratch.
  [[nodiscard]] std::shared_ptr<const CoreSnapshot> initial_snapshot(
      const std::vector<const PstMatcher*>& matchers) const;

  /// The successor of `current`: space `touched` is re-frozen (reusing its
  /// unchanged buckets), every other space carries over wholesale.
  [[nodiscard]] std::shared_ptr<const CoreSnapshot> next_snapshot(
      const CoreSnapshot& current, std::size_t touched, const PstMatcher& matcher) const;

 private:
  [[nodiscard]] std::shared_ptr<const FrozenBucket> freeze_bucket(const Pst& tree) const;

  std::size_t link_count_;
  LinkIndex local_link_;
  std::vector<SubscriptionLinkFn> group_link_fns_;
  ShardRouter router_;
};

}  // namespace gryphon
