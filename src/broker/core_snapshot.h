// Immutable routing state snapshots for the concurrent broker core.
//
// A BrokerCore serves two kinds of traffic: a low-rate control plane
// (subscribe / unsubscribe) and a high-rate data plane (event dispatch).
// Rather than lock the matching trees around every event, the core keeps
// its live Pst trees writer-only and publishes an immutable *snapshot* of
// the derived read-side state after every control-plane change:
//
//   CoreSnapshot -> FrozenSpace (per information space)
//                -> Table       (the bucket tables; shared across
//                                covering-only publishes)
//                -> shard       (per factoring-key hash slice)
//                -> FrozenBucket (per factoring bucket)
//                -> CompiledSegment (per delta segment)
//                -> CompiledPst + CompiledAnnotation (all groups).
//
// Freezing *compiles* a tree: the mutable Pst is snapshotted into a
// FrozenPsg (star-chain collapse, hash-consing), flattened into a
// CompiledPst — the struct-of-arrays kernel with interned u64 equality
// keys — and annotated with the flat per-group trit rows of
// CompiledAnnotation. The intermediate FrozenPsg is discarded; readers only
// ever touch the compiled form.
//
// Sharding: a factored space's buckets are partitioned into `shard_count`
// independently matchable shards by hashing the factoring key
// (matching/shard_router.h). Placement is a pure function of the key, so
// the builder (distributing buckets below) and batch dispatch (grouping
// events by serving shard) agree without coordination. An unfactored space
// has one bucket and one effective shard.
//
// Delta segmentation: the control plane slices each space's frontier into
// `segments` independent PstMatchers by hashing the subscription id
// (broker_core.h). A bucket therefore holds up to one CompiledSegment per
// slice, and a churn event recompiles only the slices whose trees actually
// mutated — every other CompiledSegment is carried into the next snapshot
// byte-for-byte (shared_ptr), identified by its stable Pst pointer plus the
// tree's mutation epoch. Dispatch walks a bucket's segments in slice order
// and unions their refined masks (Parallel Combine), which is exact because
// the slices partition the frontier. A whole unchanged space still carries
// over wholesale, and a bucket whose every segment is reusable keeps its
// FrozenBucket object too.
//
// Covering: the frontier is what the kernels match; subscriptions parked
// under a coverer (matching/covering_index.h) live in the CoveringSnapshot
// each FrozenSpace carries for dispatch-time enumeration. Covering-only
// churn — parking or unparking a subscription without touching any tree —
// publishes in O(1): the new FrozenSpace shares the previous Table and
// swaps the covering pointer (next_snapshot_covering_only).
//
// The current snapshot hangs off a SnapshotSlot in BrokerCore; readers pin
// it once per event batch and then touch only deeply-immutable objects, so
// dispatch never blocks on subscription churn for longer than a pointer
// copy and any number of threads can match concurrently (each with its own
// MatchScratch).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "matching/compiled_pst.h"
#include "matching/covering_snapshot.h"
#include "matching/pst_matcher.h"
#include "matching/shard_router.h"
#include "routing/compiled_annotation.h"

namespace gryphon {

/// One delta segment of one factoring bucket, frozen and compiled: the flat
/// match kernel of the segment's tree and its trit annotations for every
/// spanning-tree group of the owning broker. `source` + `epoch` identify
/// the tree state this was compiled from; they are used only as a reuse
/// key, never dereferenced by readers.
struct CompiledSegment {
  const Pst* source{nullptr};
  std::uint64_t epoch{0};
  std::size_t subscriptions{0};
  std::unique_ptr<const CompiledPst> kernel;
  std::unique_ptr<const CompiledAnnotation> annotations;
};

/// One factoring bucket: the compiled segments of every frontier slice that
/// has subscriptions in this bucket, indexed by slice (null entries mark
/// slices empty here). Buckets with no subscriptions in any slice are
/// omitted from the table: a missing bucket means nothing in the network
/// can match.
struct FrozenBucket {
  std::size_t subscriptions{0};  // sum over segments
  std::vector<std::shared_ptr<const CompiledSegment>> segments;
};

/// One information space, frozen and sharded.
class FrozenSpace {
 public:
  /// Shards of this space: 1 for unfactored spaces, the builder's
  /// configured count otherwise.
  [[nodiscard]] std::size_t shard_count() const {
    return factoring_ == nullptr ? 1 : table_->shards.size();
  }

  /// The shard that would serve `event`. Computes the factoring key into
  /// the reused scratch buffer; 0 for unfactored spaces.
  [[nodiscard]] std::size_t shard_of(const Event& event,
                                     FactoringIndex::Key& scratch_key) const {
    if (factoring_ == nullptr) return 0;
    factoring_->event_key_into(event, scratch_key);
    return router_.shard_of_key(scratch_key);
  }

  /// The bucket an event would be matched against, or nullptr. The
  /// overload taking a scratch key (MatchScratch::factoring_key()) is the
  /// hot path: it assigns into the reused buffer instead of allocating a
  /// fresh vector of Value copies per event.
  [[nodiscard]] const FrozenBucket* bucket_for(const Event& event) const {
    if (factoring_ == nullptr) return table_->single.get();
    FactoringIndex::Key key = factoring_->event_key(event);
    return find_bucket(key);
  }
  [[nodiscard]] const FrozenBucket* bucket_for(const Event& event,
                                               FactoringIndex::Key& scratch_key) const {
    if (factoring_ == nullptr) return table_->single.get();
    factoring_->event_key_into(event, scratch_key);
    return find_bucket(scratch_key);
  }

  /// As bucket_for, when the caller already computed the serving shard
  /// (batch dispatch resolves shard_of first to group events by shard).
  /// `scratch_key` must still hold the event's factoring key.
  [[nodiscard]] const FrozenBucket* bucket_in_shard(
      std::size_t shard, const FactoringIndex::Key& scratch_key) const {
    if (factoring_ == nullptr) return table_->single.get();
    const auto& buckets = table_->shards[shard].buckets;
    const auto it = buckets.find(scratch_key);
    return it == buckets.end() ? nullptr : it->second.get();
  }

  /// The parked-subscription sidecar for dispatch-time enumeration, or
  /// nullptr when covering is off for this core.
  [[nodiscard]] const CoveringSnapshot* covering() const { return covering_.get(); }
  /// Subscriptions parked under frontier coverers (not in any kernel).
  [[nodiscard]] std::size_t covered_count() const {
    return covering_ == nullptr ? 0 : covering_->parked_count();
  }

  [[nodiscard]] bool factored() const { return factoring_ != nullptr; }
  /// Frontier subscription replicas in the compiled tables (parked
  /// subscriptions are counted by covered_count()).
  [[nodiscard]] std::size_t subscription_count() const { return table_->subscription_count; }
  /// Subscription replicas living in one shard's buckets (replicated
  /// subscriptions count once per bucket they occupy).
  [[nodiscard]] std::size_t shard_subscription_count(std::size_t shard) const {
    if (factoring_ == nullptr) {
      return table_->single != nullptr ? table_->single->subscriptions : 0;
    }
    return table_->shards[shard].subscription_count;
  }
  [[nodiscard]] std::size_t bucket_count() const {
    if (factoring_ == nullptr) return table_->single != nullptr ? 1 : 0;
    std::size_t n = 0;
    for (const Shard& shard : table_->shards) n += shard.buckets.size();
    return n;
  }

 private:
  friend class SnapshotBuilder;

  /// One shard's slice of the bucket table. Deeply immutable once the
  /// builder publishes the owning snapshot.
  struct Shard {
    std::unordered_map<FactoringIndex::Key, std::shared_ptr<const FrozenBucket>,
                       FactoringIndex::KeyHash>
        buckets;
    std::size_t subscription_count{0};
  };

  /// The compiled bucket tables, split out behind a shared_ptr so a
  /// covering-only publish can share them wholesale instead of re-walking
  /// every bucket.
  struct Table {
    std::shared_ptr<const FrozenBucket> single;  // unfactored spaces only
    std::vector<Shard> shards;                   // factored spaces only
    std::size_t subscription_count{0};
  };

  [[nodiscard]] const FrozenBucket* find_bucket(const FactoringIndex::Key& key) const {
    const auto& buckets = table_->shards[router_.shard_of_key(key)].buckets;
    const auto it = buckets.find(key);
    return it == buckets.end() ? nullptr : it->second.get();
  }

  const FactoringIndex* factoring_{nullptr};  // owned by the core's matcher
  ShardRouter router_{1};
  std::shared_ptr<const Table> table_;
  std::shared_ptr<const CoveringSnapshot> covering_;  // null when covering off
};

/// The read-side state of a whole BrokerCore at one control-plane version.
struct CoreSnapshot {
  std::uint64_t version{0};
  std::vector<std::shared_ptr<const FrozenSpace>> spaces;
};

/// The publication point: holds the current snapshot, swapped atomically by
/// the writer, pinned (copied) by readers. A hand-rolled mutexed slot
/// instead of std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic is a
/// pointer-packed spinlock whose relaxed unlock ThreadSanitizer cannot
/// model, and the critical section here — one refcount bump — is the same
/// cost either way.
class SnapshotSlot {
 public:
  [[nodiscard]] std::shared_ptr<const CoreSnapshot> load() const {
    MutexLock lock(mutex_);
    return current_;
  }
  void store(std::shared_ptr<const CoreSnapshot> next) {
    MutexLock lock(mutex_);
    current_ = std::move(next);
  }

 private:
  mutable Mutex mutex_;
  std::shared_ptr<const CoreSnapshot> current_ GUARDED_BY(mutex_);
};

/// Compile work accounting for one freeze, so the control plane can expose
/// delta- vs full-recompile behaviour (Broker::Stats, bench/churn_bench).
struct CompileStats {
  std::size_t segments_compiled{0};
  std::size_t segments_reused{0};
};

/// Builds FrozenSpace instances and assembles CoreSnapshots for BrokerCore.
/// Stateless besides the broker-shape parameters; call the build methods
/// under the writer serialization. This is the *only* place CoreSnapshots
/// are constructed — gryphon-analyze (tools/analyze) enforces that
/// statically, so
/// every snapshot the data plane can ever pin went through the compile/reuse
/// pipeline below.
class SnapshotBuilder {
 public:
  SnapshotBuilder(std::size_t link_count, LinkIndex local_link,
                  std::vector<SubscriptionLinkFn> group_link_fns,
                  std::size_t shard_count = 1)
      : link_count_(link_count),
        local_link_(local_link),
        group_link_fns_(std::move(group_link_fns)),
        router_(shard_count) {}

  [[nodiscard]] std::size_t shard_count() const { return router_.shard_count(); }

  /// The mutable sources of one space at freeze time.
  struct SpaceSources {
    /// The frontier slices, indexed by segment id; at least one, all
    /// sharing one schema/options shape. Segment 0's factoring index is
    /// the space's event-key authority.
    std::vector<const PstMatcher*> segments;
    /// The parked-subscription view to publish alongside; null when
    /// covering is off.
    std::shared_ptr<const CoveringSnapshot> covering;
  };

  /// Freezes the current state of `sources`, reusing compiled segments
  /// from `previous` (may be null) whose source tree epoch is unchanged.
  /// `stats` (may be null) accumulates compile/reuse counts.
  [[nodiscard]] std::shared_ptr<const FrozenSpace> freeze(const SpaceSources& sources,
                                                          const FrozenSpace* previous,
                                                          CompileStats* stats) const;

  /// The initial (version 0) snapshot: every space frozen from scratch.
  [[nodiscard]] std::shared_ptr<const CoreSnapshot> initial_snapshot(
      const std::vector<SpaceSources>& spaces) const;

  /// The successor of `current`: space `touched` is re-frozen (reusing its
  /// unchanged segments unless `reuse_previous` is false — segment-count
  /// growth rebuilds the slices, invalidating every source-pointer reuse
  /// key), every other space carries over wholesale.
  [[nodiscard]] std::shared_ptr<const CoreSnapshot> next_snapshot(
      const CoreSnapshot& current, std::size_t touched, const SpaceSources& sources,
      CompileStats* stats, bool reuse_previous = true) const;

  /// The successor of `current` when only space `touched`'s covering state
  /// changed (a subscription parked or unparked, no tree mutated): the new
  /// FrozenSpace shares the previous compiled Table outright and swaps the
  /// covering pointer. O(1) regardless of bucket count.
  [[nodiscard]] std::shared_ptr<const CoreSnapshot> next_snapshot_covering_only(
      const CoreSnapshot& current, std::size_t touched,
      std::shared_ptr<const CoveringSnapshot> covering) const;

 private:
  [[nodiscard]] std::shared_ptr<const CompiledSegment> freeze_segment(const Pst& tree) const;

  std::size_t link_count_;
  LinkIndex local_link_;
  std::vector<SubscriptionLinkFn> group_link_fns_;
  ShardRouter router_;
};

}  // namespace gryphon
