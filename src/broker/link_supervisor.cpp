#include "broker/link_supervisor.h"

#include <algorithm>

#include "common/logging.h"

namespace gryphon {

LinkSupervisor::LinkSupervisor(Broker& broker, DialFn dial, Options options)
    : broker_(&broker), dial_(std::move(dial)), options_(options), rng_(options.seed) {}

LinkSupervisor::~LinkSupervisor() { stop(); }

void LinkSupervisor::supervise(BrokerId peer) {
  MutexLock lock(mutex_);
  PeerState& state = peers_[peer];
  state.dead = false;
  state.failures = 0;
  state.backoff = 0;
  state.next_dial = 0;  // eligible at the next tick
}

Ticks LinkSupervisor::next_backoff(PeerState& state) {
  state.backoff = state.backoff == 0 ? options_.backoff_initial
                                     : std::min(state.backoff * 2, options_.backoff_max);
  const auto jitter = static_cast<Ticks>(static_cast<double>(state.backoff) *
                                         options_.jitter * rng_.uniform());
  return state.backoff + jitter;
}

void LinkSupervisor::tick(Ticks now) {
  // Session maintenance first: heartbeats keep healthy links' activity
  // clocks fresh, so only genuinely silent links trip the idle check below.
  broker_->tick_links(now);
  MutexLock lock(mutex_);
  for (auto& [peer, state] : peers_) {
    if (state.dead) continue;
    if (broker_->link_up(peer)) {
      const auto last = broker_->link_last_activity(peer);
      if (last.has_value() && now - *last >= options_.idle_timeout) {
        // Silent past the deadline: the peer or the path is gone even
        // though the transport has not noticed. Tear it down and let the
        // redial machinery (and the session handshake) recover.
        GRYPHON_WARN("supervisor")
            << "broker " << broker_->self() << ": link to " << peer
            << " idle for " << (now - *last) << " ticks; dropping";
        broker_->drop_link(peer);
        state.backoff = 0;
        state.next_dial = now;  // first redial is immediate
      } else {
        state.failures = 0;
        state.backoff = 0;
      }
      continue;
    }
    if (now < state.next_dial) continue;
    ++state.dial_attempts;
    const ConnId conn = dial_(peer);
    if (conn != kInvalidConn) {
      broker_->attach_broker_link(conn, peer);
      state.failures = 0;
      state.backoff = 0;
      continue;
    }
    ++state.failures;
    if (options_.redial_budget != 0 && state.failures >= options_.redial_budget) {
      GRYPHON_WARN("supervisor")
          << "broker " << broker_->self() << ": giving up on link to " << peer << " after "
          << state.failures << " failed dials";
      state.dead = true;
      broker_->mark_link_dead(peer);
      continue;
    }
    state.next_dial = now + next_backoff(state);
  }
}

void LinkSupervisor::start(std::chrono::milliseconds period) {
  stop();
  stopping_.store(false);
  thread_ = std::thread([this, period] {
    while (!stopping_.load(std::memory_order_relaxed)) {
      tick(broker_->clock_now());
      std::this_thread::sleep_for(period);
    }
  });
}

void LinkSupervisor::stop() {
  stopping_.store(true);
  if (thread_.joinable()) thread_.join();
}

LinkSupervisor::LinkStatus LinkSupervisor::status(BrokerId peer) const {
  LinkStatus out;
  out.up = broker_->link_up(peer);
  MutexLock lock(mutex_);
  const auto it = peers_.find(peer);
  if (it != peers_.end()) {
    out.dead = it->second.dead;
    out.consecutive_failures = it->second.failures;
    out.dial_attempts = it->second.dial_attempts;
    out.next_dial = it->second.next_dial;
  }
  return out;
}

}  // namespace gryphon
