#include "broker/broker_core.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <stdexcept>
#include <tuple>

namespace gryphon {

BrokerCore::BrokerCore(BrokerId self, const BrokerNetwork& topology,
                       std::vector<SchemaPtr> spaces, PstMatcherOptions matcher_options,
                       std::size_t data_plane_shards, ControlPlaneOptions control)
    : self_(self), topology_(&topology), routing_(topology) {
  // Construction is single-threaded by the language; state that once for
  // the whole body so guarded members can be initialized.
  control_plane_.assert_serialized();
  if (!self.valid() || static_cast<std::size_t>(self.value) >= topology.broker_count()) {
    throw std::invalid_argument("BrokerCore: bad self id");
  }
  if (spaces.empty()) throw std::invalid_argument("BrokerCore: need at least one space");
  matcher_options_ = matcher_options;
  control_options_ = control;
  if (control_options_.delta_segment_target == 0) control_options_.delta_segment_target = 1;
  if (control_options_.max_delta_segments == 0) control_options_.max_delta_segments = 1;

  const auto& ports = topology.ports(self);
  for (const auto& port : ports) {
    if (port.kind != BrokerNetwork::PortKind::kBroker) {
      throw std::invalid_argument(
          "BrokerCore: the static topology must contain brokers only (clients attach "
          "dynamically)");
    }
    neighbors_.push_back(port.peer_broker);
  }
  link_count_ = ports.size() + 1;  // + pseudo-local
  local_link_ = LinkIndex{static_cast<LinkIndex::rep_type>(ports.size())};

  for (std::size_t r = 0; r < topology.broker_count(); ++r) {
    const BrokerId root{static_cast<BrokerId::rep_type>(r)};
    trees_.emplace(root, std::make_unique<SpanningTree>(topology, routing_, root));
  }

  // Deduplicate spanning trees by their owner-broker -> link map at self.
  std::map<std::vector<LinkIndex::rep_type>, std::size_t> by_signature;
  const std::size_t n = topology.broker_count();
  for (const auto& [root, tree] : trees_) {
    std::vector<LinkIndex::rep_type> signature;
    signature.reserve(n);
    for (std::size_t d = 0; d < n; ++d) {
      const BrokerId dest{static_cast<BrokerId::rep_type>(d)};
      signature.push_back(dest == self_ ? local_link_.value
                                        : tree->tree_next_hop(self_, dest).value);
    }
    const auto [it, inserted] = by_signature.emplace(signature, groups_.size());
    if (inserted) {
      auto owned = std::make_unique<Group>();
      owned->representative = tree.get();
      const SpanningTree* rep = tree.get();
      const LinkIndex local_link = local_link_;
      owned->link_of = [this, rep, local_link](SubscriptionId id) {
        // Group link functions run only inside snapshot freezing, which the
        // control plane serializes; the lambda re-states that for the
        // analysis (lambdas do not inherit the caller's capability set).
        control_plane_.assert_serialized();
        const BrokerId owner = owner_of(id);
        return owner == self_ ? local_link : rep->tree_next_hop(self_, owner);
      };
      groups_.push_back(std::move(owned));
    }
    group_index_of_root_.emplace(root, it->second);

    // Initialization mask: Maybe toward tree children (any broker may have
    // subscribers) and on the pseudo-local link; No elsewhere.
    TritVector mask(link_count_, Trit::No);
    for (std::size_t pi = 0; pi < ports.size(); ++pi) {
      const BrokerId peer = ports[pi].peer_broker;
      if (tree->parent(peer) == self_) mask.set(pi, Trit::Maybe);
    }
    mask.set(local_link_, Trit::Maybe);
    init_masks_.emplace(root, std::move(mask));
  }

  spaces_.reserve(spaces.size());
  for (SchemaPtr& schema : spaces) {
    Space space;
    if (!schema) throw std::invalid_argument("BrokerCore: null schema");
    space.segments.push_back(std::make_unique<PstMatcher>(schema, matcher_options_));
    if (control_options_.covering) {
      space.covering = std::make_unique<CoveringIndex>(schema, self_);
    }
    space.schema = std::move(schema);
    spaces_.push_back(std::move(space));
  }
  space_counts_.assign(spaces_.size(), 0);

  std::vector<SubscriptionLinkFn> link_fns;
  link_fns.reserve(groups_.size());
  for (const auto& group : groups_) link_fns.push_back(group->link_of);
  builder_ = std::make_unique<SnapshotBuilder>(link_count_, local_link_, std::move(link_fns),
                                               data_plane_shards);

  // Publish the initial (all-empty) snapshot.
  std::vector<SnapshotBuilder::SpaceSources> sources;
  sources.reserve(spaces_.size());
  for (const Space& sp : spaces_) sources.push_back(sources_of(sp));
  snapshot_.store(builder_->initial_snapshot(sources));
}

const BrokerCore::Space& BrokerCore::space_at(SpaceId space) const {
  if (!space.valid() || static_cast<std::size_t>(space.value) >= spaces_.size()) {
    throw std::invalid_argument("BrokerCore: bad space index");
  }
  return spaces_[static_cast<std::size_t>(space.value)];
}

const SchemaPtr& BrokerCore::schema(SpaceId space) const { return space_at(space).schema; }

SnapshotBuilder::SpaceSources BrokerCore::sources_of(const Space& sp) const {
  SnapshotBuilder::SpaceSources sources;
  sources.segments.reserve(sp.segments.size());
  for (const auto& matcher : sp.segments) sources.segments.push_back(matcher.get());
  if (sp.covering != nullptr) sources.covering = sp.covering->snapshot();
  return sources;
}

void BrokerCore::publish_snapshot(SpaceId touched) {
  const auto i = static_cast<std::size_t>(touched.value);
  Space& sp = spaces_[i];
  const auto current = snapshot_.load();
  CompileStats compile;
  const auto t0 = std::chrono::steady_clock::now();
  auto next = builder_->next_snapshot(*current, i, sources_of(sp), &compile, !sp.force_full);
  const auto elapsed_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                            t0)
          .count());
  snapshot_.store(std::move(next));
  sp.force_full = false;
  sp.dirty = false;
  stats_.segments_compiled += compile.segments_compiled;
  stats_.segments_reused += compile.segments_reused;
  if (compile.segments_reused > 0) {
    ++stats_.delta_publishes;
  } else {
    ++stats_.full_publishes;
  }
  ++stats_.compile_publishes;
  stats_.compile_us_total += elapsed_us;
  const std::size_t bucket =
      elapsed_us == 0 ? 0
                      : std::min<std::size_t>(std::bit_width(elapsed_us) - 1,
                                              ControlPlaneStats::kHistogramBuckets - 1);
  ++stats_.compile_us_histogram[bucket];
}

void BrokerCore::publish_covering_only(SpaceId touched) {
  const auto i = static_cast<std::size_t>(touched.value);
  Space& sp = spaces_[i];
  // Deferred tree churn must not ride out behind a table-sharing publish:
  // flush it the slow way so the snapshot stays self-consistent.
  if (sp.dirty || sp.force_full) {
    publish_snapshot(touched);
    return;
  }
  const auto current = snapshot_.load();
  snapshot_.store(builder_->next_snapshot_covering_only(*current, i, sp.covering->snapshot()));
  ++stats_.covering_only_publishes;
}

void BrokerCore::maybe_grow_segments(SpaceId space) {
  const auto i = static_cast<std::size_t>(space.value);
  Space& sp = spaces_[i];
  if (sp.segments.size() >= control_options_.max_delta_segments) return;
  std::size_t frontier = 0;
  for (const auto& matcher : sp.segments) frontier += matcher->subscription_count();
  if (frontier <= sp.segments.size() * control_options_.delta_segment_target) return;

  // Double the slice count and redistribute. The old matchers (and their
  // Pst trees) are destroyed, so every source-pointer reuse key in the
  // published snapshot goes stale — force the next publish to compile from
  // scratch rather than risk an address-reuse collision.
  const std::size_t next_count =
      std::min(control_options_.max_delta_segments, sp.segments.size() * 2);
  std::vector<std::unique_ptr<PstMatcher>> next;
  next.reserve(next_count);
  for (std::size_t j = 0; j < next_count; ++j) {
    next.push_back(std::make_unique<PstMatcher>(sp.schema, matcher_options_));
  }
  for (const auto& [id, reg] : registry_) {
    if (static_cast<std::size_t>(reg.space.value) != i) continue;
    if (sp.covering != nullptr && sp.covering->is_parked(id)) continue;
    const Subscription* subscription = nullptr;
    std::shared_ptr<const Subscription> held;
    if (sp.covering != nullptr) {
      held = sp.covering->find(id);
      subscription = held.get();
    } else {
      subscription = sp.segments[segment_of(id, sp.segments.size())]->find_subscription(id);
    }
    next[segment_of(id, next_count)]->add(id, *subscription);
  }
  sp.segments = std::move(next);
  sp.force_full = true;
}

void BrokerCore::add_subscription(SpaceId space, SubscriptionId id,
                                  const Subscription& subscription, BrokerId owner,
                                  SnapshotPolicy policy) {
  const Space& checked = space_at(space);
  Space& sp = spaces_[static_cast<std::size_t>(space.value)];
  if (registry_.contains(id)) throw std::invalid_argument("BrokerCore: duplicate subscription");
  if (!owner.valid() || static_cast<std::size_t>(owner.value) >= topology_->broker_count()) {
    throw std::invalid_argument("BrokerCore: bad owner broker");
  }
  // Replicate the matcher's shape check up front: a parked subscription
  // never reaches a matcher, and covering on/off must reject identically.
  if (subscription.schema()->attribute_count() != checked.schema->attribute_count()) {
    throw std::invalid_argument("BrokerCore: schema arity mismatch");
  }
  registry_.emplace(id, Registered{space, owner});
  bool covering_only = false;
  try {
    if (sp.covering != nullptr) {
      const CoveringIndex::AddResult result = sp.covering->add(id, subscription, owner);
      if (result.parked) {
        covering_only = true;
      } else {
        // The new subscription covers `demoted`: pull them out of their
        // slices (they are parked under it now), then insert it.
        for (const SubscriptionId demoted : result.demoted) {
          sp.segments[segment_of(demoted, sp.segments.size())]->remove(demoted);
        }
        sp.segments[segment_of(id, sp.segments.size())]->add(id, subscription);
      }
    } else {
      sp.segments[segment_of(id, sp.segments.size())]->add(id, subscription);
    }
  } catch (...) {
    registry_.erase(id);
    throw;
  }
  ++space_counts_[static_cast<std::size_t>(space.value)];
  if (!covering_only) maybe_grow_segments(space);
  if (policy == SnapshotPolicy::kDefer) {
    sp.dirty = true;
    return;
  }
  if (covering_only) {
    publish_covering_only(space);
  } else {
    publish_snapshot(space);
  }
}

bool BrokerCore::remove_subscription(SubscriptionId id, SnapshotPolicy policy) {
  const auto it = registry_.find(id);
  if (it == registry_.end()) return false;
  const Registered reg = it->second;
  Space& sp = spaces_[static_cast<std::size_t>(reg.space.value)];
  bool covering_only = false;
  if (sp.covering != nullptr) {
    CoveringIndex::RemoveResult result = sp.covering->remove(id);
    if (result.was_parked) {
      covering_only = true;
    } else {
      sp.segments[segment_of(id, sp.segments.size())]->remove(id);
      // Uncovering: children that no remaining frontier entry covers go
      // back into the compiled plane.
      for (const CoveringIndex::Promoted& promoted : result.promoted) {
        sp.segments[segment_of(promoted.id, sp.segments.size())]->add(
            promoted.id, *promoted.subscription);
      }
    }
  } else {
    sp.segments[segment_of(id, sp.segments.size())]->remove(id);
  }
  registry_.erase(it);
  --space_counts_[static_cast<std::size_t>(reg.space.value)];
  if (policy == SnapshotPolicy::kDefer) {
    sp.dirty = true;
    return true;
  }
  if (covering_only) {
    publish_covering_only(reg.space);
  } else {
    publish_snapshot(reg.space);
  }
  return true;
}

void BrokerCore::publish_space(SpaceId space) {
  const Space& sp = space_at(space);
  if (!sp.dirty && !sp.force_full) return;
  publish_snapshot(space);
}

std::size_t BrokerCore::frontier_count(SpaceId space) const {
  const Space& sp = space_at(space);
  std::size_t n = 0;
  for (const auto& matcher : sp.segments) n += matcher->subscription_count();
  return n;
}

std::size_t BrokerCore::covered_count(SpaceId space) const {
  const Space& sp = space_at(space);
  return sp.covering == nullptr ? 0 : sp.covering->parked_count();
}

std::size_t BrokerCore::segment_count(SpaceId space) const {
  return space_at(space).segments.size();
}

ControlPlaneStats BrokerCore::control_plane_stats() const {
  ControlPlaneStats out = stats_;
  for (const Space& sp : spaces_) {
    for (const auto& matcher : sp.segments) {
      out.frontier_subscriptions += matcher->subscription_count();
    }
    if (sp.covering != nullptr) out.covered_subscriptions += sp.covering->parked_count();
  }
  return out;
}

BrokerId BrokerCore::owner_of(SubscriptionId id) const {
  const auto it = registry_.find(id);
  if (it == registry_.end()) throw std::invalid_argument("BrokerCore: unknown subscription");
  return it->second.owner;
}

void BrokerCore::dispatch_pinned(const CoreSnapshot& snapshot, SpaceId space, const Event& event,
                                 BrokerId tree_root, MatchScratch& scratch,
                                 Decision& out) const {
  out.reset();
  const FrozenSpace& fs = *snapshot.spaces[static_cast<std::size_t>(space.value)];
  if (fs.factored()) ++out.steps;  // the bucket index probe
  const std::size_t shard = fs.shard_of(event, scratch.factoring_key());
  out.shard = static_cast<std::uint32_t>(shard);
  // shard_of left the event's factoring key in the scratch buffer.
  const FrozenBucket* bucket = fs.bucket_in_shard(shard, scratch.factoring_key());
  // No bucket: nothing can match anywhere in the network.
  if (bucket == nullptr) return;

  // Walk every live delta segment of the bucket in slice order and union
  // the refined masks (Parallel Combine) — exact, because the slices
  // partition the frontier and a link is forwarded iff some frontier
  // subscription behind it matches.
  const std::size_t group = group_index_of_root_.at(tree_root);
  const TritVector& init_mask = init_masks_.at(tree_root);
  // Per-segment masks accumulate in the scratch's caller byte slots (see
  // kDispatchCallerSlots in routing/compiled_annotation.h) instead of
  // TritVector temporaries, so a warm dispatch allocates nothing.
  const MutableTritSpan acc = dispatch_mask_slot(scratch, 0, init_mask.size());
  const MutableTritSpan seg = dispatch_mask_slot(scratch, 1, init_mask.size());
  bool first = true;
  for (const auto& segment : bucket->segments) {
    if (segment == nullptr) continue;
    const MutableTritSpan dst = first ? acc : seg;
    out.steps += compiled_dispatch_into(*segment->annotations, group, event, init_mask.span(),
                                        scratch, &out.local_matches, dst);
    if (first) {
      first = false;
    } else {
      parallel_with(acc, seg);
    }
  }
  if (first) return;  // no live segments

  // No parked-child enumeration here: locally-owned subscriptions never
  // park (CoveringIndex excludes the local broker), so local_matches is
  // already complete, and remote parked children cannot change the mask —
  // their same-owner coverer is live in the frontier behind the same links.
  out.deliver_locally = !out.local_matches.empty();
  for (std::size_t l = 0; l < acc.size(); ++l) {
    if (acc[l] != Trit::Yes) continue;
    if (LinkIndex{static_cast<LinkIndex::rep_type>(l)} != local_link_) {
      // gryphon-analyze: allow(alloc): forward staging reuses the
      // Decision's capacity once the batch is warm.
      out.forward.push_back(neighbors_[l]);
    }
  }
}

std::span<const BrokerCore::Decision> BrokerCore::dispatch(DispatchBatch& batch) const {
  const std::size_t n = batch.items_.size();
  // gryphon-analyze: allow(alloc): decision storage grows to the largest
  // batch seen, then every later dispatch reuses it.
  if (batch.decisions_.size() < n) batch.decisions_.resize(n);
  if (n == 0) return {};
  for (const DispatchBatch::Item& item : batch.items_) {
    if (!group_index_of_root_.contains(item.tree_root)) {
      throw std::invalid_argument("BrokerCore::dispatch: unknown tree root");
    }
    if (!has_space(item.space)) throw std::invalid_argument("BrokerCore: bad space index");
  }
  // Pin the snapshot once for the whole batch: everything below touches
  // only immutable state, so concurrent subscription churn can swap in new
  // snapshots freely while we drain.
  const auto snapshot = snapshot_.load();
  // Visit events grouped by (space, serving shard) so each shard's
  // compiled tables stay hot across consecutive matches. The grouping key
  // is precomputed here; decisions are still written at each event's
  // staging index, so the result span is in add() order.
  // gryphon-analyze: allow(alloc): visit-order buffer grows with the
  // largest batch, then every later dispatch reuses it.
  batch.order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.order_[i] = static_cast<std::uint32_t>(i);
    const DispatchBatch::Item& item = batch.items_[i];
    const FrozenSpace& fs = *snapshot->spaces[static_cast<std::size_t>(item.space.value)];
    batch.decisions_[i].shard =
        static_cast<std::uint32_t>(fs.shard_of(*item.event, batch.scratch_.factoring_key()));
  }
  // The staging index breaks (space, shard) ties, so the in-place std::sort
  // visits events in exactly the order the stable sort used to — without
  // stable_sort's per-call temporary buffer.
  std::sort(batch.order_.begin(), batch.order_.end(),
            [&batch](std::uint32_t a, std::uint32_t b) {
              const auto key = [&batch](std::uint32_t i) {
                return std::make_tuple(batch.items_[i].space.value, batch.decisions_[i].shard,
                                       i);
              };
              return key(a) < key(b);
            });
  for (const std::uint32_t i : batch.order_) {
    const DispatchBatch::Item& item = batch.items_[i];
    dispatch_pinned(*snapshot, item.space, *item.event, item.tree_root, batch.scratch_,
                    batch.decisions_[i]);
  }
  return batch.decisions();
}

BrokerCore::Decision BrokerCore::dispatch(SpaceId space, const Event& event, BrokerId tree_root,
                                          MatchScratch& scratch) const {
  if (!group_index_of_root_.contains(tree_root)) {
    throw std::invalid_argument("BrokerCore::dispatch: unknown tree root");
  }
  if (!space.valid() || static_cast<std::size_t>(space.value) >= spaces_.size()) {
    throw std::invalid_argument("BrokerCore: bad space index");
  }
  Decision decision;
  const auto snapshot = snapshot_.load();
  dispatch_pinned(*snapshot, space, event, tree_root, scratch, decision);
  return decision;
}

std::size_t BrokerCore::shard_count(SpaceId space) const {
  if (!space.valid() || static_cast<std::size_t>(space.value) >= spaces_.size()) {
    throw std::invalid_argument("BrokerCore: bad space index");
  }
  const auto snapshot = snapshot_.load();
  return snapshot->spaces[static_cast<std::size_t>(space.value)]->shard_count();
}

std::vector<SubscriptionId> BrokerCore::match_all(SpaceId space, const Event& event) const {
  if (!space.valid() || static_cast<std::size_t>(space.value) >= spaces_.size()) {
    throw std::invalid_argument("BrokerCore: bad space index");
  }
  std::vector<SubscriptionId> out;
  MatchScratch& scratch = thread_match_scratch();
  const auto snapshot = snapshot_.load();
  const FrozenSpace& fs = *snapshot->spaces[static_cast<std::size_t>(space.value)];
  const FrozenBucket* bucket = fs.bucket_for(event, scratch.factoring_key());
  if (bucket == nullptr) return out;
  for (const auto& segment : bucket->segments) {
    if (segment != nullptr) segment->kernel->match(event, out, scratch);
  }
  // Parked subscriptions of matched coverers (any owner), re-tested
  // against the event; the frontier prefix is what the kernels produced.
  const CoveringSnapshot* covering = fs.covering();
  if (covering != nullptr && !covering->empty()) {
    const std::size_t frontier_matches = out.size();
    for (std::size_t m = 0; m < frontier_matches; ++m) {
      covering->expand(out[m], event, [&](SubscriptionId child) { out.push_back(child); });
    }
  }
  return out;
}

}  // namespace gryphon
