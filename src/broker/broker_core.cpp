#include "broker/broker_core.h"

#include <algorithm>
#include <stdexcept>

namespace gryphon {

BrokerCore::BrokerCore(BrokerId self, const BrokerNetwork& topology,
                       std::vector<SchemaPtr> spaces, PstMatcherOptions matcher_options,
                       std::size_t data_plane_shards)
    : self_(self), topology_(&topology), routing_(topology) {
  // Construction is single-threaded by the language; state that once for
  // the whole body so guarded members can be initialized.
  control_plane_.assert_serialized();
  if (!self.valid() || static_cast<std::size_t>(self.value) >= topology.broker_count()) {
    throw std::invalid_argument("BrokerCore: bad self id");
  }
  if (spaces.empty()) throw std::invalid_argument("BrokerCore: need at least one space");

  const auto& ports = topology.ports(self);
  for (const auto& port : ports) {
    if (port.kind != BrokerNetwork::PortKind::kBroker) {
      throw std::invalid_argument(
          "BrokerCore: the static topology must contain brokers only (clients attach "
          "dynamically)");
    }
    neighbors_.push_back(port.peer_broker);
  }
  link_count_ = ports.size() + 1;  // + pseudo-local
  local_link_ = LinkIndex{static_cast<LinkIndex::rep_type>(ports.size())};

  for (std::size_t r = 0; r < topology.broker_count(); ++r) {
    const BrokerId root{static_cast<BrokerId::rep_type>(r)};
    trees_.emplace(root, std::make_unique<SpanningTree>(topology, routing_, root));
  }

  // Deduplicate spanning trees by their owner-broker -> link map at self.
  std::map<std::vector<LinkIndex::rep_type>, std::size_t> by_signature;
  const std::size_t n = topology.broker_count();
  for (const auto& [root, tree] : trees_) {
    std::vector<LinkIndex::rep_type> signature;
    signature.reserve(n);
    for (std::size_t d = 0; d < n; ++d) {
      const BrokerId dest{static_cast<BrokerId::rep_type>(d)};
      signature.push_back(dest == self_ ? local_link_.value
                                        : tree->tree_next_hop(self_, dest).value);
    }
    const auto [it, inserted] = by_signature.emplace(signature, groups_.size());
    if (inserted) {
      auto owned = std::make_unique<Group>();
      owned->representative = tree.get();
      const SpanningTree* rep = tree.get();
      const LinkIndex local_link = local_link_;
      owned->link_of = [this, rep, local_link](SubscriptionId id) {
        // Group link functions run only inside snapshot freezing, which the
        // control plane serializes; the lambda re-states that for the
        // analysis (lambdas do not inherit the caller's capability set).
        control_plane_.assert_serialized();
        const BrokerId owner = owner_of(id);
        return owner == self_ ? local_link : rep->tree_next_hop(self_, owner);
      };
      groups_.push_back(std::move(owned));
    }
    group_index_of_root_.emplace(root, it->second);

    // Initialization mask: Maybe toward tree children (any broker may have
    // subscribers) and on the pseudo-local link; No elsewhere.
    TritVector mask(link_count_, Trit::No);
    for (std::size_t pi = 0; pi < ports.size(); ++pi) {
      const BrokerId peer = ports[pi].peer_broker;
      if (tree->parent(peer) == self_) mask.set(pi, Trit::Maybe);
    }
    mask.set(local_link_, Trit::Maybe);
    init_masks_.emplace(root, std::move(mask));
  }

  spaces_.reserve(spaces.size());
  for (SchemaPtr& schema : spaces) {
    Space space;
    if (!schema) throw std::invalid_argument("BrokerCore: null schema");
    space.matcher = std::make_unique<PstMatcher>(schema, matcher_options);
    space.schema = std::move(schema);
    spaces_.push_back(std::move(space));
  }
  space_counts_.assign(spaces_.size(), 0);

  std::vector<SubscriptionLinkFn> link_fns;
  link_fns.reserve(groups_.size());
  for (const auto& group : groups_) link_fns.push_back(group->link_of);
  builder_ = std::make_unique<SnapshotBuilder>(link_count_, local_link_, std::move(link_fns),
                                               data_plane_shards);

  // Publish the initial (all-empty) snapshot.
  std::vector<const PstMatcher*> matchers;
  matchers.reserve(spaces_.size());
  for (const Space& sp : spaces_) matchers.push_back(sp.matcher.get());
  snapshot_.store(builder_->initial_snapshot(matchers));
}

const BrokerCore::Space& BrokerCore::space_at(SpaceId space) const {
  if (!space.valid() || static_cast<std::size_t>(space.value) >= spaces_.size()) {
    throw std::invalid_argument("BrokerCore: bad space index");
  }
  return spaces_[static_cast<std::size_t>(space.value)];
}

const SchemaPtr& BrokerCore::schema(SpaceId space) const { return space_at(space).schema; }

void BrokerCore::publish_snapshot(SpaceId touched) {
  const auto current = snapshot_.load();
  const auto i = static_cast<std::size_t>(touched.value);
  snapshot_.store(builder_->next_snapshot(*current, i, *spaces_[i].matcher));
}

void BrokerCore::add_subscription(SpaceId space, SubscriptionId id,
                                  const Subscription& subscription, BrokerId owner) {
  const Space& sp = space_at(space);
  if (registry_.contains(id)) throw std::invalid_argument("BrokerCore: duplicate subscription");
  if (!owner.valid() || static_cast<std::size_t>(owner.value) >= topology_->broker_count()) {
    throw std::invalid_argument("BrokerCore: bad owner broker");
  }
  registry_.emplace(id, Registered{space, owner});
  try {
    sp.matcher->add(id, subscription);
  } catch (...) {
    registry_.erase(id);
    throw;
  }
  ++space_counts_[static_cast<std::size_t>(space.value)];
  publish_snapshot(space);
}

bool BrokerCore::remove_subscription(SubscriptionId id) {
  const auto it = registry_.find(id);
  if (it == registry_.end()) return false;
  const Registered reg = it->second;
  spaces_[static_cast<std::size_t>(reg.space.value)].matcher->remove(id);
  registry_.erase(it);
  --space_counts_[static_cast<std::size_t>(reg.space.value)];
  publish_snapshot(reg.space);
  return true;
}

BrokerId BrokerCore::owner_of(SubscriptionId id) const {
  const auto it = registry_.find(id);
  if (it == registry_.end()) throw std::invalid_argument("BrokerCore: unknown subscription");
  return it->second.owner;
}

void BrokerCore::dispatch_pinned(const CoreSnapshot& snapshot, SpaceId space, const Event& event,
                                 BrokerId tree_root, MatchScratch& scratch,
                                 Decision& out) const {
  out.reset();
  const FrozenSpace& fs = *snapshot.spaces[static_cast<std::size_t>(space.value)];
  if (fs.factored()) ++out.steps;  // the bucket index probe
  const std::size_t shard = fs.shard_of(event, scratch.factoring_key());
  out.shard = static_cast<std::uint32_t>(shard);
  // shard_of left the event's factoring key in the scratch buffer.
  const FrozenBucket* bucket = fs.bucket_in_shard(shard, scratch.factoring_key());
  // No bucket: nothing can match anywhere in the network.
  if (bucket == nullptr) return;

  const CompiledDispatchResult result =
      compiled_dispatch(*bucket->annotations, group_index_of_root_.at(tree_root), event,
                        init_masks_.at(tree_root), scratch, &out.local_matches);
  out.steps += result.steps;
  out.deliver_locally = !out.local_matches.empty();
  for (const LinkIndex link : result.mask.yes_links()) {
    if (link != local_link_) {
      out.forward.push_back(neighbors_[static_cast<std::size_t>(link.value)]);
    }
  }
}

std::span<const BrokerCore::Decision> BrokerCore::dispatch(DispatchBatch& batch) const {
  const std::size_t n = batch.items_.size();
  if (batch.decisions_.size() < n) batch.decisions_.resize(n);
  if (n == 0) return {};
  for (const DispatchBatch::Item& item : batch.items_) {
    if (!group_index_of_root_.contains(item.tree_root)) {
      throw std::invalid_argument("BrokerCore::dispatch: unknown tree root");
    }
    if (!has_space(item.space)) throw std::invalid_argument("BrokerCore: bad space index");
  }
  // Pin the snapshot once for the whole batch: everything below touches
  // only immutable state, so concurrent subscription churn can swap in new
  // snapshots freely while we drain.
  const auto snapshot = snapshot_.load();
  // Visit events grouped by (space, serving shard) so each shard's
  // compiled tables stay hot across consecutive matches. The grouping key
  // is precomputed here; decisions are still written at each event's
  // staging index, so the result span is in add() order.
  batch.order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.order_[i] = static_cast<std::uint32_t>(i);
    const DispatchBatch::Item& item = batch.items_[i];
    const FrozenSpace& fs = *snapshot->spaces[static_cast<std::size_t>(item.space.value)];
    batch.decisions_[i].shard =
        static_cast<std::uint32_t>(fs.shard_of(*item.event, batch.scratch_.factoring_key()));
  }
  std::stable_sort(batch.order_.begin(), batch.order_.end(),
                   [&batch](std::uint32_t a, std::uint32_t b) {
                     const auto key = [&batch](std::uint32_t i) {
                       return std::make_pair(batch.items_[i].space.value,
                                             batch.decisions_[i].shard);
                     };
                     return key(a) < key(b);
                   });
  for (const std::uint32_t i : batch.order_) {
    const DispatchBatch::Item& item = batch.items_[i];
    dispatch_pinned(*snapshot, item.space, *item.event, item.tree_root, batch.scratch_,
                    batch.decisions_[i]);
  }
  return batch.decisions();
}

BrokerCore::Decision BrokerCore::dispatch(SpaceId space, const Event& event, BrokerId tree_root,
                                          MatchScratch& scratch) const {
  if (!group_index_of_root_.contains(tree_root)) {
    throw std::invalid_argument("BrokerCore::dispatch: unknown tree root");
  }
  if (!space.valid() || static_cast<std::size_t>(space.value) >= spaces_.size()) {
    throw std::invalid_argument("BrokerCore: bad space index");
  }
  Decision decision;
  const auto snapshot = snapshot_.load();
  dispatch_pinned(*snapshot, space, event, tree_root, scratch, decision);
  return decision;
}

std::size_t BrokerCore::shard_count(SpaceId space) const {
  if (!space.valid() || static_cast<std::size_t>(space.value) >= spaces_.size()) {
    throw std::invalid_argument("BrokerCore: bad space index");
  }
  const auto snapshot = snapshot_.load();
  return snapshot->spaces[static_cast<std::size_t>(space.value)]->shard_count();
}

std::vector<SubscriptionId> BrokerCore::match_all(SpaceId space, const Event& event) const {
  if (!space.valid() || static_cast<std::size_t>(space.value) >= spaces_.size()) {
    throw std::invalid_argument("BrokerCore: bad space index");
  }
  std::vector<SubscriptionId> out;
  MatchScratch& scratch = thread_match_scratch();
  const auto snapshot = snapshot_.load();
  const FrozenSpace& fs = *snapshot->spaces[static_cast<std::size_t>(space.value)];
  const FrozenBucket* bucket = fs.bucket_for(event, scratch.factoring_key());
  if (bucket == nullptr) return out;
  bucket->kernel->match(event, out, scratch);
  return out;
}

}  // namespace gryphon
