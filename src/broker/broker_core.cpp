#include "broker/broker_core.h"

#include <stdexcept>

namespace gryphon {

BrokerCore::BrokerCore(BrokerId self, const BrokerNetwork& topology,
                       std::vector<SchemaPtr> spaces, PstMatcherOptions matcher_options)
    : self_(self), topology_(&topology), routing_(topology) {
  if (!self.valid() || static_cast<std::size_t>(self.value) >= topology.broker_count()) {
    throw std::invalid_argument("BrokerCore: bad self id");
  }
  if (spaces.empty()) throw std::invalid_argument("BrokerCore: need at least one space");

  const auto& ports = topology.ports(self);
  for (const auto& port : ports) {
    if (port.kind != BrokerNetwork::PortKind::kBroker) {
      throw std::invalid_argument(
          "BrokerCore: the static topology must contain brokers only (clients attach "
          "dynamically)");
    }
    neighbors_.push_back(port.peer_broker);
  }
  link_count_ = ports.size() + 1;  // + pseudo-local
  const LinkIndex local_link{static_cast<LinkIndex::rep_type>(ports.size())};

  for (std::size_t r = 0; r < topology.broker_count(); ++r) {
    const BrokerId root{static_cast<BrokerId::rep_type>(r)};
    trees_.emplace(root, std::make_unique<SpanningTree>(topology, routing_, root));
  }

  // Deduplicate spanning trees by their owner-broker -> link map at self.
  std::map<std::vector<LinkIndex::rep_type>, Group*> by_signature;
  const std::size_t n = topology.broker_count();
  for (const auto& [root, tree] : trees_) {
    std::vector<LinkIndex::rep_type> signature;
    signature.reserve(n);
    for (std::size_t d = 0; d < n; ++d) {
      const BrokerId dest{static_cast<BrokerId::rep_type>(d)};
      signature.push_back(dest == self_ ? local_link.value
                                        : tree->tree_next_hop(self_, dest).value);
    }
    Group*& group = by_signature[signature];
    if (group == nullptr) {
      auto owned = std::make_unique<Group>();
      owned->representative = tree.get();
      const SpanningTree* rep = tree.get();
      owned->link_of = [this, rep, local_link](SubscriptionId id) {
        const BrokerId owner = owner_of(id);
        return owner == self_ ? local_link : rep->tree_next_hop(self_, owner);
      };
      group = owned.get();
      groups_.push_back(std::move(owned));
    }
    group_of_root_.emplace(root, group);

    // Initialization mask: Maybe toward tree children (any broker may have
    // subscribers) and on the pseudo-local link; No elsewhere.
    TritVector mask(link_count_, Trit::No);
    for (std::size_t pi = 0; pi < ports.size(); ++pi) {
      const BrokerId peer = ports[pi].peer_broker;
      if (tree->parent(peer) == self_) mask.set(pi, Trit::Maybe);
    }
    mask.set(local_link, Trit::Maybe);
    init_masks_.emplace(root, std::move(mask));
  }

  spaces_.reserve(spaces.size());
  for (SchemaPtr& schema : spaces) {
    Space space;
    if (!schema) throw std::invalid_argument("BrokerCore: null schema");
    space.matcher = std::make_unique<PstMatcher>(schema, matcher_options);
    space.local_matcher = std::make_unique<PstMatcher>(schema, matcher_options);
    space.schema = std::move(schema);
    spaces_.push_back(std::move(space));
  }
  space_counts_.assign(spaces_.size(), 0);
}

const BrokerCore::Space& BrokerCore::space_at(std::uint16_t space) const {
  if (space >= spaces_.size()) throw std::invalid_argument("BrokerCore: bad space index");
  return spaces_[space];
}

const SchemaPtr& BrokerCore::schema(std::uint16_t space) const { return space_at(space).schema; }

void BrokerCore::apply_touched(std::uint16_t space, const PstMatcher::TouchedTrees& touched) {
  (void)space;
  for (const auto& group : groups_) {
    for (const auto& t : touched) {
      auto it = group->annotations.find(t.tree);
      if (it == group->annotations.end()) {
        group->annotations.emplace(
            t.tree, std::make_unique<AnnotatedPst>(*t.tree, link_count_, group->link_of));
      } else {
        it->second->apply(t.mutation);
      }
    }
  }
}

void BrokerCore::add_subscription(std::uint16_t space, SubscriptionId id,
                                  const Subscription& subscription, BrokerId owner) {
  const Space& sp = space_at(space);
  if (registry_.contains(id)) throw std::invalid_argument("BrokerCore: duplicate subscription");
  if (!owner.valid() || static_cast<std::size_t>(owner.value) >= topology_->broker_count()) {
    throw std::invalid_argument("BrokerCore: bad owner broker");
  }
  registry_.emplace(id, Registered{space, owner});
  PstMatcher::TouchedTrees touched;
  try {
    touched = sp.matcher->add_with_result(id, subscription);
  } catch (...) {
    registry_.erase(id);
    throw;
  }
  apply_touched(space, touched);
  if (owner == self_) sp.local_matcher->add(id, subscription);
  ++space_counts_[space];
}

bool BrokerCore::remove_subscription(SubscriptionId id) {
  const auto it = registry_.find(id);
  if (it == registry_.end()) return false;
  const Registered reg = it->second;
  const Space& sp = spaces_[reg.space];
  const PstMatcher::TouchedTrees touched = sp.matcher->remove_with_result(id);
  apply_touched(reg.space, touched);
  if (reg.owner == self_) sp.local_matcher->remove(id);
  registry_.erase(it);
  --space_counts_[reg.space];
  return true;
}

BrokerId BrokerCore::owner_of(SubscriptionId id) const {
  const auto it = registry_.find(id);
  if (it == registry_.end()) throw std::invalid_argument("BrokerCore: unknown subscription");
  return it->second.owner;
}

BrokerCore::Decision BrokerCore::route(std::uint16_t space, const Event& event,
                                       BrokerId tree_root) const {
  const Space& sp = space_at(space);
  const auto group_it = group_of_root_.find(tree_root);
  if (group_it == group_of_root_.end()) {
    throw std::invalid_argument("BrokerCore::route: unknown tree root");
  }
  Decision decision;
  const Pst* tree = sp.matcher->tree_for_event(event);
  if (sp.matcher->options().factoring_levels > 0) ++decision.steps;
  // No tree, or a tree with no subscriptions (annotations are created on
  // first subscribe): nothing can match anywhere in the network.
  if (tree == nullptr || tree->subscription_count() == 0) return decision;

  const auto ann_it = group_it->second->annotations.find(tree);
  if (ann_it == group_it->second->annotations.end()) {
    throw std::logic_error("BrokerCore::route: missing annotation");
  }
  const LinkMatchResult lm = link_match(*ann_it->second, event, init_masks_.at(tree_root));
  decision.steps += lm.steps;
  for (const LinkIndex link : lm.mask.yes_links()) {
    if (static_cast<std::size_t>(link.value) == link_count_ - 1) {
      decision.deliver_locally = true;
    } else {
      decision.forward.push_back(neighbors_[static_cast<std::size_t>(link.value)]);
    }
  }
  return decision;
}

std::vector<SubscriptionId> BrokerCore::match_local(std::uint16_t space,
                                                    const Event& event) const {
  std::vector<SubscriptionId> out;
  space_at(space).local_matcher->match(event, out);
  return out;
}

std::vector<SubscriptionId> BrokerCore::match_all(std::uint16_t space,
                                                  const Event& event) const {
  std::vector<SubscriptionId> out;
  space_at(space).matcher->match(event, out);
  return out;
}

}  // namespace gryphon
