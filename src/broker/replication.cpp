#include "broker/replication.h"

namespace gryphon::replication {

namespace {

void put_broker(Encoder& enc, BrokerId b) {
  enc.put_u32(static_cast<std::uint32_t>(b.value));
}

BrokerId get_broker(Decoder& dec) {
  return BrokerId{static_cast<BrokerId::rep_type>(dec.get_u32())};
}

void put_space(Encoder& enc, SpaceId space) {
  enc.put_u16(static_cast<std::uint16_t>(space.value));
}

SpaceId get_space(Decoder& dec) {
  return SpaceId{static_cast<SpaceId::rep_type>(dec.get_u16())};
}

void put_log(Encoder& enc, const LogImage& log) {
  enc.put_u64(log.next_seq);
  enc.put_u64(log.acked);
  enc.put_u64(log.truncated_through);
  enc.put_u64(log.entries.size());
  for (const EventLog::Entry& entry : log.entries) {
    enc.put_u64(entry.seq);
    put_space(enc, entry.space);
    put_broker(enc, entry.origin);
    enc.put_bytes(entry.event);
  }
}

LogImage get_log(Decoder& dec) {
  LogImage log;
  log.next_seq = dec.get_u64();
  log.acked = dec.get_u64();
  log.truncated_through = dec.get_u64();
  const std::uint64_t count = dec.get_u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    EventLog::Entry entry;
    entry.seq = dec.get_u64();
    entry.space = get_space(dec);
    entry.origin = get_broker(dec);
    entry.event = dec.get_bytes();
    log.entries.push_back(std::move(entry));
  }
  return log;
}

}  // namespace

std::vector<std::uint8_t> encode_update(const Update& update) {
  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(update.kind));
  switch (update.kind) {
    case UpdateKind::kSubAdd:
      enc.put_i64(update.id.value);
      put_broker(enc, update.owner);
      put_space(enc, update.space);
      enc.put_string(update.client);
      enc.put_bytes(update.payload);
      break;
    case UpdateKind::kSubRemove:
    case UpdateKind::kTombstone:
      enc.put_i64(update.id.value);
      break;
    case UpdateKind::kClientDeliver:
      enc.put_string(update.client);
      enc.put_u64(update.seq);
      put_space(enc, update.space);
      enc.put_bytes(update.payload);
      break;
    case UpdateKind::kClientAck:
      enc.put_string(update.client);
      enc.put_u64(update.seq);
      break;
    case UpdateKind::kClientTruncate:
      enc.put_string(update.client);
      enc.put_u64(update.seq);
      enc.put_u64(update.truncated_through);
      break;
    case UpdateKind::kLinkForward:
      put_broker(enc, update.peer);
      enc.put_u64(update.seq);
      put_broker(enc, update.origin);
      put_space(enc, update.space);
      enc.put_bytes(update.payload);
      break;
    case UpdateKind::kLinkAck:
      put_broker(enc, update.peer);
      enc.put_u64(update.seq);
      break;
    case UpdateKind::kLinkTruncate:
      put_broker(enc, update.peer);
      enc.put_u64(update.seq);
      enc.put_u64(update.truncated_through);
      break;
    case UpdateKind::kLinkInSeq:
      put_broker(enc, update.peer);
      enc.put_u64(update.epoch);
      enc.put_u64(update.seq);
      break;
    case UpdateKind::kLinkDead:
      put_broker(enc, update.peer);
      enc.put_u8(update.dead ? 1 : 0);
      break;
  }
  return enc.take();
}

Update decode_update(std::span<const std::uint8_t> buffer) {
  Decoder dec(buffer);
  Update update;
  const std::uint8_t kind = dec.get_u8();
  if (kind < static_cast<std::uint8_t>(UpdateKind::kSubAdd) ||
      kind > static_cast<std::uint8_t>(UpdateKind::kLinkDead)) {
    throw CodecError("replication: unknown update kind " + std::to_string(kind));
  }
  update.kind = static_cast<UpdateKind>(kind);
  switch (update.kind) {
    case UpdateKind::kSubAdd:
      update.id = SubscriptionId{dec.get_i64()};
      update.owner = get_broker(dec);
      update.space = get_space(dec);
      update.client = dec.get_string();
      update.payload = dec.get_bytes();
      break;
    case UpdateKind::kSubRemove:
    case UpdateKind::kTombstone:
      update.id = SubscriptionId{dec.get_i64()};
      break;
    case UpdateKind::kClientDeliver:
      update.client = dec.get_string();
      update.seq = dec.get_u64();
      update.space = get_space(dec);
      update.payload = dec.get_bytes();
      break;
    case UpdateKind::kClientAck:
      update.client = dec.get_string();
      update.seq = dec.get_u64();
      break;
    case UpdateKind::kClientTruncate:
      update.client = dec.get_string();
      update.seq = dec.get_u64();
      update.truncated_through = dec.get_u64();
      break;
    case UpdateKind::kLinkForward:
      update.peer = get_broker(dec);
      update.seq = dec.get_u64();
      update.origin = get_broker(dec);
      update.space = get_space(dec);
      update.payload = dec.get_bytes();
      break;
    case UpdateKind::kLinkAck:
      update.peer = get_broker(dec);
      update.seq = dec.get_u64();
      break;
    case UpdateKind::kLinkTruncate:
      update.peer = get_broker(dec);
      update.seq = dec.get_u64();
      update.truncated_through = dec.get_u64();
      break;
    case UpdateKind::kLinkInSeq:
      update.peer = get_broker(dec);
      update.epoch = dec.get_u64();
      update.seq = dec.get_u64();
      break;
    case UpdateKind::kLinkDead:
      update.peer = get_broker(dec);
      update.dead = dec.get_u8() != 0;
      break;
  }
  return update;
}

std::vector<std::uint8_t> encode_snapshot(const SnapshotImage& image) {
  Encoder enc;
  enc.put_u64(image.session_epoch);
  enc.put_u64(image.next_sub_counter);
  enc.put_u64(image.subscriptions.size());
  for (const SubImage& sub : image.subscriptions) {
    enc.put_i64(sub.id.value);
    put_broker(enc, sub.owner);
    put_space(enc, sub.space);
    enc.put_string(sub.client);
    enc.put_bytes(sub.subscription);
  }
  enc.put_u64(image.tombstones.size());
  for (const SubscriptionId id : image.tombstones) enc.put_i64(id.value);
  enc.put_u64(image.links.size());
  for (const LinkImage& link : image.links) {
    put_broker(enc, link.peer);
    enc.put_u8(link.dead ? 1 : 0);
    enc.put_u64(link.in_epoch);
    enc.put_u64(link.in_seq);
    put_log(enc, link.out_log);
  }
  enc.put_u64(image.clients.size());
  for (const ClientImage& client : image.clients) {
    enc.put_string(client.name);
    put_log(enc, client.log);
  }
  return enc.take();
}

SnapshotImage decode_snapshot(std::span<const std::uint8_t> buffer) {
  Decoder dec(buffer);
  SnapshotImage image;
  image.session_epoch = dec.get_u64();
  image.next_sub_counter = dec.get_u64();
  const std::uint64_t subs = dec.get_u64();
  for (std::uint64_t i = 0; i < subs; ++i) {
    SubImage sub;
    sub.id = SubscriptionId{dec.get_i64()};
    sub.owner = get_broker(dec);
    sub.space = get_space(dec);
    sub.client = dec.get_string();
    sub.subscription = dec.get_bytes();
    image.subscriptions.push_back(std::move(sub));
  }
  const std::uint64_t tombs = dec.get_u64();
  for (std::uint64_t i = 0; i < tombs; ++i) {
    image.tombstones.push_back(SubscriptionId{dec.get_i64()});
  }
  const std::uint64_t links = dec.get_u64();
  for (std::uint64_t i = 0; i < links; ++i) {
    LinkImage link;
    link.peer = get_broker(dec);
    link.dead = dec.get_u8() != 0;
    link.in_epoch = dec.get_u64();
    link.in_seq = dec.get_u64();
    link.out_log = get_log(dec);
    image.links.push_back(std::move(link));
  }
  const std::uint64_t clients = dec.get_u64();
  for (std::uint64_t i = 0; i < clients; ++i) {
    ClientImage client;
    client.name = dec.get_string();
    client.log = get_log(dec);
    image.clients.push_back(std::move(client));
  }
  return image;
}

}  // namespace gryphon::replication
