// Per-consumer event log (paper Section 4.2).
//
// "These protocol objects are robust enough to handle transient failures of
// connections by maintaining an event log per client. Once a client
// re-connects after a failure, the client protocol object delivers the
// events received while the client was dis-connected. A garbage collector
// periodically cleans up the log."
//
// The log assigns a monotonically increasing sequence number per delivered
// event. Consumers acknowledge cumulatively; acknowledged entries are
// garbage collected, as are entries older than a retention horizon (the
// periodic collector), bounding memory when a consumer never returns.
//
// One class serves both replay planes: the client protocol logs Deliver
// frames per client, and the broker protocol logs EventForward frames per
// neighbor broker (each entry then also records the spanning-tree origin the
// forward was multicast under, so a replay reconstructs the original frame).
//
// When the retention collector drops entries that were never acknowledged,
// the loss is recorded: truncated_through() is the highest sequence number
// lost that way, so a reconnecting consumer can be told its replay window
// was truncated instead of the gap passing silently.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace gryphon {

class EventLog {
 public:
  struct Entry {
    std::uint64_t seq{0};
    SpaceId space{0};
    std::vector<std::uint8_t> event;  // codec-encoded
    Ticks logged_at{0};
    /// Spanning-tree root the event was multicast under; only meaningful
    /// for broker-link logs (client logs leave it invalid).
    BrokerId origin{};
  };

  /// Appends an event; returns its sequence number (starting at 1).
  std::uint64_t append(SpaceId space, std::vector<std::uint8_t> event, Ticks now,
                       BrokerId origin = BrokerId{});

  /// Appends at an explicit sequence number (replication apply): forces the
  /// next sequence to `seq` first, so a standby mirrors the primary's
  /// numbering exactly even across rebases. No-op for seqs already retired.
  void append_at(std::uint64_t seq, SpaceId space, std::vector<std::uint8_t> event, Ticks now,
                 BrokerId origin = BrokerId{});

  /// Installs replicated state wholesale (standby snapshot apply),
  /// replacing whatever the log held.
  void restore(std::uint64_t next_seq, std::uint64_t acked, std::uint64_t truncated_through,
               std::deque<Entry> entries);

  /// Replication apply of the primary's retention truncation: drops
  /// entries with seq <= drop_through and adopts its truncation point.
  void truncate_to(std::uint64_t drop_through, std::uint64_t truncated_through);

  /// Failover rebase for broker-link logs: skips the sequence range the
  /// dead primary may have assigned but never replicated, so post-promotion
  /// appends can never collide with sequences the peer already consumed.
  /// Retained entries keep their numbers and stay replayable; the receiver
  /// crosses the synthetic gap via the heartbeat floor rule (see
  /// Broker::tick_links).
  void advance_next_seq(std::uint64_t gap) { next_seq_ += gap; }

  /// Failover rebase for client logs: same sequence skip, plus an honest
  /// truncation bound — the dead primary may have delivered up to `gap`
  /// further events that were never replicated, so everything through the
  /// post-gap last_seq() is reported as potentially lost. Retained entries
  /// below the bound still replay; the bound promises no *silent* loss
  /// above it.
  void rebase_for_failover(std::uint64_t gap) {
    next_seq_ += gap;
    if (last_seq() > truncated_through_) truncated_through_ = last_seq();
  }

  /// Cumulative acknowledgement: entries with seq <= acked are collected.
  void acknowledge(std::uint64_t seq);

  /// Entries the consumer has not acknowledged, with seq > after.
  [[nodiscard]] std::vector<const Entry*> unacknowledged(std::uint64_t after = 0) const;

  /// The most recently appended entry. Precondition: !empty().
  [[nodiscard]] const Entry& back() const { return entries_.back(); }

  /// The periodic garbage collector: drops entries logged before
  /// `now - retention`, even if unacknowledged. Returns how many died.
  /// Unacknowledged losses are recorded in truncated_through().
  std::size_t collect(Ticks now, Ticks retention);

  /// Drops every retained entry (a consumer declared permanently gone).
  /// Unacknowledged losses are recorded in truncated_through(); returns the
  /// number of unacknowledged entries lost.
  std::size_t drop_all();

  /// Highest sequence number ever lost while unacknowledged (0 when replay
  /// has never been truncated). A consumer resuming from seq < this value
  /// has a hole in its replay window: [its seq + 1, truncated_through()].
  [[nodiscard]] std::uint64_t truncated_through() const { return truncated_through_; }

  [[nodiscard]] std::uint64_t last_seq() const { return next_seq_ - 1; }
  [[nodiscard]] std::uint64_t acked_seq() const { return acked_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

 private:
  std::deque<Entry> entries_;
  std::uint64_t next_seq_{1};
  std::uint64_t acked_{0};
  std::uint64_t truncated_through_{0};
};

}  // namespace gryphon
