// Per-client event log (paper Section 4.2).
//
// "These protocol objects are robust enough to handle transient failures of
// connections by maintaining an event log per client. Once a client
// re-connects after a failure, the client protocol object delivers the
// events received while the client was dis-connected. A garbage collector
// periodically cleans up the log."
//
// The log assigns a monotonically increasing sequence number per delivered
// event. Clients acknowledge cumulatively; acknowledged entries are garbage
// collected, as are entries older than a retention horizon (the periodic
// collector), bounding memory when a client never returns.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace gryphon {

class EventLog {
 public:
  struct Entry {
    std::uint64_t seq{0};
    SpaceId space{0};
    std::vector<std::uint8_t> event;  // codec-encoded
    Ticks logged_at{0};
  };

  /// Appends an event; returns its sequence number (starting at 1).
  std::uint64_t append(SpaceId space, std::vector<std::uint8_t> event, Ticks now);

  /// Cumulative acknowledgement: entries with seq <= acked are collected.
  void acknowledge(std::uint64_t seq);

  /// Entries the client has not acknowledged, with seq > after.
  [[nodiscard]] std::vector<const Entry*> unacknowledged(std::uint64_t after = 0) const;

  /// The most recently appended entry. Precondition: !empty().
  [[nodiscard]] const Entry& back() const { return entries_.back(); }

  /// The periodic garbage collector: drops entries logged before
  /// `now - retention`, even if unacknowledged. Returns how many died.
  std::size_t collect(Ticks now, Ticks retention);

  [[nodiscard]] std::uint64_t last_seq() const { return next_seq_ - 1; }
  [[nodiscard]] std::uint64_t acked_seq() const { return acked_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

 private:
  std::deque<Entry> entries_;
  std::uint64_t next_seq_{1};
  std::uint64_t acked_{0};
};

}  // namespace gryphon
