// The client library: a publisher/subscriber endpoint.
//
// A client connects to one broker, announces itself by name (identity
// persists across reconnects so the broker's event log can replay missed
// deliveries), registers content-based subscriptions, publishes events, and
// receives matched events. Acknowledgements are sent automatically by
// default, driving the broker-side log garbage collection.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "broker/transport.h"
#include "broker/wire.h"
#include "common/mutex.h"
#include "event/parser.h"

namespace gryphon {

class Client : public TransportHandler {
 public:
  struct Options {
    /// Acknowledge every delivery immediately.
    bool auto_ack{true};
  };

  /// One schema per information space, same order as the broker's.
  Client(std::string name, Transport& transport, std::vector<SchemaPtr> spaces,
         Options options);
  Client(std::string name, Transport& transport, std::vector<SchemaPtr> spaces)
      : Client(std::move(name), transport, std::move(spaces), Options()) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Binds to an established connection (the owner dials the broker through
  /// the transport) and sends the client hello, including the last sequence
  /// number seen so the broker replays exactly the missed suffix.
  void bind(ConnId conn);

  [[nodiscard]] bool connected() const;
  [[nodiscard]] std::uint64_t last_seq() const;

  /// Highest delivery sequence the broker reported as lost to retention GC
  /// while this client was away (from the HelloAck; 0 = nothing lost). If
  /// this exceeds the last sequence seen before reconnecting, deliveries in
  /// (last_seq, replay_truncated_through] are gone for good — the replay
  /// has a hole the application may need to repair out of band.
  [[nodiscard]] std::uint64_t replay_truncated_through() const;

  /// Registers a subscription; returns the request token. The broker's
  /// acknowledgement (carrying the SubscriptionId) is surfaced through
  /// subscription_id(token) once it arrives.
  std::uint64_t subscribe(std::uint16_t space, const Subscription& subscription);
  /// Convenience: parses predicate text against the space's schema.
  /// Disjunctions ("a = 1 | b > 2") are decomposed into one subscription
  /// per arm; the returned tokens correspond to the arms in order. The
  /// broker still delivers at most one copy of a matching event.
  std::vector<std::uint64_t> subscribe_predicate(std::uint16_t space, std::string_view predicate);
  /// As subscribe_predicate but for a single-conjunction predicate;
  /// returns its one token.
  std::uint64_t subscribe(std::uint16_t space, std::string_view predicate);

  /// The broker-assigned id for an acknowledged subscribe request.
  [[nodiscard]] std::optional<SubscriptionId> subscription_id(std::uint64_t token) const;

  void unsubscribe(SubscriptionId id);

  void publish(std::uint16_t space, const Event& event);

  /// A delivered event with its space and broker sequence number.
  struct Delivery {
    std::uint16_t space{0};
    std::uint64_t seq{0};
    Event event;
  };

  /// Drains everything delivered so far.
  std::vector<Delivery> take_deliveries();

  /// Blocks until at least `count` deliveries are buffered or `timeout_ms`
  /// elapses; true on success. (Pumped transports deliver synchronously, so
  /// tests on InProcNetwork never actually block here.)
  bool wait_for_deliveries(std::size_t count, int timeout_ms);

  /// Error frames received from the broker (malformed requests etc).
  std::vector<std::string> take_errors();

  /// Quenching (Elvin-style, paper Section 5): true when the broker has
  /// reported at least one subscriber for the space. A publisher may use
  /// this to suppress event generation entirely while nobody listens.
  /// Defaults to true until the broker says otherwise (never drops events
  /// on a stale view).
  [[nodiscard]] bool space_has_subscribers(std::uint16_t space) const;

  // TransportHandler:
  void on_connect(ConnId conn) override;
  void on_frame(ConnId conn, std::span<const std::uint8_t> frame) override;
  void on_disconnect(ConnId conn) override;

 private:
  std::string name_;
  Transport* transport_;
  std::vector<SchemaPtr> spaces_;
  Options options_;

  mutable Mutex mutex_;
  std::condition_variable cv_;
  ConnId conn_ GUARDED_BY(mutex_){kInvalidConn};
  std::uint64_t last_seq_ GUARDED_BY(mutex_){0};
  std::uint64_t replay_truncated_through_ GUARDED_BY(mutex_){0};
  std::uint64_t next_token_ GUARDED_BY(mutex_){1};
  std::unordered_map<std::uint64_t, SubscriptionId> acked_subscriptions_ GUARDED_BY(mutex_);
  std::deque<Delivery> deliveries_ GUARDED_BY(mutex_);
  std::vector<std::string> errors_ GUARDED_BY(mutex_);
  // space -> has subscribers
  std::unordered_map<std::uint16_t, bool> quench_ GUARDED_BY(mutex_);
};

}  // namespace gryphon
