// The broker wire protocol.
//
// Every frame is a type byte followed by a type-specific payload encoded
// with the binary codec (event/codec.h). On stream transports (TCP) frames
// are length-prefixed; datagram-style transports (in-process) carry them
// whole. A broker node implements both the broker-to-client protocol
// (hello/subscribe/publish/deliver/ack) and the broker-to-broker protocol
// (subscription propagation and event forwarding) — paper Section 4.2.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "event/codec.h"
#include "event/event.h"
#include "event/subscription.h"

namespace gryphon::wire {

enum class FrameType : std::uint8_t {
  kHelloClient = 1,   // client -> broker: name, last delivered seq seen
  kHelloBroker = 2,   // broker -> broker: sender's broker id
  kHelloAck = 3,      // broker -> client: accepted, replay begins after this
  kSubscribe = 4,     // client -> broker: token, space, subscription
  kSubscribeAck = 5,  // broker -> client: token, assigned subscription id
  kUnsubscribe = 6,   // client -> broker: subscription id
  kPublish = 7,       // client -> broker: space, event
  kDeliver = 8,       // broker -> client: seq, space, event
  kAck = 9,           // client -> broker: cumulative seq
  kSubPropagate = 10, // broker -> broker: id, owner broker, space, subscription
  kUnsubPropagate = 11,  // broker -> broker: id
  kEventForward = 12,    // broker -> broker: spanning-tree root, space, event
  kError = 13,           // broker -> client: token, message
  kQuench = 14,          // broker -> client: space, whether any subscriber exists
};

struct HelloClient {
  std::string name;
  std::uint64_t last_seq{0};
};
struct HelloBroker {
  BrokerId broker;
};
struct HelloAck {
  std::uint64_t resume_from{0};
};
struct SubscribeReq {
  std::uint64_t token{0};
  SpaceId space{0};
  std::vector<std::uint8_t> subscription;  // codec-encoded Subscription
};
struct SubscribeAck {
  std::uint64_t token{0};
  SubscriptionId id;
};
struct Unsubscribe {
  SubscriptionId id;
};
struct Publish {
  SpaceId space{0};
  std::vector<std::uint8_t> event;  // codec-encoded Event
};
struct Deliver {
  std::uint64_t seq{0};
  SpaceId space{0};
  std::vector<std::uint8_t> event;
};
struct Ack {
  std::uint64_t seq{0};
};
struct SubPropagate {
  SubscriptionId id;
  BrokerId owner;
  SpaceId space{0};
  std::vector<std::uint8_t> subscription;
};
struct UnsubPropagate {
  SubscriptionId id;
};
struct EventForward {
  BrokerId tree_root;
  SpaceId space{0};
  std::vector<std::uint8_t> event;
};
struct ErrorFrame {
  std::uint64_t token{0};
  std::string message;
};
/// Quenching (cf. Elvin, discussed in the paper's related work): brokers
/// tell connected clients whether an information space currently has any
/// subscriber at all, so publishers can suppress event generation entirely
/// when nobody is listening.
struct Quench {
  SpaceId space{0};
  bool has_subscribers{false};
};

/// Reads the type byte without consuming the payload.
FrameType peek_type(std::span<const std::uint8_t> frame);

std::vector<std::uint8_t> encode(const HelloClient&);
std::vector<std::uint8_t> encode(const HelloBroker&);
std::vector<std::uint8_t> encode(const HelloAck&);
std::vector<std::uint8_t> encode(const SubscribeReq&);
std::vector<std::uint8_t> encode(const SubscribeAck&);
std::vector<std::uint8_t> encode(const Unsubscribe&);
std::vector<std::uint8_t> encode(const Publish&);
std::vector<std::uint8_t> encode(const Deliver&);
std::vector<std::uint8_t> encode(const Ack&);
std::vector<std::uint8_t> encode(const SubPropagate&);
std::vector<std::uint8_t> encode(const UnsubPropagate&);
std::vector<std::uint8_t> encode(const EventForward&);
std::vector<std::uint8_t> encode(const ErrorFrame&);
std::vector<std::uint8_t> encode(const Quench&);

/// Each decode throws CodecError on malformed input or type mismatch.
HelloClient decode_hello_client(std::span<const std::uint8_t> frame);
HelloBroker decode_hello_broker(std::span<const std::uint8_t> frame);
HelloAck decode_hello_ack(std::span<const std::uint8_t> frame);
SubscribeReq decode_subscribe(std::span<const std::uint8_t> frame);
SubscribeAck decode_subscribe_ack(std::span<const std::uint8_t> frame);
Unsubscribe decode_unsubscribe(std::span<const std::uint8_t> frame);
Publish decode_publish(std::span<const std::uint8_t> frame);
Deliver decode_deliver(std::span<const std::uint8_t> frame);
Ack decode_ack(std::span<const std::uint8_t> frame);
SubPropagate decode_sub_propagate(std::span<const std::uint8_t> frame);
UnsubPropagate decode_unsub_propagate(std::span<const std::uint8_t> frame);
EventForward decode_event_forward(std::span<const std::uint8_t> frame);
ErrorFrame decode_error(std::span<const std::uint8_t> frame);
Quench decode_quench(std::span<const std::uint8_t> frame);

}  // namespace gryphon::wire
