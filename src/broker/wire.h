// The broker wire protocol.
//
// Every frame is a type byte followed by a type-specific payload encoded
// with the binary codec (event/codec.h). On stream transports (TCP) frames
// are length-prefixed; datagram-style transports (in-process) carry them
// whole. A broker node implements both the broker-to-client protocol
// (hello/subscribe/publish/deliver/ack) and the broker-to-broker protocol
// (subscription propagation and event forwarding) — paper Section 4.2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "event/codec.h"
#include "event/event.h"
#include "event/subscription.h"

namespace gryphon::wire {

enum class FrameType : std::uint8_t {
  kHelloClient = 1,   // client -> broker: name, last delivered seq seen
  kHelloBroker = 2,   // broker -> broker: sender's broker id
  kHelloAck = 3,      // broker -> client: accepted, replay begins after this
  kSubscribe = 4,     // client -> broker: token, space, subscription
  kSubscribeAck = 5,  // broker -> client: token, assigned subscription id
  kUnsubscribe = 6,   // client -> broker: subscription id
  kPublish = 7,       // client -> broker: space, event
  kDeliver = 8,       // broker -> client: seq, space, event
  kAck = 9,           // client -> broker: cumulative seq
  kSubPropagate = 10, // broker -> broker: id, owner broker, space, subscription
  kUnsubPropagate = 11,  // broker -> broker: id
  kEventForward = 12,    // broker -> broker: session-sequenced forwarded event
  kError = 13,           // broker -> client: token, message
  kQuench = 14,          // broker -> client: space, whether any subscriber exists
  kBrokerAck = 15,       // broker -> broker: cumulative ack of forwards on a link
  kLinkHeartbeat = 16,   // broker -> broker: link liveness probe
  kReplHello = 17,       // standby -> primary: attach/resume the state stream
  kStateSnapshot = 18,   // primary -> standby: full durable-state image
  kStateUpdate = 19,     // primary -> standby: one sequenced state mutation
  kReplAck = 20,         // standby -> primary: cumulative ack of updates
  kPromote = 21,         // operator -> standby: assume the primary's role
};

/// Number of frame types in the protocol. Frame-type values are dense
/// starting at 1, so this equals the highest enumerator. The wire
/// robustness suite pins its frame table to this count, and gryphon-analyze
/// cross-checks it against the enumerator list — adding a frame type
/// without extending both trips the protocol rule.
inline constexpr std::size_t kFrameTypeCount = 21;

struct HelloClient {
  std::string name;
  std::uint64_t last_seq{0};
};
/// The broker-link handshake, sent by both ends when a link comes up. It
/// identifies the sender and its link-session epoch (fresh per process so a
/// restarted broker is never confused with its previous incarnation), and
/// reports the receiver-side state of the *reverse* direction — the highest
/// forward sequence this broker has consumed from the peer, and under which
/// of the peer's epochs — so the peer can replay exactly the unacked suffix.
struct HelloBroker {
  BrokerId broker;
  std::uint64_t epoch{0};            // sender's link-session epoch
  std::uint64_t peer_epoch_seen{0};  // peer epoch the counters below refer to
  std::uint64_t peer_last_seq{0};    // last forward seq consumed from the peer
};
struct HelloAck {
  std::uint64_t resume_from{0};
  /// Upper bound on delivery sequences the broker can no longer replay
  /// (0 = none): retention GC dropped them while unacknowledged, or a
  /// promoted standby rebased past the dead primary's possibly-unreplicated
  /// tail. A client whose last seen seq is below this may have a hole in
  /// its replay — events in (last_seq, truncated_through] not re-delivered
  /// during resume are gone for good. It is a *bound*, not an exact count:
  /// after failover the standby still replays every retained entry below
  /// it, so the hole can be empty; what the bound promises is that nothing
  /// above it was lost silently.
  std::uint64_t truncated_through{0};
};
struct SubscribeReq {
  std::uint64_t token{0};
  SpaceId space{0};
  std::vector<std::uint8_t> subscription;  // codec-encoded Subscription
};
struct SubscribeAck {
  std::uint64_t token{0};
  SubscriptionId id;
};
struct Unsubscribe {
  SubscriptionId id;
};
struct Publish {
  SpaceId space{0};
  std::vector<std::uint8_t> event;  // codec-encoded Event
};
struct Deliver {
  std::uint64_t seq{0};
  SpaceId space{0};
  std::vector<std::uint8_t> event;
};
struct Ack {
  std::uint64_t seq{0};
};
struct SubPropagate {
  SubscriptionId id;
  BrokerId owner;
  SpaceId space{0};
  std::vector<std::uint8_t> subscription;
};
struct UnsubPropagate {
  SubscriptionId id;
};
/// A forwarded event on a broker link. Forwards are sequenced per sender
/// link session ({epoch, seq} with seq starting at 1): the receiver
/// delivers in order exactly once, acknowledges cumulatively (BrokerAck),
/// and drops duplicates/out-of-order frames, which the sender's
/// log-backed go-back-N retransmission eventually fills in.
struct EventForward {
  BrokerId tree_root;
  SpaceId space{0};
  std::vector<std::uint8_t> event;
  std::uint64_t epoch{0};
  std::uint64_t seq{0};
};
/// Cumulative acknowledgement of EventForward frames received on a link:
/// "I have consumed every forward of yours up to seq under your epoch".
struct BrokerAck {
  std::uint64_t epoch{0};
  std::uint64_t seq{0};
};
/// Link liveness probe; any inbound frame refreshes the link's activity
/// clock, heartbeats just guarantee a minimum inbound rate on idle links so
/// a silent partition is distinguishable from silence. It also advertises
/// the sender's replay-window truncation point: if retention GC dropped
/// unacked forwards, a receiver still waiting below that point would stall
/// forever on a gap go-back-N can no longer fill — the heartbeat lets it
/// skip ahead (accepting the recorded loss) and resume.
struct LinkHeartbeat {
  std::uint64_t epoch{0};
  std::uint64_t truncated_through{0};
};
/// Replication attach/resume (Clone pattern, docs/fault-tolerance.md): a
/// standby dials its primary and reports the last state-update sequence it
/// has durably applied. The primary resumes the update stream right after
/// that point, or — when the requested point has been truncated out of its
/// update log — sends a fresh StateSnapshot and streams from there.
struct ReplHello {
  BrokerId primary;  // who the standby believes it is shadowing
  std::uint64_t applied_seq{0};
};
/// Full durable-state image: subscription registry (covering-parked
/// replicas included), link-session counters, and every per-client
/// EventLog window, as encoded by broker/replication.h. `through_seq` is
/// the update-stream position the image captures; updates resume at
/// through_seq + 1.
struct StateSnapshot {
  std::uint64_t through_seq{0};
  std::vector<std::uint8_t> state;
};
/// One sequenced durable-state mutation (a replication::Update, encoded).
/// Updates are numbered from 1 per primary and applied strictly in order;
/// the standby acks cumulatively with ReplAck and drops duplicates and
/// gaps exactly like the EventForward session does.
struct StateUpdate {
  std::uint64_t seq{0};
  std::vector<std::uint8_t> update;
};
/// Cumulative acknowledgement of StateUpdate frames: "applied every update
/// through seq". Retires the primary's replication log prefix.
struct ReplAck {
  std::uint64_t seq{0};
};
/// Promotion order: the standby stops shadowing and assumes `primary`'s
/// spanning-tree role and identity (it must already be replicating that
/// broker). Sent by an operator tool or generated internally when the
/// replication link has been dead past the promote timeout.
struct Promote {
  BrokerId primary;
};
struct ErrorFrame {
  std::uint64_t token{0};
  std::string message;
};
/// Quenching (cf. Elvin, discussed in the paper's related work): brokers
/// tell connected clients whether an information space currently has any
/// subscriber at all, so publishers can suppress event generation entirely
/// when nobody is listening.
struct Quench {
  SpaceId space{0};
  bool has_subscribers{false};
};

/// Reads the type byte without consuming the payload.
FrameType peek_type(std::span<const std::uint8_t> frame);

std::vector<std::uint8_t> encode(const HelloClient&);
std::vector<std::uint8_t> encode(const HelloBroker&);
std::vector<std::uint8_t> encode(const HelloAck&);
std::vector<std::uint8_t> encode(const SubscribeReq&);
std::vector<std::uint8_t> encode(const SubscribeAck&);
std::vector<std::uint8_t> encode(const Unsubscribe&);
std::vector<std::uint8_t> encode(const Publish&);
std::vector<std::uint8_t> encode(const Deliver&);
std::vector<std::uint8_t> encode(const Ack&);
std::vector<std::uint8_t> encode(const SubPropagate&);
std::vector<std::uint8_t> encode(const UnsubPropagate&);
std::vector<std::uint8_t> encode(const EventForward&);
std::vector<std::uint8_t> encode(const ErrorFrame&);
std::vector<std::uint8_t> encode(const Quench&);
std::vector<std::uint8_t> encode(const BrokerAck&);
std::vector<std::uint8_t> encode(const LinkHeartbeat&);
std::vector<std::uint8_t> encode(const ReplHello&);
std::vector<std::uint8_t> encode(const StateSnapshot&);
std::vector<std::uint8_t> encode(const StateUpdate&);
std::vector<std::uint8_t> encode(const ReplAck&);
std::vector<std::uint8_t> encode(const Promote&);

/// Each decode throws CodecError on malformed input or type mismatch.
HelloClient decode_hello_client(std::span<const std::uint8_t> frame);
HelloBroker decode_hello_broker(std::span<const std::uint8_t> frame);
HelloAck decode_hello_ack(std::span<const std::uint8_t> frame);
SubscribeReq decode_subscribe(std::span<const std::uint8_t> frame);
SubscribeAck decode_subscribe_ack(std::span<const std::uint8_t> frame);
Unsubscribe decode_unsubscribe(std::span<const std::uint8_t> frame);
Publish decode_publish(std::span<const std::uint8_t> frame);
Deliver decode_deliver(std::span<const std::uint8_t> frame);
Ack decode_ack(std::span<const std::uint8_t> frame);
SubPropagate decode_sub_propagate(std::span<const std::uint8_t> frame);
UnsubPropagate decode_unsub_propagate(std::span<const std::uint8_t> frame);
EventForward decode_event_forward(std::span<const std::uint8_t> frame);
ErrorFrame decode_error(std::span<const std::uint8_t> frame);
Quench decode_quench(std::span<const std::uint8_t> frame);
BrokerAck decode_broker_ack(std::span<const std::uint8_t> frame);
LinkHeartbeat decode_link_heartbeat(std::span<const std::uint8_t> frame);
ReplHello decode_repl_hello(std::span<const std::uint8_t> frame);
StateSnapshot decode_state_snapshot(std::span<const std::uint8_t> frame);
StateUpdate decode_state_update(std::span<const std::uint8_t> frame);
ReplAck decode_repl_ack(std::span<const std::uint8_t> frame);
Promote decode_promote(std::span<const std::uint8_t> frame);

}  // namespace gryphon::wire
