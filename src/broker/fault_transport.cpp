#include "broker/fault_transport.h"

#include <algorithm>
#include <utility>

namespace gryphon {

bool FaultInjectingTransport::eligible(const std::vector<std::uint8_t>& frame) const {
  if (options_.fault_frame_types.empty()) return true;
  if (frame.empty()) return true;
  return std::find(options_.fault_frame_types.begin(), options_.fault_frame_types.end(),
                   frame[0]) != options_.fault_frame_types.end();
}

void FaultInjectingTransport::collect_released(std::vector<HeldFrame>& out) {
  auto it = held_.begin();
  while (it != held_.end()) {
    if (it->release_after == 0 || --it->release_after == 0) {
      out.push_back(std::move(*it));
      it = held_.erase(it);
    } else {
      ++it;
    }
  }
}

void FaultInjectingTransport::send(ConnId conn, std::vector<std::uint8_t> frame) {
  // Decide every frame's fate under the lock; perform the actual sends
  // outside it (HeldFrame with release_after 0 = send now).
  std::vector<HeldFrame> to_send;
  {
    MutexLock lock(mutex_);
    if (severed_.contains(conn)) {
      ++counters_.severed_out;
      return;
    }
    // This send counts as one pass-through step for every held frame.
    collect_released(to_send);
    if (eligible(frame)) {
      if (options_.drop_rate > 0 && rng_.chance(options_.drop_rate)) {
        ++counters_.dropped;
        frame.clear();
      } else if (options_.duplicate_rate > 0 && rng_.chance(options_.duplicate_rate)) {
        ++counters_.duplicated;
        to_send.push_back(HeldFrame{conn, frame, 0});
      } else if (options_.delay_rate > 0 && rng_.chance(options_.delay_rate)) {
        ++counters_.delayed;
        const auto lo = static_cast<std::int64_t>(options_.delay_min_frames);
        const auto hi =
            static_cast<std::int64_t>(std::max(options_.delay_max_frames,
                                               options_.delay_min_frames));
        held_.push_back(HeldFrame{conn, std::move(frame),
                                  static_cast<std::uint32_t>(rng_.between(lo, hi))});
        frame.clear();
      }
    }
    if (!frame.empty()) to_send.push_back(HeldFrame{conn, std::move(frame), 0});
  }
  for (HeldFrame& held : to_send) {
    inner_->send(held.conn, std::move(held.frame));
  }
}

void FaultInjectingTransport::close(ConnId conn) {
  {
    MutexLock lock(mutex_);
    std::erase_if(held_, [conn](const HeldFrame& held) { return held.conn == conn; });
  }
  inner_->close(conn);
}

void FaultInjectingTransport::on_connect(ConnId conn) {
  if (handler_ != nullptr) handler_->on_connect(conn);
}

void FaultInjectingTransport::on_frame(ConnId conn, std::span<const std::uint8_t> frame) {
  {
    MutexLock lock(mutex_);
    if (severed_.contains(conn)) {
      ++counters_.severed_in;
      return;
    }
  }
  if (handler_ != nullptr) handler_->on_frame(conn, frame);
}

void FaultInjectingTransport::on_disconnect(ConnId conn) {
  {
    MutexLock lock(mutex_);
    severed_.erase(conn);
    std::erase_if(held_, [conn](const HeldFrame& held) { return held.conn == conn; });
  }
  if (handler_ != nullptr) handler_->on_disconnect(conn);
}

void FaultInjectingTransport::sever(ConnId conn) {
  MutexLock lock(mutex_);
  severed_.insert(conn);
  std::erase_if(held_, [conn](const HeldFrame& held) { return held.conn == conn; });
}

void FaultInjectingTransport::heal(ConnId conn) {
  MutexLock lock(mutex_);
  severed_.erase(conn);
}

void FaultInjectingTransport::heal_all() {
  MutexLock lock(mutex_);
  severed_.clear();
}

void FaultInjectingTransport::flush_delayed() {
  std::vector<HeldFrame> to_send;
  {
    MutexLock lock(mutex_);
    to_send.swap(held_);
  }
  for (HeldFrame& held : to_send) {
    inner_->send(held.conn, std::move(held.frame));
  }
}

}  // namespace gryphon
