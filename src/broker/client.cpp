#include "broker/client.h"

#include <stdexcept>

#include "common/logging.h"

namespace gryphon {

Client::Client(std::string name, Transport& transport, std::vector<SchemaPtr> spaces,
               Options options)
    : name_(std::move(name)), transport_(&transport), spaces_(std::move(spaces)),
      options_(options) {
  if (name_.empty()) throw std::invalid_argument("Client: empty name");
  if (spaces_.empty()) throw std::invalid_argument("Client: need at least one space");
}

void Client::bind(ConnId conn) {
  std::uint64_t last;
  {
    MutexLock lock(mutex_);
    conn_ = conn;
    last = last_seq_;
  }
  transport_->send(conn, wire::encode(wire::HelloClient{name_, last}));
}

bool Client::connected() const {
  MutexLock lock(mutex_);
  return conn_ != kInvalidConn;
}

std::uint64_t Client::last_seq() const {
  MutexLock lock(mutex_);
  return last_seq_;
}

std::uint64_t Client::replay_truncated_through() const {
  MutexLock lock(mutex_);
  return replay_truncated_through_;
}

std::uint64_t Client::subscribe(std::uint16_t space, const Subscription& subscription) {
  if (space >= spaces_.size()) throw std::invalid_argument("Client::subscribe: bad space");
  std::uint64_t token;
  ConnId conn;
  {
    MutexLock lock(mutex_);
    token = next_token_++;
    conn = conn_;
  }
  if (conn == kInvalidConn) throw std::runtime_error("Client::subscribe: not connected");
  transport_->send(conn, wire::encode(wire::SubscribeReq{
                             token, SpaceId{static_cast<SpaceId::rep_type>(space)},
                             encode_subscription(subscription)}));
  return token;
}

std::uint64_t Client::subscribe(std::uint16_t space, std::string_view predicate) {
  if (space >= spaces_.size()) throw std::invalid_argument("Client::subscribe: bad space");
  return subscribe(space, parse_subscription(spaces_[space], predicate));
}

std::vector<std::uint64_t> Client::subscribe_predicate(std::uint16_t space,
                                                       std::string_view predicate) {
  if (space >= spaces_.size()) {
    throw std::invalid_argument("Client::subscribe_predicate: bad space");
  }
  std::vector<std::uint64_t> tokens;
  for (const Subscription& arm : parse_disjunction(spaces_[space], predicate)) {
    tokens.push_back(subscribe(space, arm));
  }
  return tokens;
}

std::optional<SubscriptionId> Client::subscription_id(std::uint64_t token) const {
  MutexLock lock(mutex_);
  const auto it = acked_subscriptions_.find(token);
  if (it == acked_subscriptions_.end()) return std::nullopt;
  return it->second;
}

void Client::unsubscribe(SubscriptionId id) {
  ConnId conn;
  {
    MutexLock lock(mutex_);
    conn = conn_;
  }
  if (conn == kInvalidConn) throw std::runtime_error("Client::unsubscribe: not connected");
  transport_->send(conn, wire::encode(wire::Unsubscribe{id}));
}

void Client::publish(std::uint16_t space, const Event& event) {
  if (space >= spaces_.size()) throw std::invalid_argument("Client::publish: bad space");
  ConnId conn;
  {
    MutexLock lock(mutex_);
    conn = conn_;
  }
  if (conn == kInvalidConn) throw std::runtime_error("Client::publish: not connected");
  transport_->send(conn, wire::encode(wire::Publish{SpaceId{static_cast<SpaceId::rep_type>(space)},
                                                    encode_event(event)}));
}

std::vector<Client::Delivery> Client::take_deliveries() {
  MutexLock lock(mutex_);
  std::vector<Delivery> out(std::make_move_iterator(deliveries_.begin()),
                            std::make_move_iterator(deliveries_.end()));
  deliveries_.clear();
  return out;
}

bool Client::wait_for_deliveries(std::size_t count, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  MutexUniqueLock lock(mutex_);
  while (deliveries_.size() < count) {
    if (cv_.wait_until(lock.native(), deadline) == std::cv_status::timeout) {
      return deliveries_.size() >= count;
    }
  }
  return true;
}

std::vector<std::string> Client::take_errors() {
  MutexLock lock(mutex_);
  return std::move(errors_);
}

bool Client::space_has_subscribers(std::uint16_t space) const {
  MutexLock lock(mutex_);
  const auto it = quench_.find(space);
  return it == quench_.end() ? true : it->second;
}

void Client::on_connect(ConnId) {}

void Client::on_frame(ConnId conn, std::span<const std::uint8_t> frame) {
  try {
    switch (wire::peek_type(frame)) {
      case wire::FrameType::kHelloAck: {
        // Replay follows as ordinary deliveries; the ack itself only
        // matters when it reports a truncated replay window.
        const auto ack = wire::decode_hello_ack(frame);
        MutexLock lock(mutex_);
        replay_truncated_through_ = ack.truncated_through;
        if (ack.truncated_through > last_seq_) {
          // An upper bound, not a body count: retention GC reports exactly
          // what it dropped, while a promoted standby reports the whole
          // failover gap even though it still replays every delivery it
          // retained. Deliveries in the window that do NOT arrive are gone.
          GRYPHON_WARN("client")
              << name_ << ": broker may have lost deliveries in (" << last_seq_ << ", "
              << ack.truncated_through << "]; anything not replayed is gone";
        }
        break;
      }
      case wire::FrameType::kSubscribeAck: {
        const auto ack = wire::decode_subscribe_ack(frame);
        MutexLock lock(mutex_);
        acked_subscriptions_[ack.token] = ack.id;
        break;
      }
      case wire::FrameType::kDeliver: {
        const auto deliver = wire::decode_deliver(frame);
        const auto space_index = static_cast<std::size_t>(deliver.space.value);
        if (!deliver.space.valid() || space_index >= spaces_.size()) break;
        Delivery delivery{static_cast<std::uint16_t>(deliver.space.value), deliver.seq,
                          decode_event(spaces_[space_index], deliver.event)};
        bool fresh = false;
        {
          MutexLock lock(mutex_);
          // Replays can resend already-seen events; drop duplicates but
          // still acknowledge them so the broker can collect its log.
          if (deliver.seq > last_seq_) {
            last_seq_ = deliver.seq;
            deliveries_.push_back(std::move(delivery));
            fresh = true;
          }
        }
        if (fresh) cv_.notify_all();
        if (options_.auto_ack) transport_->send(conn, wire::encode(wire::Ack{deliver.seq}));
        break;
      }
      case wire::FrameType::kError: {
        const auto error = wire::decode_error(frame);
        MutexLock lock(mutex_);
        errors_.push_back(error.message);
        break;
      }
      case wire::FrameType::kQuench: {
        const auto quench = wire::decode_quench(frame);
        MutexLock lock(mutex_);
        quench_[static_cast<std::uint16_t>(quench.space.value)] = quench.has_subscribers;
        break;
      }
      default:
        GRYPHON_WARN("client") << name_ << ": unexpected frame";
        break;
    }
  } catch (const std::exception& e) {
    GRYPHON_WARN("client") << name_ << ": bad frame: " << e.what();
  }
}

void Client::on_disconnect(ConnId conn) {
  MutexLock lock(mutex_);
  if (conn_ == conn) conn_ = kInvalidConn;
}

}  // namespace gryphon
