#include "broker/wire.h"

namespace gryphon::wire {

namespace {

Encoder begin(FrameType type) {
  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(type));
  return enc;
}

Decoder open(std::span<const std::uint8_t> frame, FrameType expected) {
  Decoder dec(frame);
  const auto type = dec.get_u8();
  if (type != static_cast<std::uint8_t>(expected)) {
    throw CodecError("wire: unexpected frame type " + std::to_string(type));
  }
  return dec;
}

// Information spaces travel as uint16 on the wire.
void put_space(Encoder& enc, SpaceId space) {
  enc.put_u16(static_cast<std::uint16_t>(space.value));
}

SpaceId get_space(Decoder& dec) {
  return SpaceId{static_cast<SpaceId::rep_type>(dec.get_u16())};
}

}  // namespace

FrameType peek_type(std::span<const std::uint8_t> frame) {
  if (frame.empty()) throw CodecError("wire: empty frame");
  return static_cast<FrameType>(frame[0]);
}

std::vector<std::uint8_t> encode(const HelloClient& m) {
  Encoder enc = begin(FrameType::kHelloClient);
  enc.put_string(m.name);
  enc.put_u64(m.last_seq);
  return enc.take();
}

std::vector<std::uint8_t> encode(const HelloBroker& m) {
  Encoder enc = begin(FrameType::kHelloBroker);
  enc.put_u32(static_cast<std::uint32_t>(m.broker.value));
  enc.put_u64(m.epoch);
  enc.put_u64(m.peer_epoch_seen);
  enc.put_u64(m.peer_last_seq);
  return enc.take();
}

std::vector<std::uint8_t> encode(const HelloAck& m) {
  Encoder enc = begin(FrameType::kHelloAck);
  enc.put_u64(m.resume_from);
  enc.put_u64(m.truncated_through);
  return enc.take();
}

std::vector<std::uint8_t> encode(const SubscribeReq& m) {
  Encoder enc = begin(FrameType::kSubscribe);
  enc.put_u64(m.token);
  put_space(enc, m.space);
  enc.put_bytes(m.subscription);
  return enc.take();
}

std::vector<std::uint8_t> encode(const SubscribeAck& m) {
  Encoder enc = begin(FrameType::kSubscribeAck);
  enc.put_u64(m.token);
  enc.put_i64(m.id.value);
  return enc.take();
}

std::vector<std::uint8_t> encode(const Unsubscribe& m) {
  Encoder enc = begin(FrameType::kUnsubscribe);
  enc.put_i64(m.id.value);
  return enc.take();
}

std::vector<std::uint8_t> encode(const Publish& m) {
  Encoder enc = begin(FrameType::kPublish);
  put_space(enc, m.space);
  enc.put_bytes(m.event);
  return enc.take();
}

std::vector<std::uint8_t> encode(const Deliver& m) {
  Encoder enc = begin(FrameType::kDeliver);
  enc.put_u64(m.seq);
  put_space(enc, m.space);
  enc.put_bytes(m.event);
  return enc.take();
}

std::vector<std::uint8_t> encode(const Ack& m) {
  Encoder enc = begin(FrameType::kAck);
  enc.put_u64(m.seq);
  return enc.take();
}

std::vector<std::uint8_t> encode(const SubPropagate& m) {
  Encoder enc = begin(FrameType::kSubPropagate);
  enc.put_i64(m.id.value);
  enc.put_u32(static_cast<std::uint32_t>(m.owner.value));
  put_space(enc, m.space);
  enc.put_bytes(m.subscription);
  return enc.take();
}

std::vector<std::uint8_t> encode(const UnsubPropagate& m) {
  Encoder enc = begin(FrameType::kUnsubPropagate);
  enc.put_i64(m.id.value);
  return enc.take();
}

std::vector<std::uint8_t> encode(const EventForward& m) {
  Encoder enc = begin(FrameType::kEventForward);
  enc.put_u32(static_cast<std::uint32_t>(m.tree_root.value));
  put_space(enc, m.space);
  enc.put_bytes(m.event);
  enc.put_u64(m.epoch);
  enc.put_u64(m.seq);
  return enc.take();
}

std::vector<std::uint8_t> encode(const BrokerAck& m) {
  Encoder enc = begin(FrameType::kBrokerAck);
  enc.put_u64(m.epoch);
  enc.put_u64(m.seq);
  return enc.take();
}

std::vector<std::uint8_t> encode(const LinkHeartbeat& m) {
  Encoder enc = begin(FrameType::kLinkHeartbeat);
  enc.put_u64(m.epoch);
  enc.put_u64(m.truncated_through);
  return enc.take();
}

std::vector<std::uint8_t> encode(const ReplHello& m) {
  Encoder enc = begin(FrameType::kReplHello);
  enc.put_u32(static_cast<std::uint32_t>(m.primary.value));
  enc.put_u64(m.applied_seq);
  return enc.take();
}

std::vector<std::uint8_t> encode(const StateSnapshot& m) {
  Encoder enc = begin(FrameType::kStateSnapshot);
  enc.put_u64(m.through_seq);
  enc.put_bytes(m.state);
  return enc.take();
}

std::vector<std::uint8_t> encode(const StateUpdate& m) {
  Encoder enc = begin(FrameType::kStateUpdate);
  enc.put_u64(m.seq);
  enc.put_bytes(m.update);
  return enc.take();
}

std::vector<std::uint8_t> encode(const ReplAck& m) {
  Encoder enc = begin(FrameType::kReplAck);
  enc.put_u64(m.seq);
  return enc.take();
}

std::vector<std::uint8_t> encode(const Promote& m) {
  Encoder enc = begin(FrameType::kPromote);
  enc.put_u32(static_cast<std::uint32_t>(m.primary.value));
  return enc.take();
}

std::vector<std::uint8_t> encode(const ErrorFrame& m) {
  Encoder enc = begin(FrameType::kError);
  enc.put_u64(m.token);
  enc.put_string(m.message);
  return enc.take();
}

std::vector<std::uint8_t> encode(const Quench& m) {
  Encoder enc = begin(FrameType::kQuench);
  put_space(enc, m.space);
  enc.put_u8(m.has_subscribers ? 1 : 0);
  return enc.take();
}

HelloClient decode_hello_client(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kHelloClient);
  HelloClient m;
  m.name = dec.get_string();
  m.last_seq = dec.get_u64();
  return m;
}

HelloBroker decode_hello_broker(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kHelloBroker);
  HelloBroker m;
  m.broker = BrokerId{static_cast<BrokerId::rep_type>(dec.get_u32())};
  m.epoch = dec.get_u64();
  m.peer_epoch_seen = dec.get_u64();
  m.peer_last_seq = dec.get_u64();
  return m;
}

HelloAck decode_hello_ack(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kHelloAck);
  HelloAck m;
  m.resume_from = dec.get_u64();
  m.truncated_through = dec.get_u64();
  return m;
}

SubscribeReq decode_subscribe(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kSubscribe);
  SubscribeReq m;
  m.token = dec.get_u64();
  m.space = get_space(dec);
  m.subscription = dec.get_bytes();
  return m;
}

SubscribeAck decode_subscribe_ack(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kSubscribeAck);
  SubscribeAck m;
  m.token = dec.get_u64();
  m.id = SubscriptionId{dec.get_i64()};
  return m;
}

Unsubscribe decode_unsubscribe(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kUnsubscribe);
  Unsubscribe m;
  m.id = SubscriptionId{dec.get_i64()};
  return m;
}

Publish decode_publish(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kPublish);
  Publish m;
  m.space = get_space(dec);
  m.event = dec.get_bytes();
  return m;
}

Deliver decode_deliver(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kDeliver);
  Deliver m;
  m.seq = dec.get_u64();
  m.space = get_space(dec);
  m.event = dec.get_bytes();
  return m;
}

Ack decode_ack(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kAck);
  Ack m;
  m.seq = dec.get_u64();
  return m;
}

SubPropagate decode_sub_propagate(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kSubPropagate);
  SubPropagate m;
  m.id = SubscriptionId{dec.get_i64()};
  m.owner = BrokerId{static_cast<BrokerId::rep_type>(dec.get_u32())};
  m.space = get_space(dec);
  m.subscription = dec.get_bytes();
  return m;
}

UnsubPropagate decode_unsub_propagate(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kUnsubPropagate);
  UnsubPropagate m;
  m.id = SubscriptionId{dec.get_i64()};
  return m;
}

EventForward decode_event_forward(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kEventForward);
  EventForward m;
  m.tree_root = BrokerId{static_cast<BrokerId::rep_type>(dec.get_u32())};
  m.space = get_space(dec);
  m.event = dec.get_bytes();
  m.epoch = dec.get_u64();
  m.seq = dec.get_u64();
  return m;
}

BrokerAck decode_broker_ack(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kBrokerAck);
  BrokerAck m;
  m.epoch = dec.get_u64();
  m.seq = dec.get_u64();
  return m;
}

LinkHeartbeat decode_link_heartbeat(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kLinkHeartbeat);
  LinkHeartbeat m;
  m.epoch = dec.get_u64();
  m.truncated_through = dec.get_u64();
  return m;
}

ReplHello decode_repl_hello(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kReplHello);
  ReplHello m;
  m.primary = BrokerId{static_cast<BrokerId::rep_type>(dec.get_u32())};
  m.applied_seq = dec.get_u64();
  return m;
}

StateSnapshot decode_state_snapshot(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kStateSnapshot);
  StateSnapshot m;
  m.through_seq = dec.get_u64();
  m.state = dec.get_bytes();
  return m;
}

StateUpdate decode_state_update(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kStateUpdate);
  StateUpdate m;
  m.seq = dec.get_u64();
  m.update = dec.get_bytes();
  return m;
}

ReplAck decode_repl_ack(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kReplAck);
  ReplAck m;
  m.seq = dec.get_u64();
  return m;
}

Promote decode_promote(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kPromote);
  Promote m;
  m.primary = BrokerId{static_cast<BrokerId::rep_type>(dec.get_u32())};
  return m;
}

ErrorFrame decode_error(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kError);
  ErrorFrame m;
  m.token = dec.get_u64();
  m.message = dec.get_string();
  return m;
}

Quench decode_quench(std::span<const std::uint8_t> frame) {
  Decoder dec = open(frame, FrameType::kQuench);
  Quench m;
  m.space = get_space(dec);
  m.has_subscribers = dec.get_u8() != 0;
  return m;
}

}  // namespace gryphon::wire
