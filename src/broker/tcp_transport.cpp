#include "broker/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "common/logging.h"

namespace gryphon {

namespace {

bool read_exact(int fd, std::uint8_t* buffer, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, buffer + got, size - got, 0);
    if (n <= 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_all(int fd, const std::uint8_t* buffer, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, buffer + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// Length-prefix framing: u32 little-endian size, then the frame bytes.
std::vector<std::uint8_t> frame_packet(const std::vector<std::uint8_t>& frame) {
  std::vector<std::uint8_t> packet;
  packet.reserve(frame.size() + 4);
  const auto size = static_cast<std::uint32_t>(frame.size());
  packet.push_back(static_cast<std::uint8_t>(size));
  packet.push_back(static_cast<std::uint8_t>(size >> 8));
  packet.push_back(static_cast<std::uint8_t>(size >> 16));
  packet.push_back(static_cast<std::uint8_t>(size >> 24));
  packet.insert(packet.end(), frame.begin(), frame.end());
  return packet;
}

}  // namespace

TcpTransport::TcpTransport(TransportHandler& handler, Options options)
    : handler_(&handler), options_(options) {
  for (std::size_t i = 0; i < options_.sender_threads; ++i) {
    senders_.emplace_back([this] { sender_loop(); });
  }
}

TcpTransport::~TcpTransport() { shutdown(); }

std::uint16_t TcpTransport::listen(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("TcpTransport: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("TcpTransport: bind() failed");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw std::runtime_error("TcpTransport: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  {
    MutexLock lock(mutex_);
    listen_fds_.push_back(fd);
  }
  acceptors_.emplace_back([this, fd] { accept_loop(fd); });
  return ntohs(addr.sin_port);
}

ConnId TcpTransport::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("TcpTransport: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("TcpTransport: bad host address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("TcpTransport: connect() failed");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return register_fd(fd);
}

ConnId TcpTransport::register_fd(int fd) {
  MutexUniqueLock lock(mutex_);
  const ConnId id = next_conn_++;
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->reader = std::thread([this, id, fd] { reader_loop(id, fd); });
  conns_.emplace(id, std::move(conn));
  return id;
}

void TcpTransport::accept_loop(int listen_fd) {
  while (true) {
    int fd;
    {
      MutexLock lock(mutex_);
      if (stopping_) return;
      fd = listen_fd;
    }
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    const int accepted = ::accept(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    if (accepted < 0) {
      MutexLock lock(mutex_);
      if (stopping_) return;
      continue;
    }
    const int one = 1;
    ::setsockopt(accepted, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const ConnId id = register_fd(accepted);
    handler_->on_connect(id);
  }
}

void TcpTransport::reader_loop(ConnId id, int fd) {
  std::vector<std::uint8_t> frame;
  while (true) {
    std::uint8_t header[4];
    if (!read_exact(fd, header, sizeof(header))) break;
    const std::uint32_t size = static_cast<std::uint32_t>(header[0]) |
                               (static_cast<std::uint32_t>(header[1]) << 8) |
                               (static_cast<std::uint32_t>(header[2]) << 16) |
                               (static_cast<std::uint32_t>(header[3]) << 24);
    if (size == 0 || size > options_.max_frame_bytes) {
      GRYPHON_WARN("tcp") << "conn " << id << ": bad frame size " << size;
      break;
    }
    frame.resize(size);
    if (!read_exact(fd, frame.data(), size)) break;
    handler_->on_frame(id, frame);
  }
  bool notify;
  {
    MutexUniqueLock lock(mutex_);
    const auto it = conns_.find(id);
    notify = it != conns_.end() && !it->second->closed && !stopping_;
    if (it != conns_.end()) {
      it->second->closed = true;
      ::shutdown(it->second->fd, SHUT_RDWR);
    }
  }
  if (notify) handler_->on_disconnect(id);
}

void TcpTransport::send(ConnId conn, std::vector<std::uint8_t> frame) {
  std::vector<std::uint8_t> packet = frame_packet(frame);
  {
    MutexLock lock(mutex_);
    const auto it = conns_.find(conn);
    if (it == conns_.end() || it->second->closed) return;  // silent drop, by contract
    it->second->outgoing.push_back(std::move(packet));
    if (!it->second->draining) {
      it->second->draining = true;
      dirty_.push_back(conn);
    }
  }
  send_cv_.notify_one();
}

void TcpTransport::send_batch(ConnId conn, std::vector<std::vector<std::uint8_t>> frames) {
  if (frames.empty()) return;
  // Frame the packets outside the lock, enqueue them all under one lock
  // hold, and wake one sender for the whole flush.
  std::vector<std::vector<std::uint8_t>> packets;
  packets.reserve(frames.size());
  for (const std::vector<std::uint8_t>& frame : frames) packets.push_back(frame_packet(frame));
  {
    MutexLock lock(mutex_);
    const auto it = conns_.find(conn);
    if (it == conns_.end() || it->second->closed) return;  // silent drop, by contract
    for (std::vector<std::uint8_t>& packet : packets) {
      it->second->outgoing.push_back(std::move(packet));
    }
    if (!it->second->draining) {
      it->second->draining = true;
      dirty_.push_back(conn);
    }
  }
  send_cv_.notify_one();
}

void TcpTransport::sender_loop() {
  MutexUniqueLock lock(mutex_);
  while (true) {
    while (!stopping_ && dirty_.empty()) send_cv_.wait(lock.native());
    if (stopping_) return;
    const ConnId id = dirty_.front();
    dirty_.pop_front();
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn& conn = *it->second;
    // Drain this connection's queue; `draining` keeps other senders off it
    // so frame order is preserved. Adjacent queued packets are gathered
    // into one buffer (up to coalesce_bytes) so a batch flush reaches the
    // socket as a single write instead of one syscall per frame — every
    // packet already carries its own length prefix, so the receiver's
    // framing is unaffected by how writes are grouped.
    std::vector<std::uint8_t> gather;
    while (!conn.outgoing.empty() && !conn.closed) {
      gather.clear();
      gather.swap(conn.outgoing.front());
      conn.outgoing.pop_front();
      while (!conn.outgoing.empty() &&
             gather.size() + conn.outgoing.front().size() <= options_.coalesce_bytes) {
        const std::vector<std::uint8_t>& next = conn.outgoing.front();
        gather.insert(gather.end(), next.begin(), next.end());
        conn.outgoing.pop_front();
      }
      const int fd = conn.fd;
      lock.unlock();
      const bool ok = write_all(fd, gather.data(), gather.size());
      lock.lock();
      if (!ok) {
        conn.closed = true;
        ::shutdown(conn.fd, SHUT_RDWR);  // reader observes and reports
        break;
      }
    }
    conn.draining = false;
  }
}

void TcpTransport::close(ConnId conn) {
  MutexLock lock(mutex_);
  close_locked(conn);
}

void TcpTransport::close_locked(ConnId id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  it->second->closed = true;
  ::shutdown(it->second->fd, SHUT_RDWR);
}

void TcpTransport::shutdown() {
  std::vector<std::thread> readers;
  {
    MutexUniqueLock lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    for (const int fd : listen_fds_) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
    listen_fds_.clear();
    for (auto& [id, conn] : conns_) {
      (void)id;
      conn->closed = true;
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  send_cv_.notify_all();
  for (std::thread& t : senders_) {
    if (t.joinable()) t.join();
  }
  for (std::thread& t : acceptors_) {
    if (t.joinable()) t.join();
  }
  {
    MutexUniqueLock lock(mutex_);
    for (auto& [id, conn] : conns_) {
      (void)id;
      readers.push_back(std::move(conn->reader));
    }
  }
  for (std::thread& t : readers) {
    if (t.joinable()) t.join();
  }
  MutexUniqueLock lock(mutex_);
  for (auto& [id, conn] : conns_) {
    (void)id;
    ::close(conn->fd);
  }
  conns_.clear();
}

}  // namespace gryphon
