#include "broker/inproc_transport.h"

#include <stdexcept>

namespace gryphon {

void InProcEndpoint::send(ConnId conn, std::vector<std::uint8_t> frame) {
  network_->enqueue(this, conn, std::move(frame));
}

void InProcEndpoint::close(ConnId conn) { network_->close_from(this, conn); }

InProcEndpoint* InProcNetwork::create_endpoint(const std::string& name) {
  MutexLock lock(mutex_);
  auto it = endpoints_.find(name);
  if (it == endpoints_.end()) {
    it = endpoints_.emplace(name, std::unique_ptr<InProcEndpoint>(new InProcEndpoint(this, name)))
             .first;
  }
  return it->second.get();
}

ConnId InProcNetwork::connect(const std::string& from, const std::string& to) {
  InProcEndpoint* accept_side = nullptr;
  ConnId accept_conn = kInvalidConn;
  ConnId result = kInvalidConn;
  {
    MutexLock lock(mutex_);
    const auto from_it = endpoints_.find(from);
    const auto to_it = endpoints_.find(to);
    if (from_it == endpoints_.end() || to_it == endpoints_.end()) {
      throw std::invalid_argument("InProcNetwork::connect: unknown endpoint");
    }
    Pipe pipe;
    pipe.a = from_it->second.get();
    pipe.b = to_it->second.get();
    pipe.a_conn = next_conn_++;
    pipe.b_conn = next_conn_++;
    pipe.open = true;
    const std::size_t index = pipes_.size();
    pipes_.push_back(pipe);
    conn_to_pipe_[pipe.a_conn] = index;
    conn_to_pipe_[pipe.b_conn] = index;
    accept_side = pipe.b;
    accept_conn = pipe.b_conn;
    result = pipe.a_conn;
  }
  // Callback outside the lock: the handler may immediately send.
  if (accept_side->handler_ != nullptr) accept_side->handler_->on_connect(accept_conn);
  return result;
}

InProcNetwork::Pipe* InProcNetwork::find_pipe(InProcEndpoint* side, ConnId conn, bool& is_a) {
  const auto it = conn_to_pipe_.find(conn);
  if (it == conn_to_pipe_.end()) return nullptr;
  Pipe& pipe = pipes_[it->second];
  if (pipe.a_conn == conn && pipe.a == side) {
    is_a = true;
    return &pipe;
  }
  if (pipe.b_conn == conn && pipe.b == side) {
    is_a = false;
    return &pipe;
  }
  return nullptr;
}

void InProcNetwork::enqueue(InProcEndpoint* sender, ConnId conn,
                            std::vector<std::uint8_t> frame) {
  MutexLock lock(mutex_);
  bool is_a = false;
  Pipe* pipe = find_pipe(sender, conn, is_a);
  if (pipe == nullptr || !pipe->open) return;  // sends on dead connections are dropped
  QueuedFrame q;
  q.pipe = static_cast<std::size_t>(pipe - pipes_.data());
  q.from_a = is_a;
  q.frame = std::move(frame);
  queue_.push_back(std::move(q));
}

void InProcNetwork::close_from(InProcEndpoint* side, ConnId conn) {
  InProcEndpoint* other = nullptr;
  ConnId other_conn = kInvalidConn;
  {
    MutexLock lock(mutex_);
    bool is_a = false;
    Pipe* pipe = find_pipe(side, conn, is_a);
    if (pipe == nullptr || !pipe->open) return;
    pipe->open = false;
    // Both sides observe the disconnect; queued frames for this pipe die.
    const std::size_t index = static_cast<std::size_t>(pipe - pipes_.data());
    for (auto& q : queue_) {
      if (q.pipe == index) q.frame.clear();  // tombstone; skipped at delivery
    }
    other = is_a ? pipe->b : pipe->a;
    other_conn = is_a ? pipe->b_conn : pipe->a_conn;
  }
  if (other->handler_ != nullptr) other->handler_->on_disconnect(other_conn);
  if (side->handler_ != nullptr) side->handler_->on_disconnect(conn);
}

void InProcNetwork::drop(const std::string& endpoint, ConnId conn) {
  InProcEndpoint* side = nullptr;
  {
    MutexLock lock(mutex_);
    const auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end()) {
      throw std::invalid_argument("InProcNetwork::drop: unknown endpoint");
    }
    side = it->second.get();
  }
  close_from(side, conn);
}

std::size_t InProcNetwork::pump_some(std::size_t limit) {
  std::size_t delivered = 0;
  while (delivered < limit) {
    InProcEndpoint* dest = nullptr;
    ConnId dest_conn = kInvalidConn;
    std::vector<std::uint8_t> frame;
    {
      MutexLock lock(mutex_);
      while (!queue_.empty()) {
        QueuedFrame q = std::move(queue_.front());
        queue_.pop_front();
        const Pipe& pipe = pipes_[q.pipe];
        if (!pipe.open || q.frame.empty()) continue;  // dropped connection tombstone
        dest = q.from_a ? pipe.b : pipe.a;
        dest_conn = q.from_a ? pipe.b_conn : pipe.a_conn;
        frame = std::move(q.frame);
        break;
      }
    }
    if (dest == nullptr) break;  // queue drained
    // Deliver outside the lock so the handler can send (or close) freely.
    if (dest->handler_ != nullptr) {
      dest->handler_->on_frame(dest_conn, frame);
      ++delivered;
    }
  }
  return delivered;
}

std::size_t InProcNetwork::pump() {
  std::size_t total = 0;
  for (;;) {
    const std::size_t n = pump_some(1024);
    total += n;
    if (n == 0) return total;
  }
}

}  // namespace gryphon
