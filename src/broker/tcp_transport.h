// TCP/IP transport.
//
// Frames are length-prefixed (u32 little-endian, then the frame bytes).
// Sending is asynchronous, exactly as the paper describes (Section 4.2):
// send() enqueues the frame on the connection's outgoing queue and returns;
// a pool of sending threads monitors the queues and drains them to the
// sockets. One reader thread per connection parses inbound frames; an
// acceptor thread serves the listening socket.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "broker/transport.h"
#include "common/mutex.h"

namespace gryphon {

class TcpTransport final : public Transport {
 public:
  struct Options {
    std::size_t sender_threads{2};
    /// Frames larger than this are treated as protocol corruption.
    std::uint32_t max_frame_bytes{16u * 1024 * 1024};
    /// Senders gather adjacent queued packets into one socket write up to
    /// this many bytes (writev-style coalescing; 0 disables gathering).
    std::size_t coalesce_bytes{64u * 1024};
  };

  explicit TcpTransport(TransportHandler& handler, Options options);
  explicit TcpTransport(TransportHandler& handler) : TcpTransport(handler, Options()) {}
  ~TcpTransport() override;

  /// Starts listening on 127.0.0.1:`port` (0 picks an ephemeral port).
  /// Returns the bound port. Throws std::runtime_error on failure.
  /// May be called more than once to serve several ports from one
  /// transport (each gets its own acceptor thread; connections share the
  /// ConnId space) — brokerd uses a second port to keep replication
  /// traffic off the client/broker endpoint.
  std::uint16_t listen(std::uint16_t port);

  /// Dials host:port; returns the connection id. Throws on failure.
  ConnId connect(const std::string& host, std::uint16_t port);

  void send(ConnId conn, std::vector<std::uint8_t> frame) override;
  /// Enqueues every frame under one queue lock and wakes one sender, so a
  /// coalesced link flush costs one lock round-trip instead of one per
  /// frame. The sender side then gathers adjacent queued packets into a
  /// single socket write (see sender_loop).
  void send_batch(ConnId conn, std::vector<std::vector<std::uint8_t>> frames) override;
  void close(ConnId conn) override;

  /// Stops the acceptor, closes every connection, joins all threads.
  /// Called by the destructor; safe to call twice.
  void shutdown();

 private:
  struct Conn {
    int fd{-1};
    std::deque<std::vector<std::uint8_t>> outgoing;
    bool draining{false};  // a sender thread currently owns this queue
    bool closed{false};
    std::thread reader;
  };

  ConnId register_fd(int fd) EXCLUDES(mutex_);
  void reader_loop(ConnId id, int fd);
  void sender_loop() EXCLUDES(mutex_);
  void accept_loop(int listen_fd) EXCLUDES(mutex_);
  void close_locked(ConnId id) REQUIRES(mutex_);

  TransportHandler* handler_;
  Options options_;

  Mutex mutex_;
  std::condition_variable send_cv_;
  std::unordered_map<ConnId, std::unique_ptr<Conn>> conns_ GUARDED_BY(mutex_);
  std::deque<ConnId> dirty_ GUARDED_BY(mutex_);  // connections with queued frames
  ConnId next_conn_ GUARDED_BY(mutex_){1};
  bool stopping_ GUARDED_BY(mutex_){false};

  std::vector<int> listen_fds_ GUARDED_BY(mutex_);
  std::vector<std::thread> acceptors_;
  std::vector<std::thread> senders_;
};

}  // namespace gryphon
