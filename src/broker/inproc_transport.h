// In-process transport: a deterministic message bus.
//
// Endpoints register by name on a shared InProcNetwork. connect() creates a
// connection pair; send() enqueues frames on the network's global queue;
// pump() delivers them in FIFO order on the caller's thread. Determinism
// makes multi-broker integration tests reproducible, and "drop" hooks allow
// failure injection (a dropped connection exercises the event-log replay
// path of the client protocol).
//
// Thread safety: sends may arrive from any thread (a broker's match workers
// send while a test thread pumps), so the shared queue and connection table
// are mutex-protected. Handler callbacks are always invoked *outside* the
// network lock — a handler may itself send or close without deadlocking —
// and on the thread that called pump()/connect()/drop().
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "broker/transport.h"
#include "common/mutex.h"

namespace gryphon {

class InProcNetwork;

/// One endpoint (a broker or a client). Owned by the network; use
/// InProcNetwork::create_endpoint.
class InProcEndpoint final : public Transport {
 public:
  void set_handler(TransportHandler* handler) { handler_ = handler; }
  [[nodiscard]] const std::string& name() const { return name_; }

  void send(ConnId conn, std::vector<std::uint8_t> frame) override;
  void close(ConnId conn) override;

 private:
  friend class InProcNetwork;
  InProcEndpoint(InProcNetwork* network, std::string name)
      : network_(network), name_(std::move(name)) {}

  InProcNetwork* network_;
  std::string name_;
  TransportHandler* handler_{nullptr};
};

class InProcNetwork {
 public:
  /// Creates (or returns the existing) endpoint with this name. The network
  /// owns it; pointers stay valid for the network's lifetime.
  InProcEndpoint* create_endpoint(const std::string& name);

  /// Establishes a connection from `from` to `to`. Returns the ConnId valid
  /// at `from`'s side; `to` observes on_connect with its own ConnId.
  /// Throws std::invalid_argument for unknown endpoints.
  ConnId connect(const std::string& from, const std::string& to);

  /// Severs a connection (simulated transient failure): both sides observe
  /// on_disconnect; queued frames on it are dropped.
  void drop(const std::string& endpoint, ConnId conn);

  /// Delivers queued frames in FIFO order until quiescent. Returns the
  /// number of frames delivered.
  std::size_t pump();

  /// Delivers at most `limit` frames (partial pump, for interleaving tests).
  std::size_t pump_some(std::size_t limit);

  /// Frames currently queued.
  [[nodiscard]] std::size_t pending() const {
    MutexLock lock(mutex_);
    return queue_.size();
  }

 private:
  struct Pipe {
    InProcEndpoint* a{nullptr};
    ConnId a_conn{kInvalidConn};
    InProcEndpoint* b{nullptr};
    ConnId b_conn{kInvalidConn};
    bool open{false};
  };
  struct QueuedFrame {
    std::size_t pipe{0};
    bool from_a{false};
    std::vector<std::uint8_t> frame;
  };

  friend class InProcEndpoint;
  void enqueue(InProcEndpoint* sender, ConnId conn, std::vector<std::uint8_t> frame);
  void close_from(InProcEndpoint* side, ConnId conn);
  Pipe* find_pipe(InProcEndpoint* side, ConnId conn, bool& is_a) REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<InProcEndpoint>> endpoints_
      GUARDED_BY(mutex_);
  std::vector<Pipe> pipes_ GUARDED_BY(mutex_);
  // Maps (endpoint, conn) -> pipe index; conn ids are globally unique here.
  std::unordered_map<ConnId, std::size_t> conn_to_pipe_ GUARDED_BY(mutex_);
  std::deque<QueuedFrame> queue_ GUARDED_BY(mutex_);
  ConnId next_conn_ GUARDED_BY(mutex_){1};
};

}  // namespace gryphon
