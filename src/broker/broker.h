// The broker node (paper Section 4.2, Figure 7).
//
// Components, mirroring the paper's figure: the matching engine (BrokerCore:
// subscription manager + parallel search trees + trit annotations), an event
// parser (the binary codec, un-marshaling events against the pre-defined
// event schema), the client protocol (hello / subscribe / publish / deliver
// / ack, with a per-client event log that replays deliveries missed across
// transient disconnects and a garbage collector bounding the logs), the
// broker protocol (subscription propagation and link-matched event
// forwarding), and a connection manager over the pluggable transport.
//
// Subscriptions are replicated to every broker by flooding with id-based
// deduplication; published events are multicast hop-by-hop with the link
// matching protocol (the publisher's broker is the spanning-tree root).
//
// Broker links are robust to transient failures, symmetrically with the
// client plane (docs/fault-tolerance.md): each broker<->broker link carries
// a *session* — forwards are sequenced per neighbor under a per-process
// epoch, logged until the peer's cumulative BrokerAck, retransmitted
// go-back-N when acks stall (tick_links), deduplicated and re-ordered at the
// receiver, and replayed after a reconnect handshake that also reconciles
// the subscription replica set (id-deduplicated re-flood, with unsubscribe
// tombstones so a stale replica cannot resurrect a removed subscription).
// Malformed frames never take the broker down: they are counted, logged,
// and the offending connection is dropped.
//
// Event pipeline: with Options::match_threads == 0 every event is matched
// and applied synchronously inside the frame handler (deterministic — the
// historical behavior), one-event batches through the same batch-first
// dispatch API the workers use. With N > 0, a pool of N match workers
// drains events in batches (up to Options::match_batch_max per wakeup):
// each batch is decoded outside all locks, dispatched against one pinned
// core snapshot (events grouped by serving shard), and applied under a
// single broker-mutex hold whose link frames coalesce into one
// send_batch flush per neighbor. Matching — the expensive part — then
// runs in parallel with frame handling and with other matches. Events may
// be applied out of arrival order across publishers; per-client delivery
// sequence numbers remain monotonic. flush() quiesces the pipeline.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "broker/broker_core.h"
#include "broker/event_log.h"
#include "broker/replication.h"
#include "broker/transport.h"
#include "broker/wire.h"
#include "common/mutex.h"

namespace gryphon {

class Broker : public TransportHandler {
 public:
  struct Options {
    PstMatcherOptions matcher;
    /// Unacknowledged log entries older than this are garbage collected
    /// (client delivery logs and broker-link forward logs alike).
    Ticks log_retention{ticks_from_seconds(3600)};
    /// Match workers. 0 = synchronous matching inside the frame handler.
    std::size_t match_threads{0};
    /// Data-plane shards per factored space (clamped to >= 1): the core's
    /// compiled buckets are partitioned so concurrent match workers tend to
    /// touch disjoint shard tables. Meaningless without factoring
    /// (Options::matcher.factoring_levels > 0).
    std::size_t shards{1};
    /// Covering aggregation and delta-compilation behaviour of the core's
    /// control plane (both on by default; see broker_core.h).
    ControlPlaneOptions control{};
    /// Events a match worker drains per wakeup into one DispatchBatch
    /// (clamped to >= 1). The batch amortizes snapshot pinning, codec work,
    /// and the apply-side mutex over up to this many events.
    std::size_t match_batch_max{32};
    /// Link-session epoch; 0 derives one from the wall clock at
    /// construction. Restarted brokers must come up with a fresh epoch so
    /// peers never misapply old sequence state; tests pin it for
    /// determinism.
    std::uint64_t session_epoch{0};
    /// Go-back-N: unacked forwards older than this are retransmitted by
    /// tick_links().
    Ticks link_retransmit_timeout{ticks_from_millis(50)};
    /// tick_links() sends a heartbeat on links idle (outbound) this long.
    Ticks link_heartbeat_interval{ticks_from_millis(500)};
    /// Unsubscribe tombstones retained (FIFO eviction); they stop a
    /// reconnect re-flood from resurrecting a removed subscription.
    std::size_t unsub_tombstone_cap{4096};
    // Replication (docs/fault-tolerance.md § Replication).
    /// Come up as a hot standby: refuse client/broker traffic, apply the
    /// primary's state stream (attach_replication_link), and serve only
    /// after promote(). The broker must be constructed with the primary's
    /// BrokerId — promotion is identity takeover.
    bool standby{false};
    /// Primary side: append every durable mutation to the replication
    /// update log from construction on (a standby attaching later resumes
    /// without a snapshot). Off by default — a ReplHello enables streaming
    /// dynamically either way; this flag only pre-arms the log.
    bool replicate{false};
    /// Primary side: retained updates in the replication log. This is the
    /// snapshot cadence: a standby reattaching from further back than this
    /// window gets a full StateSnapshot instead of an update replay, and
    /// the log never holds more than this many unacknowledged updates.
    std::size_t repl_log_window{4096};
    /// Go-back-N retransmit timeout for the replication session (the same
    /// machinery as broker links).
    Ticks repl_retransmit_timeout{ticks_from_millis(50)};
    /// Sequence-space gap a promoted standby inserts into every client
    /// delivery log and link forward log (and the subscription-id
    /// counter): the dead primary may have assigned up to this many
    /// sequences that were never replicated, and the standby must not
    /// reuse them. Clients see the skipped client-log range reported as
    /// HelloAck::truncated_through — an honest possible-loss bound —
    /// and link peers cross the link-log gap via the heartbeat floor rule
    /// in tick_links.
    std::uint64_t failover_seq_gap{1ull << 20};
    /// Test hook: overrides the broker's clock (ticks). Default: real
    /// steady-clock time since construction.
    std::function<Ticks()> clock;
  };

  Broker(BrokerId self, const BrokerNetwork& topology, std::vector<SchemaPtr> spaces,
         Transport& transport, Options options);
  Broker(BrokerId self, const BrokerNetwork& topology, std::vector<SchemaPtr> spaces,
         Transport& transport)
      : Broker(self, topology, std::move(spaces), transport, Options()) {}
  ~Broker() override;

  [[nodiscard]] BrokerId self() const { return core_.self(); }
  /// Direct core access; safe only when no transport thread can be
  /// delivering frames (deterministic pumped transports, or quiesced TCP).
  [[nodiscard]] const BrokerCore& core() const { return core_; }
  /// Thread-safe subscription count (for polling from other threads).
  [[nodiscard]] std::size_t subscription_count() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    core_.control_plane().assert_serialized();  // serialized by mutex_
    return core_.subscription_count();
  }

  /// Blocks until every event enqueued to the match workers so far has been
  /// dispatched and applied. Immediate when match_threads == 0. Do not call
  /// from inside a transport callback.
  void flush() EXCLUDES(mutex_, queue_mutex_);

  /// Registers an *outbound* broker link this node initiated: sends the
  /// broker hello so the peer can bind the reverse mapping. Re-attaching
  /// after a drop resumes the existing link session (unacked forwards
  /// replay once the peer's hello reply reports what it already has).
  void attach_broker_link(ConnId conn, BrokerId peer) EXCLUDES(mutex_);

  // TransportHandler:
  void on_connect(ConnId conn) override EXCLUDES(mutex_);
  void on_frame(ConnId conn, std::span<const std::uint8_t> frame) override EXCLUDES(mutex_);
  void on_disconnect(ConnId conn) override EXCLUDES(mutex_);

  /// The periodic log garbage collector; returns entries collected (client
  /// delivery logs plus broker-link forward logs).
  std::size_t collect_garbage() EXCLUDES(mutex_);

  /// Drives link-session maintenance: retransmits unacked forwards whose
  /// ack has stalled past Options::link_retransmit_timeout (go-back-N) and
  /// sends heartbeats on outbound-idle links. Deterministic given `now`;
  /// the LinkSupervisor calls this every tick.
  void tick_links(Ticks now) EXCLUDES(mutex_);

  /// The broker's clock (Options::clock if set); what tick_links expects.
  [[nodiscard]] Ticks clock_now() const { return now(); }

  // Link-state introspection and control for the LinkSupervisor.
  [[nodiscard]] bool link_up(BrokerId peer) const EXCLUDES(mutex_);
  /// Ticks of the last inbound frame on the peer's link; nullopt when the
  /// link has never been up.
  [[nodiscard]] std::optional<Ticks> link_last_activity(BrokerId peer) const EXCLUDES(mutex_);
  /// Closes the peer's connection (both sides observe a disconnect). Used
  /// by the supervisor when a link goes silent past the idle timeout.
  void drop_link(BrokerId peer) EXCLUDES(mutex_);
  /// Marks a link permanently dead (redial budget exhausted): its forward
  /// log is purged and future forwards to it are counted and dropped
  /// instead of retained. attach_broker_link() revives it.
  void mark_link_dead(BrokerId peer) EXCLUDES(mutex_);

  // Replication (the Clone pattern; docs/fault-tolerance.md).
  enum class Role : std::uint8_t { kPrimary, kStandby };
  [[nodiscard]] Role role() const EXCLUDES(mutex_);
  /// Standby side: registers the connection this standby dialed to its
  /// primary and sends ReplHello (attach or resume — the hello reports the
  /// last applied update, so a reattach replays only the missing suffix).
  void attach_replication_link(ConnId conn) EXCLUDES(mutex_);
  /// Standby -> primary: stop shadowing and assume the primary's role,
  /// identity, and link-session epoch. Rebases every sequence space by
  /// Options::failover_seq_gap past anything the dead primary might have
  /// assigned but not replicated (see the option's comment for how peers
  /// and clients cross the gap). No-op on a broker that is already
  /// primary. Also triggered by a kPromote frame.
  void promote() EXCLUDES(mutex_);
  /// Standby side: ticks of the last frame seen on the replication link
  /// (nullopt before the first attach). brokerd's standby loop promotes
  /// when this goes idle past its promote timeout.
  [[nodiscard]] std::optional<Ticks> replication_last_activity() const EXCLUDES(mutex_);
  /// Standby side: the last state-update sequence applied (test hook).
  [[nodiscard]] std::uint64_t replication_applied_seq() const EXCLUDES(mutex_);

  struct Stats {
    std::uint64_t events_published{0};   // local client publications
    std::uint64_t events_forwarded{0};   // copies sent to neighbor brokers
    std::uint64_t events_delivered{0};   // copies delivered to local clients
    std::uint64_t events_relayed{0};     // EventForward frames handled
    std::uint64_t subscriptions_active{0};
    std::uint64_t matching_steps{0};
    // Robustness counters (docs/fault-tolerance.md).
    std::uint64_t retransmits{0};            // forwards re-sent (timeout or handshake)
    std::uint64_t duplicates_dropped{0};     // already-consumed forwards discarded
    std::uint64_t link_flaps{0};             // broker-link disconnects observed
    std::uint64_t frames_rejected{0};        // malformed frames dropped
    std::uint64_t forwards_dropped_dead_link{0};  // forwards lost to a dead link
    // Replication counters (docs/fault-tolerance.md § Replication).
    std::uint64_t repl_updates_sent{0};      // StateUpdate frames streamed to the standby
    std::uint64_t repl_snapshots_sent{0};    // full StateSnapshot images sent
    std::uint64_t repl_updates_applied{0};   // updates applied by this standby
    std::uint64_t repl_snapshots_applied{0}; // snapshots installed by this standby
    std::uint64_t promotions{0};             // standby -> primary takeovers
    std::uint64_t failover_seq_rebases{0};   // logs gap-rebased at promotion
    /// Control-plane churn counters (covering + delta compilation), read
    /// from the core at stats() time.
    ControlPlaneStats control_plane{};
  };
  [[nodiscard]] Stats stats() const EXCLUDES(mutex_);

  /// Test hook: the current sequence state of a named client's log.
  [[nodiscard]] std::uint64_t client_log_size(const std::string& name) const EXCLUDES(mutex_);

 private:
  enum class ConnKind : std::uint8_t { kUnknown, kClient, kBroker, kReplica };
  struct ConnState {
    ConnKind kind{ConnKind::kUnknown};
    std::string client_name;  // kClient
    BrokerId peer;            // kBroker
  };
  struct ClientRecord {
    ConnId conn{kInvalidConn};  // kInvalidConn while offline
    EventLog log;
    std::vector<SubscriptionId> subscriptions;
  };
  /// Per-neighbor link session. Outlives any one connection: the forward
  /// log, sequence counters, and inbound dedup state persist across drops
  /// so a reconnect resumes where the link left off.
  struct LinkSession {
    ConnId conn{kInvalidConn};  // kInvalidConn while the link is down
    bool dead{false};           // supervisor gave up; forwards are dropped
    EventLog out_log;           // sequenced forwards awaiting the peer's ack
    Ticks last_send{0};         // last outbound frame (heartbeat scheduling)
    Ticks last_resend{0};       // last (re)transmission of the unacked window
    Ticks last_recv{0};         // last inbound frame (idle detection)
    std::uint64_t in_epoch{0};  // peer epoch the inbound counter refers to
    std::uint64_t in_seq{0};    // highest forward seq consumed from the peer
    /// Frames staged for the next coalesced flush (queue_link_frame /
    /// flush_link_egress): a batch of forwards or a retransmit window
    /// reaches the transport as one send_batch instead of per-frame sends.
    std::vector<std::vector<std::uint8_t>> egress;
  };
  struct PendingEvent {
    SpaceId space;
    std::vector<std::uint8_t> encoded;
    BrokerId tree_root;
  };
  /// Primary-side replication session: the sequenced update stream to the
  /// hot standby, retransmitted go-back-N exactly like a link session
  /// (each log entry's event bytes hold one encoded replication::Update).
  struct ReplicaSession {
    ConnId conn{kInvalidConn};  // kInvalidConn while no standby is attached
    EventLog log;
    Ticks last_send{0};
    Ticks last_resend{0};
  };

  [[nodiscard]] Ticks now() const;
  void handle_hello_client(ConnId conn, const wire::HelloClient& hello) REQUIRES(mutex_);
  void handle_hello_broker(ConnId conn, const wire::HelloBroker& hello) REQUIRES(mutex_);
  void handle_subscribe(ConnId conn, const wire::SubscribeReq& req) REQUIRES(mutex_);
  void handle_unsubscribe(ConnId conn, const wire::Unsubscribe& req) REQUIRES(mutex_);
  void handle_publish(ConnId conn, const wire::Publish& publish) REQUIRES(mutex_);
  void handle_ack(ConnId conn, const wire::Ack& ack) REQUIRES(mutex_);
  void handle_sub_propagate(ConnId conn, const wire::SubPropagate& prop) REQUIRES(mutex_);
  void handle_unsub_propagate(ConnId conn, const wire::UnsubPropagate& prop) REQUIRES(mutex_);
  void handle_event_forward(ConnId conn, const wire::EventForward& fwd) REQUIRES(mutex_);
  void handle_broker_ack(ConnId conn, const wire::BrokerAck& ack) REQUIRES(mutex_);
  void handle_link_heartbeat(ConnId conn, const wire::LinkHeartbeat& hb) REQUIRES(mutex_);
  void handle_repl_hello(ConnId conn, const wire::ReplHello& hello) REQUIRES(mutex_);
  void handle_state_snapshot(ConnId conn, const wire::StateSnapshot& snap) REQUIRES(mutex_);
  void handle_state_update(ConnId conn, const wire::StateUpdate& update) REQUIRES(mutex_);
  void handle_repl_ack(ConnId conn, const wire::ReplAck& ack) REQUIRES(mutex_);

  // Replication plumbing (broker/replication.h holds the codecs).
  /// Primary side: appends one durable mutation to the replication update
  /// log (capped at Options::repl_log_window — overflow truncates, forcing
  /// a snapshot on the standby's next attach) and streams it to the
  /// attached standby. No-op until replication is enabled.
  void replicate(const replication::Update& update) REQUIRES(mutex_);
  /// Standby side: applies one decoded update to the shadowed state.
  void apply_update(const replication::Update& update) REQUIRES(mutex_);
  /// Primary side: the full durable-state image for a StateSnapshot.
  [[nodiscard]] replication::SnapshotImage build_snapshot_image() REQUIRES(mutex_);
  /// Standby side: replaces all durable state with the image.
  void install_snapshot(const replication::SnapshotImage& image) REQUIRES(mutex_);
  void send_repl_ack(ConnId conn) REQUIRES(mutex_);
  /// promote() body; also invoked by a kPromote frame inside the handler.
  void promote_locked() REQUIRES(mutex_);

  /// Shared by local publications and forwarded events. Synchronous mode:
  /// decode + dispatch + apply inline (mutex_ held by the caller). Pipeline
  /// mode: enqueue for the match workers. May throw (decode errors) only in
  /// synchronous mode.
  void process_event(SpaceId space, const std::vector<std::uint8_t>& encoded,
                     BrokerId tree_root) REQUIRES(mutex_);
  /// Applies a dispatch decision: forwards, delivers, accounts.
  void apply_decision(SpaceId space, const std::vector<std::uint8_t>& encoded,
                      BrokerId tree_root, const BrokerCore::Decision& decision)
      REQUIRES(mutex_);
  void worker_loop() EXCLUDES(mutex_, queue_mutex_);
  /// Stages a link frame on the session's egress buffer. The frames queued
  /// during one mutex_ hold MUST be flushed by flush_link_egress() before
  /// the hold ends, or they would interleave out of order with direct
  /// sends from later holds.
  void queue_link_frame(LinkSession& session, std::vector<std::uint8_t> frame)
      REQUIRES(mutex_);
  /// Hands every session's staged egress to the transport as one
  /// send_batch per neighbor (the coalesced writev-style flush).
  void flush_link_egress() REQUIRES(mutex_);
  void deliver_to_client(const std::string& name, ClientRecord& client, SpaceId space,
                         std::vector<std::uint8_t> encoded) REQUIRES(mutex_);
  void sync_subscriptions_to(ConnId conn) REQUIRES(mutex_);
  /// Replays the peer-unseen suffix of the link's forward log and updates
  /// its ack state from the peer's handshake report.
  void replay_forwards_to(LinkSession& session, const wire::HelloBroker& hello)
      REQUIRES(mutex_);
  void send_broker_ack(LinkSession& session) REQUIRES(mutex_);
  void record_tombstone(SubscriptionId id) REQUIRES(mutex_);
  /// Broadcasts a quench update to every connected client when a space
  /// transitions between "has subscribers" and "has none" (Elvin-style
  /// quenching, paper Section 5).
  void maybe_broadcast_quench(SpaceId space, std::size_t count_before) REQUIRES(mutex_);
  void send_quench_state(ConnId conn) REQUIRES(mutex_);
  void propagate_subscription(const wire::SubPropagate& prop, ConnId except) REQUIRES(mutex_);
  void propagate_unsubscription(const wire::UnsubPropagate& prop, ConnId except)
      REQUIRES(mutex_);
  void send_error(ConnId conn, std::uint64_t token, std::string message);

  // Lock order: mutex_ before queue_mutex_ (handlers enqueue while holding
  // mutex_); workers never hold both. Declared to the analysis via
  // ACQUIRED_BEFORE, so an inverted acquisition is a compile error.
  mutable Mutex mutex_ ACQUIRED_BEFORE(queue_mutex_);
  BrokerCore core_;
  Transport* transport_;
  Options options_;
  std::uint64_t session_epoch_;
  std::unordered_map<ConnId, ConnState> conns_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::unique_ptr<ClientRecord>> clients_ GUARDED_BY(mutex_);
  std::unordered_map<SubscriptionId, std::string> local_sub_client_ GUARDED_BY(mutex_);
  std::unordered_map<SubscriptionId, SpaceId> local_sub_space_ GUARDED_BY(mutex_);
  std::unordered_map<BrokerId, LinkSession> links_ GUARDED_BY(mutex_);
  std::unordered_set<SubscriptionId> tombstones_ GUARDED_BY(mutex_);
  std::deque<SubscriptionId> tombstone_fifo_ GUARDED_BY(mutex_);
  std::uint64_t next_sub_counter_ GUARDED_BY(mutex_){1};
  // Replication state. standby_ flips exactly once (promote); session_epoch_
  // is non-const only because a standby adopts the primary's epoch from the
  // snapshot (identity takeover includes the epoch).
  bool standby_ GUARDED_BY(mutex_){false};
  bool repl_enabled_ GUARDED_BY(mutex_){false};    // primary: log mutations
  ReplicaSession replica_ GUARDED_BY(mutex_);      // primary -> standby stream
  ConnId repl_conn_ GUARDED_BY(mutex_){kInvalidConn};  // standby: link to primary
  std::uint64_t repl_applied_seq_ GUARDED_BY(mutex_){0};  // standby cursor
  Ticks repl_last_recv_ GUARDED_BY(mutex_){0};     // standby: primary liveness
  bool repl_attached_ GUARDED_BY(mutex_){false};   // standby: ever attached
  Stats stats_ GUARDED_BY(mutex_);
  /// Batch context for the synchronous (match_threads == 0) path, so the
  /// deterministic mode exercises the same batch-first dispatch API as the
  /// worker pipeline. Workers own their own per-thread batches.
  DispatchBatch sync_batch_ GUARDED_BY(mutex_);
  std::chrono::steady_clock::time_point epoch_{std::chrono::steady_clock::now()};

  // Match-worker pipeline.
  Mutex queue_mutex_;
  std::condition_variable queue_cv_;  // work available / stopping
  std::condition_variable done_cv_;   // pipeline drained
  std::deque<PendingEvent> queue_ GUARDED_BY(queue_mutex_);
  std::size_t unfinished_events_ GUARDED_BY(queue_mutex_){0};  // queued + dispatching
  bool stop_ GUARDED_BY(queue_mutex_){false};
  std::vector<std::thread> workers_;
};

}  // namespace gryphon
