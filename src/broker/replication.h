// Broker state replication (the Clone pattern): every piece of durable
// broker state — the subscription registry (covering-parked replicas
// included), unsubscribe tombstones, per-neighbor link-session counters and
// outbound forward logs, and per-client EventLog delivery windows — is
// expressed as a keyed, sequence-numbered stream of Update records with
// periodic full SnapshotImages. A primary broker appends every durable
// mutation to the stream and ships it over a reliable session
// (wire::StateUpdate / wire::StateSnapshot, cumulative wire::ReplAck) to a
// hot standby, which applies updates strictly in order; on primary death
// the standby is promoted and assumes the primary's spanning-tree role and
// identity. See docs/fault-tolerance.md § Replication.
//
// This header is the codec layer only: the record types and their binary
// encodings. The streaming/apply/promotion state machines live in
// Broker (src/broker/broker.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "broker/event_log.h"
#include "common/ids.h"
#include "event/codec.h"

namespace gryphon::replication {

/// What one Update mutates. The key space mirrors the broker's durable
/// state: subscriptions by id, client logs by hello name, link sessions by
/// neighbor broker id.
enum class UpdateKind : std::uint8_t {
  kSubAdd = 1,         // registry insert (local or propagated replica)
  kSubRemove = 2,      // registry erase
  kTombstone = 3,      // unsubscribe tombstone recorded
  kClientDeliver = 4,  // client log append (one Deliver frame logged)
  kClientAck = 5,      // client cumulative ack consumed
  kClientTruncate = 6, // client log retention truncation
  kLinkForward = 7,    // link out-log append (one EventForward logged)
  kLinkAck = 8,        // link cumulative BrokerAck consumed
  kLinkTruncate = 9,   // link out-log retention truncation
  kLinkInSeq = 10,     // inbound forward consumed: receive cursor moved
  kLinkDead = 11,      // link declared dead (out-log purged) or revived
};

/// One durable-state mutation. A tagged union flattened into one struct:
/// which fields are meaningful depends on `kind` (see the encoder — fields
/// not listed for a kind are neither encoded nor decoded).
struct Update {
  UpdateKind kind{UpdateKind::kSubAdd};
  SubscriptionId id{};     // kSubAdd / kSubRemove / kTombstone
  BrokerId owner{};        // kSubAdd
  BrokerId peer{};         // every kLink* kind: the neighbor
  BrokerId origin{};       // kLinkForward: spanning-tree root of the event
  std::string client;      // every kClient* kind: the hello name; kSubAdd:
                           // the local subscriber (empty for remote replicas)
  SpaceId space{0};        // kSubAdd / kClientDeliver / kLinkForward
  std::uint64_t seq{0};    // deliver/forward/ack sequence; kLinkInSeq: in_seq;
                           // k*Truncate: drop-through (last seq dropped)
  std::uint64_t epoch{0};  // kLinkInSeq: the peer epoch in_seq counts under
  std::uint64_t truncated_through{0};  // k*Truncate: adopted truncation bound
  bool dead{false};        // kLinkDead
  std::vector<std::uint8_t> payload;  // encoded Subscription (kSubAdd) or
                                      // Event (kClientDeliver / kLinkForward)
};

/// A replicated EventLog: counters plus the retained (unacknowledged)
/// entries. Entry timestamps are not replicated — the applying side
/// re-stamps with its own clock so its retention collector stays sane.
struct LogImage {
  std::uint64_t next_seq{1};
  std::uint64_t acked{0};
  std::uint64_t truncated_through{0};
  std::deque<EventLog::Entry> entries;
};

struct SubImage {
  SubscriptionId id{};
  BrokerId owner{};
  SpaceId space{0};
  std::string client;  // local subscriber name; empty for remote replicas
  std::vector<std::uint8_t> subscription;
};

struct LinkImage {
  BrokerId peer{};
  bool dead{false};
  std::uint64_t in_epoch{0};
  std::uint64_t in_seq{0};
  LogImage out_log;
};

struct ClientImage {
  std::string name;
  LogImage log;
};

/// The full durable-state image a StateSnapshot carries. `session_epoch`
/// is included so a promoted standby continues the primary's link sessions
/// seamlessly: identity takeover includes the epoch (the primary is dead,
/// so the incarnation cannot be ambiguous).
struct SnapshotImage {
  std::uint64_t session_epoch{0};
  std::uint64_t next_sub_counter{1};
  std::vector<SubImage> subscriptions;
  std::vector<SubscriptionId> tombstones;  // oldest first (FIFO order)
  std::vector<LinkImage> links;
  std::vector<ClientImage> clients;
};

/// Binary codecs, same conventions as the wire layer (event/codec.h
/// primitives, little-endian). Decoders throw CodecError on malformed
/// input, including unknown update kinds.
std::vector<std::uint8_t> encode_update(const Update& update);
Update decode_update(std::span<const std::uint8_t> buffer);

std::vector<std::uint8_t> encode_snapshot(const SnapshotImage& image);
SnapshotImage decode_snapshot(std::span<const std::uint8_t> buffer);

}  // namespace gryphon::replication
