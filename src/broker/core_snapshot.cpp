#include "broker/core_snapshot.h"

namespace gryphon {

std::shared_ptr<const CompiledSegment> SnapshotBuilder::freeze_segment(const Pst& tree) const {
  auto segment = std::make_shared<CompiledSegment>();
  segment->source = &tree;
  segment->epoch = tree.epoch();
  segment->subscriptions = tree.subscription_count();
  // Compile: Pst -> FrozenPsg (structural optimization) -> CompiledPst
  // (flat kernel). The intermediate graph is discarded — readers only ever
  // see the compiled form.
  const FrozenPsg graph(tree);
  segment->kernel = std::make_unique<const CompiledPst>(graph);
  segment->annotations = std::make_unique<const CompiledAnnotation>(
      *segment->kernel, link_count_, std::span<const SubscriptionLinkFn>(group_link_fns_),
      local_link_);
  return segment;
}

std::shared_ptr<const FrozenSpace> SnapshotBuilder::freeze(const SpaceSources& sources,
                                                           const FrozenSpace* previous,
                                                           CompileStats* stats) const {
  auto space = std::make_shared<FrozenSpace>();
  const std::size_t seg_count = sources.segments.size();
  space->factoring_ = sources.segments.front()->factoring();
  space->router_ = router_;
  space->covering_ = sources.covering;
  auto table = std::make_shared<FrozenSpace::Table>();
  if (space->factoring_ != nullptr) table->shards.resize(router_.shard_count());
  for (const PstMatcher* segment : sources.segments) {
    table->subscription_count += segment->subscription_count();
  }

  // Aggregate the live trees per factoring key across every frontier
  // slice: slice j contributes at most one tree per key, landing at index
  // j of that key's FrozenBucket. Empty trees are dropped — a missing
  // bucket/segment already means "nothing can match", and skipping them
  // keeps snapshots small after heavy unsubscribe churn.
  struct Contribution {
    std::size_t segment;
    const Pst* tree;
  };
  std::unordered_map<FactoringIndex::Key, std::vector<Contribution>, FactoringIndex::KeyHash>
      by_key;
  std::vector<Contribution> single;
  for (std::size_t j = 0; j < seg_count; ++j) {
    sources.segments[j]->for_each_bucket([&](const FactoringIndex::Key* key, const Pst& tree) {
      if (tree.subscription_count() == 0) return;
      if (key == nullptr) {
        single.push_back({j, &tree});
      } else {
        by_key[*key].push_back({j, &tree});
      }
    });
  }

  // Reuse: same source tree, no mutations since it was frozen. Tree
  // objects are never freed while their matcher lives (the caller passes
  // reuse_previous=false across slice rebuilds), so pointer identity plus
  // the mutation epoch is a sound key. A bucket whose every live segment
  // is reusable keeps its FrozenBucket object outright.
  const auto build_bucket = [&](const std::vector<Contribution>& contributions,
                                const std::shared_ptr<const FrozenBucket>& old)
      -> std::shared_ptr<const FrozenBucket> {
    if (old != nullptr && old->segments.size() == seg_count) {
      std::size_t live = 0;
      for (const auto& segment : old->segments) {
        if (segment != nullptr) ++live;
      }
      bool reusable = live == contributions.size();
      for (const Contribution& c : contributions) {
        if (!reusable) break;
        const auto& segment = old->segments[c.segment];
        reusable = segment != nullptr && segment->source == c.tree &&
                   segment->epoch == c.tree->epoch();
      }
      if (reusable) {
        if (stats != nullptr) stats->segments_reused += contributions.size();
        return old;
      }
    }
    auto bucket = std::make_shared<FrozenBucket>();
    bucket->segments.assign(seg_count, nullptr);
    for (const Contribution& c : contributions) {
      std::shared_ptr<const CompiledSegment> segment;
      if (old != nullptr && c.segment < old->segments.size()) {
        const auto& prev = old->segments[c.segment];
        if (prev != nullptr && prev->source == c.tree && prev->epoch == c.tree->epoch()) {
          segment = prev;
          if (stats != nullptr) ++stats->segments_reused;
        }
      }
      if (segment == nullptr) {
        segment = freeze_segment(*c.tree);
        if (stats != nullptr) ++stats->segments_compiled;
      }
      bucket->subscriptions += segment->subscriptions;
      bucket->segments[c.segment] = std::move(segment);
    }
    return bucket;
  };

  if (space->factoring_ == nullptr) {
    if (!single.empty()) {
      table->single =
          build_bucket(single, previous != nullptr ? previous->table_->single : nullptr);
    }
  } else {
    for (const auto& [key, contributions] : by_key) {
      // Shard placement is deterministic in the key, so both the reuse
      // probe into `previous` and the emplace below land in the same shard.
      const std::size_t shard = router_.shard_of_key(key);
      std::shared_ptr<const FrozenBucket> old;
      if (previous != nullptr && shard < previous->table_->shards.size()) {
        const auto& old_buckets = previous->table_->shards[shard].buckets;
        const auto it = old_buckets.find(key);
        if (it != old_buckets.end()) old = it->second;
      }
      auto bucket = build_bucket(contributions, old);
      table->shards[shard].subscription_count += bucket->subscriptions;
      table->shards[shard].buckets.emplace(key, std::move(bucket));
    }
  }
  space->table_ = std::move(table);
  return space;
}

std::shared_ptr<const CoreSnapshot> SnapshotBuilder::initial_snapshot(
    const std::vector<SpaceSources>& spaces) const {
  auto snapshot = std::make_shared<CoreSnapshot>();
  snapshot->version = 0;
  snapshot->spaces.reserve(spaces.size());
  for (const SpaceSources& sources : spaces) {
    snapshot->spaces.push_back(freeze(sources, nullptr, nullptr));
  }
  return snapshot;
}

std::shared_ptr<const CoreSnapshot> SnapshotBuilder::next_snapshot(
    const CoreSnapshot& current, std::size_t touched, const SpaceSources& sources,
    CompileStats* stats, bool reuse_previous) const {
  auto next = std::make_shared<CoreSnapshot>();
  next->version = current.version + 1;
  next->spaces = current.spaces;  // untouched spaces carry over wholesale
  next->spaces[touched] =
      freeze(sources, reuse_previous ? current.spaces[touched].get() : nullptr, stats);
  return next;
}

std::shared_ptr<const CoreSnapshot> SnapshotBuilder::next_snapshot_covering_only(
    const CoreSnapshot& current, std::size_t touched,
    std::shared_ptr<const CoveringSnapshot> covering) const {
  auto next = std::make_shared<CoreSnapshot>();
  next->version = current.version + 1;
  next->spaces = current.spaces;
  const FrozenSpace& old = *current.spaces[touched];
  auto space = std::make_shared<FrozenSpace>();
  space->factoring_ = old.factoring_;
  space->router_ = old.router_;
  space->table_ = old.table_;  // the whole compiled plane, shared
  space->covering_ = std::move(covering);
  next->spaces[touched] = std::move(space);
  return next;
}

}  // namespace gryphon
