#include "broker/core_snapshot.h"

namespace gryphon {

std::shared_ptr<const FrozenBucket> SnapshotBuilder::freeze_bucket(const Pst& tree) const {
  auto bucket = std::make_shared<FrozenBucket>();
  bucket->source = &tree;
  bucket->epoch = tree.epoch();
  bucket->subscriptions = tree.subscription_count();
  // Compile: Pst -> FrozenPsg (structural optimization) -> CompiledPst
  // (flat kernel). The intermediate graph is discarded — readers only ever
  // see the compiled form.
  const FrozenPsg graph(tree);
  bucket->kernel = std::make_unique<const CompiledPst>(graph);
  bucket->annotations = std::make_unique<const CompiledAnnotation>(
      *bucket->kernel, link_count_, std::span<const SubscriptionLinkFn>(group_link_fns_),
      local_link_);
  return bucket;
}

std::shared_ptr<const FrozenSpace> SnapshotBuilder::freeze(const PstMatcher& matcher,
                                                           const FrozenSpace* previous) const {
  auto space = std::make_shared<FrozenSpace>();
  space->factoring_ = matcher.factoring();
  space->subscription_count_ = matcher.subscription_count();
  space->router_ = router_;
  if (space->factoring_ != nullptr) {
    space->shards_.resize(router_.shard_count());
  }
  matcher.for_each_bucket([&](const FactoringIndex::Key* key, const Pst& tree) {
    // Empty bucket trees are dropped from the snapshot: a missing bucket
    // already means "nothing can match", and skipping them keeps snapshots
    // small after heavy unsubscribe churn.
    if (tree.subscription_count() == 0) return;
    // Shard placement is deterministic in the key, so both the reuse probe
    // into `previous` and the emplace below land in the same shard index.
    const std::size_t shard = key == nullptr ? 0 : router_.shard_of_key(*key);
    std::shared_ptr<const FrozenBucket> bucket;
    if (previous != nullptr) {
      const FrozenBucket* old = nullptr;
      if (key == nullptr) {
        old = previous->single_.get();
      } else if (shard < previous->shards_.size()) {
        const auto& old_buckets = previous->shards_[shard].buckets;
        const auto it = old_buckets.find(*key);
        if (it != old_buckets.end()) old = it->second.get();
      }
      // Reuse: same source tree, no mutations since it was frozen. Tree
      // objects are never freed while the matcher lives, so pointer
      // identity plus the mutation epoch is a sound key.
      if (old != nullptr && old->source == &tree && old->epoch == tree.epoch()) {
        bucket = key == nullptr ? previous->single_
                                : previous->shards_[shard].buckets.at(*key);
      }
    }
    if (!bucket) bucket = freeze_bucket(tree);
    if (key == nullptr) {
      space->single_ = std::move(bucket);
    } else {
      space->shards_[shard].subscription_count += tree.subscription_count();
      space->shards_[shard].buckets.emplace(*key, std::move(bucket));
    }
  });
  return space;
}

std::shared_ptr<const CoreSnapshot> SnapshotBuilder::initial_snapshot(
    const std::vector<const PstMatcher*>& matchers) const {
  auto snapshot = std::make_shared<CoreSnapshot>();
  snapshot->version = 0;
  snapshot->spaces.reserve(matchers.size());
  for (const PstMatcher* matcher : matchers) {
    snapshot->spaces.push_back(freeze(*matcher, nullptr));
  }
  return snapshot;
}

std::shared_ptr<const CoreSnapshot> SnapshotBuilder::next_snapshot(
    const CoreSnapshot& current, std::size_t touched, const PstMatcher& matcher) const {
  auto next = std::make_shared<CoreSnapshot>();
  next->version = current.version + 1;
  next->spaces = current.spaces;  // untouched spaces carry over wholesale
  next->spaces[touched] = freeze(matcher, current.spaces[touched].get());
  return next;
}

}  // namespace gryphon
