// Broker-link supervision: failure detection and recovery.
//
// A LinkSupervisor watches the broker links this node is responsible for
// dialing and keeps them alive (docs/fault-tolerance.md):
//
//  - Dead-link detection. Every tick it drives Broker::tick_links (which
//    retransmits stalled forwards and heartbeats idle links) and checks each
//    supervised link's inbound-activity clock. A link silent past
//    Options::idle_timeout is presumed partitioned and force-dropped, which
//    moves it into the redial state machine.
//  - Supervised redial. Down links are redialed with exponential backoff
//    plus deterministic seeded jitter (so a fleet of brokers does not
//    thundering-herd a recovering peer). A successful dial re-attaches the
//    link and the broker session handshake replays whatever the drop lost.
//  - Giving up. After Options::redial_budget consecutive failures the link
//    is declared dead: Broker::mark_link_dead purges its forward log and
//    subsequent forwards degrade to counted drops instead of unbounded
//    queueing. supervise() (or an inbound dial from the peer) revives it.
//
// The supervisor is deterministic: tick(now) is pure in the injected clock,
// so tests drive it with a fake clock. start()/stop() run the same tick loop
// on a background thread against the broker's real clock for daemon use.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <unordered_map>

#include "broker/broker.h"
#include "common/mutex.h"
#include "common/rng.h"

namespace gryphon {

class LinkSupervisor {
 public:
  /// Dials a peer broker, returning the new connection or kInvalidConn on
  /// failure. The supervisor attaches the link on success.
  using DialFn = std::function<ConnId(BrokerId)>;

  struct Options {
    /// A link with no inbound frame for this long is presumed dead and
    /// dropped. Must comfortably exceed the broker's heartbeat interval.
    Ticks idle_timeout{ticks_from_seconds(2)};
    /// First redial delay; doubles per consecutive failure.
    Ticks backoff_initial{ticks_from_millis(20)};
    /// Backoff ceiling.
    Ticks backoff_max{ticks_from_seconds(5)};
    /// Uniform jitter fraction added to each backoff (0.25 = up to +25%).
    double jitter{0.25};
    /// Consecutive dial failures tolerated before the link is declared
    /// dead. 0 = never give up.
    std::uint32_t redial_budget{0};
    /// Seed for the jitter stream (deterministic tests).
    std::uint64_t seed{0x5eed5eedULL};
  };

  LinkSupervisor(Broker& broker, DialFn dial, Options options);
  ~LinkSupervisor();

  LinkSupervisor(const LinkSupervisor&) = delete;
  LinkSupervisor& operator=(const LinkSupervisor&) = delete;

  /// Adds a peer to the supervised set (idempotent; revives a dead link).
  /// The first tick dials it if it is not already up.
  void supervise(BrokerId peer) EXCLUDES(mutex_);

  /// One supervision round at the given instant: drives the broker's link
  /// maintenance, drops idle links, and redials down links whose backoff
  /// has elapsed.
  void tick(Ticks now) EXCLUDES(mutex_);

  /// Runs tick(broker.clock_now()) every `period` on a background thread.
  void start(std::chrono::milliseconds period);
  void stop();

  struct LinkStatus {
    bool up{false};
    bool dead{false};
    std::uint32_t consecutive_failures{0};
    std::uint64_t dial_attempts{0};
    Ticks next_dial{0};
  };
  [[nodiscard]] LinkStatus status(BrokerId peer) const EXCLUDES(mutex_);

 private:
  struct PeerState {
    bool dead{false};
    std::uint32_t failures{0};
    std::uint64_t dial_attempts{0};
    Ticks backoff{0};
    Ticks next_dial{0};  // 0 = dial at the next tick
  };

  [[nodiscard]] Ticks next_backoff(PeerState& state) REQUIRES(mutex_);

  Broker* broker_;
  DialFn dial_;
  Options options_;
  mutable Mutex mutex_;
  std::unordered_map<BrokerId, PeerState> peers_ GUARDED_BY(mutex_);
  Rng rng_ GUARDED_BY(mutex_);
  std::thread thread_;
  std::atomic<bool> stopping_{false};
};

}  // namespace gryphon
