// Deterministic fault injection for transports (the chaos harness).
//
// FaultInjectingTransport is a decorator that sits between a node (broker or
// client) and its real transport, on both paths:
//
//   node --send()--> FaultInjectingTransport --send()--> inner transport
//   inner transport --on_frame()--> FaultInjectingTransport --on_frame()--> node
//
// Outbound frames are subjected to seeded, reproducible faults: dropped,
// duplicated, or delayed (held back and released behind later frames, i.e.
// reordered). Individual connections can be severed — a severed connection
// black-holes frames in *both* directions at this decorator, so severing one
// side of a broker pair partitions the link without either transport
// noticing — and healed again. A frame-type filter restricts faults to the
// frames under test (e.g. only EventForward/BrokerAck/LinkHeartbeat, leaving
// the handshake plane clean).
//
// Everything is driven by one Rng from Options::seed: the same seed, wiring,
// and frame sequence reproduces the same faults, which is what lets chaos
// tests assert exact delivery multisets against a no-fault oracle.
//
// Thread safety: fate decisions take an internal mutex; the inner send and
// the handler callbacks are invoked outside it (the handler may re-enter
// send()).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "broker/transport.h"
#include "common/mutex.h"
#include "common/rng.h"

namespace gryphon {

class FaultInjectingTransport final : public Transport, public TransportHandler {
 public:
  struct Options {
    std::uint64_t seed{1};
    /// Probability an eligible outbound frame is silently dropped.
    double drop_rate{0.0};
    /// Probability an eligible outbound frame is sent twice.
    double duplicate_rate{0.0};
    /// Probability an eligible outbound frame is held back and released
    /// only after delay_min..delay_max later sends (reordering).
    double delay_rate{0.0};
    std::uint32_t delay_min_frames{1};
    std::uint32_t delay_max_frames{4};
    /// Frame type bytes eligible for faults; empty = every frame.
    std::vector<std::uint8_t> fault_frame_types;
  };

  struct Counters {
    std::uint64_t dropped{0};
    std::uint64_t duplicated{0};
    std::uint64_t delayed{0};
    std::uint64_t severed_out{0};  // outbound frames eaten by a severed conn
    std::uint64_t severed_in{0};   // inbound frames eaten by a severed conn
  };

  FaultInjectingTransport(Transport& inner, Options options)
      : inner_(&inner), options_(std::move(options)), rng_(options_.seed) {}

  /// The node the decorator delivers inbound traffic to.
  void set_handler(TransportHandler* handler) { handler_ = handler; }

  // Transport (outbound path):
  void send(ConnId conn, std::vector<std::uint8_t> frame) override EXCLUDES(mutex_);
  void close(ConnId conn) override EXCLUDES(mutex_);

  // TransportHandler (inbound path):
  void on_connect(ConnId conn) override;
  void on_frame(ConnId conn, std::span<const std::uint8_t> frame) override EXCLUDES(mutex_);
  void on_disconnect(ConnId conn) override EXCLUDES(mutex_);

  /// Black-holes the connection in both directions until heal()/heal_all().
  /// Held (delayed) frames for it are discarded.
  void sever(ConnId conn) EXCLUDES(mutex_);
  void heal(ConnId conn) EXCLUDES(mutex_);
  void heal_all() EXCLUDES(mutex_);

  /// Releases every held (delayed) frame immediately, in hold order. Used
  /// to quiesce a chaos run before comparing against the oracle.
  void flush_delayed() EXCLUDES(mutex_);

  [[nodiscard]] Counters counters() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return counters_;
  }

 private:
  struct HeldFrame {
    ConnId conn{kInvalidConn};
    std::vector<std::uint8_t> frame;
    std::uint32_t release_after{0};  // pass-through sends remaining
  };

  [[nodiscard]] bool eligible(const std::vector<std::uint8_t>& frame) const REQUIRES(mutex_);
  /// Decrements hold counters and moves expired frames into `out`.
  void collect_released(std::vector<HeldFrame>& out) REQUIRES(mutex_);

  Transport* inner_;
  TransportHandler* handler_{nullptr};
  Options options_;
  mutable Mutex mutex_;
  Rng rng_ GUARDED_BY(mutex_);
  Counters counters_ GUARDED_BY(mutex_);
  std::unordered_set<ConnId> severed_ GUARDED_BY(mutex_);
  std::vector<HeldFrame> held_ GUARDED_BY(mutex_);
};

}  // namespace gryphon
