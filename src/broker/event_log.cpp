#include "broker/event_log.h"

namespace gryphon {

std::uint64_t EventLog::append(SpaceId space, std::vector<std::uint8_t> event, Ticks now,
                               BrokerId origin) {
  Entry entry;
  entry.seq = next_seq_++;
  entry.space = space;
  entry.event = std::move(event);
  entry.logged_at = now;
  entry.origin = origin;
  entries_.push_back(std::move(entry));
  return entries_.back().seq;
}

void EventLog::append_at(std::uint64_t seq, SpaceId space, std::vector<std::uint8_t> event,
                         Ticks now, BrokerId origin) {
  if (seq <= acked_) return;  // already retired on this replica
  next_seq_ = seq;
  append(space, std::move(event), now, origin);
}

void EventLog::restore(std::uint64_t next_seq, std::uint64_t acked,
                       std::uint64_t truncated_through, std::deque<Entry> entries) {
  entries_ = std::move(entries);
  next_seq_ = next_seq;
  acked_ = acked;
  truncated_through_ = truncated_through;
}

void EventLog::truncate_to(std::uint64_t drop_through, std::uint64_t truncated_through) {
  while (!entries_.empty() && entries_.front().seq <= drop_through) entries_.pop_front();
  if (truncated_through > truncated_through_) truncated_through_ = truncated_through;
}

void EventLog::acknowledge(std::uint64_t seq) {
  if (seq <= acked_) return;
  acked_ = seq;
  while (!entries_.empty() && entries_.front().seq <= acked_) entries_.pop_front();
}

std::vector<const EventLog::Entry*> EventLog::unacknowledged(std::uint64_t after) const {
  std::vector<const Entry*> out;
  for (const Entry& entry : entries_) {
    if (entry.seq > after) out.push_back(&entry);
  }
  return out;
}

std::size_t EventLog::collect(Ticks now, Ticks retention) {
  std::size_t collected = 0;
  while (!entries_.empty() && entries_.front().logged_at + retention < now) {
    if (entries_.front().seq > acked_) truncated_through_ = entries_.front().seq;
    entries_.pop_front();
    ++collected;
  }
  return collected;
}

std::size_t EventLog::drop_all() {
  std::size_t lost = 0;
  for (const Entry& entry : entries_) {
    if (entry.seq > acked_) {
      truncated_through_ = entry.seq;
      ++lost;
    }
  }
  entries_.clear();
  return lost;
}

}  // namespace gryphon
