#include "broker/broker.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace gryphon {

namespace {

// A fresh epoch per process: a restarted broker must never be confused with
// its previous incarnation, or peers would misapply old sequence state to
// the new session. Wall-clock nanoseconds mixed with the broker id is
// plenty; tests pin Options::session_epoch for determinism.
std::uint64_t derive_session_epoch(BrokerId self) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
  const std::uint64_t mixed =
      static_cast<std::uint64_t>(ns) ^ (static_cast<std::uint64_t>(self.value) << 56);
  return mixed | 1;  // never 0 (0 means "unknown epoch" on the wire)
}

}  // namespace

Broker::Broker(BrokerId self, const BrokerNetwork& topology, std::vector<SchemaPtr> spaces,
               Transport& transport, Options options)
    : core_(self, topology, std::move(spaces), options.matcher, options.shards,
            options.control),
      transport_(&transport),
      options_(std::move(options)),
      session_epoch_(options_.session_epoch != 0 ? options_.session_epoch
                                                 : derive_session_epoch(self)) {
  standby_ = options_.standby;
  repl_enabled_ = options_.replicate && !options_.standby;
  workers_.reserve(options_.match_threads);
  for (std::size_t i = 0; i < options_.match_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Broker::~Broker() {
  {
    MutexLock qlock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

Ticks Broker::now() const {
  if (options_.clock) return options_.clock();
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
  return ticks_from_micros(static_cast<double>(micros));
}

void Broker::flush() {
  MutexUniqueLock qlock(queue_mutex_);
  while (unfinished_events_ != 0) done_cv_.wait(qlock.native());
}

void Broker::attach_broker_link(ConnId conn, BrokerId peer) {
  MutexLock lock(mutex_);
  conns_[conn] = ConnState{ConnKind::kBroker, {}, peer};
  LinkSession& session = links_[peer];
  session.conn = conn;
  if (session.dead) {
    session.dead = false;  // an explicit attach always revives the link
    replicate({.kind = replication::UpdateKind::kLinkDead, .peer = peer, .dead = false});
  }
  session.last_recv = now();
  transport_->send(conn, wire::encode(wire::HelloBroker{core_.self(), session_epoch_,
                                                        session.in_epoch, session.in_seq}));
  session.last_send = now();
  sync_subscriptions_to(conn);
}

void Broker::sync_subscriptions_to(ConnId conn) {
  core_.control_plane().assert_serialized();  // serialized by mutex_
  // State synchronization on link (re-)establishment: replay every known
  // subscription replica to the peer. The receiver deduplicates by id and
  // answers tombstoned ids with an UnsubPropagate, so resending after a
  // reconnect is harmless, subscriptions registered while the link was down
  // still reach everyone, and stale replicas get reconciled away.
  std::vector<std::vector<std::uint8_t>> frames;
  core_.for_each_subscription([&](SpaceId space, SubscriptionId id, BrokerId owner,
                                  const Subscription& subscription) {
    frames.push_back(wire::encode(
        wire::SubPropagate{id, owner, space, encode_subscription(subscription)}));
  });
  // The whole replica set goes out as one coalesced flush.
  if (!frames.empty()) transport_->send_batch(conn, std::move(frames));
}

void Broker::on_connect(ConnId conn) {
  MutexLock lock(mutex_);
  conns_.emplace(conn, ConnState{});  // kind resolved by the hello frame
}

void Broker::on_disconnect(ConnId conn) {
  MutexLock lock(mutex_);
  const auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  const ConnState state = it->second;
  conns_.erase(it);
  if (state.kind == ConnKind::kClient) {
    const auto client = clients_.find(state.client_name);
    if (client != clients_.end() && client->second->conn == conn) {
      client->second->conn = kInvalidConn;  // offline; log keeps accumulating
    }
  } else if (state.kind == ConnKind::kBroker) {
    const auto link = links_.find(state.peer);
    if (link != links_.end() && link->second.conn == conn) {
      link->second.conn = kInvalidConn;  // session survives; forwards queue up
      ++stats_.link_flaps;
    }
  } else if (state.kind == ConnKind::kReplica) {
    // Replication sessions survive the drop the same way link sessions do:
    // the primary's update log keeps accumulating and the standby's next
    // ReplHello resumes (or re-snapshots) from its applied cursor.
    if (replica_.conn == conn) replica_.conn = kInvalidConn;
    if (repl_conn_ == conn) repl_conn_ = kInvalidConn;
  }
}

void Broker::on_frame(ConnId conn, std::span<const std::uint8_t> frame) {
  bool drop_conn = false;
  {
    MutexLock lock(mutex_);
    {
      // Any inbound frame proves the link is alive.
      const auto it = conns_.find(conn);
      if (it != conns_.end() && it->second.kind == ConnKind::kBroker) {
        const auto link = links_.find(it->second.peer);
        if (link != links_.end() && link->second.conn == conn) {
          link->second.last_recv = now();
        }
      } else if (it != conns_.end() && it->second.kind == ConnKind::kReplica) {
        if (conn == repl_conn_) repl_last_recv_ = now();  // primary liveness
      }
    }
    try {
      const wire::FrameType type = wire::peek_type(frame);
      if (standby_) {
        // A standby shadows its primary; it serves nobody until promoted.
        // Only the replication stream (and its liveness heartbeats) and a
        // promotion order are legitimate traffic — a client or broker that
        // reaches a standby is misconfigured, and humoring it would fork
        // the primary's state.
        switch (type) {
          case wire::FrameType::kStateSnapshot:
          case wire::FrameType::kStateUpdate:
          case wire::FrameType::kPromote:
          case wire::FrameType::kLinkHeartbeat:
            break;
          default:
            throw CodecError("standby: refusing frame type " +
                             std::to_string(static_cast<unsigned>(frame[0])) +
                             " before promotion");
        }
      }
      switch (type) {
        case wire::FrameType::kHelloClient:
          handle_hello_client(conn, wire::decode_hello_client(frame));
          break;
        case wire::FrameType::kHelloBroker:
          handle_hello_broker(conn, wire::decode_hello_broker(frame));
          break;
        case wire::FrameType::kSubscribe:
          handle_subscribe(conn, wire::decode_subscribe(frame));
          break;
        case wire::FrameType::kUnsubscribe:
          handle_unsubscribe(conn, wire::decode_unsubscribe(frame));
          break;
        case wire::FrameType::kPublish:
          handle_publish(conn, wire::decode_publish(frame));
          break;
        case wire::FrameType::kAck:
          handle_ack(conn, wire::decode_ack(frame));
          break;
        case wire::FrameType::kSubPropagate:
          handle_sub_propagate(conn, wire::decode_sub_propagate(frame));
          break;
        case wire::FrameType::kUnsubPropagate:
          handle_unsub_propagate(conn, wire::decode_unsub_propagate(frame));
          break;
        case wire::FrameType::kEventForward:
          handle_event_forward(conn, wire::decode_event_forward(frame));
          break;
        case wire::FrameType::kBrokerAck:
          handle_broker_ack(conn, wire::decode_broker_ack(frame));
          break;
        case wire::FrameType::kLinkHeartbeat:
          handle_link_heartbeat(conn, wire::decode_link_heartbeat(frame));
          break;
        case wire::FrameType::kReplHello:
          handle_repl_hello(conn, wire::decode_repl_hello(frame));
          break;
        case wire::FrameType::kStateSnapshot:
          handle_state_snapshot(conn, wire::decode_state_snapshot(frame));
          break;
        case wire::FrameType::kStateUpdate:
          handle_state_update(conn, wire::decode_state_update(frame));
          break;
        case wire::FrameType::kReplAck:
          handle_repl_ack(conn, wire::decode_repl_ack(frame));
          break;
        case wire::FrameType::kPromote: {
          const wire::Promote order = wire::decode_promote(frame);
          if (order.primary != core_.self()) {
            throw CodecError("promote order for a different broker");
          }
          promote_locked();
          break;
        }
        default:
          // Unknown type byte, or a frame a broker must never receive
          // (kDeliver, kError, ...): a protocol violation, same as garbage.
          throw CodecError("unexpected frame type " +
                           std::to_string(static_cast<unsigned>(frame[0])));
      }
    } catch (const std::exception& e) {
      // A malformed or hostile frame must never take the broker down — and
      // once a stream is misframed nothing after it can be trusted either:
      // count it, log it, and drop the connection. Reliable sessions
      // (client logs, link sessions) resume on reconnect.
      ++stats_.frames_rejected;
      GRYPHON_WARN("broker") << "broker " << core_.self()
                             << ": rejecting malformed frame on conn " << conn << ": "
                             << e.what() << " (dropping connection)";
      drop_conn = true;
    }
  }
  // Close outside the broker mutex: deterministic transports invoke
  // on_disconnect synchronously on this thread, which re-enters mutex_.
  if (drop_conn) transport_->close(conn);
}

void Broker::handle_hello_client(ConnId conn, const wire::HelloClient& hello) {
  auto& record = clients_[hello.name];
  if (!record) record = std::make_unique<ClientRecord>();
  record->conn = conn;
  conns_[conn] = ConnState{ConnKind::kClient, hello.name, BrokerId{}};
  transport_->send(conn, wire::encode(wire::HelloAck{record->log.acked_seq(),
                                                     record->log.truncated_through()}));
  send_quench_state(conn);
  // Replay everything the client has not seen (transient-failure recovery).
  const std::uint64_t after = std::max(hello.last_seq, record->log.acked_seq());
  for (const EventLog::Entry* entry : record->log.unacknowledged(after)) {
    transport_->send(conn, wire::encode(wire::Deliver{entry->seq, entry->space, entry->event}));
  }
}

void Broker::handle_hello_broker(ConnId conn, const wire::HelloBroker& hello) {
  // The end that did not dial (conn not yet bound to a broker) replies with
  // its own hello and a subscription sync; the initiator already sent both
  // in attach_broker_link(). Each side then replays from the peer's report.
  const auto existing = conns_.find(conn);
  const bool responder =
      existing == conns_.end() || existing->second.kind != ConnKind::kBroker;
  conns_[conn] = ConnState{ConnKind::kBroker, {}, hello.broker};
  LinkSession& session = links_[hello.broker];
  session.conn = conn;
  if (session.dead) {
    session.dead = false;  // the peer reached us: the link is back
    replicate({.kind = replication::UpdateKind::kLinkDead, .peer = hello.broker, .dead = false});
  }
  session.last_recv = now();
  if (hello.epoch != session.in_epoch) {
    // New peer incarnation: its forward numbering restarted.
    session.in_epoch = hello.epoch;
    session.in_seq = 0;
    replicate({.kind = replication::UpdateKind::kLinkInSeq,
               .peer = hello.broker,
               .seq = 0,
               .epoch = session.in_epoch});
  }
  if (responder) {
    transport_->send(conn, wire::encode(wire::HelloBroker{core_.self(), session_epoch_,
                                                          session.in_epoch, session.in_seq}));
    session.last_send = now();
    sync_subscriptions_to(conn);
  }
  replay_forwards_to(session, hello);
}

void Broker::replay_forwards_to(LinkSession& session, const wire::HelloBroker& hello) {
  std::uint64_t after = session.out_log.acked_seq();
  if (hello.peer_epoch_seen == session_epoch_) {
    // The peer's counters refer to this session: treat its report as a
    // cumulative ack (acks lost in the disconnect are recovered here).
    session.out_log.acknowledge(hello.peer_last_seq);
    after = std::max(after, hello.peer_last_seq);
  }
  if (session.out_log.truncated_through() > after) {
    GRYPHON_WARN("broker") << "broker " << core_.self() << ": link to " << hello.broker
                           << " replay window truncated: forwards (" << after << ", "
                           << session.out_log.truncated_through() << "] are gone";
  }
  // The lowest sequence the replay below can still produce. A peer whose
  // inbound counter sits under this would wait forever for frames that no
  // longer exist — either because retention GC truncated them, or because
  // the peer restarted (fresh counters) while our numbering kept going.
  // Declare the baseline first so the receiver rebases before the replay
  // arrives (handle_link_heartbeat does the rebase).
  const std::uint64_t baseline = std::max(after, session.out_log.truncated_through());
  const std::uint64_t peer_known =
      hello.peer_epoch_seen == session_epoch_ ? hello.peer_last_seq : 0;
  if (baseline > peer_known) {
    queue_link_frame(session, wire::encode(wire::LinkHeartbeat{session_epoch_, baseline}));
  }
  // As in tick_links: a failover rebase leaves sequence gaps nothing can
  // fill, so each one is bridged with a heartbeat floor — mid-replay if the
  // gap sits between retained entries, and after the replay if it sits at
  // the tail (last_seq was advanced past the final retained entry). The
  // receiver consumes the retained forwards first, then rebases across the
  // gap, so fresh post-promotion forwards flow without a go-back-N stall.
  std::uint64_t expected = baseline;
  for (const EventLog::Entry* entry : session.out_log.unacknowledged(baseline)) {
    if (entry->seq > expected + 1) {
      queue_link_frame(session,
                       wire::encode(wire::LinkHeartbeat{session_epoch_, entry->seq - 1}));
    }
    queue_link_frame(session,
                     wire::encode(wire::EventForward{entry->origin, entry->space, entry->event,
                                                     session_epoch_, entry->seq}));
    ++stats_.retransmits;
    expected = entry->seq;
  }
  if (session.out_log.last_seq() > expected) {
    queue_link_frame(session,
                     wire::encode(wire::LinkHeartbeat{session_epoch_,
                                                      session.out_log.last_seq()}));
  }
  // One coalesced flush for the baseline + replay suffix.
  flush_link_egress();
  session.last_send = now();
  session.last_resend = now();
}

void Broker::handle_subscribe(ConnId conn, const wire::SubscribeReq& req) {
  core_.control_plane().assert_serialized();  // serialized by mutex_
  const auto it = conns_.find(conn);
  if (it == conns_.end() || it->second.kind != ConnKind::kClient) {
    send_error(conn, req.token, "subscribe before hello");
    return;
  }
  if (!core_.has_space(req.space)) {
    send_error(conn, req.token, "unknown information space");
    return;
  }
  Subscription subscription = decode_subscription(core_.schema(req.space), req.subscription);
  const SubscriptionId id{
      static_cast<std::int64_t>((static_cast<std::uint64_t>(core_.self().value) << 40) |
                                next_sub_counter_++)};
  const std::size_t count_before = core_.subscription_count(req.space);
  core_.add_subscription(req.space, id, subscription, core_.self());
  auto& client = clients_.at(it->second.client_name);
  client->subscriptions.push_back(id);
  local_sub_client_[id] = it->second.client_name;
  local_sub_space_[id] = req.space;
  ++stats_.subscriptions_active;
  transport_->send(conn, wire::encode(wire::SubscribeAck{req.token, id}));
  replicate({.kind = replication::UpdateKind::kSubAdd,
             .id = id,
             .owner = core_.self(),
             .client = it->second.client_name,
             .space = req.space,
             .payload = req.subscription});
  propagate_subscription(
      wire::SubPropagate{id, core_.self(), req.space, req.subscription}, kInvalidConn);
  maybe_broadcast_quench(req.space, count_before);
}

void Broker::handle_unsubscribe(ConnId conn, const wire::Unsubscribe& req) {
  core_.control_plane().assert_serialized();  // serialized by mutex_
  const auto it = conns_.find(conn);
  if (it == conns_.end() || it->second.kind != ConnKind::kClient) return;
  const auto space_it = local_sub_space_.find(req.id);
  const std::size_t count_before =
      space_it == local_sub_space_.end() ? 0 : core_.subscription_count(space_it->second);
  const SpaceId space = space_it == local_sub_space_.end() ? SpaceId{0} : space_it->second;
  if (!core_.remove_subscription(req.id)) return;
  --stats_.subscriptions_active;
  record_tombstone(req.id);
  auto& client = clients_.at(it->second.client_name);
  auto& subs = client->subscriptions;
  subs.erase(std::remove(subs.begin(), subs.end(), req.id), subs.end());
  local_sub_client_.erase(req.id);
  local_sub_space_.erase(req.id);
  replicate({.kind = replication::UpdateKind::kSubRemove, .id = req.id});
  propagate_unsubscription(wire::UnsubPropagate{req.id}, kInvalidConn);
  maybe_broadcast_quench(space, count_before);
}

void Broker::handle_publish(ConnId conn, const wire::Publish& publish) {
  const auto it = conns_.find(conn);
  if (it == conns_.end() || it->second.kind != ConnKind::kClient) {
    send_error(conn, 0, "publish before hello");
    return;
  }
  if (!core_.has_space(publish.space)) {
    send_error(conn, 0, "unknown information space");
    return;
  }
  ++stats_.events_published;
  try {
    process_event(publish.space, publish.event, core_.self());
  } catch (const std::exception& e) {
    // The frame itself was well-formed; the event payload just does not
    // decode against the space's schema. That is a client-plane error,
    // answered on the client protocol instead of dropping the connection.
    ++stats_.frames_rejected;
    send_error(conn, 0, e.what());
  }
}

void Broker::handle_ack(ConnId conn, const wire::Ack& ack) {
  const auto it = conns_.find(conn);
  if (it == conns_.end() || it->second.kind != ConnKind::kClient) return;
  clients_.at(it->second.client_name)->log.acknowledge(ack.seq);
  replicate({.kind = replication::UpdateKind::kClientAck,
             .client = it->second.client_name,
             .seq = ack.seq});
}

void Broker::handle_sub_propagate(ConnId conn, const wire::SubPropagate& prop) {
  core_.control_plane().assert_serialized();  // serialized by mutex_
  if (tombstones_.contains(prop.id)) {
    // A stale replica from a peer that missed the unsubscription (e.g. its
    // reconnect re-flood): answer with the removal instead of resurrecting.
    transport_->send(conn, wire::encode(wire::UnsubPropagate{prop.id}));
    return;
  }
  if (core_.has_subscription(prop.id)) return;  // flooding deduplication
  if (!core_.has_space(prop.space)) return;
  const Subscription subscription =
      decode_subscription(core_.schema(prop.space), prop.subscription);
  const std::size_t count_before = core_.subscription_count(prop.space);
  core_.add_subscription(prop.space, prop.id, subscription, prop.owner);
  ++stats_.subscriptions_active;
  replicate({.kind = replication::UpdateKind::kSubAdd,
             .id = prop.id,
             .owner = prop.owner,
             .space = prop.space,
             .payload = prop.subscription});
  propagate_subscription(prop, conn);
  maybe_broadcast_quench(prop.space, count_before);
}

void Broker::handle_unsub_propagate(ConnId conn, const wire::UnsubPropagate& prop) {
  core_.control_plane().assert_serialized();  // serialized by mutex_
  record_tombstone(prop.id);  // even if already gone: a peer may re-flood it
  const auto space = core_.space_of(prop.id);
  if (!space.has_value()) return;  // already gone: stop the flood
  const std::size_t count_before = core_.subscription_count(*space);
  if (!core_.remove_subscription(prop.id)) return;
  --stats_.subscriptions_active;
  const auto named = local_sub_client_.find(prop.id);
  if (named != local_sub_client_.end()) {
    auto& subs = clients_.at(named->second)->subscriptions;
    subs.erase(std::remove(subs.begin(), subs.end(), prop.id), subs.end());
    local_sub_client_.erase(prop.id);
    local_sub_space_.erase(prop.id);
  }
  replicate({.kind = replication::UpdateKind::kSubRemove, .id = prop.id});
  propagate_unsubscription(prop, conn);
  maybe_broadcast_quench(*space, count_before);
}

void Broker::handle_event_forward(ConnId conn, const wire::EventForward& fwd) {
  const auto it = conns_.find(conn);
  if (it == conns_.end() || it->second.kind != ConnKind::kBroker) return;
  LinkSession& session = links_[it->second.peer];
  if (fwd.epoch != session.in_epoch) {
    // The peer restarted mid-stream (no hello seen yet): adopt its new
    // numbering from scratch.
    session.in_epoch = fwd.epoch;
    session.in_seq = 0;
    replicate({.kind = replication::UpdateKind::kLinkInSeq,
               .peer = it->second.peer,
               .seq = 0,
               .epoch = session.in_epoch});
  }
  if (fwd.seq <= session.in_seq) {
    // Retransmission of something already consumed (our ack was lost or
    // late). Re-ack so the sender's window advances.
    ++stats_.duplicates_dropped;
    send_broker_ack(session);
    return;
  }
  if (fwd.seq != session.in_seq + 1) {
    // A gap: frames in between were lost or reordered. Go-back-N — drop
    // and re-ack the last in-order seq; the sender retransmits the rest.
    send_broker_ack(session);
    return;
  }
  session.in_seq = fwd.seq;
  send_broker_ack(session);
  replicate({.kind = replication::UpdateKind::kLinkInSeq,
             .peer = it->second.peer,
             .seq = session.in_seq,
             .epoch = session.in_epoch});
  if (!core_.has_space(fwd.space)) return;
  ++stats_.events_relayed;
  process_event(fwd.space, fwd.event, fwd.tree_root);
}

void Broker::handle_broker_ack(ConnId conn, const wire::BrokerAck& ack) {
  const auto it = conns_.find(conn);
  if (it == conns_.end() || it->second.kind != ConnKind::kBroker) return;
  const auto link = links_.find(it->second.peer);
  if (link == links_.end()) return;
  if (ack.epoch != session_epoch_) return;  // ack for a previous incarnation
  LinkSession& session = link->second;
  if (ack.seq > session.out_log.acked_seq()) {
    session.out_log.acknowledge(ack.seq);
    session.last_resend = now();  // progress: restart the go-back-N timer
    replicate({.kind = replication::UpdateKind::kLinkAck,
               .peer = it->second.peer,
               .seq = ack.seq});
  }
}

void Broker::handle_link_heartbeat(ConnId conn, const wire::LinkHeartbeat& hb) {
  const auto it = conns_.find(conn);
  if (it == conns_.end() || it->second.kind != ConnKind::kBroker) return;
  LinkSession& session = links_[it->second.peer];
  const std::uint64_t epoch_before = session.in_epoch;
  const std::uint64_t seq_before = session.in_seq;
  if (hb.epoch != session.in_epoch) {
    session.in_epoch = hb.epoch;
    session.in_seq = 0;
  }
  if (hb.truncated_through > session.in_seq) {
    // The peer can no longer produce anything at or below this baseline
    // (retention GC truncated it, or our counters are fresh while its
    // numbering kept going). Waiting would stall the link forever: rebase
    // and resume from there.
    GRYPHON_INFO("broker") << "broker " << core_.self() << ": rebasing link from "
                           << it->second.peer << " to seq " << hb.truncated_through
                           << " (was " << session.in_seq << ")";
    session.in_seq = hb.truncated_through;
    send_broker_ack(session);
  }
  if (session.in_epoch != epoch_before || session.in_seq != seq_before) {
    replicate({.kind = replication::UpdateKind::kLinkInSeq,
               .peer = it->second.peer,
               .seq = session.in_seq,
               .epoch = session.in_epoch});
  }
}

void Broker::send_broker_ack(LinkSession& session) {
  if (session.conn == kInvalidConn) return;
  transport_->send(session.conn,
                   wire::encode(wire::BrokerAck{session.in_epoch, session.in_seq}));
  session.last_send = now();
}

void Broker::process_event(SpaceId space, const std::vector<std::uint8_t>& encoded,
                           BrokerId tree_root) {
  if (workers_.empty()) {
    // Deterministic mode: a one-event batch through the same batch-first
    // dispatch path the workers use, applied and flushed inline.
    const Event event = decode_event(core_.schema(space), encoded);
    sync_batch_.clear();
    sync_batch_.add(space, event, tree_root);
    const std::span<const BrokerCore::Decision> decisions = core_.dispatch(sync_batch_);
    apply_decision(space, encoded, tree_root, decisions[0]);
    flush_link_egress();
    return;
  }
  {
    MutexLock qlock(queue_mutex_);
    queue_.push_back(PendingEvent{space, encoded, tree_root});
    ++unfinished_events_;
  }
  queue_cv_.notify_one();
}

void Broker::worker_loop() {
  // Per-worker batch context (it owns the memoization arena); the dispatch
  // itself runs against the core's immutable snapshot, entirely outside
  // the broker mutex.
  const std::size_t batch_max = std::max<std::size_t>(1, options_.match_batch_max);
  DispatchBatch batch;
  std::vector<PendingEvent> items;
  std::vector<Event> events;
  std::vector<std::size_t> staged;  // item index per staged (decodable) event
  for (;;) {
    items.clear();
    {
      MutexUniqueLock qlock(queue_mutex_);
      while (!stop_ && queue_.empty()) queue_cv_.wait(qlock.native());
      if (queue_.empty()) return;  // stopping and drained
      const std::size_t take = std::min(queue_.size(), batch_max);
      for (std::size_t i = 0; i < take; ++i) {
        items.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    // Decode and validate the whole batch outside all locks. Bad events
    // (undecodable payload, unknown tree root off the wire) are rejected
    // individually so they cannot poison the rest of the batch.
    std::size_t rejected = 0;
    events.clear();
    events.reserve(items.size());  // no reallocation: the batch borrows &events[i]
    staged.clear();
    batch.clear();
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (!core_.known_tree_root(items[i].tree_root)) {
        GRYPHON_WARN("broker") << "broker " << core_.self()
                               << ": dropping event with unknown tree root "
                               << items[i].tree_root;
        ++rejected;
        continue;
      }
      try {
        events.push_back(decode_event(core_.schema(items[i].space), items[i].encoded));
      } catch (const std::exception& e) {
        GRYPHON_WARN("broker") << "broker " << core_.self()
                               << ": dropping undecodable event: " << e.what();
        ++rejected;
        continue;
      }
      batch.add(items[i].space, events.back(), items[i].tree_root);
      staged.push_back(i);
    }
    // One snapshot pin and one shard-grouped match pass for the batch...
    const std::span<const BrokerCore::Decision> decisions = core_.dispatch(batch);
    {
      // ...then one mutex hold applying every decision, with the resulting
      // link frames coalesced into one flush per neighbor.
      MutexLock lock(mutex_);
      stats_.frames_rejected += rejected;
      for (std::size_t j = 0; j < staged.size(); ++j) {
        const PendingEvent& item = items[staged[j]];
        apply_decision(item.space, item.encoded, item.tree_root, decisions[j]);
      }
      flush_link_egress();
    }
    {
      MutexLock qlock(queue_mutex_);
      unfinished_events_ -= items.size();
      if (unfinished_events_ == 0) done_cv_.notify_all();
    }
  }
}

void Broker::apply_decision(SpaceId space, const std::vector<std::uint8_t>& encoded,
                            BrokerId tree_root, const BrokerCore::Decision& decision) {
  stats_.matching_steps += decision.steps;

  for (const BrokerId peer : decision.forward) {
    LinkSession& session = links_[peer];
    if (session.dead) {
      // The supervisor gave this link up: degrade gracefully rather than
      // queue forever.
      ++stats_.forwards_dropped_dead_link;
      GRYPHON_WARN("broker") << "broker " << core_.self() << ": link to " << peer
                             << " is dead; dropping forward";
      continue;
    }
    // Log first, send second: the log is the source of truth the session
    // replays or retransmits from, whether or not the link is up right now.
    const bool was_idle = session.out_log.empty();
    const std::uint64_t seq = session.out_log.append(space, encoded, now(), tree_root);
    if (was_idle) session.last_resend = now();  // window opened: arm the timer
    replicate({.kind = replication::UpdateKind::kLinkForward,
               .peer = peer,
               .origin = tree_root,
               .space = space,
               .seq = seq,
               .payload = encoded});
    if (session.conn == kInvalidConn) {
      GRYPHON_WARN("broker") << "broker " << core_.self() << ": link to " << peer
                             << " is down; forward " << seq << " queued for replay";
      continue;
    }
    queue_link_frame(session, wire::encode(wire::EventForward{tree_root, space, encoded,
                                                              session_epoch_, seq}));
    ++stats_.events_forwarded;
  }

  if (!decision.local_matches.empty()) {
    // Fan out to local subscribers; one copy per client even when several
    // of its subscriptions match.
    std::vector<std::string> targets;
    for (const SubscriptionId id : decision.local_matches) {
      const auto named = local_sub_client_.find(id);
      if (named != local_sub_client_.end()) targets.push_back(named->second);
    }
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    for (const std::string& name : targets) {
      deliver_to_client(name, *clients_.at(name), space, encoded);
    }
  }
}

void Broker::queue_link_frame(LinkSession& session, std::vector<std::uint8_t> frame) {
  session.egress.push_back(std::move(frame));
  session.last_send = now();
}

void Broker::flush_link_egress() {
  for (auto& [peer, session] : links_) {
    (void)peer;
    if (session.egress.empty()) continue;
    // A disconnect cannot race us here (on_disconnect needs mutex_), and a
    // dead/downed link never has staged egress — frames are only queued on
    // live connections within the current hold.
    transport_->send_batch(session.conn, std::move(session.egress));
    session.egress.clear();
  }
}

void Broker::deliver_to_client(const std::string& name, ClientRecord& client, SpaceId space,
                               std::vector<std::uint8_t> encoded) {
  const std::uint64_t seq = client.log.append(space, std::move(encoded), now());
  ++stats_.events_delivered;
  replicate({.kind = replication::UpdateKind::kClientDeliver,
             .client = name,
             .space = space,
             .seq = seq,
             .payload = client.log.back().event});
  if (client.conn != kInvalidConn) {
    transport_->send(client.conn,
                     wire::encode(wire::Deliver{seq, space, client.log.back().event}));
  }
}

void Broker::propagate_subscription(const wire::SubPropagate& prop, ConnId except) {
  for (auto& [peer, session] : links_) {
    (void)peer;
    if (session.conn != kInvalidConn && session.conn != except) {
      transport_->send(session.conn, wire::encode(prop));
    }
  }
}

void Broker::propagate_unsubscription(const wire::UnsubPropagate& prop, ConnId except) {
  for (auto& [peer, session] : links_) {
    (void)peer;
    if (session.conn != kInvalidConn && session.conn != except) {
      transport_->send(session.conn, wire::encode(prop));
    }
  }
}

void Broker::record_tombstone(SubscriptionId id) {
  if (options_.unsub_tombstone_cap == 0) return;
  if (!tombstones_.insert(id).second) return;
  replicate({.kind = replication::UpdateKind::kTombstone, .id = id});
  tombstone_fifo_.push_back(id);
  while (tombstone_fifo_.size() > options_.unsub_tombstone_cap) {
    tombstones_.erase(tombstone_fifo_.front());
    tombstone_fifo_.pop_front();
  }
}

void Broker::send_error(ConnId conn, std::uint64_t token, std::string message) {
  transport_->send(conn, wire::encode(wire::ErrorFrame{token, std::move(message)}));
}

void Broker::send_quench_state(ConnId conn) {
  core_.control_plane().assert_serialized();  // serialized by mutex_
  for (std::size_t s = 0; s < core_.space_count(); ++s) {
    const SpaceId space{static_cast<SpaceId::rep_type>(s)};
    transport_->send(
        conn, wire::encode(wire::Quench{space, core_.subscription_count(space) > 0}));
  }
}

void Broker::maybe_broadcast_quench(SpaceId space, std::size_t count_before) {
  core_.control_plane().assert_serialized();  // serialized by mutex_
  const std::size_t count_after = core_.subscription_count(space);
  const bool was_active = count_before > 0;
  const bool is_active = count_after > 0;
  if (was_active == is_active) return;
  const auto frame = wire::encode(wire::Quench{space, is_active});
  for (const auto& [name, client] : clients_) {
    (void)name;
    if (client->conn != kInvalidConn) transport_->send(client->conn, frame);
  }
}

std::size_t Broker::collect_garbage() {
  MutexLock lock(mutex_);
  std::size_t collected = 0;
  const Ticks t = now();
  for (auto& [name, client] : clients_) {
    const std::size_t dropped = client->log.collect(t, options_.log_retention);
    collected += dropped;
    if (dropped > 0) {
      // Mirror the truncation so the standby's log never outgrows ours.
      // Everything below the surviving front entry is gone here (dropped by
      // this collection or retired by an earlier ack).
      const auto unacked = client->log.unacknowledged();
      const std::uint64_t drop_through =
          unacked.empty() ? client->log.last_seq() : unacked.front()->seq - 1;
      replicate({.kind = replication::UpdateKind::kClientTruncate,
                 .client = name,
                 .seq = drop_through,
                 .truncated_through = client->log.truncated_through()});
    }
  }
  for (auto& [peer, session] : links_) {
    const std::uint64_t before = session.out_log.truncated_through();
    const std::size_t dropped = session.out_log.collect(t, options_.log_retention);
    collected += dropped;
    if (dropped > 0) {
      const auto unacked = session.out_log.unacknowledged();
      const std::uint64_t drop_through =
          unacked.empty() ? session.out_log.last_seq() : unacked.front()->seq - 1;
      replicate({.kind = replication::UpdateKind::kLinkTruncate,
                 .peer = peer,
                 .seq = drop_through,
                 .truncated_through = session.out_log.truncated_through()});
    }
    if (session.out_log.truncated_through() > before) {
      GRYPHON_WARN("broker") << "broker " << core_.self() << ": retention GC truncated link "
                             << peer << " replay window through "
                             << session.out_log.truncated_through();
    }
  }
  return collected;
}

void Broker::tick_links(Ticks now_ticks) {
  MutexLock lock(mutex_);
  for (auto& [peer, session] : links_) {
    (void)peer;
    if (session.conn == kInvalidConn || session.dead) continue;
    const auto unacked = session.out_log.unacknowledged();
    if (!unacked.empty() &&
        now_ticks - session.last_resend >= options_.link_retransmit_timeout) {
      // Go-back-N: the whole unacked window goes again, staged and then
      // flushed below as one coalesced write per neighbor. The window can
      // contain a sequence gap nothing will ever fill — the synthetic
      // failover rebase (Options::failover_seq_gap) skips a range the dead
      // primary may have used. Announce each such gap as a heartbeat floor
      // first, or the receiver would wait forever for frames that never
      // existed while rejecting everything above them.
      std::uint64_t expected = session.out_log.acked_seq();
      for (const EventLog::Entry* entry : unacked) {
        if (entry->seq > expected + 1) {
          queue_link_frame(session, wire::encode(wire::LinkHeartbeat{session_epoch_,
                                                                     entry->seq - 1}));
        }
        queue_link_frame(session,
                         wire::encode(wire::EventForward{entry->origin, entry->space,
                                                         entry->event, session_epoch_,
                                                         entry->seq}));
        ++stats_.retransmits;
        expected = entry->seq;
      }
      session.last_resend = now_ticks;
      session.last_send = now_ticks;
    }
    if (now_ticks - session.last_send >= options_.link_heartbeat_interval) {
      queue_link_frame(session,
                       wire::encode(wire::LinkHeartbeat{
                           session_epoch_, session.out_log.truncated_through()}));
      session.last_send = now_ticks;
    }
  }
  flush_link_egress();
  // The replication session is ticked with the same go-back-N machinery:
  // unacked updates are re-streamed when the standby's ack stalls, and an
  // idle stream carries heartbeats so the standby's deadman timer (brokerd's
  // promote-on-silence loop) only fires when the primary is actually gone.
  if (replica_.conn != kInvalidConn) {
    const auto unacked = replica_.log.unacknowledged();
    if (!unacked.empty() &&
        now_ticks - replica_.last_resend >= options_.repl_retransmit_timeout) {
      std::vector<std::vector<std::uint8_t>> frames;
      frames.reserve(unacked.size());
      for (const EventLog::Entry* entry : unacked) {
        frames.push_back(wire::encode(wire::StateUpdate{entry->seq, entry->event}));
        ++stats_.repl_updates_sent;
      }
      transport_->send_batch(replica_.conn, std::move(frames));
      replica_.last_resend = now_ticks;
      replica_.last_send = now_ticks;
    }
    if (now_ticks - replica_.last_send >= options_.link_heartbeat_interval) {
      transport_->send(replica_.conn, wire::encode(wire::LinkHeartbeat{session_epoch_, 0}));
      replica_.last_send = now_ticks;
    }
  }
}

bool Broker::link_up(BrokerId peer) const {
  MutexLock lock(mutex_);
  const auto it = links_.find(peer);
  return it != links_.end() && it->second.conn != kInvalidConn;
}

std::optional<Ticks> Broker::link_last_activity(BrokerId peer) const {
  MutexLock lock(mutex_);
  const auto it = links_.find(peer);
  if (it == links_.end()) return std::nullopt;
  return it->second.last_recv;
}

void Broker::drop_link(BrokerId peer) {
  ConnId conn = kInvalidConn;
  {
    MutexLock lock(mutex_);
    const auto it = links_.find(peer);
    if (it != links_.end()) conn = it->second.conn;
  }
  // Close outside the mutex (see on_frame).
  if (conn != kInvalidConn) transport_->close(conn);
}

void Broker::mark_link_dead(BrokerId peer) {
  ConnId conn = kInvalidConn;
  {
    MutexLock lock(mutex_);
    LinkSession& session = links_[peer];
    conn = session.conn;
    session.conn = kInvalidConn;
    session.dead = true;
    const std::size_t lost = session.out_log.drop_all();
    stats_.forwards_dropped_dead_link += lost;
    replicate({.kind = replication::UpdateKind::kLinkDead, .peer = peer, .dead = true});
    GRYPHON_WARN("broker") << "broker " << core_.self() << ": declaring link to " << peer
                           << " dead (" << lost << " queued forwards dropped)";
  }
  if (conn != kInvalidConn) transport_->close(conn);
}

// --- Replication (the Clone pattern; docs/fault-tolerance.md) -------------

void Broker::replicate(const replication::Update& update) {
  if (!repl_enabled_ || standby_) return;
  const bool was_idle = replica_.log.empty();
  const std::uint64_t seq =
      replica_.log.append(SpaceId{0}, replication::encode_update(update), now());
  if (was_idle) replica_.last_resend = now();  // window opened: arm the timer
  if (replica_.log.size() > options_.repl_log_window) {
    // Overflow: shed the oldest retained updates. A standby that has not
    // applied past the new floor can no longer resume from the log — its
    // next ack (or hello) below the floor triggers a full snapshot instead.
    const std::uint64_t drop_through = seq - options_.repl_log_window;
    replica_.log.truncate_to(drop_through, drop_through);
  }
  if (replica_.conn != kInvalidConn) {
    transport_->send(replica_.conn,
                     wire::encode(wire::StateUpdate{seq, replica_.log.back().event}));
    replica_.last_send = now();
    ++stats_.repl_updates_sent;
  }
}

void Broker::handle_repl_hello(ConnId conn, const wire::ReplHello& hello) {
  if (hello.primary != core_.self()) {
    throw CodecError("replication hello addressed to a different primary");
  }
  conns_[conn] = ConnState{ConnKind::kReplica, {}, BrokerId{}};
  replica_.conn = conn;
  // The update log only covers history since replication was enabled; a log
  // armed just now (Options::replicate unset) misses everything before this
  // hello, so the resume path is only sound once the first snapshot (which
  // carries the full state) has been sent. A standby that has never applied
  // anything (applied_seq == 0) always gets a snapshot regardless: the
  // session epoch and subscription-id counter travel only in snapshots, and
  // promotion is identity takeover — the standby cannot come up on an epoch
  // of its own.
  const bool log_covers_history = repl_enabled_;
  repl_enabled_ = true;
  const std::uint64_t resume_floor =
      std::max(replica_.log.acked_seq(), replica_.log.truncated_through());
  const bool resumable = log_covers_history && hello.applied_seq > 0 &&
                         hello.applied_seq >= resume_floor &&
                         hello.applied_seq <= replica_.log.last_seq();
  if (resumable) {
    // The standby already holds everything through applied_seq: ship only
    // the missing suffix.
    replica_.log.acknowledge(hello.applied_seq);
    std::vector<std::vector<std::uint8_t>> frames;
    for (const EventLog::Entry* entry : replica_.log.unacknowledged()) {
      frames.push_back(wire::encode(wire::StateUpdate{entry->seq, entry->event}));
      ++stats_.repl_updates_sent;
    }
    if (!frames.empty()) transport_->send_batch(conn, std::move(frames));
  } else {
    // Fresh standby, or one from before the retained window: re-baseline
    // with a full state image. Everything retained in the log is subsumed.
    transport_->send(conn, wire::encode(wire::StateSnapshot{
                               replica_.log.last_seq(),
                               replication::encode_snapshot(build_snapshot_image())}));
    replica_.log.acknowledge(replica_.log.last_seq());
    ++stats_.repl_snapshots_sent;
  }
  replica_.last_send = now();
  replica_.last_resend = now();
}

void Broker::handle_repl_ack(ConnId conn, const wire::ReplAck& ack) {
  if (conn != replica_.conn) return;
  if (ack.seq < replica_.log.truncated_through()) {
    // The standby fell behind the retained update window (overflow shed the
    // entries it still needs): re-baseline with a fresh snapshot — the Clone
    // pattern's catch-up path.
    transport_->send(conn, wire::encode(wire::StateSnapshot{
                               replica_.log.last_seq(),
                               replication::encode_snapshot(build_snapshot_image())}));
    replica_.log.acknowledge(replica_.log.last_seq());
    ++stats_.repl_snapshots_sent;
    replica_.last_send = now();
    replica_.last_resend = now();
    return;
  }
  if (ack.seq > replica_.log.acked_seq()) {
    replica_.log.acknowledge(ack.seq);
    replica_.last_resend = now();  // progress: restart the go-back-N timer
  }
}

void Broker::handle_state_snapshot(ConnId conn, const wire::StateSnapshot& snap) {
  if (!standby_ || conn != repl_conn_) return;
  install_snapshot(replication::decode_snapshot(snap.state));
  repl_applied_seq_ = snap.through_seq;
  ++stats_.repl_snapshots_applied;
  send_repl_ack(conn);
}

void Broker::handle_state_update(ConnId conn, const wire::StateUpdate& update) {
  if (!standby_ || conn != repl_conn_) return;
  if (update.seq <= repl_applied_seq_) {
    // Retransmission of an update already applied: re-ack so the primary's
    // window advances.
    send_repl_ack(conn);
    return;
  }
  if (update.seq != repl_applied_seq_ + 1) {
    // A gap: go-back-N, exactly as on broker links. Re-ack the cursor; the
    // primary re-streams the suffix (or re-baselines with a snapshot if the
    // missing updates were shed from its window).
    send_repl_ack(conn);
    return;
  }
  apply_update(replication::decode_update(update.update));
  repl_applied_seq_ = update.seq;
  ++stats_.repl_updates_applied;
  send_repl_ack(conn);
}

void Broker::send_repl_ack(ConnId conn) {
  transport_->send(conn, wire::encode(wire::ReplAck{repl_applied_seq_}));
}

void Broker::apply_update(const replication::Update& update) {
  core_.control_plane().assert_serialized();  // serialized by mutex_
  const Ticks t = now();  // local clock: replicated timestamps would skew GC
  switch (update.kind) {
    case replication::UpdateKind::kSubAdd: {
      if (!core_.has_space(update.space) || core_.has_subscription(update.id)) break;
      core_.add_subscription(update.space, update.id,
                             decode_subscription(core_.schema(update.space), update.payload),
                             update.owner);
      ++stats_.subscriptions_active;
      if (update.owner == core_.self()) {
        // Track the primary's id counter (we shadow its identity), so ids
        // assigned after promotion continue the sequence instead of
        // colliding with replicated ones.
        const std::uint64_t counter =
            static_cast<std::uint64_t>(update.id.value) & ((std::uint64_t{1} << 40) - 1);
        next_sub_counter_ = std::max(next_sub_counter_, counter + 1);
      }
      if (!update.client.empty()) {
        auto& record = clients_[update.client];
        if (!record) record = std::make_unique<ClientRecord>();
        record->subscriptions.push_back(update.id);
        local_sub_client_[update.id] = update.client;
        local_sub_space_[update.id] = update.space;
      }
      break;
    }
    case replication::UpdateKind::kSubRemove: {
      if (!core_.remove_subscription(update.id)) break;
      --stats_.subscriptions_active;
      const auto named = local_sub_client_.find(update.id);
      if (named != local_sub_client_.end()) {
        auto& subs = clients_.at(named->second)->subscriptions;
        subs.erase(std::remove(subs.begin(), subs.end(), update.id), subs.end());
        local_sub_client_.erase(update.id);
        local_sub_space_.erase(update.id);
      }
      break;
    }
    case replication::UpdateKind::kTombstone:
      record_tombstone(update.id);
      break;
    case replication::UpdateKind::kClientDeliver: {
      auto& record = clients_[update.client];
      if (!record) record = std::make_unique<ClientRecord>();
      record->log.append_at(update.seq, update.space, update.payload, t);
      break;
    }
    case replication::UpdateKind::kClientAck: {
      const auto it = clients_.find(update.client);
      if (it != clients_.end()) it->second->log.acknowledge(update.seq);
      break;
    }
    case replication::UpdateKind::kClientTruncate: {
      const auto it = clients_.find(update.client);
      if (it != clients_.end()) {
        it->second->log.truncate_to(update.seq, update.truncated_through);
      }
      break;
    }
    case replication::UpdateKind::kLinkForward:
      links_[update.peer].out_log.append_at(update.seq, update.space, update.payload, t,
                                            update.origin);
      break;
    case replication::UpdateKind::kLinkAck:
      links_[update.peer].out_log.acknowledge(update.seq);
      break;
    case replication::UpdateKind::kLinkTruncate:
      links_[update.peer].out_log.truncate_to(update.seq, update.truncated_through);
      break;
    case replication::UpdateKind::kLinkInSeq: {
      LinkSession& session = links_[update.peer];
      session.in_epoch = update.epoch;
      session.in_seq = update.seq;
      break;
    }
    case replication::UpdateKind::kLinkDead: {
      LinkSession& session = links_[update.peer];
      session.dead = update.dead;
      if (update.dead) session.out_log.drop_all();
      break;
    }
  }
}

replication::SnapshotImage Broker::build_snapshot_image() {
  core_.control_plane().assert_serialized();  // serialized by mutex_
  replication::SnapshotImage image;
  image.session_epoch = session_epoch_;
  image.next_sub_counter = next_sub_counter_;
  core_.for_each_subscription([&](SpaceId space, SubscriptionId id, BrokerId owner,
                                  const Subscription& subscription) {
    replication::SubImage sub;
    sub.id = id;
    sub.owner = owner;
    sub.space = space;
    const auto named = local_sub_client_.find(id);
    if (named != local_sub_client_.end()) sub.client = named->second;
    sub.subscription = encode_subscription(subscription);
    image.subscriptions.push_back(std::move(sub));
  });
  image.tombstones.assign(tombstone_fifo_.begin(), tombstone_fifo_.end());
  for (const auto& [peer, session] : links_) {
    replication::LinkImage link;
    link.peer = peer;
    link.dead = session.dead;
    link.in_epoch = session.in_epoch;
    link.in_seq = session.in_seq;
    link.out_log.next_seq = session.out_log.last_seq() + 1;
    link.out_log.acked = session.out_log.acked_seq();
    link.out_log.truncated_through = session.out_log.truncated_through();
    for (const EventLog::Entry* entry : session.out_log.unacknowledged()) {
      link.out_log.entries.push_back(*entry);
    }
    image.links.push_back(std::move(link));
  }
  for (const auto& [name, client] : clients_) {
    replication::ClientImage ci;
    ci.name = name;
    ci.log.next_seq = client->log.last_seq() + 1;
    ci.log.acked = client->log.acked_seq();
    ci.log.truncated_through = client->log.truncated_through();
    for (const EventLog::Entry* entry : client->log.unacknowledged()) {
      ci.log.entries.push_back(*entry);
    }
    image.clients.push_back(std::move(ci));
  }
  return image;
}

void Broker::install_snapshot(const replication::SnapshotImage& image) {
  core_.control_plane().assert_serialized();  // serialized by mutex_
  // Wholesale replacement: a snapshot re-baselines, it does not merge.
  // (Pre-promotion a standby has no client or broker connections — the
  // on_frame gate refuses them — so there is no live state to preserve.)
  std::vector<SubscriptionId> existing;
  core_.for_each_subscription(
      [&](SpaceId, SubscriptionId id, BrokerId, const Subscription&) {
        existing.push_back(id);
      });
  for (const SubscriptionId id : existing) {
    core_.remove_subscription(id, SnapshotPolicy::kDefer);
  }
  clients_.clear();
  local_sub_client_.clear();
  local_sub_space_.clear();
  links_.clear();
  tombstones_.clear();
  tombstone_fifo_.clear();
  // Identity takeover includes the primary's link-session epoch and its
  // subscription-id counter: after promotion, peers must see the same
  // session continue, not a new incarnation.
  session_epoch_ = image.session_epoch;
  next_sub_counter_ = image.next_sub_counter;
  stats_.subscriptions_active = 0;
  const Ticks t = now();
  for (const replication::SubImage& sub : image.subscriptions) {
    if (!core_.has_space(sub.space) || core_.has_subscription(sub.id)) continue;
    core_.add_subscription(sub.space, sub.id,
                           decode_subscription(core_.schema(sub.space), sub.subscription),
                           sub.owner, SnapshotPolicy::kDefer);
    ++stats_.subscriptions_active;
    if (!sub.client.empty()) {
      auto& record = clients_[sub.client];
      if (!record) record = std::make_unique<ClientRecord>();
      record->subscriptions.push_back(sub.id);
      local_sub_client_[sub.id] = sub.client;
      local_sub_space_[sub.id] = sub.space;
    }
  }
  for (std::size_t s = 0; s < core_.space_count(); ++s) {
    core_.publish_space(SpaceId{static_cast<SpaceId::rep_type>(s)});
  }
  for (const SubscriptionId id : image.tombstones) record_tombstone(id);
  for (const replication::LinkImage& link : image.links) {
    LinkSession& session = links_[link.peer];
    session.dead = link.dead;
    session.in_epoch = link.in_epoch;
    session.in_seq = link.in_seq;
    std::deque<EventLog::Entry> entries = link.out_log.entries;
    for (EventLog::Entry& entry : entries) entry.logged_at = t;  // re-stamp
    session.out_log.restore(link.out_log.next_seq, link.out_log.acked,
                            link.out_log.truncated_through, std::move(entries));
  }
  for (const replication::ClientImage& ci : image.clients) {
    auto& record = clients_[ci.name];
    if (!record) record = std::make_unique<ClientRecord>();
    std::deque<EventLog::Entry> entries = ci.log.entries;
    for (EventLog::Entry& entry : entries) entry.logged_at = t;  // re-stamp
    record->log.restore(ci.log.next_seq, ci.log.acked, ci.log.truncated_through,
                        std::move(entries));
  }
}

void Broker::promote_locked() {
  if (!standby_) return;
  standby_ = false;
  ++stats_.promotions;
  // The dead primary may have assigned sequences past everything it
  // replicated. Skip a gap no real assignment could have crossed, so
  // nothing numbered after promotion can collide with something a peer or
  // client already consumed. Link peers cross the gap via the heartbeat
  // floor rule; clients see it reported as an honest truncation bound.
  const std::uint64_t gap = options_.failover_seq_gap;
  for (auto& [peer, session] : links_) {
    (void)peer;
    session.out_log.advance_next_seq(gap);
    ++stats_.failover_seq_rebases;
  }
  for (auto& [name, client] : clients_) {
    (void)name;
    client->log.rebase_for_failover(gap);
    ++stats_.failover_seq_rebases;
  }
  next_sub_counter_ += gap;
  repl_conn_ = kInvalidConn;
  GRYPHON_INFO("broker") << "broker " << core_.self() << ": standby promoted to primary ("
                         << repl_applied_seq_ << " updates applied, epoch "
                         << session_epoch_ << ")";
}

void Broker::promote() {
  ConnId stale = kInvalidConn;
  {
    MutexLock lock(mutex_);
    stale = repl_conn_;
    promote_locked();
  }
  // Close outside the mutex (see on_frame); a dead primary's conn is
  // usually already gone, but an operator-driven promotion may race one.
  if (stale != kInvalidConn) transport_->close(stale);
}

Broker::Role Broker::role() const {
  MutexLock lock(mutex_);
  return standby_ ? Role::kStandby : Role::kPrimary;
}

void Broker::attach_replication_link(ConnId conn) {
  MutexLock lock(mutex_);
  if (!standby_) return;  // promoted (or never a standby): nothing to attach
  conns_[conn] = ConnState{ConnKind::kReplica, {}, BrokerId{}};
  repl_conn_ = conn;
  repl_last_recv_ = now();
  repl_attached_ = true;
  transport_->send(conn, wire::encode(wire::ReplHello{core_.self(), repl_applied_seq_}));
}

std::optional<Ticks> Broker::replication_last_activity() const {
  MutexLock lock(mutex_);
  if (!repl_attached_) return std::nullopt;
  return repl_last_recv_;
}

std::uint64_t Broker::replication_applied_seq() const {
  MutexLock lock(mutex_);
  return repl_applied_seq_;
}

Broker::Stats Broker::stats() const {
  MutexLock lock(mutex_);
  core_.control_plane().assert_serialized();  // serialized by mutex_
  Stats out = stats_;
  out.control_plane = core_.control_plane_stats();
  return out;
}

std::uint64_t Broker::client_log_size(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = clients_.find(name);
  return it == clients_.end() ? 0 : it->second->log.size();
}

}  // namespace gryphon
