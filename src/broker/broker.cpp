#include "broker/broker.h"

#include <algorithm>

#include "common/logging.h"

namespace gryphon {

Broker::Broker(BrokerId self, const BrokerNetwork& topology, std::vector<SchemaPtr> spaces,
               Transport& transport, Options options)
    : core_(self, topology, std::move(spaces), options.matcher),
      transport_(&transport),
      options_(options) {
  workers_.reserve(options_.match_threads);
  for (std::size_t i = 0; i < options_.match_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Broker::~Broker() {
  {
    MutexLock qlock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

Ticks Broker::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
  return ticks_from_micros(static_cast<double>(micros));
}

void Broker::flush() {
  MutexUniqueLock qlock(queue_mutex_);
  while (unfinished_events_ != 0) done_cv_.wait(qlock.native());
}

void Broker::attach_broker_link(ConnId conn, BrokerId peer) {
  MutexLock lock(mutex_);
  conns_[conn] = ConnState{ConnKind::kBroker, {}, peer};
  broker_conns_[peer] = conn;
  transport_->send(conn, wire::encode(wire::HelloBroker{core_.self()}));
  sync_subscriptions_to(conn);
}

void Broker::sync_subscriptions_to(ConnId conn) {
  core_.control_plane().assert_serialized();  // serialized by mutex_
  // State synchronization on link (re-)establishment: replay every known
  // subscription replica to the peer. The receiver deduplicates by id, so
  // resending after a reconnect is harmless, and subscriptions registered
  // before the link came up (or while it was down) still reach everyone.
  core_.for_each_subscription([&](SpaceId space, SubscriptionId id, BrokerId owner,
                                  const Subscription& subscription) {
    transport_->send(conn, wire::encode(wire::SubPropagate{
                               id, owner, space, encode_subscription(subscription)}));
  });
}

void Broker::on_connect(ConnId conn) {
  MutexLock lock(mutex_);
  conns_.emplace(conn, ConnState{});  // kind resolved by the hello frame
}

void Broker::on_disconnect(ConnId conn) {
  MutexLock lock(mutex_);
  const auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  const ConnState state = it->second;
  conns_.erase(it);
  if (state.kind == ConnKind::kClient) {
    const auto client = clients_.find(state.client_name);
    if (client != clients_.end() && client->second->conn == conn) {
      client->second->conn = kInvalidConn;  // offline; log keeps accumulating
    }
  } else if (state.kind == ConnKind::kBroker) {
    const auto link = broker_conns_.find(state.peer);
    if (link != broker_conns_.end() && link->second == conn) broker_conns_.erase(link);
  }
}

void Broker::on_frame(ConnId conn, std::span<const std::uint8_t> frame) {
  MutexLock lock(mutex_);
  try {
    switch (wire::peek_type(frame)) {
      case wire::FrameType::kHelloClient:
        handle_hello_client(conn, wire::decode_hello_client(frame));
        break;
      case wire::FrameType::kHelloBroker:
        handle_hello_broker(conn, wire::decode_hello_broker(frame));
        break;
      case wire::FrameType::kSubscribe:
        handle_subscribe(conn, wire::decode_subscribe(frame));
        break;
      case wire::FrameType::kUnsubscribe:
        handle_unsubscribe(conn, wire::decode_unsubscribe(frame));
        break;
      case wire::FrameType::kPublish:
        handle_publish(conn, wire::decode_publish(frame));
        break;
      case wire::FrameType::kAck:
        handle_ack(conn, wire::decode_ack(frame));
        break;
      case wire::FrameType::kSubPropagate:
        handle_sub_propagate(conn, wire::decode_sub_propagate(frame));
        break;
      case wire::FrameType::kUnsubPropagate:
        handle_unsub_propagate(conn, wire::decode_unsub_propagate(frame));
        break;
      case wire::FrameType::kEventForward:
        handle_event_forward(conn, wire::decode_event_forward(frame));
        break;
      default:
        GRYPHON_WARN("broker") << "broker " << core_.self() << ": unexpected frame type";
        break;
    }
  } catch (const std::exception& e) {
    GRYPHON_WARN("broker") << "broker " << core_.self() << ": bad frame: " << e.what();
    send_error(conn, 0, e.what());
  }
}

void Broker::handle_hello_client(ConnId conn, const wire::HelloClient& hello) {
  auto& record = clients_[hello.name];
  if (!record) record = std::make_unique<ClientRecord>();
  record->conn = conn;
  conns_[conn] = ConnState{ConnKind::kClient, hello.name, BrokerId{}};
  transport_->send(conn, wire::encode(wire::HelloAck{record->log.acked_seq()}));
  send_quench_state(conn);
  // Replay everything the client has not seen (transient-failure recovery).
  const std::uint64_t after = std::max(hello.last_seq, record->log.acked_seq());
  for (const EventLog::Entry* entry : record->log.unacknowledged(after)) {
    transport_->send(conn, wire::encode(wire::Deliver{entry->seq, entry->space, entry->event}));
  }
}

void Broker::handle_hello_broker(ConnId conn, const wire::HelloBroker& hello) {
  conns_[conn] = ConnState{ConnKind::kBroker, {}, hello.broker};
  broker_conns_[hello.broker] = conn;
  sync_subscriptions_to(conn);
}

void Broker::handle_subscribe(ConnId conn, const wire::SubscribeReq& req) {
  core_.control_plane().assert_serialized();  // serialized by mutex_
  const auto it = conns_.find(conn);
  if (it == conns_.end() || it->second.kind != ConnKind::kClient) {
    send_error(conn, req.token, "subscribe before hello");
    return;
  }
  if (!core_.has_space(req.space)) {
    send_error(conn, req.token, "unknown information space");
    return;
  }
  Subscription subscription = decode_subscription(core_.schema(req.space), req.subscription);
  const SubscriptionId id{
      static_cast<std::int64_t>((static_cast<std::uint64_t>(core_.self().value) << 40) |
                                next_sub_counter_++)};
  const std::size_t count_before = core_.subscription_count(req.space);
  core_.add_subscription(req.space, id, subscription, core_.self());
  auto& client = clients_.at(it->second.client_name);
  client->subscriptions.push_back(id);
  local_sub_client_[id] = it->second.client_name;
  local_sub_space_[id] = req.space;
  ++stats_.subscriptions_active;
  transport_->send(conn, wire::encode(wire::SubscribeAck{req.token, id}));
  propagate_subscription(
      wire::SubPropagate{id, core_.self(), req.space, req.subscription}, kInvalidConn);
  maybe_broadcast_quench(req.space, count_before);
}

void Broker::handle_unsubscribe(ConnId conn, const wire::Unsubscribe& req) {
  core_.control_plane().assert_serialized();  // serialized by mutex_
  const auto it = conns_.find(conn);
  if (it == conns_.end() || it->second.kind != ConnKind::kClient) return;
  const auto space_it = local_sub_space_.find(req.id);
  const std::size_t count_before =
      space_it == local_sub_space_.end() ? 0 : core_.subscription_count(space_it->second);
  const SpaceId space = space_it == local_sub_space_.end() ? SpaceId{0} : space_it->second;
  if (!core_.remove_subscription(req.id)) return;
  --stats_.subscriptions_active;
  auto& client = clients_.at(it->second.client_name);
  auto& subs = client->subscriptions;
  subs.erase(std::remove(subs.begin(), subs.end(), req.id), subs.end());
  local_sub_client_.erase(req.id);
  local_sub_space_.erase(req.id);
  propagate_unsubscription(wire::UnsubPropagate{req.id}, kInvalidConn);
  maybe_broadcast_quench(space, count_before);
}

void Broker::handle_publish(ConnId conn, const wire::Publish& publish) {
  const auto it = conns_.find(conn);
  if (it == conns_.end() || it->second.kind != ConnKind::kClient) {
    send_error(conn, 0, "publish before hello");
    return;
  }
  if (!core_.has_space(publish.space)) {
    send_error(conn, 0, "unknown information space");
    return;
  }
  ++stats_.events_published;
  process_event(publish.space, publish.event, core_.self());
}

void Broker::handle_ack(ConnId conn, const wire::Ack& ack) {
  const auto it = conns_.find(conn);
  if (it == conns_.end() || it->second.kind != ConnKind::kClient) return;
  clients_.at(it->second.client_name)->log.acknowledge(ack.seq);
}

void Broker::handle_sub_propagate(ConnId conn, const wire::SubPropagate& prop) {
  core_.control_plane().assert_serialized();  // serialized by mutex_
  if (core_.has_subscription(prop.id)) return;  // flooding deduplication
  if (!core_.has_space(prop.space)) return;
  const Subscription subscription =
      decode_subscription(core_.schema(prop.space), prop.subscription);
  const std::size_t count_before = core_.subscription_count(prop.space);
  core_.add_subscription(prop.space, prop.id, subscription, prop.owner);
  ++stats_.subscriptions_active;
  propagate_subscription(prop, conn);
  maybe_broadcast_quench(prop.space, count_before);
}

void Broker::handle_unsub_propagate(ConnId conn, const wire::UnsubPropagate& prop) {
  core_.control_plane().assert_serialized();  // serialized by mutex_
  const auto space = core_.space_of(prop.id);
  if (!space.has_value()) return;  // already gone: stop the flood
  const std::size_t count_before = core_.subscription_count(*space);
  if (!core_.remove_subscription(prop.id)) return;
  --stats_.subscriptions_active;
  propagate_unsubscription(prop, conn);
  maybe_broadcast_quench(*space, count_before);
}

void Broker::handle_event_forward(ConnId conn, const wire::EventForward& fwd) {
  (void)conn;
  if (!core_.has_space(fwd.space)) return;
  ++stats_.events_relayed;
  process_event(fwd.space, fwd.event, fwd.tree_root);
}

void Broker::process_event(SpaceId space, const std::vector<std::uint8_t>& encoded,
                           BrokerId tree_root) {
  if (workers_.empty()) {
    const Event event = decode_event(core_.schema(space), encoded);
    apply_decision(space, encoded, tree_root, core_.dispatch(space, event, tree_root));
    return;
  }
  {
    MutexLock qlock(queue_mutex_);
    queue_.push_back(PendingEvent{space, encoded, tree_root});
    ++unfinished_events_;
  }
  queue_cv_.notify_one();
}

void Broker::worker_loop() {
  // One memoization arena per worker; the dispatch itself runs against the
  // core's immutable snapshot, entirely outside the broker mutex.
  MatchScratch scratch;
  for (;;) {
    PendingEvent item;
    {
      MutexUniqueLock qlock(queue_mutex_);
      while (!stop_ && queue_.empty()) queue_cv_.wait(qlock.native());
      if (queue_.empty()) return;  // stopping and drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      const Event event = decode_event(core_.schema(item.space), item.encoded);
      const BrokerCore::Decision decision =
          core_.dispatch(item.space, event, item.tree_root, scratch);
      MutexLock lock(mutex_);
      apply_decision(item.space, item.encoded, item.tree_root, decision);
    } catch (const std::exception& e) {
      GRYPHON_WARN("broker") << "broker " << core_.self()
                             << ": dropping undecodable event: " << e.what();
    }
    {
      MutexLock qlock(queue_mutex_);
      if (--unfinished_events_ == 0) done_cv_.notify_all();
    }
  }
}

void Broker::apply_decision(SpaceId space, const std::vector<std::uint8_t>& encoded,
                            BrokerId tree_root, const BrokerCore::Decision& decision) {
  stats_.matching_steps += decision.steps;

  for (const BrokerId peer : decision.forward) {
    const auto link = broker_conns_.find(peer);
    if (link == broker_conns_.end()) {
      GRYPHON_WARN("broker") << "broker " << core_.self() << ": link to " << peer << " is down";
      continue;
    }
    transport_->send(link->second, wire::encode(wire::EventForward{tree_root, space, encoded}));
    ++stats_.events_forwarded;
  }

  if (!decision.local_matches.empty()) {
    // Fan out to local subscribers; one copy per client even when several
    // of its subscriptions match.
    std::vector<std::string> targets;
    for (const SubscriptionId id : decision.local_matches) {
      const auto named = local_sub_client_.find(id);
      if (named != local_sub_client_.end()) targets.push_back(named->second);
    }
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    for (const std::string& name : targets) {
      deliver_to_client(*clients_.at(name), space, encoded);
    }
  }
}

void Broker::deliver_to_client(ClientRecord& client, SpaceId space,
                               std::vector<std::uint8_t> encoded) {
  const std::uint64_t seq = client.log.append(space, std::move(encoded), now());
  ++stats_.events_delivered;
  if (client.conn != kInvalidConn) {
    transport_->send(client.conn,
                     wire::encode(wire::Deliver{seq, space, client.log.back().event}));
  }
}

void Broker::propagate_subscription(const wire::SubPropagate& prop, ConnId except) {
  for (const auto& [peer, conn] : broker_conns_) {
    (void)peer;
    if (conn != except) transport_->send(conn, wire::encode(prop));
  }
}

void Broker::propagate_unsubscription(const wire::UnsubPropagate& prop, ConnId except) {
  for (const auto& [peer, conn] : broker_conns_) {
    (void)peer;
    if (conn != except) transport_->send(conn, wire::encode(prop));
  }
}

void Broker::send_error(ConnId conn, std::uint64_t token, std::string message) {
  transport_->send(conn, wire::encode(wire::ErrorFrame{token, std::move(message)}));
}

void Broker::send_quench_state(ConnId conn) {
  core_.control_plane().assert_serialized();  // serialized by mutex_
  for (std::size_t s = 0; s < core_.space_count(); ++s) {
    const SpaceId space{static_cast<SpaceId::rep_type>(s)};
    transport_->send(
        conn, wire::encode(wire::Quench{space, core_.subscription_count(space) > 0}));
  }
}

void Broker::maybe_broadcast_quench(SpaceId space, std::size_t count_before) {
  core_.control_plane().assert_serialized();  // serialized by mutex_
  const std::size_t count_after = core_.subscription_count(space);
  const bool was_active = count_before > 0;
  const bool is_active = count_after > 0;
  if (was_active == is_active) return;
  const auto frame = wire::encode(wire::Quench{space, is_active});
  for (const auto& [name, client] : clients_) {
    (void)name;
    if (client->conn != kInvalidConn) transport_->send(client->conn, frame);
  }
}

std::size_t Broker::collect_garbage() {
  MutexLock lock(mutex_);
  std::size_t collected = 0;
  const Ticks t = now();
  for (auto& [name, client] : clients_) {
    (void)name;
    collected += client->log.collect(t, options_.log_retention);
  }
  return collected;
}

Broker::Stats Broker::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

std::uint64_t Broker::client_log_size(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = clients_.find(name);
  return it == clients_.end() ? 0 : it->second->log.size();
}

}  // namespace gryphon
