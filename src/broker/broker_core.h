// BrokerCore: the transport-free matching/routing engine of one broker node.
//
// Holds, per information space, the network-wide subscription set organized
// as a PST (every broker has a copy of all subscriptions — Section 3.1),
// trit-annotated for this broker's outgoing links. Link positions 0..m-1
// are this broker's inter-broker ports in the shared topology; position m
// is a pseudo-link standing for "some local subscriber" — when it refines
// to Yes, the owning Broker fans out to the matching local clients through
// the client protocol (brokers "forward messages to its subscribers based
// on their subscriptions", Section 1).
//
// Subscription destinations here are *owner brokers* (the broker a
// subscriber is attached to), so clients can come and go without touching
// other brokers' annotations.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "matching/pst_matcher.h"
#include "routing/annotated_pst.h"
#include "routing/link_matcher.h"
#include "topology/network.h"
#include "topology/routing_table.h"
#include "topology/spanning_tree.h"

namespace gryphon {

class BrokerCore {
 public:
  /// `topology` must contain brokers and inter-broker links only (clients
  /// attach dynamically through the Broker layer and are not part of the
  /// static routing topology). Every broker is a potential spanning-tree
  /// root (any broker may host publishers).
  BrokerCore(BrokerId self, const BrokerNetwork& topology, std::vector<SchemaPtr> spaces,
             PstMatcherOptions matcher_options = PstMatcherOptions());

  [[nodiscard]] BrokerId self() const { return self_; }
  [[nodiscard]] std::size_t space_count() const { return spaces_.size(); }
  [[nodiscard]] const SchemaPtr& schema(std::uint16_t space) const;
  /// Neighbor broker on each inter-broker port, in port order.
  [[nodiscard]] const std::vector<BrokerId>& neighbors() const { return neighbors_; }

  /// Registers a subscription replica. `owner` is the broker whose client
  /// created it. Throws on duplicate id / bad space / schema mismatch.
  void add_subscription(std::uint16_t space, SubscriptionId id, const Subscription& subscription,
                        BrokerId owner);
  /// Removes a replica; false when unknown.
  bool remove_subscription(SubscriptionId id);
  [[nodiscard]] bool has_subscription(SubscriptionId id) const {
    return registry_.contains(id);
  }
  [[nodiscard]] std::size_t subscription_count() const { return registry_.size(); }
  /// Subscription replicas registered for one information space.
  [[nodiscard]] std::size_t subscription_count(std::uint16_t space) const {
    return space_counts_.at(space);
  }

  struct Decision {
    std::vector<BrokerId> forward;  // neighbor brokers that need the event
    bool deliver_locally{false};    // some subscriber of this broker may match
    std::uint64_t steps{0};         // matching steps spent
  };

  /// The link-matching forwarding decision for an event published via the
  /// spanning tree rooted at `tree_root`.
  [[nodiscard]] Decision route(std::uint16_t space, const Event& event,
                               BrokerId tree_root) const;

  /// Locally-owned subscriptions matching the event (client fan-out).
  [[nodiscard]] std::vector<SubscriptionId> match_local(std::uint16_t space,
                                                        const Event& event) const;

  /// All subscriptions (network-wide replica set) matching the event.
  [[nodiscard]] std::vector<SubscriptionId> match_all(std::uint16_t space,
                                                      const Event& event) const;

  /// Owner broker of a subscription; throws when unknown.
  [[nodiscard]] BrokerId owner_of(SubscriptionId id) const;

  /// Information space of a subscription; nullopt when unknown.
  [[nodiscard]] std::optional<std::uint16_t> space_of(SubscriptionId id) const {
    const auto it = registry_.find(id);
    if (it == registry_.end()) return std::nullopt;
    return it->second.space;
  }

  /// Iterates every registered subscription replica:
  /// fn(space, id, owner, subscription). Used for state synchronization
  /// when a broker link is (re-)established.
  template <typename Fn>
  void for_each_subscription(Fn&& fn) const {
    for (const auto& [id, reg] : registry_) {
      const Subscription* subscription = spaces_[reg.space].matcher->find_subscription(id);
      if (subscription != nullptr) fn(reg.space, id, reg.owner, *subscription);
    }
  }

 private:
  struct Group {
    const SpanningTree* representative{nullptr};
    SubscriptionLinkFn link_of;
    std::unordered_map<const Pst*, std::unique_ptr<AnnotatedPst>> annotations;
  };
  struct Space {
    SchemaPtr schema;
    std::unique_ptr<PstMatcher> matcher;        // all subscriptions
    std::unique_ptr<PstMatcher> local_matcher;  // subscriptions owned here
  };
  struct Registered {
    std::uint16_t space;
    BrokerId owner;
  };

  void apply_touched(std::uint16_t space, const PstMatcher::TouchedTrees& touched);
  [[nodiscard]] const Space& space_at(std::uint16_t space) const;

  BrokerId self_;
  const BrokerNetwork* topology_;
  RoutingTable routing_;
  std::map<BrokerId, std::unique_ptr<SpanningTree>> trees_;
  std::vector<BrokerId> neighbors_;
  std::size_t link_count_{0};  // broker ports + 1 pseudo-local
  std::vector<Space> spaces_;
  // Groups and masks are shared across spaces (they depend on topology and
  // owner mapping only). Annotations within a group are keyed by Pst*.
  std::vector<std::unique_ptr<Group>> groups_;
  std::unordered_map<BrokerId, Group*> group_of_root_;
  std::unordered_map<BrokerId, TritVector> init_masks_;
  std::unordered_map<SubscriptionId, Registered> registry_;
  std::vector<std::size_t> space_counts_;
};

}  // namespace gryphon
