// BrokerCore: the transport-free matching/routing engine of one broker node.
//
// Holds, per information space, the network-wide subscription set organized
// as a PST (every broker has a copy of all subscriptions — Section 3.1),
// trit-annotated for this broker's outgoing links. Link positions 0..m-1
// are this broker's inter-broker ports in the shared topology; position m
// is a pseudo-link standing for "some local subscriber" — when it refines
// to Yes, the owning Broker fans out to the matching local clients through
// the client protocol (brokers "forward messages to its subscribers based
// on their subscriptions", Section 1).
//
// Subscription destinations here are *owner brokers* (the broker a
// subscriber is attached to), so clients can come and go without touching
// other brokers' annotations.
//
// Threading contract: the control plane (add_subscription /
// remove_subscription, and the registry reads owner_of / space_of /
// has_subscription / for_each_subscription) must be externally serialized —
// the owning Broker's mutex does this. The data plane (dispatch, match_all)
// never blocks beyond a pointer copy and is safe to call from any number of
// threads concurrently with the control plane: each control-plane change
// compiles the touched trees into a fresh immutable CoreSnapshot published
// through the SnapshotSlot, and a dispatch pins one snapshot for the
// duration of the event (see core_snapshot.h). Dispatch and match_all run
// on the compiled flat kernel (matching/compiled_pst.h); the mutable trees
// are writer-only.
//
// The contract is machine-checked: control-plane methods carry
// REQUIRES(control_plane_) on a ControlPlaneCapability, so a Clang build
// with -Werror=thread-safety rejects any call path that has not either
// locked the serializing mutex and asserted the capability (what Broker
// does) or asserted single-threaded ownership (what tests and the simulator
// do). See docs/static-analysis.md.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "broker/core_snapshot.h"
#include "broker/dispatch_batch.h"
#include "common/hash.h"
#include "common/thread_annotations.h"
#include "matching/covering_index.h"
#include "matching/match_scratch.h"
#include "matching/pst_matcher.h"
#include "routing/compiled_annotation.h"
#include "topology/network.h"
#include "topology/routing_table.h"
#include "topology/spanning_tree.h"

namespace gryphon {

/// Control-plane behaviour of one BrokerCore: subscription covering and
/// incremental (delta) snapshot compilation. Both default on; the
/// differential suites (tests/test_covering.cpp) hold the on/off configs to
/// bit-identical match sets.
struct ControlPlaneOptions {
  /// Park covered subscriptions (matching/covering_index.h) instead of
  /// inserting them into the PSTs.
  bool covering{true};
  /// Target frontier subscriptions per delta segment: a space's frontier
  /// is sliced into independently compiled PstMatchers, doubling the slice
  /// count whenever the frontier exceeds segments * target (so one churn
  /// event recompiles ~target subscriptions, not the whole space). The
  /// default keeps small/medium spaces in a single slice — identical to
  /// the pre-delta layout.
  std::size_t delta_segment_target{16384};
  /// Upper bound on slices per space (growth stops here).
  std::size_t max_delta_segments{64};
};

/// Control-plane observability counters (satellite of the covering/delta
/// work): how churn was absorbed, exposed through Broker::Stats + brokerd.
struct ControlPlaneStats {
  /// log2-bucketed publish latency: bucket i counts publishes that took
  /// [2^i, 2^(i+1)) microseconds (bucket 0 also takes sub-microsecond).
  static constexpr std::size_t kHistogramBuckets = 20;

  std::uint64_t frontier_subscriptions{0};  // live in compiled kernels
  std::uint64_t covered_subscriptions{0};   // parked under coverers
  std::uint64_t delta_publishes{0};         // >= 1 compiled segment reused
  std::uint64_t full_publishes{0};          // nothing reusable
  std::uint64_t covering_only_publishes{0};  // O(1) table-sharing publishes
  std::uint64_t segments_compiled{0};
  std::uint64_t segments_reused{0};
  std::uint64_t compile_publishes{0};   // publishes that froze trees
  std::uint64_t compile_us_total{0};
  std::array<std::uint64_t, kHistogramBuckets> compile_us_histogram{};
};

/// Whether a control-plane mutation publishes a fresh snapshot before
/// returning (the default) or defers publication until publish_space() —
/// the bulk-load shape: pay one compile for a million subscribes.
enum class SnapshotPolicy : std::uint8_t { kPublish = 0, kDefer = 1 };

/// A zero-cost capability standing for "the BrokerCore control plane is
/// serialized". BrokerCore owns no lock of its own: the real exclusion is
/// external (the owning Broker's mutex_, or plain single-threaded use), so
/// callers state it to the analysis by calling assert_serialized() after
/// establishing whichever invariant applies. Clang's -Wthread-safety then
/// proves every control-plane call site sits on a serialized path; at
/// runtime the capability is an empty object.
class CAPABILITY("control_plane") ControlPlaneCapability {
 public:
  /// Declares that the calling scope is on the serialized control-plane
  /// path (lock held, or provably single-threaded). No runtime effect.
  void assert_serialized() const ASSERT_CAPABILITY(this) {}
};

class BrokerCore {
 public:
  /// `topology` must contain brokers and inter-broker links only (clients
  /// attach dynamically through the Broker layer and are not part of the
  /// static routing topology). Every broker is a potential spanning-tree
  /// root (any broker may host publishers).
  /// `data_plane_shards` partitions each factored space's compiled buckets
  /// into that many independently matchable shards (clamped to >= 1);
  /// unfactored spaces always have one effective shard. `control` selects
  /// covering/delta-compilation behaviour (both on by default).
  BrokerCore(BrokerId self, const BrokerNetwork& topology, std::vector<SchemaPtr> spaces,
             PstMatcherOptions matcher_options = PstMatcherOptions(),
             std::size_t data_plane_shards = 1, ControlPlaneOptions control = {});

  [[nodiscard]] BrokerId self() const { return self_; }
  [[nodiscard]] std::size_t space_count() const { return spaces_.size(); }
  [[nodiscard]] bool has_space(SpaceId space) const {
    return space.valid() && static_cast<std::size_t>(space.value) < spaces_.size();
  }
  [[nodiscard]] const SchemaPtr& schema(SpaceId space) const;
  /// Neighbor broker on each inter-broker port, in port order.
  [[nodiscard]] const std::vector<BrokerId>& neighbors() const { return neighbors_; }
  /// Whether `root` names a spanning tree this core can dispatch on (any
  /// broker in the topology). Immutable after construction, so callers can
  /// validate events before staging them into a DispatchBatch instead of
  /// letting one bad event poison a whole batch with an exception.
  [[nodiscard]] bool known_tree_root(BrokerId root) const {
    return group_index_of_root_.contains(root);
  }

  /// The capability serializing this core's control plane. Hold the owning
  /// broker's mutex (or be provably single-threaded), then
  /// `core.control_plane().assert_serialized()` to unlock the writer API
  /// for the current scope.
  [[nodiscard]] ControlPlaneCapability& control_plane() const
      RETURN_CAPABILITY(control_plane_) {
    return control_plane_;
  }

  /// Registers a subscription replica. `owner` is the broker whose client
  /// created it. Throws on duplicate id / bad space / schema mismatch.
  /// Publishes a new snapshot before returning unless `policy` defers it.
  void add_subscription(SpaceId space, SubscriptionId id, const Subscription& subscription,
                        BrokerId owner, SnapshotPolicy policy = SnapshotPolicy::kPublish)
      REQUIRES(control_plane_);
  /// Removes a replica; false when unknown. Publishes a new snapshot
  /// unless `policy` defers it.
  bool remove_subscription(SubscriptionId id,
                           SnapshotPolicy policy = SnapshotPolicy::kPublish)
      REQUIRES(control_plane_);
  /// Publishes any churn deferred with SnapshotPolicy::kDefer for `space`.
  /// No-op when nothing is pending.
  void publish_space(SpaceId space) REQUIRES(control_plane_);
  [[nodiscard]] bool has_subscription(SubscriptionId id) const REQUIRES(control_plane_) {
    return registry_.contains(id);
  }
  [[nodiscard]] std::size_t subscription_count() const REQUIRES(control_plane_) {
    return registry_.size();
  }
  /// Subscription replicas registered for one information space.
  [[nodiscard]] std::size_t subscription_count(SpaceId space) const REQUIRES(control_plane_) {
    return space_counts_.at(static_cast<std::size_t>(space.value));
  }
  /// Frontier subscriptions of one space — what the compiled kernels carry.
  [[nodiscard]] std::size_t frontier_count(SpaceId space) const REQUIRES(control_plane_);
  /// Subscriptions of one space parked under coverers (0 when covering off).
  [[nodiscard]] std::size_t covered_count(SpaceId space) const REQUIRES(control_plane_);
  /// Current delta-segment (frontier slice) count of one space.
  [[nodiscard]] std::size_t segment_count(SpaceId space) const REQUIRES(control_plane_);
  /// Control-plane churn counters, with the live/covered totals filled in.
  [[nodiscard]] ControlPlaneStats control_plane_stats() const REQUIRES(control_plane_);

  /// The full outcome of dispatching one event at this broker. Defined in
  /// broker/dispatch_batch.h next to the batch context that carries it.
  using Decision = gryphon::Decision;

  /// Dispatches every event staged in `batch` against one pinned snapshot:
  /// the forwarding decision *and* the locally-owned matches for each
  /// event, published via its spanning tree, in one pruned search per
  /// event. This is the native call shape of the data plane — the snapshot
  /// is pinned once for the whole batch and events are matched grouped by
  /// (space, serving shard) so each shard's compiled tables stay hot. The
  /// returned span lives in `batch`, one Decision per staged event in
  /// add() order, valid until the batch is cleared or re-dispatched.
  std::span<const Decision> dispatch(DispatchBatch& batch) const;

  /// Scalar shim over the batch path for call sites that genuinely handle
  /// one event (tests, the simulator). `scratch` provides the caller-thread
  /// memoization arena; there is deliberately no scratch-defaulting
  /// overload — batch contexts own scratch now (see DispatchBatch).
  [[nodiscard]] Decision dispatch(SpaceId space, const Event& event, BrokerId tree_root,
                                  MatchScratch& scratch) const;

  /// Shards serving one space in the published snapshot (1 unless the
  /// space is factored and the core was built with data_plane_shards > 1).
  [[nodiscard]] std::size_t shard_count(SpaceId space) const;

  /// All subscriptions (network-wide replica set) matching the event.
  [[nodiscard]] std::vector<SubscriptionId> match_all(SpaceId space, const Event& event) const;

  /// The currently published snapshot (monotonically increasing version).
  [[nodiscard]] std::uint64_t snapshot_version() const {
    return snapshot_.load()->version;
  }

  /// Owner broker of a subscription; throws when unknown.
  [[nodiscard]] BrokerId owner_of(SubscriptionId id) const REQUIRES(control_plane_);

  /// Information space of a subscription; nullopt when unknown.
  [[nodiscard]] std::optional<SpaceId> space_of(SubscriptionId id) const
      REQUIRES(control_plane_) {
    const auto it = registry_.find(id);
    if (it == registry_.end()) return std::nullopt;
    return it->second.space;
  }

  /// Iterates every registered subscription replica:
  /// fn(space, id, owner, subscription). Used for state synchronization
  /// when a broker link is (re-)established. Parked subscriptions are
  /// included — covering is a local compilation strategy, not protocol
  /// state, so peers see the full replica set.
  template <typename Fn>
  void for_each_subscription(Fn&& fn) const REQUIRES(control_plane_) {
    for (const auto& [id, reg] : registry_) {
      const Space& sp = spaces_[static_cast<std::size_t>(reg.space.value)];
      if (sp.covering != nullptr) {
        if (const auto subscription = sp.covering->find(id)) {
          fn(reg.space, id, reg.owner, *subscription);
        }
        continue;
      }
      const Subscription* subscription =
          sp.segments[segment_of(id, sp.segments.size())]->find_subscription(id);
      if (subscription != nullptr) fn(reg.space, id, reg.owner, *subscription);
    }
  }

 private:
  struct Group {
    const SpanningTree* representative{nullptr};
    SubscriptionLinkFn link_of;
  };
  struct Space {
    SchemaPtr schema;
    /// Frontier slices, indexed by segment_of(id); writer-only. One slice
    /// until growth (see ControlPlaneOptions::delta_segment_target).
    std::vector<std::unique_ptr<PstMatcher>> segments;
    std::unique_ptr<CoveringIndex> covering;  // null when covering off
    bool dirty{false};       // churn deferred with SnapshotPolicy::kDefer
    bool force_full{false};  // slices rebuilt since last publish: no reuse
  };
  struct Registered {
    SpaceId space;
    BrokerId owner;
  };

  /// The frontier slice a subscription id lives in — a pure function, so
  /// add/remove/growth all agree.
  [[nodiscard]] static std::size_t segment_of(SubscriptionId id, std::size_t count) {
    return count <= 1 ? 0 : splitmix64(static_cast<std::uint64_t>(id.value)) % count;
  }

  [[nodiscard]] const Space& space_at(SpaceId space) const;
  [[nodiscard]] SnapshotBuilder::SpaceSources sources_of(const Space& sp) const
      REQUIRES(control_plane_);
  /// Recompiles the touched space's frozen state (reusing unchanged
  /// segments) and atomically publishes a new snapshot. Writer-side only.
  void publish_snapshot(SpaceId touched) REQUIRES(control_plane_);
  /// O(1) publish for covering-only churn: shares the compiled tables,
  /// swaps the covering sidecar.
  void publish_covering_only(SpaceId touched) REQUIRES(control_plane_);
  /// Doubles the space's slice count when the frontier outgrows
  /// delta_segment_target per slice, redistributing every frontier
  /// subscription (forces the next publish to compile from scratch).
  void maybe_grow_segments(SpaceId space) REQUIRES(control_plane_);
  /// Matches one event against an already-pinned snapshot and fills `out`.
  /// The shared hot path under both dispatch shapes; data-plane pure.
  void dispatch_pinned(const CoreSnapshot& snapshot, SpaceId space, const Event& event,
                       BrokerId tree_root, MatchScratch& scratch, Decision& out) const;

  BrokerId self_;
  const BrokerNetwork* topology_;
  RoutingTable routing_;
  std::map<BrokerId, std::unique_ptr<SpanningTree>> trees_;
  std::vector<BrokerId> neighbors_;
  std::size_t link_count_{0};  // broker ports + 1 pseudo-local
  LinkIndex local_link_;
  std::vector<Space> spaces_;
  // Groups and masks are shared across spaces (they depend on topology and
  // owner mapping only).
  std::vector<std::unique_ptr<Group>> groups_;
  std::unordered_map<BrokerId, std::size_t> group_index_of_root_;
  std::unordered_map<BrokerId, TritVector> init_masks_;
  mutable ControlPlaneCapability control_plane_;
  std::unordered_map<SubscriptionId, Registered> registry_ GUARDED_BY(control_plane_);
  std::vector<std::size_t> space_counts_ GUARDED_BY(control_plane_);
  PstMatcherOptions matcher_options_;  // slice shape, reused by growth
  ControlPlaneOptions control_options_;
  ControlPlaneStats stats_ GUARDED_BY(control_plane_);
  std::unique_ptr<SnapshotBuilder> builder_;
  SnapshotSlot snapshot_;
};

}  // namespace gryphon
