#include "sim/saturation.h"

#include <stdexcept>

namespace gryphon {

SaturationResult find_saturation_rate(
    const SaturationConfig& config,
    const std::function<SimResult(double rate, std::uint64_t seed)>& run_at_rate) {
  if (!(config.min_rate > 0) || !(config.max_rate > config.min_rate)) {
    throw std::invalid_argument("find_saturation_rate: bad rate bounds");
  }
  SaturationResult result;

  double lo = config.min_rate;   // sustained (assumed)
  double hi = config.max_rate;   // overloaded (assumed)

  // Establish the bracket: if even min_rate overloads, report it as 0; if
  // max_rate is sustained, report max_rate (the caller should widen).
  SimResult at_lo = run_at_rate(lo, config.seed);
  ++result.simulations_run;
  if (at_lo.overloaded) {
    result.saturation_rate = 0.0;
    result.at_saturation = at_lo;
    return result;
  }
  SimResult at_hi = run_at_rate(hi, config.seed);
  ++result.simulations_run;
  if (!at_hi.overloaded) {
    result.saturation_rate = hi;
    result.at_saturation = at_hi;
    return result;
  }

  SimResult best = at_lo;
  while ((hi - lo) / hi > config.relative_tolerance) {
    const double mid = 0.5 * (lo + hi);
    SimResult at_mid = run_at_rate(mid, config.seed);
    ++result.simulations_run;
    if (at_mid.overloaded) {
      hi = mid;
    } else {
      lo = mid;
      best = at_mid;
    }
  }
  result.saturation_rate = lo;
  result.at_saturation = best;
  return result;
}

}  // namespace gryphon
