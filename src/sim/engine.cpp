#include "sim/engine.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <exception>
#include <limits>
#include <map>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/mutex.h"
#include "sim/broker_server.h"
#include "sim/event_queue.h"

namespace gryphon {
namespace {

constexpr Ticks kNoPending = std::numeric_limits<Ticks>::max();

struct PartitionStats {
  std::uint64_t broker_messages{0};
  std::uint64_t client_messages{0};
  std::uint64_t bytes_on_wire{0};
  std::uint64_t total_matching_steps{0};
  std::uint64_t deliveries{0};
  Ticks latency_ticks{0};
  Ticks end_time{0};
  std::map<int, HopStats> per_hop;
  std::vector<std::pair<std::uint32_t, ClientId>> delivered;  // oracle-selected only
  std::unordered_set<std::uint64_t> link_copies;
  std::uint64_t duplicate_link_copies{0};
};

struct Partition {
  std::size_t begin{0};
  std::size_t end{0};  // broker id range [begin, end)
  EventQueue queue;
  std::vector<BrokerServer> servers;  // indexed by broker - begin
  Ticks local_min{kNoPending};
  PartitionStats stats;
  std::exception_ptr error;

  Mutex inbox_mutex;
  std::vector<Arrival> inbox GUARDED_BY(inbox_mutex);
};

struct RoundPlan {
  Ticks horizon{0};
  bool done{false};
  bool aborted{false};
  Ticks abort_time{0};
};

struct Decision {
  std::uint64_t steps{0};
  double extra_cost{0.0};
  std::vector<std::pair<LinkIndex, SimMessage>> forwards;
  std::vector<ClientId> local;
};

class EngineRun {
 public:
  EngineRun(SimInstance& inst, const std::vector<PublishRecord>& schedule)
      : inst_(inst), schedule_(schedule) {}

  SimResult run();

 private:
  void setup_partitions();
  void inject_schedule();
  void plan_round();
  void drain_and_report(Partition& part);
  void process_round(Partition& part);
  void process(Partition& part, Arrival arrival);
  void decide(Partition& part, BrokerId broker, SimMessage& msg, Decision& d);
  void note_copy(Partition& part, std::uint32_t event_index, BrokerId broker, LinkIndex port);
  [[nodiscard]] std::shared_ptr<const std::vector<std::uint32_t>> homes_for(
      std::uint32_t event_index, BrokerId tree_root, std::uint64_t* live_steps);
  void finalize(SimResult& result);
  void verify(SimResult& result);

  SimInstance& inst_;
  const std::vector<PublishRecord>& schedule_;
  std::vector<std::unique_ptr<Partition>> partitions_;
  std::vector<std::uint32_t> part_of_;
  Ticks last_publish_{0};
  Ticks deadline_{0};
  Ticks lookahead_{kNoPending};
  RoundPlan plan_;
  std::size_t churn_next_{0};
  std::uint64_t churn_subscribes_{0};
  std::uint64_t churn_unsubscribes_{0};
};

void EngineRun::setup_partitions() {
  const std::size_t brokers = inst_.topo.network.broker_count();
  const std::size_t want = std::max<std::size_t>(1, inst_.spec.engine.threads);
  const std::size_t count = std::min(want, brokers);
  partitions_.clear();
  part_of_.assign(brokers, 0);
  const double ticks_per_second = 1e6 / kMicrosPerTick;
  const double bg_rate_per_tick =
      inst_.spec.costs.background_rate_per_broker / ticks_per_second;
  const Ticks bg_cost = std::max<Ticks>(
      1, static_cast<Ticks>(inst_.spec.costs.background_cost_ticks + 0.5));
  const std::uint64_t bg_seed = sim_stream_seed(inst_.spec.seed, SimStream::kBackground);
  for (std::size_t p = 0; p < count; ++p) {
    auto part = std::make_unique<Partition>();
    part->begin = brokers * p / count;
    part->end = brokers * (p + 1) / count;
    part->servers.resize(part->end - part->begin);
    for (std::size_t b = part->begin; b < part->end; ++b) {
      part_of_[b] = static_cast<std::uint32_t>(p);
      BrokerServer& server = part->servers[b - part->begin];
      server.set_overload_threshold(inst_.spec.limits.overload_backlog_threshold);
      if (inst_.spec.costs.background_rate_per_broker > 0) {
        std::uint64_t mix = bg_seed ^ (0x9e3779b97f4a7c15ULL * (b + 1));
        server.configure_background(splitmix64(mix), bg_rate_per_tick, bg_cost,
                                    last_publish_);
      }
    }
    partitions_.push_back(std::move(part));
  }

  // Conservative lookahead: the smallest delay of any link that crosses a
  // partition boundary (kNoPending when nothing crosses, i.e. one
  // partition — the horizon is then bounded by deadline/churn only).
  lookahead_ = kNoPending;
  for (std::size_t b = 0; b < brokers; ++b) {
    const BrokerId broker{static_cast<BrokerId::rep_type>(b)};
    for (const auto& port : inst_.topo.network.ports(broker)) {
      if (port.kind != BrokerNetwork::PortKind::kBroker) continue;
      const auto peer = static_cast<std::size_t>(port.peer_broker.value);
      if (part_of_[b] != part_of_[peer]) lookahead_ = std::min(lookahead_, port.delay);
    }
  }
}

void EngineRun::inject_schedule() {
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    const PublishRecord& record = schedule_[i];
    if (record.event_index >= inst_.events.size()) {
      throw std::invalid_argument("simulation: bad event index in schedule");
    }
    SimMessage msg;
    msg.event_index = static_cast<std::uint32_t>(record.event_index);
    msg.tree_root = record.broker;
    msg.publish_time = record.time;
    Arrival arrival{EventKey{record.time, 0, i}, record.broker, std::move(msg)};
    partitions_[part_of_[static_cast<std::size_t>(record.broker.value)]]->queue.push(
        std::move(arrival));
  }
}

void EngineRun::plan_round() {
  Ticks global_min = kNoPending;
  for (const auto& part : partitions_) global_min = std::min(global_min, part->local_min);
  if (global_min == kNoPending) {
    plan_.done = true;
    return;
  }
  while (churn_next_ < inst_.churn.size() && inst_.churn[churn_next_].time <= global_min) {
    const ChurnOp& op = inst_.churn[churn_next_];
    inst_.apply_churn_op(op);
    if (op.subscribe) {
      ++churn_subscribes_;
    } else {
      ++churn_unsubscribes_;
    }
    ++churn_next_;
  }
  if (global_min > deadline_) {
    plan_.done = true;
    plan_.aborted = true;
    plan_.abort_time = global_min;
    return;
  }
  Ticks horizon = lookahead_ >= kNoPending - global_min ? kNoPending - 1
                                                        : global_min + lookahead_;
  horizon = std::min(horizon, deadline_);
  if (churn_next_ < inst_.churn.size()) {
    horizon = std::min(horizon, inst_.churn[churn_next_].time - 1);
  }
  plan_.horizon = horizon;
}

void EngineRun::drain_and_report(Partition& part) {
  {
    MutexLock lock(part.inbox_mutex);
    for (Arrival& arrival : part.inbox) part.queue.push(std::move(arrival));
    part.inbox.clear();
  }
  part.local_min = part.queue.empty() ? kNoPending : part.queue.top().key.time;
}

void EngineRun::process_round(Partition& part) {
  if (part.error) {
    while (!part.queue.empty()) part.queue.pop();
    return;
  }
  try {
    while (!part.queue.empty() && part.queue.top().key.time <= plan_.horizon) {
      process(part, part.queue.pop());
    }
  } catch (...) {
    if (!part.error) part.error = std::current_exception();
    while (!part.queue.empty()) part.queue.pop();  // fail fast, keep the barrier protocol
  }
}

void EngineRun::note_copy(Partition& part, std::uint32_t event_index, BrokerId broker,
                          LinkIndex port) {
  if (!inst_.spec.verify.verify_single_copy_per_link) return;
  const std::uint64_t key = (static_cast<std::uint64_t>(event_index) << 40) |
                            (static_cast<std::uint64_t>(broker.value) << 16) |
                            static_cast<std::uint64_t>(port.value);
  if (!part.stats.link_copies.insert(key).second) ++part.stats.duplicate_link_copies;
}

std::shared_ptr<const std::vector<std::uint32_t>> EngineRun::homes_for(
    std::uint32_t event_index, BrokerId tree_root, std::uint64_t* live_steps) {
  if (!inst_.churn_enabled) {
    return inst_.event_homes.at({event_index, tree_root.value});
  }
  // Under churn the match set is computed when the publication is processed,
  // against the control-plane state of the current round.
  MatchStats stats;
  std::vector<SubscriptionId> subs;
  inst_.matcher().match_into(inst_.events[event_index], subs, &stats);
  *live_steps += stats.nodes_visited;
  const SimInstance::TreeAux& aux = inst_.tree_aux.at(tree_root);
  auto homes = std::make_shared<std::vector<std::uint32_t>>();
  homes->reserve(subs.size());
  for (const SubscriptionId id : subs) {
    const ClientId dest = inst_.destination_of(id);
    const BrokerId home = inst_.topo.network.client_home(dest);
    homes->push_back(aux.pre[static_cast<std::size_t>(home.value)]);
  }
  std::sort(homes->begin(), homes->end());
  homes->erase(std::unique(homes->begin(), homes->end()), homes->end());
  return homes;
}

void EngineRun::decide(Partition& part, BrokerId broker, SimMessage& msg, Decision& d) {
  const Event& event = inst_.events[msg.event_index];
  const auto b = static_cast<std::size_t>(broker.value);
  const CostSpec& costs = inst_.spec.costs;

  switch (inst_.spec.protocol) {
    case Protocol::kLinkMatching: {
      if (!inst_.aggregate) {
        const auto route = inst_.crn->route(broker, event, msg.tree_root);
        d.steps = route.steps;
        const auto& ports = inst_.topo.network.ports(broker);
        for (const LinkIndex link : route.links) {
          const auto& port = ports[static_cast<std::size_t>(link.value)];
          if (port.kind == BrokerNetwork::PortKind::kClient) {
            d.local.push_back(port.peer_client);
          } else {
            d.forwards.emplace_back(link, msg);
          }
        }
        break;
      }
      // Aggregate: forwarding from subtree membership of the matched homes.
      if (msg.hops == 1) {
        if (!inst_.churn_enabled) d.steps += inst_.event_match_steps[msg.event_index];
        msg.homes = homes_for(msg.event_index, msg.tree_root, &d.steps);
      }
      const SimInstance::TreeAux& aux = inst_.tree_aux.at(msg.tree_root);
      const std::vector<std::uint32_t>& homes = *msg.homes;
      const auto& children = aux.children_ports[b];
      d.steps += static_cast<std::uint64_t>(
          costs.aggregate_probe_steps * static_cast<double>(children.size() + 1) + 0.5);
      if (std::binary_search(homes.begin(), homes.end(), aux.pre[b])) {
        MatchStats stats;
        std::vector<SubscriptionId> matched;
        inst_.local_matchers[b]->match_into(event, matched, &stats);
        d.steps += stats.nodes_visited;
        for (const SubscriptionId id : matched) d.local.push_back(inst_.destination_of(id));
        std::sort(d.local.begin(), d.local.end());
        d.local.erase(std::unique(d.local.begin(), d.local.end()), d.local.end());
      }
      for (const auto& [child, port] : children) {
        const auto c = static_cast<std::size_t>(child.value);
        const auto it = std::lower_bound(homes.begin(), homes.end(), aux.pre[c]);
        if (it != homes.end() && *it < aux.post[c]) d.forwards.emplace_back(port, msg);
      }
      break;
    }
    case Protocol::kFlooding: {
      MatchStats stats;
      std::vector<SubscriptionId> matched;
      inst_.local_matchers[b]->match_into(event, matched, &stats);
      d.steps = stats.nodes_visited;
      for (const SubscriptionId id : matched) d.local.push_back(inst_.destination_of(id));
      std::sort(d.local.begin(), d.local.end());
      d.local.erase(std::unique(d.local.begin(), d.local.end()), d.local.end());
      const SimInstance::TreeAux& aux = inst_.tree_aux.at(msg.tree_root);
      for (const auto& [child, port] : aux.children_ports[b]) {
        (void)child;
        d.forwards.emplace_back(port, msg);
      }
      break;
    }
    case Protocol::kMatchFirst: {
      if (msg.hops == 1) {
        // The publisher's broker computes and carries the full destination
        // list; it pays the centralized matching cost.
        if (!inst_.churn_enabled) {
          d.steps = inst_.event_match_steps[msg.event_index];
          msg.dests = inst_.event_dests[msg.event_index];
        } else {
          MatchStats stats;
          std::vector<SubscriptionId> subs;
          inst_.matcher().match_into(event, subs, &stats);
          d.steps = stats.nodes_visited;
          msg.dests.clear();
          msg.dests.reserve(subs.size());
          for (const SubscriptionId id : subs) msg.dests.push_back(inst_.destination_of(id));
          std::sort(msg.dests.begin(), msg.dests.end());
          msg.dests.erase(std::unique(msg.dests.begin(), msg.dests.end()), msg.dests.end());
        }
      } else {
        d.extra_cost +=
            costs.per_destination_cost_ticks * static_cast<double>(msg.dests.size());
      }
      // Split the destination list by next hop (ordered map: the forward
      // emission order is part of the deterministic event order).
      std::map<LinkIndex::rep_type, std::vector<ClientId>> split;
      const RoutingTable& routing = inst_.routing_table();
      for (const ClientId dest : msg.dests) {
        if (inst_.topo.network.client_home(dest) == broker) {
          d.local.push_back(dest);
        } else {
          split[routing.next_hop_to_client(broker, dest).value].push_back(dest);
        }
      }
      for (auto& [link_value, dests] : split) {
        SimMessage fwd = msg;
        fwd.dests = std::move(dests);
        d.forwards.emplace_back(LinkIndex{link_value}, std::move(fwd));
      }
      break;
    }
  }
  (void)part;
}

void EngineRun::process(Partition& part, Arrival arrival) {
  const auto b = static_cast<std::size_t>(arrival.broker.value);
  BrokerServer& server = part.servers[b - part.begin];
  const Ticks now = arrival.key.time;
  server.admit(now);

  SimMessage msg = std::move(arrival.message);
  ++msg.hops;

  Decision d;
  decide(part, arrival.broker, msg, d);

  const CostSpec& costs = inst_.spec.costs;
  const double cost = costs.base_cost_ticks +
                      costs.step_cost_ticks * static_cast<double>(d.steps) +
                      costs.send_cost_ticks *
                          static_cast<double>(d.forwards.size() + d.local.size()) +
                      d.extra_cost;
  const Ticks done = server.serve(now, cost);
  part.stats.end_time = std::max(part.stats.end_time, done);
  part.stats.total_matching_steps += d.steps;
  msg.steps_acc += d.steps;

  const auto& ports = inst_.topo.network.ports(arrival.broker);
  for (auto& [link, fwd] : d.forwards) {
    const auto& port = ports[static_cast<std::size_t>(link.value)];
    fwd.steps_acc = msg.steps_acc;
    note_copy(part, msg.event_index, arrival.broker, link);
    part.stats.broker_messages += 1;
    part.stats.bytes_on_wire += inst_.event_payload_bytes + 8 * fwd.dests.size();
    const Ticks at = inst_.channels[b][static_cast<std::size_t>(link.value)].deliver_at(done);
    Arrival out{EventKey{at, static_cast<std::uint32_t>(b) + 1, server.next_emit_sequence()},
                port.peer_broker, std::move(fwd)};
    const std::uint32_t target = part_of_[static_cast<std::size_t>(port.peer_broker.value)];
    Partition& dest = *partitions_[target];
    if (&dest == &part) {
      part.queue.push(std::move(out));
    } else {
      MutexLock lock(dest.inbox_mutex);
      dest.inbox.push_back(std::move(out));
    }
  }

  const bool track = !inst_.oracle_selected.empty() &&
                     inst_.oracle_selected[msg.event_index] != 0;
  for (const ClientId client : d.local) {
    note_copy(part, msg.event_index, arrival.broker, inst_.topo.network.client_port(client));
    part.stats.client_messages += 1;
    part.stats.bytes_on_wire += inst_.event_payload_bytes;
    part.stats.deliveries += 1;
    const Ticks at = done + inst_.topo.network.client_delay(client);
    part.stats.latency_ticks += at - msg.publish_time;
    HopStats& hop = part.stats.per_hop[msg.hops];
    ++hop.deliveries;
    hop.cumulative_steps += msg.steps_acc;
    if (track) part.stats.delivered.emplace_back(msg.event_index, client);
  }
}

void EngineRun::verify(SimResult& result) {
  if (!inst_.spec.verify.verify_deliveries || inst_.oracle_fraction <= 0.0) return;
  std::vector<std::pair<std::uint32_t, ClientId>> delivered;
  for (const auto& part : partitions_) {
    delivered.insert(delivered.end(), part->stats.delivered.begin(),
                     part->stats.delivered.end());
  }
  std::sort(delivered.begin(), delivered.end());

  std::vector<char> published(inst_.events.size(), 0);
  for (const PublishRecord& record : schedule_) published[record.event_index] = 1;

  std::size_t i = 0;
  for (std::size_t e = 0; e < inst_.events.size(); ++e) {
    if (published[e] == 0 || inst_.oracle_selected[e] == 0) continue;
    // Collect this event's delivered clients from the sorted sample list.
    while (i < delivered.size() && delivered[i].first < e) ++i;
    std::vector<ClientId> got;
    while (i < delivered.size() && delivered[i].first == e) {
      got.push_back(delivered[i].second);
      ++i;
    }
    for (std::size_t g = 1; g < got.size(); ++g) {
      if (got[g] == got[g - 1]) ++result.duplicate_deliveries;
    }
    got.erase(std::unique(got.begin(), got.end()), got.end());
    const std::vector<ClientId>& want = inst_.event_dests[e];
    std::size_t gi = 0, wi = 0;
    while (gi < got.size() || wi < want.size()) {
      if (gi == got.size()) {
        ++result.missing_deliveries;
        ++wi;
      } else if (wi == want.size()) {
        ++result.spurious_deliveries;
        ++gi;
      } else if (got[gi] == want[wi]) {
        ++gi;
        ++wi;
      } else if (got[gi] < want[wi]) {
        ++result.spurious_deliveries;
        ++gi;
      } else {
        ++result.missing_deliveries;
        ++wi;
      }
    }
  }
  if (!result.drained) {
    // An aborted run inevitably misses deliveries; make the count honest
    // even when sampling happened to pick fully-delivered events.
    result.missing_deliveries = std::max<std::uint64_t>(result.missing_deliveries, 1);
  }
}

void EngineRun::finalize(SimResult& result) {
  for (const auto& part : partitions_) {
    const PartitionStats& s = part->stats;
    result.broker_messages += s.broker_messages;
    result.client_messages += s.client_messages;
    result.bytes_on_wire += s.bytes_on_wire;
    result.total_matching_steps += s.total_matching_steps;
    result.deliveries += s.deliveries;
    result.latency_ticks += s.latency_ticks;
    result.end_time = std::max(result.end_time, s.end_time);
    result.duplicate_link_copies += s.duplicate_link_copies;
    for (const auto& [hops, stats] : s.per_hop) {
      HopStats& hop = result.per_hop[hops];
      hop.deliveries += stats.deliveries;
      hop.cumulative_steps += stats.cumulative_steps;
    }
    for (const BrokerServer& server : part->servers) {
      result.max_backlog = std::max(result.max_backlog, server.max_backlog());
      if (server.overloaded()) result.overloaded = true;
    }
  }
  if (plan_.aborted) {
    result.overloaded = true;
    result.drained = false;
    result.end_time = plan_.abort_time;
  }
  const double window = static_cast<double>(std::max<Ticks>(1, last_publish_));
  for (const auto& part : partitions_) {
    for (const BrokerServer& server : part->servers) {
      result.max_utilization = std::max(result.max_utilization, server.busy_accum() / window);
    }
  }
  verify(result);
  if (result.deliveries > 0) {
    result.mean_delivery_latency_ms =
        ticks_to_millis(result.latency_ticks) / static_cast<double>(result.deliveries);
  }
  result.churn_subscribes = churn_subscribes_;
  result.churn_unsubscribes = churn_unsubscribes_;
}

SimResult EngineRun::run() {
  SimResult result;
  result.protocol = inst_.spec.protocol;
  result.events_published = schedule_.size();
  result.engine_threads = std::max<std::size_t>(1, inst_.spec.engine.threads);
  result.control_plane = inst_.aggregate ? "aggregate" : "exact";
  result.steps_exact = !(inst_.aggregate && inst_.spec.protocol == Protocol::kLinkMatching);
  result.subscriptions = inst_.subscriptions.size();
  result.broker_count = inst_.topo.network.broker_count();
  result.oracle_sampled_fraction = inst_.oracle_fraction;
  result.oracle_events_verified = inst_.oracle_events;
  result.centralized_steps = inst_.centralized_steps;
  result.link_outages = inst_.link_outages;
  if (schedule_.empty()) return result;

  if (inst_.spec.verify.verify_single_copy_per_link) {
    if (inst_.events.size() >= (1ULL << 24) ||
        inst_.topo.network.broker_count() >= (1ULL << 24)) {
      throw std::invalid_argument(
          "simulation: verify_single_copy_per_link supports < 2^24 events/brokers");
    }
  }

  last_publish_ = 0;
  for (const PublishRecord& record : schedule_) {
    last_publish_ = std::max(last_publish_, record.time);
  }
  deadline_ = last_publish_ + inst_.spec.limits.drain_limit;

  setup_partitions();
  inject_schedule();

  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t count = partitions_.size();
  if (count == 1) {
    Partition& part = *partitions_[0];
    while (true) {
      drain_and_report(part);
      plan_round();
      if (plan_.done) break;
      process_round(part);
    }
    if (!plan_.aborted) {
      for (BrokerServer& server : part.servers) server.finish_background();
    }
  } else {
    bool plan_phase = true;
    std::barrier sync(static_cast<std::ptrdiff_t>(count), [this, &plan_phase]() noexcept {
      if (plan_phase) plan_round();
      plan_phase = !plan_phase;
    });
    std::vector<std::thread> workers;
    workers.reserve(count);
    for (std::size_t p = 0; p < count; ++p) {
      workers.emplace_back([this, &sync, p]() {
        Partition& part = *partitions_[p];
        while (true) {
          drain_and_report(part);
          sync.arrive_and_wait();
          if (plan_.done) break;
          process_round(part);
          sync.arrive_and_wait();
        }
        if (!plan_.aborted) {
          for (BrokerServer& server : part.servers) server.finish_background();
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  for (const auto& part : partitions_) {
    if (part->error) std::rethrow_exception(part->error);
  }
  finalize(result);
  return result;
}

}  // namespace

SimResult run_engine(SimInstance& inst, const std::vector<PublishRecord>& schedule) {
  EngineRun engine(inst, schedule);
  SimResult result;
  try {
    result = engine.run();
  } catch (...) {
    inst.rollback_churn();
    throw;
  }
  inst.rollback_churn();
  return result;
}

}  // namespace gryphon
