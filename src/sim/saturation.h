// Saturation search (Chart 1).
//
// For a fixed topology, subscription set, and protocol, find the highest
// event publish rate the broker network sustains without overload: binary
// search on the rate, running one simulation per probe.
#pragma once

#include <functional>
#include <vector>

#include "sim/simulation.h"
#include "workload/generators.h"

namespace gryphon {

struct SaturationConfig {
  double min_rate{10.0};      // events/second — assumed sustainable
  double max_rate{20000.0};   // events/second — assumed overloaded
  double relative_tolerance{0.08};
  std::size_t events{500};    // paper: "The number of events published is 500"
  std::uint64_t seed{42};
};

struct SaturationResult {
  double saturation_rate{0.0};      // highest sustained rate found
  std::size_t simulations_run{0};
  SimResult at_saturation;          // result of the last sustained run
};

/// `run_at_rate` runs one simulation with the given aggregate publish rate
/// and returns its result; the search assumes overload is monotone in rate.
SaturationResult find_saturation_rate(
    const SaturationConfig& config,
    const std::function<SimResult(double rate, std::uint64_t seed)>& run_at_rate);

}  // namespace gryphon
