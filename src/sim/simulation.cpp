#include "sim/simulation.h"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/zipf.h"
#include "sim/engine.h"
#include "sim/sim_instance.h"
#include "workload/arrivals.h"

namespace gryphon {
namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t label) {
  std::uint64_t state = seed ^ (kGolden * (label + 1));
  return splitmix64(state);
}

double unit_double(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Per-region zipf rank permutations, or empty when locality does not apply
/// (off, custom schema, or a single region).
std::vector<std::vector<std::uint32_t>> region_permutations(const SimSpec& spec,
                                                            std::size_t region_count) {
  std::vector<std::vector<std::uint32_t>> perms;
  if (!spec.workload.locality || spec.schema != nullptr || region_count <= 1) return perms;
  perms.reserve(region_count);
  for (std::size_t r = 0; r < region_count; ++r) {
    perms.push_back(
        locality_permutation(spec.values_per_attribute, static_cast<std::uint32_t>(r)));
  }
  return perms;
}

const std::vector<std::uint32_t>* perm_for(
    const std::vector<std::vector<std::uint32_t>>& perms, const SimInstance& inst,
    BrokerId broker) {
  if (perms.empty()) return nullptr;
  const auto region =
      static_cast<std::size_t>(inst.topo.region_of[static_cast<std::size_t>(broker.value)]);
  return &perms[region % perms.size()];
}

std::vector<PublishRecord> make_schedule(const SimInstance& inst, double rate_eps,
                                         std::uint64_t salt) {
  const WorkloadSpec& w = inst.spec.workload;
  std::vector<PublishRecord> schedule;
  const std::size_t count = inst.events.size();
  if (count == 0) return schedule;
  if (rate_eps <= 0.0) throw std::invalid_argument("simulation: publish rate must be > 0");
  if (inst.publishers.empty()) {
    throw std::invalid_argument("simulation: no publisher brokers available");
  }

  std::uint64_t seed = sim_stream_seed(inst.spec.seed, SimStream::kSchedule);
  if (salt != 0) seed = mix_seed(seed, salt);
  Rng rng(seed);

  std::unique_ptr<ArrivalProcess> process;
  if (w.arrivals.kind == ArrivalSpec::Kind::kBursty) {
    const double on = std::max(1e-9, w.arrivals.mean_on_seconds);
    const double on_rate = rate_eps * (on + w.arrivals.mean_off_seconds) / on;
    process = std::make_unique<BurstyArrivals>(on_rate, w.arrivals.mean_on_seconds,
                                               w.arrivals.mean_off_seconds);
  } else {
    process = std::make_unique<PoissonArrivals>(rate_eps);
  }

  schedule.reserve(count);
  Ticks t = 0;
  const std::size_t pubs = inst.publishers.size();
  for (std::size_t i = 0; i < count; ++i) {
    t += std::max<Ticks>(1, process->next_gap(rng));
    const BrokerId broker = w.assignment == PublisherAssignment::kRoundRobin
                                ? inst.publishers[i % pubs]
                                : inst.publishers[rng.below(pubs)];
    schedule.push_back(PublishRecord{t, broker, i});
  }
  return schedule;
}

/// Builds per-run link channels: one per port, broker links of both
/// directions sharing one outage list drawn from the link-fault sub-stream.
void build_channels(SimInstance& inst, const std::vector<PublishRecord>& schedule) {
  const BrokerNetwork& net = inst.topo.network;
  const std::size_t n = net.broker_count();
  const WorkloadSpec& w = inst.spec.workload;

  inst.outage_storage.clear();
  inst.link_outages = 0;
  std::map<std::pair<std::int32_t, std::int32_t>, std::size_t> outage_of;

  if (w.link_mtbf_seconds > 0.0 && !schedule.empty()) {
    Ticks last = 0;
    for (const PublishRecord& record : schedule) last = std::max(last, record.time);
    const Ticks horizon = last + inst.spec.limits.drain_limit;
    const double mtbf_ticks = w.link_mtbf_seconds * 1e6 / kMicrosPerTick;
    const double mttr_ticks = std::max(1.0, w.link_mttr_seconds * 1e6 / kMicrosPerTick);
    const std::uint64_t faults_seed = sim_stream_seed(inst.spec.seed, SimStream::kLinkFaults);
    for (std::size_t b = 0; b < n; ++b) {
      for (const auto& port : net.ports(BrokerId{static_cast<std::int32_t>(b)})) {
        if (port.kind != BrokerNetwork::PortKind::kBroker) continue;
        const std::int32_t peer = port.peer_broker.value;
        if (peer <= static_cast<std::int32_t>(b)) continue;
        const std::pair<std::int32_t, std::int32_t> key{static_cast<std::int32_t>(b), peer};
        if (outage_of.count(key) != 0) continue;
        Rng rng(mix_seed(faults_seed, static_cast<std::uint64_t>(b) * n +
                                          static_cast<std::uint64_t>(peer)));
        std::vector<std::pair<Ticks, Ticks>> intervals;
        Ticks t = 0;
        while (true) {
          const Ticks up =
              std::max<Ticks>(1, static_cast<Ticks>(rng.exponential(1.0 / mtbf_ticks)));
          const Ticks down_at = t + up;
          if (down_at > horizon) break;
          const Ticks repair =
              std::max<Ticks>(1, static_cast<Ticks>(rng.exponential(1.0 / mttr_ticks)));
          intervals.emplace_back(down_at, down_at + repair);
          t = down_at + repair;
        }
        inst.link_outages += intervals.size();
        outage_of[key] = inst.outage_storage.size();
        inst.outage_storage.push_back(std::move(intervals));
      }
    }
  }

  inst.channels.assign(n, {});
  for (std::size_t b = 0; b < n; ++b) {
    const auto& ports = net.ports(BrokerId{static_cast<std::int32_t>(b)});
    auto& row = inst.channels[b];
    row.reserve(ports.size());
    for (const auto& port : ports) {
      const std::vector<std::pair<Ticks, Ticks>>* outages = nullptr;
      if (port.kind == BrokerNetwork::PortKind::kBroker) {
        const auto self = static_cast<std::int32_t>(b);
        const auto it = outage_of.find(
            {std::min(self, port.peer_broker.value), std::max(self, port.peer_broker.value)});
        if (it != outage_of.end()) outages = &inst.outage_storage[it->second];
      }
      row.emplace_back(port.delay, outages);
    }
  }
}

void build_publishers(SimInstance& inst) {
  const WorkloadSpec& w = inst.spec.workload;
  const std::size_t want = std::max<std::size_t>(1, w.publishers);
  if (!inst.topo.default_publishers.empty() && want == inst.topo.default_publishers.size()) {
    inst.publishers = inst.topo.default_publishers;
    return;
  }
  const auto& edge = inst.topo.edge_brokers;
  if (edge.empty()) {
    if (w.events == 0 && w.scripted.events.empty()) return;  // nothing to publish
    throw std::invalid_argument("simulation: topology has no client-hosting brokers");
  }
  const std::size_t count = std::min(want, edge.size());
  inst.publishers.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    inst.publishers.push_back(edge[i * edge.size() / count]);
  }
}

void build_subscriptions(SimInstance& inst,
                         const std::vector<std::vector<std::uint32_t>>& perms) {
  const WorkloadSpec& w = inst.spec.workload;
  if (!w.scripted.subscriptions.empty()) {
    inst.subscriptions = w.scripted.subscriptions;
    return;
  }
  if (w.subscriptions == 0) return;
  if (inst.topo.subscribers.empty()) {
    throw std::invalid_argument("simulation: topology has no clients to subscribe");
  }
  SubscriptionGenerator generator(inst.schema, w.subscription_config);
  Rng rng(sim_stream_seed(inst.spec.seed, SimStream::kSubscriptions));
  inst.subscriptions.reserve(w.subscriptions);
  for (std::size_t i = 0; i < w.subscriptions; ++i) {
    const ClientId subscriber = inst.topo.subscribers[i % inst.topo.subscribers.size()];
    const auto* perm = perm_for(perms, inst, inst.topo.network.client_home(subscriber));
    inst.subscriptions.push_back(
        SimSubscription{SubscriptionId{static_cast<std::int64_t>(i)},
                        generator.generate(rng, perm), subscriber});
  }
}

void build_events(SimInstance& inst, const std::vector<std::vector<std::uint32_t>>& perms) {
  const WorkloadSpec& w = inst.spec.workload;
  if (!w.scripted.events.empty()) {
    inst.events = w.scripted.events;
    return;
  }
  if (w.events == 0) return;
  EventGenerator generator(inst.schema, w.event_zipf_skew);
  Rng rng(sim_stream_seed(inst.spec.seed, SimStream::kEvents));
  inst.events.reserve(w.events);
  const std::size_t pubs = std::max<std::size_t>(1, inst.publishers.size());
  for (std::size_t i = 0; i < w.events; ++i) {
    const auto* perm = inst.publishers.empty()
                           ? nullptr
                           : perm_for(perms, inst, inst.publishers[i % pubs]);
    inst.events.push_back(generator.generate(rng, perm));
  }
}

void build_control_plane(SimInstance& inst) {
  const SimSpec& spec = inst.spec;
  const BrokerNetwork& net = inst.topo.network;

  switch (spec.engine.control_plane) {
    case ControlPlaneMode::kExact:
      inst.aggregate = false;
      break;
    case ControlPlaneMode::kAggregate:
      inst.aggregate = true;
      break;
    case ControlPlaneMode::kAuto:
      inst.aggregate = net.broker_count() > spec.engine.exact_max_brokers ||
                       inst.subscriptions.size() > spec.engine.exact_max_subscriptions;
      break;
  }

  // One spanning tree per broker that publishes (Section 3.2).
  std::vector<BrokerId> roots = inst.publishers;
  for (const PublishRecord& record : inst.base_schedule) roots.push_back(record.broker);
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  if (roots.empty() && net.broker_count() > 0) roots.push_back(BrokerId{0});

  if (!inst.aggregate) {
    inst.crn = std::make_unique<ContentRoutingNetwork>(net, inst.schema, roots, spec.matcher);
    for (const SimSubscription& sub : inst.subscriptions) {
      inst.crn->subscribe(sub.id, sub.subscription, sub.subscriber);
    }
  } else {
    inst.routing = std::make_unique<RoutingTable>(net);
    for (const BrokerId root : roots) {
      inst.trees.emplace(root, std::make_unique<SpanningTree>(net, *inst.routing, root));
    }
    inst.shared_matcher = std::make_unique<PstMatcher>(inst.schema, spec.matcher);
    for (const SimSubscription& sub : inst.subscriptions) {
      inst.shared_matcher->add(sub.id, sub.subscription);
      inst.destinations[sub.id] = sub.subscriber;
    }
  }

  const bool need_local = spec.protocol == Protocol::kFlooding ||
                          (spec.protocol == Protocol::kLinkMatching && inst.aggregate);
  if (need_local) {
    inst.local_matchers.reserve(net.broker_count());
    for (std::size_t b = 0; b < net.broker_count(); ++b) {
      inst.local_matchers.push_back(std::make_unique<PstMatcher>(inst.schema, spec.matcher));
    }
    for (const SimSubscription& sub : inst.subscriptions) {
      const BrokerId home = net.client_home(sub.subscriber);
      inst.local_matchers[static_cast<std::size_t>(home.value)]->add(sub.id,
                                                                     sub.subscription);
    }
  }

  // Per-tree acceleration: child ports for every broker, plus DFS pre/post
  // indices (subtree membership tests for the aggregate link matcher).
  for (const BrokerId root : roots) {
    const SpanningTree& tree = inst.tree(root);
    SimInstance::TreeAux aux;
    const std::size_t n = net.broker_count();
    aux.children_ports.resize(n);
    for (std::size_t b = 0; b < n; ++b) {
      const BrokerId broker{static_cast<std::int32_t>(b)};
      for (const BrokerId child : tree.children(broker)) {
        aux.children_ports[b].emplace_back(child, net.port_to_broker(broker, child));
      }
    }
    aux.pre.assign(n, 0);
    aux.post.assign(n, 0);
    std::uint32_t counter = 0;
    std::vector<std::pair<BrokerId, std::size_t>> stack{{root, 0}};
    aux.pre[static_cast<std::size_t>(root.value)] = counter++;
    while (!stack.empty()) {
      auto& [broker, next] = stack.back();
      const auto b = static_cast<std::size_t>(broker.value);
      if (next < aux.children_ports[b].size()) {
        const BrokerId child = aux.children_ports[b][next].first;
        ++next;
        aux.pre[static_cast<std::size_t>(child.value)] = counter++;
        stack.emplace_back(child, 0);
      } else {
        aux.post[b] = counter;
        stack.pop_back();
      }
    }
    inst.tree_aux.emplace(root, std::move(aux));
  }
}

void build_churn(SimInstance& inst, const std::vector<std::vector<std::uint32_t>>& perms) {
  const WorkloadSpec& w = inst.spec.workload;
  inst.churn_enabled = w.churn_rate_eps > 0.0 && !inst.base_schedule.empty();
  if (!inst.churn_enabled) return;
  if (inst.topo.subscribers.empty()) {
    throw std::invalid_argument("simulation: churn requires clients");
  }
  Ticks window = 0;
  for (const PublishRecord& record : inst.base_schedule) {
    window = std::max(window, record.time);
  }
  const double rate_per_tick = w.churn_rate_eps * kMicrosPerTick / 1e6;
  Rng rng(sim_stream_seed(inst.spec.seed, SimStream::kChurn));
  SubscriptionGenerator generator(inst.schema, w.subscription_config);

  // Script the operations against a simulated live set so every unsubscribe
  // names a subscription that is actually registered when it fires.
  std::vector<SimSubscription> live = inst.subscriptions;
  std::int64_t next_id = 0;
  for (const SimSubscription& sub : inst.subscriptions) {
    next_id = std::max(next_id, sub.id.value + 1);
  }

  Ticks t = 0;
  while (true) {
    t += std::max<Ticks>(1, static_cast<Ticks>(rng.exponential(rate_per_tick)));
    if (t > window) break;
    const bool unsubscribe = rng.chance(w.churn_unsubscribe_fraction) && !live.empty();
    if (unsubscribe) {
      const std::size_t pick = rng.below(live.size());
      ChurnOp op{t, false, live[pick]};
      live[pick] = std::move(live.back());
      live.pop_back();
      inst.churn.push_back(std::move(op));
    } else {
      const ClientId subscriber =
          inst.topo.subscribers[rng.below(inst.topo.subscribers.size())];
      const auto* perm = perm_for(perms, inst, inst.topo.network.client_home(subscriber));
      SimSubscription sub{SubscriptionId{next_id++}, generator.generate(rng, perm),
                          subscriber};
      live.push_back(sub);
      inst.churn.push_back(ChurnOp{t, true, std::move(sub)});
    }
  }
}

void build_oracle_and_precompute(SimInstance& inst) {
  const SimSpec& spec = inst.spec;
  const std::size_t count = inst.events.size();
  const bool lm_aggregate = spec.protocol == Protocol::kLinkMatching && inst.aggregate;
  const bool need_all = spec.protocol == Protocol::kMatchFirst || lm_aggregate;

  if (inst.churn_enabled) {
    // The publish-time oracle cannot account for in-flight events while the
    // subscription set mutates; publishers match live instead (engine.cpp).
    inst.oracle_fraction = 0.0;
    return;
  }

  double fraction = 0.0;
  if (spec.verify.verify_deliveries && count > 0) {
    if (spec.verify.oracle_sample > 0.0) {
      fraction = std::min(1.0, spec.verify.oracle_sample);
    } else {
      const double work = static_cast<double>(count) *
                          static_cast<double>(inst.topo.network.client_count());
      fraction = work <= 1e7 ? 1.0 : 1e7 / work;
    }
  }
  inst.oracle_fraction = fraction;

  if (fraction > 0.0) {
    inst.oracle_selected.assign(count, 0);
    const std::uint64_t oracle_seed = sim_stream_seed(spec.seed, SimStream::kOracle);
    for (std::size_t e = 0; e < count; ++e) {
      if (fraction >= 1.0 || unit_double(mix_seed(oracle_seed, e)) < fraction) {
        inst.oracle_selected[e] = 1;
        ++inst.oracle_events;
      }
    }
    if (inst.oracle_events == 0) {
      inst.oracle_selected[0] = 1;
      inst.oracle_events = 1;
    }
  }

  if (!need_all && fraction <= 0.0) return;
  inst.event_match_steps.assign(count, 0);
  inst.event_dests.resize(count);

  std::vector<SubscriptionId> matched;
  for (std::size_t e = 0; e < count; ++e) {
    const bool selected = !inst.oracle_selected.empty() && inst.oracle_selected[e] != 0;
    if (!need_all && !selected) continue;
    matched.clear();
    MatchStats stats;
    inst.matcher().match_into(inst.events[e], matched, &stats);
    inst.event_match_steps[e] = stats.nodes_visited;
    if (selected) inst.centralized_steps += stats.nodes_visited;

    std::vector<ClientId>& dests = inst.event_dests[e];
    dests.reserve(matched.size());
    for (const SubscriptionId id : matched) dests.push_back(inst.destination_of(id));
    std::sort(dests.begin(), dests.end());
    dests.erase(std::unique(dests.begin(), dests.end()), dests.end());

    if (lm_aggregate) {
      for (const auto& [root, aux] : inst.tree_aux) {
        auto homes = std::make_shared<std::vector<std::uint32_t>>();
        homes->reserve(dests.size());
        for (const ClientId dest : dests) {
          const BrokerId home = inst.topo.network.client_home(dest);
          homes->push_back(aux.pre[static_cast<std::size_t>(home.value)]);
        }
        std::sort(homes->begin(), homes->end());
        homes->erase(std::unique(homes->begin(), homes->end()), homes->end());
        inst.event_homes.emplace(
            std::make_pair(static_cast<std::uint32_t>(e), root.value), std::move(homes));
      }
    }
  }
}

std::unique_ptr<SimInstance> build_instance(SimSpec spec) {
  auto inst = std::make_unique<SimInstance>();
  inst->spec = std::move(spec);
  SimSpec& s = inst->spec;
  if (s.engine.threads == 0) s.engine.threads = 1;
  if (s.schema == nullptr && (s.attributes == 0 || s.values_per_attribute == 0)) {
    throw std::invalid_argument("simulation: schema shape must be non-empty");
  }

  inst->schema =
      s.schema ? s.schema : make_synthetic_schema(s.attributes, s.values_per_attribute);
  inst->event_payload_bytes = inst->schema->attribute_count() * 8 + 16;
  inst->topo = build_topology(s.topology, s.seed);
  if (inst->topo.region_of.size() != inst->topo.network.broker_count()) {
    throw std::logic_error("simulation: topology region map is inconsistent");
  }

  const auto perms = region_permutations(s, inst->topo.region_count);
  build_publishers(*inst);
  build_subscriptions(*inst, perms);
  build_events(*inst, perms);
  inst->base_schedule = s.workload.scripted.schedule.empty()
                            ? make_schedule(*inst, s.workload.rate_eps, 0)
                            : s.workload.scripted.schedule;
  for (const PublishRecord& record : inst->base_schedule) {
    if (record.event_index >= inst->events.size() ||
        !record.broker.valid() ||
        static_cast<std::size_t>(record.broker.value) >=
            inst->topo.network.broker_count()) {
      throw std::invalid_argument("simulation: scripted schedule is out of range");
    }
  }
  build_control_plane(*inst);
  build_churn(*inst, perms);
  build_oracle_and_precompute(*inst);
  return inst;
}

}  // namespace

void SimInstance::apply_churn_op(const ChurnOp& op) {
  const auto home =
      static_cast<std::size_t>(topo.network.client_home(op.sub.subscriber).value);
  if (op.subscribe) {
    if (crn) {
      crn->subscribe(op.sub.id, op.sub.subscription, op.sub.subscriber);
    } else {
      shared_matcher->add(op.sub.id, op.sub.subscription);
      destinations[op.sub.id] = op.sub.subscriber;
    }
    if (!local_matchers.empty()) local_matchers[home]->add(op.sub.id, op.sub.subscription);
  } else {
    if (crn) {
      crn->unsubscribe(op.sub.id);
    } else {
      shared_matcher->remove(op.sub.id);
      destinations.erase(op.sub.id);
    }
    if (!local_matchers.empty()) local_matchers[home]->remove(op.sub.id);
  }
  rollback_log.push_back(op);
}

void SimInstance::rollback_churn() {
  for (auto it = rollback_log.rbegin(); it != rollback_log.rend(); ++it) {
    const ChurnOp& op = *it;
    const auto home =
        static_cast<std::size_t>(topo.network.client_home(op.sub.subscriber).value);
    if (op.subscribe) {
      if (crn) {
        crn->unsubscribe(op.sub.id);
      } else {
        shared_matcher->remove(op.sub.id);
        destinations.erase(op.sub.id);
      }
      if (!local_matchers.empty()) local_matchers[home]->remove(op.sub.id);
    } else {
      if (crn) {
        crn->subscribe(op.sub.id, op.sub.subscription, op.sub.subscriber);
      } else {
        shared_matcher->add(op.sub.id, op.sub.subscription);
        destinations[op.sub.id] = op.sub.subscriber;
      }
      if (!local_matchers.empty()) local_matchers[home]->add(op.sub.id, op.sub.subscription);
    }
  }
  rollback_log.clear();
}

bool same_outcome(const SimResult& a, const SimResult& b) {
  return a.protocol == b.protocol && a.events_published == b.events_published &&
         a.deliveries == b.deliveries && a.duplicate_deliveries == b.duplicate_deliveries &&
         a.missing_deliveries == b.missing_deliveries &&
         a.spurious_deliveries == b.spurious_deliveries &&
         a.broker_messages == b.broker_messages && a.client_messages == b.client_messages &&
         a.bytes_on_wire == b.bytes_on_wire &&
         a.total_matching_steps == b.total_matching_steps &&
         a.centralized_steps == b.centralized_steps && a.max_backlog == b.max_backlog &&
         a.max_utilization == b.max_utilization && a.overloaded == b.overloaded &&
         a.drained == b.drained && a.end_time == b.end_time &&
         a.latency_ticks == b.latency_ticks &&
         a.mean_delivery_latency_ms == b.mean_delivery_latency_ms &&
         a.per_hop == b.per_hop && a.duplicate_link_copies == b.duplicate_link_copies &&
         a.churn_subscribes == b.churn_subscribes &&
         a.churn_unsubscribes == b.churn_unsubscribes && a.link_outages == b.link_outages;
}

Simulation::Simulation(SimSpec spec) : inst_(build_instance(std::move(spec))) {}
Simulation::~Simulation() = default;
Simulation::Simulation(Simulation&&) noexcept = default;
Simulation& Simulation::operator=(Simulation&&) noexcept = default;

SimResult Simulation::run() {
  build_channels(*inst_, inst_->base_schedule);
  return run_engine(*inst_, inst_->base_schedule);
}

SimResult Simulation::run_with_threads(std::size_t threads) {
  const std::size_t saved = inst_->spec.engine.threads;
  inst_->spec.engine.threads = std::max<std::size_t>(1, threads);
  SimResult result;
  try {
    result = run();
  } catch (...) {
    inst_->spec.engine.threads = saved;
    throw;
  }
  inst_->spec.engine.threads = saved;
  return result;
}

SimResult Simulation::run_at_rate(double events_per_second, std::uint64_t schedule_salt) {
  const std::vector<PublishRecord> schedule =
      make_schedule(*inst_, events_per_second, schedule_salt);
  build_channels(*inst_, schedule);
  return run_engine(*inst_, schedule);
}

const SimSpec& Simulation::spec() const { return inst_->spec; }
const BrokerNetwork& Simulation::network() const { return inst_->topo.network; }
const std::vector<PublishRecord>& Simulation::schedule() const {
  return inst_->base_schedule;
}
const std::vector<BrokerId>& Simulation::publishers() const { return inst_->publishers; }
const std::vector<Event>& Simulation::events() const { return inst_->events; }
std::size_t Simulation::subscription_count() const { return inst_->subscriptions.size(); }

SimResult simulate(const SimSpec& spec) { return Simulation(spec).run(); }

}  // namespace gryphon
