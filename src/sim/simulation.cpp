#include "sim/simulation.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace gryphon {

const char* to_string(Protocol protocol) noexcept {
  switch (protocol) {
    case Protocol::kLinkMatching: return "link-matching";
    case Protocol::kFlooding: return "flooding";
    case Protocol::kMatchFirst: return "match-first";
  }
  return "?";
}

namespace {

struct SimMessage {
  std::size_t event_index{0};
  BrokerId tree_root;
  int hops{0};                  // brokers visited once this broker processes it
  std::uint64_t steps_acc{0};   // matching steps accumulated upstream
  Ticks publish_time{0};
  std::vector<ClientId> dests;  // match-first only
};

struct QueueEntry {
  Ticks time{0};
  std::uint64_t seq{0};
  enum class Kind : std::uint8_t { kArrival, kCompletion, kBackground } kind{Kind::kArrival};
  BrokerId broker;
  SimMessage message;

  friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

}  // namespace

BrokerSimulation::BrokerSimulation(const BrokerNetwork& network, SchemaPtr schema,
                                   std::vector<BrokerId> publisher_brokers,
                                   const std::vector<SimSubscription>& subscriptions,
                                   PstMatcherOptions matcher_options, SimConfig config)
    : network_(&network),
      schema_(std::move(schema)),
      publisher_brokers_(std::move(publisher_brokers)),
      config_(config) {
  crn_ = std::make_unique<ContentRoutingNetwork>(network, schema_, publisher_brokers_,
                                                 matcher_options);
  for (const SimSubscription& s : subscriptions) {
    crn_->subscribe(s.id, s.subscription, s.subscriber);
  }
  if (config_.protocol == Protocol::kFlooding) {
    local_matchers_.resize(network.broker_count());
    for (std::size_t b = 0; b < network.broker_count(); ++b) {
      local_matchers_[b] = std::make_unique<PstMatcher>(schema_, matcher_options);
    }
    for (const SimSubscription& s : subscriptions) {
      const BrokerId home = network.client_home(s.subscriber);
      local_matchers_[static_cast<std::size_t>(home.value)]->add(s.id, s.subscription);
    }
  }
  // Rough wire size of one event: 8 bytes per attribute plus a frame header.
  event_payload_bytes_ = schema_->attribute_count() * 8 + 16;
}

SimResult BrokerSimulation::run(const std::vector<Event>& events,
                                const std::vector<PublishRecord>& schedule) {
  SimResult result;
  result.protocol = config_.protocol;
  result.events_published = schedule.size();
  if (schedule.empty()) return result;

  const std::size_t broker_count = network_->broker_count();

  // Expected destination set per event (centralized matching ground truth).
  std::vector<std::vector<ClientId>> expected(events.size());
  std::vector<std::vector<ClientId>> match_first_dests(events.size());
  for (std::size_t e = 0; e < events.size(); ++e) {
    MatchStats stats;
    const auto subs = crn_->match(events[e], &stats);
    result.centralized_steps += stats.nodes_visited;
    std::vector<ClientId> dests;
    dests.reserve(subs.size());
    for (const SubscriptionId id : subs) dests.push_back(crn_->destination_of(id));
    std::sort(dests.begin(), dests.end());
    dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
    expected[e] = dests;
    if (config_.protocol == Protocol::kMatchFirst) match_first_dests[e] = dests;
  }

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;
  std::uint64_t seq = 0;

  Ticks last_publish = 0;
  for (const PublishRecord& record : schedule) {
    if (record.event_index >= events.size()) {
      throw std::invalid_argument("BrokerSimulation::run: bad event index in schedule");
    }
    SimMessage msg;
    msg.event_index = record.event_index;
    msg.tree_root = record.broker;
    msg.hops = 0;
    msg.publish_time = record.time;
    if (config_.protocol == Protocol::kMatchFirst) {
      msg.dests = match_first_dests[record.event_index];
    }
    queue.push(QueueEntry{record.time, seq++, QueueEntry::Kind::kArrival, record.broker,
                          std::move(msg)});
    last_publish = std::max(last_publish, record.time);
  }
  const Ticks deadline = last_publish + config_.drain_limit;

  // Background publishers: untracked messages that only burn broker CPU.
  if (config_.background_rate_per_broker > 0) {
    Rng bg_rng(config_.background_seed);
    const double ticks_per_second = 1e6 / kMicrosPerTick;
    const double rate_per_tick = config_.background_rate_per_broker / ticks_per_second;
    for (std::size_t b = 0; b < broker_count; ++b) {
      Ticks t = 0;
      while (true) {
        t += std::max<Ticks>(1, static_cast<Ticks>(bg_rng.exponential(rate_per_tick)));
        if (t > last_publish) break;
        queue.push(QueueEntry{t, seq++, QueueEntry::Kind::kBackground,
                              BrokerId{static_cast<BrokerId::rep_type>(b)}, {}});
      }
    }
  }

  std::vector<Ticks> busy_until(broker_count, 0);
  std::vector<double> busy_accum(broker_count, 0.0);
  std::vector<std::size_t> backlog(broker_count, 0);

  // Delivered clients per event (sorted later for verification).
  std::vector<std::vector<ClientId>> delivered(events.size());
  std::unordered_set<std::uint64_t> link_copies;  // (event, broker, port) keys

  double latency_sum_ms = 0.0;

  const auto deliver = [&](const SimMessage& msg, ClientId client, Ticks at) {
    ++result.deliveries;
    delivered[msg.event_index].push_back(client);
    latency_sum_ms += ticks_to_millis(at - msg.publish_time);
    auto& hop = result.per_hop[msg.hops];
    ++hop.deliveries;
    hop.cumulative_steps += msg.steps_acc;
  };

  const auto note_copy = [&](const SimMessage& msg, BrokerId broker, LinkIndex port) {
    if (!config_.verify_single_copy_per_link) return;
    const std::uint64_t key = (static_cast<std::uint64_t>(msg.event_index) << 24) ^
                              (static_cast<std::uint64_t>(broker.value) << 8) ^
                              static_cast<std::uint64_t>(port.value);
    if (!link_copies.insert(key).second) ++result.duplicate_link_copies;
  };

  while (!queue.empty()) {
    QueueEntry entry = queue.top();
    queue.pop();
    const std::size_t b = static_cast<std::size_t>(entry.broker.value);

    if (entry.kind == QueueEntry::Kind::kCompletion) {
      --backlog[b];
      continue;
    }
    if (entry.time > deadline) {
      result.overloaded = true;
      result.drained = false;
      result.end_time = entry.time;
      break;
    }

    ++backlog[b];
    result.max_backlog = std::max<std::uint64_t>(result.max_backlog, backlog[b]);
    if (backlog[b] >= config_.overload_backlog_threshold) result.overloaded = true;

    if (entry.kind == QueueEntry::Kind::kBackground) {
      const Ticks start = std::max(entry.time, busy_until[b]);
      const Ticks done =
          start + std::max<Ticks>(1, static_cast<Ticks>(config_.background_cost_ticks + 0.5));
      busy_until[b] = done;
      busy_accum[b] += static_cast<double>(done - start);
      queue.push(QueueEntry{done, seq++, QueueEntry::Kind::kCompletion, entry.broker, {}});
      continue;
    }

    SimMessage msg = std::move(entry.message);
    ++msg.hops;

    // Decide forwarding and compute the CPU cost of this message.
    double cost = config_.base_cost_ticks;
    std::vector<std::pair<LinkIndex, SimMessage>> forwards;
    std::vector<ClientId> local_deliveries;
    std::uint64_t steps_here = 0;
    const Event& event = events[msg.event_index];
    const auto& ports = network_->ports(entry.broker);

    switch (config_.protocol) {
      case Protocol::kLinkMatching: {
        const auto route = crn_->route(entry.broker, event, msg.tree_root);
        steps_here = route.steps;
        for (const LinkIndex link : route.links) {
          const auto& port = ports[static_cast<std::size_t>(link.value)];
          if (port.kind == BrokerNetwork::PortKind::kClient) {
            local_deliveries.push_back(port.peer_client);
          } else {
            SimMessage fwd = msg;
            fwd.steps_acc += steps_here;
            forwards.emplace_back(link, std::move(fwd));
          }
        }
        break;
      }
      case Protocol::kFlooding: {
        const PstMatcher& local = *local_matchers_[b];
        std::vector<SubscriptionId> matched;
        MatchStats stats;
        local.match_into(event, matched, &stats);
        steps_here = stats.nodes_visited;
        for (const SubscriptionId id : matched) {
          local_deliveries.push_back(crn_->destination_of(id));
        }
        std::sort(local_deliveries.begin(), local_deliveries.end());
        local_deliveries.erase(std::unique(local_deliveries.begin(), local_deliveries.end()),
                               local_deliveries.end());
        const SpanningTree& tree = crn_->spanning_tree(msg.tree_root);
        for (const BrokerId child : tree.children(entry.broker)) {
          SimMessage fwd = msg;
          fwd.steps_acc += steps_here;
          fwd.dests.clear();
          forwards.emplace_back(network_->port_to_broker(entry.broker, child), std::move(fwd));
        }
        break;
      }
      case Protocol::kMatchFirst: {
        if (msg.hops == 1) {
          // The publisher's broker already carries the full destination
          // list; it paid the centralized matching cost.
          MatchStats stats;
          std::vector<SubscriptionId> scratch;
          crn_->matcher().match_into(event, scratch, &stats);
          steps_here = stats.nodes_visited;
        } else {
          cost += config_.per_destination_cost_ticks * static_cast<double>(msg.dests.size());
        }
        // Split the destination list by next hop.
        std::unordered_map<LinkIndex::rep_type, std::vector<ClientId>> split;
        for (const ClientId dest : msg.dests) {
          if (network_->client_home(dest) == entry.broker) {
            local_deliveries.push_back(dest);
          } else {
            const LinkIndex hop = crn_->routing().next_hop_to_client(entry.broker, dest);
            split[hop.value].push_back(dest);
          }
        }
        for (auto& [link_value, dests] : split) {
          SimMessage fwd = msg;
          fwd.steps_acc += steps_here;
          fwd.dests = std::move(dests);
          forwards.emplace_back(LinkIndex{link_value}, std::move(fwd));
        }
        break;
      }
    }
    result.total_matching_steps += steps_here;
    cost += config_.step_cost_ticks * static_cast<double>(steps_here);
    cost += config_.send_cost_ticks *
            static_cast<double>(forwards.size() + local_deliveries.size());

    const Ticks start = std::max(entry.time, busy_until[b]);
    const Ticks done = start + std::max<Ticks>(1, static_cast<Ticks>(cost + 0.5));
    busy_until[b] = done;
    busy_accum[b] += static_cast<double>(done - start);
    result.end_time = std::max(result.end_time, done);
    queue.push(QueueEntry{done, seq++, QueueEntry::Kind::kCompletion, entry.broker, {}});

    msg.steps_acc += steps_here;

    for (auto& [link, fwd] : forwards) {
      const auto& port = ports[static_cast<std::size_t>(link.value)];
      note_copy(fwd, entry.broker, link);
      result.broker_messages += 1;
      result.bytes_on_wire += event_payload_bytes_ + 8 * fwd.dests.size();
      queue.push(QueueEntry{done + port.delay, seq++, QueueEntry::Kind::kArrival,
                            port.peer_broker, std::move(fwd)});
    }
    for (const ClientId client : local_deliveries) {
      const LinkIndex port_index = network_->client_port(client);
      note_copy(msg, entry.broker, port_index);
      result.client_messages += 1;
      result.bytes_on_wire += event_payload_bytes_;
      deliver(msg, client, done + network_->client_delay(client));
    }
  }

  // Verification against centralized matching (scheduled events only — the
  // event list may contain entries no schedule row published).
  std::vector<bool> published(events.size(), false);
  for (const PublishRecord& record : schedule) published[record.event_index] = true;
  if (config_.verify_deliveries) {
    for (std::size_t e = 0; e < events.size(); ++e) {
      if (!published[e]) continue;
      auto& got = delivered[e];
      std::sort(got.begin(), got.end());
      for (std::size_t i = 1; i < got.size(); ++i) {
        if (got[i] == got[i - 1]) ++result.duplicate_deliveries;
      }
      got.erase(std::unique(got.begin(), got.end()), got.end());
      const auto& want = expected[e];
      std::size_t gi = 0, wi = 0;
      while (gi < got.size() || wi < want.size()) {
        if (gi == got.size()) {
          ++result.missing_deliveries;
          ++wi;
        } else if (wi == want.size()) {
          ++result.spurious_deliveries;
          ++gi;
        } else if (got[gi] == want[wi]) {
          ++gi;
          ++wi;
        } else if (got[gi] < want[wi]) {
          ++result.spurious_deliveries;
          ++gi;
        } else {
          ++result.missing_deliveries;
          ++wi;
        }
      }
    }
    if (!result.drained) {
      // An aborted run inevitably misses deliveries; they are counted above.
      result.missing_deliveries = std::max<std::uint64_t>(result.missing_deliveries, 1);
    }
  }

  if (result.deliveries > 0) {
    result.mean_delivery_latency_ms = latency_sum_ms / static_cast<double>(result.deliveries);
  }
  const double window = static_cast<double>(std::max<Ticks>(1, last_publish));
  for (std::size_t b = 0; b < broker_count; ++b) {
    result.max_utilization = std::max(result.max_utilization, busy_accum[b] / window);
  }
  return result;
}

std::vector<PublishRecord> make_poisson_schedule(const std::vector<BrokerId>& publisher_brokers,
                                                 std::size_t count, double events_per_second,
                                                 Rng& rng) {
  if (publisher_brokers.empty()) {
    throw std::invalid_argument("make_poisson_schedule: no publisher brokers");
  }
  if (events_per_second <= 0) {
    throw std::invalid_argument("make_poisson_schedule: rate must be > 0");
  }
  const double ticks_per_second = 1e6 / kMicrosPerTick;
  const double rate_per_tick = events_per_second / ticks_per_second;
  std::vector<PublishRecord> schedule;
  schedule.reserve(count);
  Ticks t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    t += std::max<Ticks>(1, static_cast<Ticks>(rng.exponential(rate_per_tick)));
    schedule.push_back(PublishRecord{t, publisher_brokers[i % publisher_brokers.size()], i});
  }
  return schedule;
}

}  // namespace gryphon
