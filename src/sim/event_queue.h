// The simulator's pending-event structure (the netsim decomposition: an
// explicit event queue feeding per-broker servers over link channels).
//
// Ordering is the load-bearing part. Arrivals are keyed by
// (time, source, per-source sequence): the source is the emitting broker
// (0 for scheduled publications) and the sequence is that source's local
// emission counter. Both are computable by whichever worker thread emits
// the arrival, without any global coordination — unlike the classic single
// global `seq++` tiebreak — so the serial engine and every parallel
// partitioning pop arrivals in exactly the same total order and produce
// bit-identical results.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace gryphon {

/// Deterministic total order over arrivals.
struct EventKey {
  Ticks time{0};
  /// Emitting broker id + 1; 0 for scheduled publications.
  std::uint32_t source{0};
  /// The source's local emission counter (schedule index for publications).
  std::uint64_t sequence{0};

  friend constexpr bool operator<(const EventKey& a, const EventKey& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.source != b.source) return a.source < b.source;
    return a.sequence < b.sequence;
  }
  friend constexpr bool operator>(const EventKey& a, const EventKey& b) { return b < a; }
};

/// An event copy in flight toward a broker.
struct SimMessage {
  std::uint32_t event_index{0};
  BrokerId tree_root;
  int hops{0};                  // brokers visited once the receiver processes it
  std::uint64_t steps_acc{0};   // matching steps accumulated upstream
  Ticks publish_time{0};
  std::vector<ClientId> dests;  // match-first only: the carried destination list
  /// Aggregate link matching only: the event's matched home brokers as
  /// sorted DFS indices of its spanning tree. A simulator-side accelerator
  /// (the real protocol derives this from trit state hop by hop) — shared,
  /// not copied, and never counted as wire bytes.
  std::shared_ptr<const std::vector<std::uint32_t>> homes;
};

struct Arrival {
  EventKey key;
  BrokerId broker;  // receiving broker
  SimMessage message;

  friend bool operator>(const Arrival& a, const Arrival& b) { return a.key > b.key; }
};

/// Min-heap of pending arrivals for one partition of the broker set.
class EventQueue {
 public:
  void push(Arrival arrival) {
    heap_.push_back(std::move(arrival));
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] const Arrival& top() const { return heap_.front(); }

  Arrival pop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    Arrival out = std::move(heap_.back());
    heap_.pop_back();
    return out;
  }

 private:
  std::vector<Arrival> heap_;
};

}  // namespace gryphon
