// Internal shared state between the Simulation front-door (which builds it
// from a SimSpec) and the engine (which runs it). Not part of the public
// API — include sim/simulation.h instead.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "matching/pst_matcher.h"
#include "routing/content_router.h"
#include "sim/link_channel.h"
#include "sim/sim_spec.h"
#include "sim/simulation.h"
#include "topology/routing_table.h"
#include "topology/spanning_tree.h"

namespace gryphon {

/// One scripted churn operation. Unsubscribes carry the full subscription so
/// the post-run rollback can restore it.
struct ChurnOp {
  Ticks time{0};
  bool subscribe{true};
  SimSubscription sub;
};

struct SimInstance {
  SimSpec spec;
  SchemaPtr schema;
  GeneratedTopology topo;
  std::vector<BrokerId> publishers;
  std::vector<SimSubscription> subscriptions;
  std::vector<Event> events;
  std::vector<PublishRecord> base_schedule;
  std::size_t event_payload_bytes{0};
  /// True when the aggregate (scale) control plane is active.
  bool aggregate{false};

  // Exact control plane (nullptr under aggregate).
  std::unique_ptr<ContentRoutingNetwork> crn;
  // Aggregate control plane (nullptr under exact; the exact plane exposes
  // the same pieces through the CRN).
  std::unique_ptr<RoutingTable> routing;
  std::map<BrokerId, std::unique_ptr<SpanningTree>> trees;
  std::unique_ptr<PstMatcher> shared_matcher;
  std::unordered_map<SubscriptionId, ClientId> destinations;

  /// Per-broker matchers over local clients' subscriptions (flooding in
  /// both modes; link matching under aggregate). Empty otherwise.
  std::vector<std::unique_ptr<PstMatcher>> local_matchers;

  /// Per-spanning-tree acceleration: resolved child ports, and (aggregate
  /// only) DFS entry/exit indices for O(log n) subtree membership tests on
  /// the matched-home lists.
  struct TreeAux {
    std::vector<std::vector<std::pair<BrokerId, LinkIndex>>> children_ports;
    std::vector<std::uint32_t> pre, post;
  };
  std::map<BrokerId, TreeAux> tree_aux;

  // Per-event precompute. Empty when churn is enabled (the control plane
  // mutates mid-run, so publishers match live instead).
  std::vector<std::uint64_t> event_match_steps;       // central match steps per event
  std::vector<std::vector<ClientId>> event_dests;     // sorted unique destinations
  /// Aggregate link matching: matched home brokers as sorted DFS indices of
  /// the event's spanning tree, keyed (event, tree root).
  std::map<std::pair<std::uint32_t, BrokerId::rep_type>,
           std::shared_ptr<const std::vector<std::uint32_t>>>
      event_homes;
  std::vector<char> oracle_selected;
  double oracle_fraction{1.0};
  std::size_t oracle_events{0};
  std::uint64_t centralized_steps{0};  // over oracle-selected events

  // Dynamics.
  std::vector<ChurnOp> churn;
  bool churn_enabled{false};
  std::vector<std::vector<std::pair<Ticks, Ticks>>> outage_storage;
  std::vector<std::vector<LinkChannel>> channels;  // [broker][port]
  std::uint64_t link_outages{0};

  [[nodiscard]] const RoutingTable& routing_table() const {
    return crn ? crn->routing() : *routing;
  }
  [[nodiscard]] const SpanningTree& tree(BrokerId root) const {
    return crn ? crn->spanning_tree(root) : *trees.at(root);
  }
  [[nodiscard]] const PstMatcher& matcher() const {
    return crn ? crn->matcher() : *shared_matcher;
  }
  [[nodiscard]] ClientId destination_of(SubscriptionId id) const {
    return crn ? crn->destination_of(id) : destinations.at(id);
  }

  /// Applies one churn operation to every live control-plane structure and
  /// records its inverse for rollback_churn().
  void apply_churn_op(const ChurnOp& op);
  /// Undoes every applied churn operation (reverse order) so a Simulation
  /// can be run repeatedly with identical results.
  void rollback_churn();

  std::vector<ChurnOp> rollback_log;
};

}  // namespace gryphon
