// Link channels: the delay (and availability) model between two brokers.
//
// A channel owns its propagation delay and an optional precomputed list of
// [down, up) outage intervals drawn from the spec's link-fault sub-stream.
// deliver_at() is a pure function of the send time: a frame sent while the
// link is down is held and released when the link heals (the PR 4 reliable
// session never loses frames, it retransmits them after reconnect), so
// arrival_time >= send_time + delay always holds. That monotonicity is what
// keeps the conservative lookahead of the parallel engine valid even with
// link dynamics enabled — outages only push arrivals later.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "common/time.h"

namespace gryphon {

class LinkChannel {
 public:
  LinkChannel() = default;
  LinkChannel(Ticks delay, const std::vector<std::pair<Ticks, Ticks>>* outages)
      : delay_(delay), outages_(outages) {}

  [[nodiscard]] Ticks delay() const { return delay_; }

  /// Arrival time at the far end for a frame handed to the link at `send`.
  [[nodiscard]] Ticks deliver_at(Ticks send) const {
    Ticks depart = send;
    if (outages_ != nullptr && !outages_->empty()) {
      // Find the last outage starting at or before `send`; if it is still
      // in progress the frame departs at the heal time.
      auto it = std::upper_bound(
          outages_->begin(), outages_->end(), send,
          [](Ticks t, const std::pair<Ticks, Ticks>& o) { return t < o.first; });
      if (it != outages_->begin()) {
        --it;
        if (send < it->second) depart = it->second;
      }
    }
    return depart + delay_;
  }

 private:
  Ticks delay_{0};
  const std::vector<std::pair<Ticks, Ticks>>* outages_{nullptr};
};

}  // namespace gryphon
