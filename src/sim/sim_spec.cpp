#include "sim/sim_spec.h"

#include <stdexcept>

namespace gryphon {

const char* to_string(Protocol protocol) noexcept {
  switch (protocol) {
    case Protocol::kLinkMatching: return "link-matching";
    case Protocol::kFlooding: return "flooding";
    case Protocol::kMatchFirst: return "match-first";
  }
  return "?";
}

const char* to_string(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::kFigure6: return "figure6";
    case TopologyKind::kLine: return "line";
    case TopologyKind::kStar: return "star";
    case TopologyKind::kRandomTree: return "random-tree";
    case TopologyKind::kFatTree: return "fat-tree";
    case TopologyKind::kWaxman: return "waxman";
    case TopologyKind::kWan: return "wan";
  }
  return "?";
}

std::uint64_t sim_stream_seed(std::uint64_t seed, SimStream stream) noexcept {
  std::uint64_t state = seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(stream);
  (void)splitmix64(state);
  return splitmix64(state);
}

GeneratedTopology build_topology(const TopologySpec& topology, std::uint64_t seed) {
  const std::uint64_t topo_seed = sim_stream_seed(seed, SimStream::kTopology);
  switch (topology.kind) {
    case TopologyKind::kFigure6: {
      Figure6Topology fig = make_figure6(topology.figure6);
      GeneratedTopology out;
      out.network = std::move(fig.network);
      out.region_of = std::move(fig.region_of);
      out.region_count = 3;
      out.subscribers = std::move(fig.subscribers);
      out.default_publishers = std::move(fig.publisher_brokers);
      for (std::size_t b = 0; b < out.network.broker_count(); ++b) {
        const BrokerId id{static_cast<BrokerId::rep_type>(b)};
        if (!out.network.clients_of(id).empty()) out.edge_brokers.push_back(id);
      }
      return out;
    }
    case TopologyKind::kLine:
    case TopologyKind::kStar:
    case TopologyKind::kRandomTree: {
      const Ticks min_delay = std::max<Ticks>(1, ticks_from_millis(topology.min_delay_ms));
      const Ticks max_delay = std::max(min_delay, ticks_from_millis(topology.max_delay_ms));
      const Ticks client_delay = ticks_from_millis(topology.client_delay_ms);
      GeneratedTopology out;
      if (topology.kind == TopologyKind::kLine) {
        out.network = make_line(topology.brokers, min_delay, topology.clients_per_broker,
                                client_delay);
      } else if (topology.kind == TopologyKind::kStar) {
        out.network = make_star(topology.brokers, min_delay, topology.clients_per_broker,
                                client_delay);
      } else {
        Rng rng(topo_seed);
        out.network =
            make_random_tree_like(topology.brokers, rng, min_delay, max_delay,
                                  topology.clients_per_broker, client_delay,
                                  topology.extra_links);
      }
      out.region_of.assign(out.network.broker_count(), 0);
      out.region_count = 1;
      for (std::size_t b = 0; b < out.network.broker_count(); ++b) {
        const BrokerId id{static_cast<BrokerId::rep_type>(b)};
        const auto& clients = out.network.clients_of(id);
        if (!clients.empty()) out.edge_brokers.push_back(id);
        out.subscribers.insert(out.subscribers.end(), clients.begin(), clients.end());
      }
      return out;
    }
    case TopologyKind::kFatTree: return make_fat_tree(topology.fat_tree);
    case TopologyKind::kWaxman: return make_waxman(topology.waxman, topo_seed);
    case TopologyKind::kWan: return make_wan(topology.wan, topo_seed);
  }
  throw std::invalid_argument("build_topology: unknown topology kind");
}

}  // namespace gryphon
