// The simulation engine: per-broker servers (broker_server.h) fed from
// event queues (event_queue.h) over link channels (link_channel.h).
//
// Parallelization is conservative PDES: brokers are partitioned into
// contiguous blocks, one per worker thread, and time advances in rounds.
// Each round processes every pending arrival with
//   time <= global_min + lookahead,
// where lookahead is the minimum delay of any link crossing a partition
// boundary. Any arrival a round generates for another partition lands at
//   >= global_min + service(>=1 tick) + link delay(>= lookahead)
//   >  global_min + lookahead,
// i.e. strictly beyond the horizon, so no partition can receive work it
// should already have processed. Cross-partition arrivals go through
// mutex-guarded inboxes and are merged at the next round boundary; within a
// round each partition pops its own queue in EventKey order. Because the
// key is locally computable (event_queue.h) the resulting event order — and
// therefore the entire SimResult — is identical for every thread count,
// including the serial engine (which is the same loop with one partition).
//
// Subscription churn applies at round boundaries: the planner clamps the
// horizon to just before the next churn operation, applies every operation
// due, and only then releases the next round — the control-plane mutation
// is serialized against all workers, and happens at the same virtual time
// regardless of thread count.
#pragma once

#include <vector>

#include "sim/sim_instance.h"
#include "sim/simulation.h"

namespace gryphon {

/// Runs one schedule over a built instance. Thread count, verification, and
/// cost model come from inst.spec. Repeatable: churn is rolled back before
/// returning.
SimResult run_engine(SimInstance& inst, const std::vector<PublishRecord>& schedule);

}  // namespace gryphon
