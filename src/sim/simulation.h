// Discrete-event simulation of a broker network (paper Section 4.1).
//
// Time advances in ticks of a virtual clock (~12 us). An event spends time
// traversing links (hop delay), waiting in a broker's input queue, being
// matched (CPU cost proportional to matching steps), and being sent
// (software latency per outgoing copy). Each broker is a single-server FIFO
// queue; a broker is overloaded when its input queue grows beyond what the
// processor can drain (Section 4.1, "Network Loading Results").
//
// Three routing protocols are simulated over identical topologies and
// workloads:
//   * kLinkMatching — the paper's protocol: each broker runs the
//     mask-refinement search and forwards on Yes links only;
//   * kFlooding     — events follow the whole spanning tree to every broker,
//     which matches against its local clients' subscriptions only;
//   * kMatchFirst   — the full destination list is computed at the
//     publisher's broker and attached to the message; relays split the list
//     by next hop (the "match-first" straw man of Sections 1 and 5).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "matching/pst_matcher.h"
#include "routing/content_router.h"
#include "topology/network.h"

namespace gryphon {

enum class Protocol : std::uint8_t { kLinkMatching = 0, kFlooding = 1, kMatchFirst = 2 };

const char* to_string(Protocol protocol) noexcept;

/// One subscription in a simulation setup.
struct SimSubscription {
  SubscriptionId id;
  Subscription subscription;
  ClientId subscriber;
};

/// One scheduled publication: `event_index` into the event list handed to
/// run(), injected at the given broker at the given virtual time.
struct PublishRecord {
  Ticks time{0};
  BrokerId broker;
  std::size_t event_index{0};
};

struct SimConfig {
  Protocol protocol{Protocol::kLinkMatching};
  /// CPU cost, in ticks, of one matching step (node visitation). The paper
  /// estimates "a few microseconds" per step; 0.25 ticks = 3 us.
  double step_cost_ticks{0.25};
  /// CPU cost of pushing one outgoing copy through the transport.
  double send_cost_ticks{4.0};
  /// Fixed per-message receive/parse cost. Calibrated so transport costs
  /// outweigh matching (Section 4.2: a 200 MHz broker tops out near 14,000
  /// events/sec, ~70 us per message; 6 ticks = 72 us).
  double base_cost_ticks{6.0};
  /// Match-first only: per-destination list handling cost at relays.
  double per_destination_cost_ticks{0.25};
  /// Background load (Section 4.1: besides the tracked publishers, other
  /// publishing clients "simply load the brokers by publishing messages
  /// that take up CPU time at the brokers"). Each broker additionally
  /// receives untracked messages at this Poisson rate (events/second),
  /// each consuming `background_cost_ticks` of CPU and nothing else.
  double background_rate_per_broker{0.0};
  double background_cost_ticks{8.0};
  std::uint64_t background_seed{0xb0b0};
  /// A broker whose input queue reaches this length is overloaded.
  std::size_t overload_backlog_threshold{100};
  /// Give the network this long after the last publication to drain;
  /// failing to drain also marks the run overloaded.
  Ticks drain_limit{ticks_from_seconds(60)};
  /// Check the delivered set of every event against centralized matching.
  bool verify_deliveries{true};
  /// Check that no (event, link) pair ever carries two copies.
  bool verify_single_copy_per_link{false};
};

struct HopStats {
  std::uint64_t deliveries{0};
  std::uint64_t cumulative_steps{0};  // matching steps summed over the path

  [[nodiscard]] double mean_steps() const {
    return deliveries == 0 ? 0.0
                           : static_cast<double>(cumulative_steps) /
                                 static_cast<double>(deliveries);
  }
};

struct SimResult {
  Protocol protocol{Protocol::kLinkMatching};
  std::size_t events_published{0};
  std::uint64_t deliveries{0};
  std::uint64_t duplicate_deliveries{0};
  std::uint64_t missing_deliveries{0};
  std::uint64_t spurious_deliveries{0};
  std::uint64_t broker_messages{0};     // broker-to-broker copies sent
  std::uint64_t client_messages{0};     // broker-to-client copies sent
  std::uint64_t bytes_on_wire{0};       // sum over all copies (incl. dest lists)
  std::uint64_t total_matching_steps{0};
  std::uint64_t centralized_steps{0};   // steps a pure central match would take
  std::uint64_t max_backlog{0};
  double max_utilization{0.0};          // busiest broker's busy fraction
  bool overloaded{false};
  bool drained{true};
  Ticks end_time{0};
  double mean_delivery_latency_ms{0.0};
  /// Chart 2: deliveries and cumulative matching steps keyed by hop count
  /// (number of brokers the event visited on its way to the subscriber).
  std::map<int, HopStats> per_hop;
  /// Single-copy violations found (only when verify_single_copy_per_link).
  std::uint64_t duplicate_link_copies{0};
};

class BrokerSimulation {
 public:
  /// Builds the full control plane: one shared PST with per-broker trit
  /// annotations (link matching), per-broker local matchers (flooding), and
  /// the routing table (match-first).
  BrokerSimulation(const BrokerNetwork& network, SchemaPtr schema,
                   std::vector<BrokerId> publisher_brokers,
                   const std::vector<SimSubscription>& subscriptions,
                   PstMatcherOptions matcher_options, SimConfig config);

  /// Runs one simulation. `schedule` entries must be sorted by time and
  /// reference events in `events`; each publisher broker in the schedule
  /// must be one of the configured publisher brokers.
  SimResult run(const std::vector<Event>& events, const std::vector<PublishRecord>& schedule);

  [[nodiscard]] const ContentRoutingNetwork& control_plane() const { return *crn_; }
  [[nodiscard]] const SimConfig& config() const { return config_; }

 private:
  const BrokerNetwork* network_;
  SchemaPtr schema_;
  std::vector<BrokerId> publisher_brokers_;
  SimConfig config_;
  std::unique_ptr<ContentRoutingNetwork> crn_;
  /// Flooding: per-broker matcher over local clients' subscriptions only.
  std::vector<std::unique_ptr<PstMatcher>> local_matchers_;
  std::size_t event_payload_bytes_{0};
};

/// Generates a Poisson publication schedule: `count` events at mean
/// aggregate rate `events_per_second`, each assigned round-robin to one of
/// `publisher_brokers`.
std::vector<PublishRecord> make_poisson_schedule(const std::vector<BrokerId>& publisher_brokers,
                                                 std::size_t count, double events_per_second,
                                                 Rng& rng);

}  // namespace gryphon
