// Discrete-event simulation of a broker network (paper Section 4.1).
//
// Time advances in ticks of a virtual clock (~12 us). An event spends time
// traversing links (hop delay), waiting in a broker's input queue, being
// matched (CPU cost proportional to matching steps), and being sent
// (software latency per outgoing copy). Each broker is a single-server FIFO
// queue; a broker is overloaded when its input queue grows beyond what the
// processor can drain (Section 4.1, "Network Loading Results").
//
// Three routing protocols are simulated over identical topologies and
// workloads:
//   * kLinkMatching — the paper's protocol: each broker runs the
//     mask-refinement search and forwards on Yes links only;
//   * kFlooding     — events follow the whole spanning tree to every broker,
//     which matches against its local clients' subscriptions only;
//   * kMatchFirst   — the full destination list is computed at the
//     publisher's broker and attached to the message; relays split the list
//     by next hop (the "match-first" straw man of Sections 1 and 5).
//
// A run is described declaratively by a SimSpec (sim_spec.h) and executed
// by the engine (engine.h): per-broker servers fed by an explicit event
// queue over link channels, partitioned across worker threads with
// conservative lookahead. Results are bit-identical across thread counts.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "sim/sim_spec.h"
#include "topology/network.h"

namespace gryphon {

struct HopStats {
  std::uint64_t deliveries{0};
  std::uint64_t cumulative_steps{0};  // matching steps summed over the path

  [[nodiscard]] double mean_steps() const {
    return deliveries == 0 ? 0.0
                           : static_cast<double>(cumulative_steps) /
                                 static_cast<double>(deliveries);
  }

  friend bool operator==(const HopStats& a, const HopStats& b) {
    return a.deliveries == b.deliveries && a.cumulative_steps == b.cumulative_steps;
  }
};

struct SimResult {
  Protocol protocol{Protocol::kLinkMatching};
  std::size_t events_published{0};
  std::uint64_t deliveries{0};
  std::uint64_t duplicate_deliveries{0};
  std::uint64_t missing_deliveries{0};
  std::uint64_t spurious_deliveries{0};
  std::uint64_t broker_messages{0};     // broker-to-broker copies sent
  std::uint64_t client_messages{0};     // broker-to-client copies sent
  std::uint64_t bytes_on_wire{0};       // sum over all copies (incl. dest lists)
  std::uint64_t total_matching_steps{0};
  /// Steps a pure central match would take, summed over the verified
  /// (oracle-sampled) events; normalize by oracle_events_verified.
  std::uint64_t centralized_steps{0};
  std::uint64_t max_backlog{0};
  double max_utilization{0.0};          // busiest broker's busy fraction
  bool overloaded{false};
  bool drained{true};
  Ticks end_time{0};
  /// Delivery latency summed in whole ticks (exact; order-independent).
  Ticks latency_ticks{0};
  double mean_delivery_latency_ms{0.0};
  /// Chart 2: deliveries and cumulative matching steps keyed by hop count
  /// (number of brokers the event visited on its way to the subscriber).
  std::map<int, HopStats> per_hop;
  /// Single-copy violations found (only when verify_single_copy_per_link).
  std::uint64_t duplicate_link_copies{0};

  // --- run provenance (excluded from same_outcome) ---
  double wall_seconds{0.0};             // engine loop wall clock
  std::size_t engine_threads{1};
  const char* control_plane{"exact"};   // "exact" | "aggregate"
  /// False when per-hop matching steps are modeled rather than measured
  /// (link matching under the aggregate control plane).
  bool steps_exact{true};
  /// Fraction of events whose delivered set was checked against the oracle
  /// (1.0 = full verification, 0.0 = verification off).
  double oracle_sampled_fraction{1.0};
  std::size_t oracle_events_verified{0};
  std::size_t subscriptions{0};
  std::size_t broker_count{0};
  std::uint64_t churn_subscribes{0};
  std::uint64_t churn_unsubscribes{0};
  std::uint64_t link_outages{0};
};

/// True when two runs agree on every deterministic output — everything
/// except wall clock and thread count. The serial-vs-parallel differential
/// gate compares with this.
bool same_outcome(const SimResult& a, const SimResult& b);

struct SimInstance;

/// A materialized simulation: topology, workload, and control plane built
/// once from a SimSpec; run() executes the engine (repeatable — runs do not
/// mutate the instance observably, churn is rolled back on completion).
class Simulation {
 public:
  explicit Simulation(SimSpec spec);
  ~Simulation();
  Simulation(Simulation&&) noexcept;
  Simulation& operator=(Simulation&&) noexcept;

  /// Runs the base schedule described by the spec.
  SimResult run();

  /// Runs a fresh Poisson/bursty schedule at the given aggregate rate
  /// (same events, same publishers). `schedule_salt` decorrelates repeated
  /// probes at the same rate (saturation search).
  SimResult run_at_rate(double events_per_second, std::uint64_t schedule_salt = 0);

  /// Runs the base schedule with a temporary engine thread-count override:
  /// the scale campaign's serial-vs-parallel differential reuses one
  /// instance (and one control-plane build) across both runs. Outcome is
  /// identical to run() with the same thread count in the spec.
  SimResult run_with_threads(std::size_t threads);

  [[nodiscard]] const SimSpec& spec() const;
  [[nodiscard]] const BrokerNetwork& network() const;
  [[nodiscard]] const std::vector<PublishRecord>& schedule() const;
  [[nodiscard]] const std::vector<BrokerId>& publishers() const;
  [[nodiscard]] const std::vector<Event>& events() const;
  [[nodiscard]] std::size_t subscription_count() const;

 private:
  std::unique_ptr<SimInstance> inst_;
};

/// One-shot convenience: build and run.
SimResult simulate(const SimSpec& spec);

}  // namespace gryphon
