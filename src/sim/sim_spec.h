// SimSpec: the declarative description of one simulation campaign point.
//
// A spec bundles everything a run needs — topology, workload, protocol, cost
// model, verification policy, and engine options — behind a single top-level
// seed. Every stochastic component (topology generation, subscriptions,
// events, the publication schedule, churn, link faults, background load,
// oracle sampling) draws from its own splitmix-derived sub-stream of that
// seed, so two specs that differ only in `protocol` or `engine` produce
// bit-identical topologies, workloads, and schedules: protocol comparisons
// and serial-vs-parallel differentials are apples-to-apples by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "event/event.h"
#include "event/schema.h"
#include "event/subscription.h"
#include "matching/pst_matcher.h"
#include "topology/builders.h"
#include "workload/generators.h"

namespace gryphon {

enum class Protocol : std::uint8_t { kLinkMatching = 0, kFlooding = 1, kMatchFirst = 2 };

const char* to_string(Protocol protocol) noexcept;

/// One subscription in a simulation setup.
struct SimSubscription {
  SubscriptionId id;
  Subscription subscription;
  ClientId subscriber;
};

/// One scheduled publication: `event_index` into the run's event list,
/// injected at the given broker at the given virtual time.
struct PublishRecord {
  Ticks time{0};
  BrokerId broker;
  std::size_t event_index{0};
};

enum class TopologyKind : std::uint8_t {
  kFigure6 = 0,   // the paper's 39-broker WAN (three regional trees)
  kLine,          // path of `brokers` brokers
  kStar,          // hub + spokes
  kRandomTree,    // random tree (+ `extra_links` lateral links)
  kFatTree,       // three-tier data-center fat-tree (`fat_tree` options)
  kWaxman,        // Waxman random graph (`waxman` options)
  kWan,           // multi-region WAN with per-region delay bands (`wan`)
};

const char* to_string(TopologyKind kind) noexcept;

struct TopologySpec {
  TopologyKind kind{TopologyKind::kFigure6};
  /// Broker count for kLine / kStar / kRandomTree. kFigure6, kFatTree,
  /// kWaxman, and kWan size themselves from their own option structs.
  std::size_t brokers{8};
  std::size_t clients_per_broker{10};
  double client_delay_ms{1.0};
  /// Inter-broker delay band for kLine / kStar / kRandomTree.
  double min_delay_ms{5.0};
  double max_delay_ms{5.0};
  /// kRandomTree: lateral links beyond the tree.
  std::size_t extra_links{0};
  Figure6Options figure6{};
  FatTreeOptions fat_tree{};
  WaxmanOptions waxman{};
  WanOptions wan{};
};

/// Builds the topology a spec describes. Generator randomness comes from the
/// spec seed's topology sub-stream, so identical (spec, seed) pairs yield
/// identical networks. Exposed separately from Simulation so tests can
/// inspect a topology without paying for a control plane.
GeneratedTopology build_topology(const TopologySpec& topology, std::uint64_t seed);

enum class PublisherAssignment : std::uint8_t {
  kRoundRobin = 0,  // event i publishes from publishers[i % P] (the paper's shape)
  kRandom,          // uniform choice from the schedule sub-stream
};

struct ArrivalSpec {
  enum class Kind : std::uint8_t { kPoisson = 0, kBursty } kind{Kind::kPoisson};
  /// kBursty: exponentially distributed ON/OFF period means. The ON rate is
  /// scaled so the long-run average equals the configured aggregate rate.
  double mean_on_seconds{0.5};
  double mean_off_seconds{2.0};
};

/// Fully scripted pieces override their generated counterparts; any field
/// left empty is generated from the spec. Lets tests pin exact
/// subscriptions, events, or publication times while keeping the rest.
struct ScriptedWorkload {
  std::vector<SimSubscription> subscriptions;
  std::vector<Event> events;
  std::vector<PublishRecord> schedule;
};

struct WorkloadSpec {
  std::size_t subscriptions{400};
  std::size_t events{60};
  /// Aggregate tracked-publisher rate (events/second) of the base schedule.
  double rate_eps{40.0};
  /// Tracked publishers: spread evenly over the topology's client-hosting
  /// brokers (kFigure6 uses its canonical P1..P3 brokers when this is 3).
  std::size_t publishers{3};
  PublisherAssignment assignment{PublisherAssignment::kRoundRobin};
  ArrivalSpec arrivals{};
  SubscriptionWorkloadConfig subscription_config{};
  /// Per-region zipf rank permutations ("locality of interest").
  bool locality{true};
  double event_zipf_skew{1.0};
  /// Subscription churn during the run: subscribe/unsubscribe operations at
  /// this aggregate Poisson rate (0 = static subscription set). Delivery
  /// verification is skipped under churn — the publish-time oracle cannot
  /// account for in-flight events.
  double churn_rate_eps{0.0};
  double churn_unsubscribe_fraction{0.5};
  /// Link down/up dynamics: each inter-broker link fails with this mean
  /// time between failures (0 = no faults) and heals after an
  /// exponentially distributed repair time. A downed link holds frames and
  /// releases them on heal (the PR 4 reliable-session abstraction), so
  /// deliveries are delayed, never lost.
  double link_mtbf_seconds{0.0};
  double link_mttr_seconds{2.0};
  ScriptedWorkload scripted{};
};

struct CostSpec {
  /// CPU cost, in ticks, of one matching step (node visitation). The paper
  /// estimates "a few microseconds" per step; 0.25 ticks = 3 us.
  double step_cost_ticks{0.25};
  /// CPU cost of pushing one outgoing copy through the transport.
  double send_cost_ticks{4.0};
  /// Fixed per-message receive/parse cost. Calibrated so transport costs
  /// outweigh matching (Section 4.2: a 200 MHz broker tops out near 14,000
  /// events/sec, ~70 us per message; 6 ticks = 72 us).
  double base_cost_ticks{6.0};
  /// Match-first only: per-destination list handling cost at relays.
  double per_destination_cost_ticks{0.25};
  /// Aggregate control plane only: modeled per-port probe steps charged at
  /// each visited broker in place of the exact mask-refinement count.
  double aggregate_probe_steps{1.0};
  /// Background load (Section 4.1): each broker additionally receives
  /// untracked messages at this Poisson rate (events/second), each burning
  /// `background_cost_ticks` of CPU and nothing else.
  double background_rate_per_broker{0.0};
  double background_cost_ticks{8.0};
};

struct LimitSpec {
  /// A broker whose input queue reaches this length is overloaded.
  std::size_t overload_backlog_threshold{100};
  /// Give the network this long after the last publication to drain;
  /// failing to drain also marks the run overloaded.
  Ticks drain_limit{ticks_from_seconds(60)};
};

struct VerifySpec {
  /// Check delivered sets against the centralized matching oracle.
  bool verify_deliveries{true};
  /// Check that no (event, link) pair ever carries two copies.
  bool verify_single_copy_per_link{false};
  /// Fraction of events whose delivered set is verified. 0 selects the auto
  /// policy: full verification for small runs, sampled once
  /// events * clients exceeds ~10M tracked deliveries. The fraction
  /// actually used is reported as SimResult::oracle_sampled_fraction —
  /// sampling is never silent.
  double oracle_sample{0.0};
};

enum class ControlPlaneMode : std::uint8_t {
  /// kExact below its thresholds, kAggregate beyond them.
  kAuto = 0,
  /// The full ContentRoutingNetwork: every broker holds annotated PSTs and
  /// runs the paper's mask-refinement search per hop. Exact step counts;
  /// memory and subscribe cost scale with brokers x subscriptions.
  kExact,
  /// Scale mode: the per-event match set is computed once (shared matcher)
  /// and link-matching forwarding is derived from spanning-tree subtree
  /// membership of the matched home brokers. Deliveries, messages, and
  /// bytes are exact; per-hop matching steps are modeled
  /// (SimResult::steps_exact == false).
  kAggregate,
};

struct EngineSpec {
  /// Worker threads for the event loop. 1 = serial. Results are identical
  /// across thread counts (conservative synchronization, deterministic
  /// event ordering); only wall_seconds changes.
  std::size_t threads{1};
  ControlPlaneMode control_plane{ControlPlaneMode::kAuto};
  /// kAuto switches to kAggregate beyond either threshold.
  std::size_t exact_max_brokers{64};
  std::size_t exact_max_subscriptions{20000};
};

struct SimSpec {
  /// The single top-level seed; every stochastic component derives its own
  /// sub-stream from it (see SimStream / sim_stream_seed).
  std::uint64_t seed{42};
  Protocol protocol{Protocol::kLinkMatching};
  /// Synthetic schema shape (ignored when `schema` is set).
  std::size_t attributes{10};
  std::size_t values_per_attribute{5};
  /// Optional explicit schema for scripted workloads.
  SchemaPtr schema{};
  TopologySpec topology{};
  WorkloadSpec workload{};
  PstMatcherOptions matcher{};
  CostSpec costs{};
  LimitSpec limits{};
  VerifySpec verify{};
  EngineSpec engine{};
};

/// Named sub-streams of the spec seed. Adding a stream never perturbs the
/// existing ones (each is an independent splitmix64 mix of seed and label).
enum class SimStream : std::uint64_t {
  kTopology = 1,
  kSubscriptions,
  kEvents,
  kSchedule,
  kChurn,
  kLinkFaults,
  kBackground,
  kOracle,
};

std::uint64_t sim_stream_seed(std::uint64_t seed, SimStream stream) noexcept;

}  // namespace gryphon
