// Per-broker server state: a single-server FIFO queue (paper Section 4.1).
//
// Each broker owns its busy clock, backlog counter, a retirement heap of
// service completion times, and its private background-load stream. All of
// it is local to the partition that owns the broker, so the parallel engine
// needs no synchronization here. Completions are retired lazily — any
// service finishing at or before the arrival being admitted leaves the
// queue first — which is locally computable and therefore identical under
// serial and parallel execution.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace gryphon {

class BrokerServer {
 public:
  /// `horizon` bounds the background stream (the last tracked publication:
  /// background publishers stop when the tracked ones do).
  void configure_background(std::uint64_t seed, double rate_per_tick, Ticks cost,
                            Ticks horizon) {
    background_rng_.reseed(seed);
    background_rate_per_tick_ = rate_per_tick;
    background_cost_ = cost;
    background_horizon_ = horizon;
    next_background_ = rate_per_tick > 0 ? draw_background(0) : kNever;
  }

  void set_overload_threshold(std::size_t threshold) { threshold_ = threshold; }

  /// Admits a tracked arrival at `now`: consumes background arrivals due
  /// first, retires finished service, then queues the arrival.
  void admit(Ticks now) {
    consume_background(now);
    retire(now);
    enqueue();
  }

  /// Serves the arrival admitted last; returns its completion time.
  Ticks serve(Ticks now, double cost_ticks) {
    const Ticks start = std::max(now, busy_until_);
    const Ticks done = start + std::max<Ticks>(1, static_cast<Ticks>(cost_ticks + 0.5));
    busy_until_ = done;
    busy_accum_ += static_cast<double>(done - start);
    completions_.push(done);
    return done;
  }

  /// Consumes the rest of the background stream (end-of-run drain).
  void finish_background() { consume_background(background_horizon_); }

  [[nodiscard]] std::uint64_t max_backlog() const { return max_backlog_; }
  [[nodiscard]] bool overloaded() const { return overloaded_; }
  [[nodiscard]] double busy_accum() const { return busy_accum_; }
  [[nodiscard]] std::uint64_t next_emit_sequence() { return emit_sequence_++; }

 private:
  static constexpr Ticks kNever = -1;

  Ticks draw_background(Ticks from) {
    const Ticks gap = std::max<Ticks>(
        1, static_cast<Ticks>(background_rng_.exponential(background_rate_per_tick_)));
    const Ticks next = from + gap;
    return next > background_horizon_ ? kNever : next;
  }

  void retire(Ticks now) {
    while (!completions_.empty() && completions_.top() <= now) {
      completions_.pop();
      --backlog_;
    }
  }

  void enqueue() {
    ++backlog_;
    max_backlog_ = std::max<std::uint64_t>(max_backlog_, backlog_);
    if (backlog_ >= threshold_) overloaded_ = true;
  }

  void consume_background(Ticks now) {
    while (next_background_ != kNever && next_background_ <= now) {
      const Ticks at = next_background_;
      retire(at);
      enqueue();
      const Ticks start = std::max(at, busy_until_);
      const Ticks done = start + std::max<Ticks>(1, background_cost_);
      busy_until_ = done;
      busy_accum_ += static_cast<double>(done - start);
      completions_.push(done);
      next_background_ = draw_background(at);
    }
  }

  Ticks busy_until_{0};
  double busy_accum_{0.0};
  std::size_t backlog_{0};
  std::uint64_t max_backlog_{0};
  bool overloaded_{false};
  std::size_t threshold_{static_cast<std::size_t>(-1)};
  std::uint64_t emit_sequence_{0};
  std::priority_queue<Ticks, std::vector<Ticks>, std::greater<>> completions_;
  Rng background_rng_{0};
  double background_rate_per_tick_{0.0};
  Ticks background_cost_{1};
  Ticks background_horizon_{0};
  Ticks next_background_{kNever};
};

}  // namespace gryphon
