#include "topology/network.h"

namespace gryphon {

BrokerId BrokerNetwork::add_broker() {
  brokers_.emplace_back();
  return BrokerId{static_cast<BrokerId::rep_type>(brokers_.size() - 1)};
}

void BrokerNetwork::connect(BrokerId a, BrokerId b, Ticks delay) {
  const std::size_t ia = checked(a);
  const std::size_t ib = checked(b);
  if (ia == ib) throw std::invalid_argument("BrokerNetwork::connect: self link");
  if (delay < 0) throw std::invalid_argument("BrokerNetwork::connect: negative delay");
  for (const Port& p : brokers_[ia].ports) {
    if (p.kind == PortKind::kBroker && p.peer_broker == b) {
      throw std::invalid_argument("BrokerNetwork::connect: duplicate link");
    }
  }
  Port pa;
  pa.kind = PortKind::kBroker;
  pa.peer_broker = b;
  pa.delay = delay;
  brokers_[ia].ports.push_back(pa);
  Port pb;
  pb.kind = PortKind::kBroker;
  pb.peer_broker = a;
  pb.delay = delay;
  brokers_[ib].ports.push_back(pb);
}

ClientId BrokerNetwork::add_client(BrokerId home, Ticks delay) {
  const std::size_t ih = checked(home);
  if (delay < 0) throw std::invalid_argument("BrokerNetwork::add_client: negative delay");
  const ClientId id{static_cast<ClientId::rep_type>(clients_.size())};
  Port port;
  port.kind = PortKind::kClient;
  port.peer_client = id;
  port.delay = delay;
  const LinkIndex link{static_cast<LinkIndex::rep_type>(brokers_[ih].ports.size())};
  brokers_[ih].ports.push_back(port);
  brokers_[ih].clients.push_back(id);
  clients_.push_back(ClientRec{home, link, delay});
  return id;
}

LinkIndex BrokerNetwork::port_to_broker(BrokerId from, BrokerId to) const {
  const auto& ports = brokers_.at(checked(from)).ports;
  for (std::size_t i = 0; i < ports.size(); ++i) {
    if (ports[i].kind == PortKind::kBroker && ports[i].peer_broker == to) {
      return LinkIndex{static_cast<LinkIndex::rep_type>(i)};
    }
  }
  throw std::invalid_argument("BrokerNetwork::port_to_broker: no such link");
}

}  // namespace gryphon
