// The broker network: brokers, inter-broker links, and attached clients.
//
// Following the paper (Figure 3), a broker's neighbors may be brokers or
// clients. Each broker exposes an ordered list of outgoing *ports*; a port's
// position is the broker-local LinkIndex used as the trit-vector slot for
// that link in the link-matching protocol. Inter-broker links are symmetric
// (a port on each side); client links have one port on the home broker.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace gryphon {

class BrokerNetwork {
 public:
  enum class PortKind : std::uint8_t { kBroker = 0, kClient = 1 };

  struct Port {
    PortKind kind{PortKind::kBroker};
    BrokerId peer_broker;   // valid when kind == kBroker
    ClientId peer_client;   // valid when kind == kClient
    Ticks delay{0};         // one-way hop delay
  };

  /// Adds a broker and returns its id (ids are dense, 0..broker_count-1).
  BrokerId add_broker();

  /// Adds a symmetric link between two distinct brokers with the given
  /// one-way hop delay. Returns nothing; each side gains one port.
  void connect(BrokerId a, BrokerId b, Ticks delay);

  /// Attaches a new client to `home` with the given client-link delay and
  /// returns its id (dense, 0..client_count-1). The home broker gains a port.
  ClientId add_client(BrokerId home, Ticks delay);

  [[nodiscard]] std::size_t broker_count() const { return brokers_.size(); }
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }

  [[nodiscard]] const std::vector<Port>& ports(BrokerId broker) const {
    return brokers_.at(checked(broker)).ports;
  }
  [[nodiscard]] std::size_t port_count(BrokerId broker) const { return ports(broker).size(); }

  [[nodiscard]] BrokerId client_home(ClientId client) const {
    return clients_.at(static_cast<std::size_t>(client.value)).home;
  }
  [[nodiscard]] Ticks client_delay(ClientId client) const {
    return clients_.at(static_cast<std::size_t>(client.value)).delay;
  }
  /// The port index of a client's link on its home broker.
  [[nodiscard]] LinkIndex client_port(ClientId client) const {
    return clients_.at(static_cast<std::size_t>(client.value)).port;
  }
  /// All clients attached to a broker.
  [[nodiscard]] const std::vector<ClientId>& clients_of(BrokerId broker) const {
    return brokers_.at(checked(broker)).clients;
  }

  /// The port on `from` that leads to neighbor broker `to`; throws
  /// std::invalid_argument when no direct link exists.
  [[nodiscard]] LinkIndex port_to_broker(BrokerId from, BrokerId to) const;

 private:
  struct BrokerRec {
    std::vector<Port> ports;
    std::vector<ClientId> clients;
  };
  struct ClientRec {
    BrokerId home;
    LinkIndex port;
    Ticks delay{0};
  };

  [[nodiscard]] std::size_t checked(BrokerId broker) const {
    if (!broker.valid() || static_cast<std::size_t>(broker.value) >= brokers_.size()) {
      throw std::out_of_range("BrokerNetwork: bad broker id");
    }
    return static_cast<std::size_t>(broker.value);
  }

  std::vector<BrokerRec> brokers_;
  std::vector<ClientRec> clients_;
};

}  // namespace gryphon
