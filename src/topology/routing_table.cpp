#include "topology/routing_table.h"

#include <queue>
#include <tuple>

namespace gryphon {

RoutingTable::RoutingTable(const BrokerNetwork& network)
    : network_(&network), n_(network.broker_count()) {
  dist_.assign(n_ * n_, kUnreachable);
  first_.assign(n_ * n_, LinkIndex{});
  hops_.assign(n_ * n_, -1);

  // Dijkstra from every source; ties broken by hop count then port order so
  // every broker derives identical paths (needed for consistent routing).
  for (std::size_t src = 0; src < n_; ++src) {
    const BrokerId s{static_cast<BrokerId::rep_type>(src)};
    using Entry = std::tuple<Ticks, int, std::size_t>;  // dist, hops, node
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    dist_[at(s, s)] = 0;
    hops_[at(s, s)] = 0;
    heap.emplace(0, 0, src);
    while (!heap.empty()) {
      const auto [d, h, u] = heap.top();
      heap.pop();
      const BrokerId bu{static_cast<BrokerId::rep_type>(u)};
      if (d != dist_[at(s, bu)] || h != hops_[at(s, bu)]) continue;
      const auto& ports = network.ports(bu);
      for (std::size_t pi = 0; pi < ports.size(); ++pi) {
        const auto& port = ports[pi];
        if (port.kind != BrokerNetwork::PortKind::kBroker) continue;
        const BrokerId v = port.peer_broker;
        const Ticks nd = d + port.delay;
        const int nh = h + 1;
        const std::size_t slot = at(s, v);
        if (nd < dist_[slot] || (nd == dist_[slot] && nh < hops_[slot])) {
          dist_[slot] = nd;
          hops_[slot] = nh;
          // First hop: inherit from u unless u is the source itself.
          first_[slot] = (u == src) ? LinkIndex{static_cast<LinkIndex::rep_type>(pi)}
                                    : first_[at(s, bu)];
          heap.emplace(nd, nh, static_cast<std::size_t>(v.value));
        }
      }
    }
  }
}

LinkIndex RoutingTable::next_hop(BrokerId from, BrokerId to) const {
  if (from == to) return LinkIndex{};
  return first_[at(from, to)];
}

LinkIndex RoutingTable::next_hop_to_client(BrokerId from, ClientId client) const {
  const BrokerId home = network_->client_home(client);
  if (home == from) return network_->client_port(client);
  return next_hop(from, home);
}

Ticks RoutingTable::distance(BrokerId from, BrokerId to) const { return dist_[at(from, to)]; }

int RoutingTable::hop_count(BrokerId from, BrokerId to) const { return hops_[at(from, to)]; }

}  // namespace gryphon
