// Topology builders: the paper's Figure 6 network and synthetic families
// used by tests and ablation benchmarks.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "topology/network.h"

namespace gryphon {

/// The simulated WAN of Figure 6: 39 brokers forming three 13-broker trees
/// (1 root, 3 interior, 9 leaf brokers each). The three roots are fully
/// interconnected (intercontinental links); a small number of lateral links
/// join non-root brokers of adjacent trees so different publishers' events
/// can take different paths. Ten subscribing clients per broker. Hop delays:
/// 65 ms between roots, 25 ms root->interior, 10 ms interior->leaf, 1 ms to
/// clients (Section 4.1).
struct Figure6Topology {
  BrokerNetwork network;
  std::vector<BrokerId> roots;                  // 3
  std::vector<std::vector<BrokerId>> interior;  // per region, 3 each
  std::vector<std::vector<BrokerId>> leaves;    // per region, 9 each
  /// region(broker) in {0,1,2}: which intercontinental tree a broker is in.
  std::vector<int> region_of;
  /// The brokers hosting the three tracked publishers P1..P3 (leaf brokers
  /// in regions 0, 1, and 2 respectively).
  std::vector<BrokerId> publisher_brokers;
  /// All subscribing clients, 10 per broker, ordered by broker.
  std::vector<ClientId> subscribers;
};

struct Figure6Options {
  std::size_t clients_per_broker{10};
  double root_delay_ms{65.0};
  double interior_delay_ms{25.0};
  double leaf_delay_ms{10.0};
  double client_delay_ms{1.0};
  /// Lateral links between non-root brokers of neighbouring trees.
  std::size_t lateral_links{2};
  double lateral_delay_ms{40.0};
};

Figure6Topology make_figure6();
Figure6Topology make_figure6(const Figure6Options& options);

/// A path of `n` brokers (b0 - b1 - ... - b(n-1)), uniform delay, with
/// `clients_per_broker` clients each. Useful for hop-count experiments.
BrokerNetwork make_line(std::size_t n, Ticks delay, std::size_t clients_per_broker,
                        Ticks client_delay);

/// One hub broker connected to `n - 1` spokes.
BrokerNetwork make_star(std::size_t n, Ticks delay, std::size_t clients_per_broker,
                        Ticks client_delay);

/// A random tree over `n` brokers: broker i (i >= 1) attaches to a uniformly
/// random earlier broker. Random delays in [min_delay, max_delay].
BrokerNetwork make_random_tree(std::size_t n, Rng& rng, Ticks min_delay, Ticks max_delay,
                               std::size_t clients_per_broker, Ticks client_delay);

/// A random "tree-like" graph: a random tree plus `extra_links` additional
/// random (non-duplicate) links, the general-topology stress case for
/// per-publisher spanning trees.
BrokerNetwork make_random_tree_like(std::size_t n, Rng& rng, Ticks min_delay, Ticks max_delay,
                                    std::size_t clients_per_broker, Ticks client_delay,
                                    std::size_t extra_links);

}  // namespace gryphon
