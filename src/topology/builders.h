// Topology builders: the paper's Figure 6 network and synthetic families
// used by tests and ablation benchmarks.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "topology/network.h"

namespace gryphon {

/// The simulated WAN of Figure 6: 39 brokers forming three 13-broker trees
/// (1 root, 3 interior, 9 leaf brokers each). The three roots are fully
/// interconnected (intercontinental links); a small number of lateral links
/// join non-root brokers of adjacent trees so different publishers' events
/// can take different paths. Ten subscribing clients per broker. Hop delays:
/// 65 ms between roots, 25 ms root->interior, 10 ms interior->leaf, 1 ms to
/// clients (Section 4.1).
struct Figure6Topology {
  BrokerNetwork network;
  std::vector<BrokerId> roots;                  // 3
  std::vector<std::vector<BrokerId>> interior;  // per region, 3 each
  std::vector<std::vector<BrokerId>> leaves;    // per region, 9 each
  /// region(broker) in {0,1,2}: which intercontinental tree a broker is in.
  std::vector<int> region_of;
  /// The brokers hosting the three tracked publishers P1..P3 (leaf brokers
  /// in regions 0, 1, and 2 respectively).
  std::vector<BrokerId> publisher_brokers;
  /// All subscribing clients, 10 per broker, ordered by broker.
  std::vector<ClientId> subscribers;
};

struct Figure6Options {
  std::size_t clients_per_broker{10};
  double root_delay_ms{65.0};
  double interior_delay_ms{25.0};
  double leaf_delay_ms{10.0};
  double client_delay_ms{1.0};
  /// Lateral links between non-root brokers of neighbouring trees.
  std::size_t lateral_links{2};
  double lateral_delay_ms{40.0};
};

Figure6Topology make_figure6();
Figure6Topology make_figure6(const Figure6Options& options);

/// A path of `n` brokers (b0 - b1 - ... - b(n-1)), uniform delay, with
/// `clients_per_broker` clients each. Useful for hop-count experiments.
BrokerNetwork make_line(std::size_t n, Ticks delay, std::size_t clients_per_broker,
                        Ticks client_delay);

/// One hub broker connected to `n - 1` spokes.
BrokerNetwork make_star(std::size_t n, Ticks delay, std::size_t clients_per_broker,
                        Ticks client_delay);

/// A random tree over `n` brokers: broker i (i >= 1) attaches to a uniformly
/// random earlier broker. Random delays in [min_delay, max_delay].
BrokerNetwork make_random_tree(std::size_t n, Rng& rng, Ticks min_delay, Ticks max_delay,
                               std::size_t clients_per_broker, Ticks client_delay);

/// A random "tree-like" graph: a random tree plus `extra_links` additional
/// random (non-duplicate) links, the general-topology stress case for
/// per-publisher spanning trees.
BrokerNetwork make_random_tree_like(std::size_t n, Rng& rng, Ticks min_delay, Ticks max_delay,
                                    std::size_t clients_per_broker, Ticks client_delay,
                                    std::size_t extra_links);

/// A generated topology with the metadata the simulator needs: locality
/// regions (for the per-region zipf permutations of the workload
/// generators), the client-hosting brokers (publisher candidates), and the
/// attached subscribers. The scale generators below all return this shape;
/// Figure 6 keeps its richer dedicated struct.
struct GeneratedTopology {
  BrokerNetwork network;
  /// Locality region per broker (size broker_count; all 0 = one region).
  std::vector<int> region_of;
  std::size_t region_count{1};
  /// Brokers hosting at least one client, in id order.
  std::vector<BrokerId> edge_brokers;
  /// All subscribing clients, ordered by broker.
  std::vector<ClientId> subscribers;
  /// Canonical publisher brokers, when the family defines them (Figure 6's
  /// P1..P3); empty otherwise.
  std::vector<BrokerId> default_publishers;
};

/// Three-tier k-ary fat-tree (the data-center shape): `pods` pods of
/// pods/2 edge and pods/2 aggregation brokers each, plus (pods/2)^2 core
/// brokers; every edge broker connects to every aggregation broker in its
/// pod, and aggregation broker j of each pod connects to cores
/// [j*pods/2, (j+1)*pods/2). Clients attach to edge brokers only; each pod
/// is one locality region. `pods` must be even and >= 2. Deterministic (no
/// randomness). Broker count = 5*pods^2/4.
struct FatTreeOptions {
  std::size_t pods{4};
  double core_delay_ms{10.0};    // aggregation <-> core
  double agg_delay_ms{2.0};      // edge <-> aggregation
  double client_delay_ms{1.0};
  std::size_t clients_per_edge{10};
};
GeneratedTopology make_fat_tree(const FatTreeOptions& options);

/// Waxman random graph: brokers placed uniformly in the unit square; a link
/// joins each pair with probability alpha * exp(-d / (beta * sqrt(2))).
/// Components are stitched together afterward (closest inter-component
/// pair) so the result is always connected. Link delay grows linearly with
/// euclidean distance from min_delay_ms to max_delay_ms. Locality regions
/// are `regions` vertical stripes of the square.
struct WaxmanOptions {
  std::size_t brokers{100};
  double alpha{0.4};
  double beta{0.14};
  double min_delay_ms{2.0};
  double max_delay_ms{50.0};
  std::size_t clients_per_broker{10};
  double client_delay_ms{1.0};
  std::size_t regions{4};
};
GeneratedTopology make_waxman(const WaxmanOptions& options, std::uint64_t seed);

/// Multi-region WAN: `regions` regional broker trees (random tree plus
/// `extra_intra_links` lateral links each) joined by long-haul gateway
/// links — a ring over the regional gateways plus extra chords per region.
/// Each region draws its own intra-region delay band: the configured
/// [intra_min, intra_max] scaled by a per-region factor in
/// [1 - band_spread, 1 + band_spread]. Inter-region links draw from the
/// [inter_min, inter_max] band. This generalizes the Figure 6 shape (three
/// regional trees, intercontinental root links) to arbitrary scale.
struct WanOptions {
  std::size_t regions{8};
  std::size_t brokers_per_region{25};
  double intra_min_delay_ms{2.0};
  double intra_max_delay_ms{15.0};
  double inter_min_delay_ms{40.0};
  double inter_max_delay_ms{120.0};
  double band_spread{0.5};
  std::size_t extra_intra_links{2};
  std::size_t inter_links_per_region{2};
  std::size_t clients_per_broker{10};
  double client_delay_ms{1.0};
};
GeneratedTopology make_wan(const WanOptions& options, std::uint64_t seed);

}  // namespace gryphon
