// Per-publisher spanning trees.
//
// Events from a publisher follow a spanning tree rooted at the publisher's
// broker (Section 3.2). For acyclic broker networks the tree is the network
// itself; in general we use the shortest-path tree of the routing metric,
// which coincides with "events always follow the shortest path".
#pragma once

#include <vector>

#include "common/ids.h"
#include "topology/network.h"
#include "topology/routing_table.h"

namespace gryphon {

class SpanningTree {
 public:
  /// Builds the shortest-path tree of `routing` rooted at `root`.
  SpanningTree(const BrokerNetwork& network, const RoutingTable& routing, BrokerId root);

  [[nodiscard]] BrokerId root() const { return root_; }

  /// Tree parent (invalid BrokerId for the root or unreachable brokers).
  [[nodiscard]] BrokerId parent(BrokerId broker) const {
    return parent_[static_cast<std::size_t>(broker.value)];
  }

  [[nodiscard]] const std::vector<BrokerId>& children(BrokerId broker) const {
    return children_[static_cast<std::size_t>(broker.value)];
  }

  /// True when `descendant` lies in the subtree rooted at `ancestor`
  /// (a broker is its own descendant).
  [[nodiscard]] bool is_descendant(BrokerId descendant, BrokerId ancestor) const;

  /// The port on `from` that is the first hop of the tree path from `from`
  /// to `dest`. This is the per-tree destination-to-link map used both to
  /// annotate the PST and to compute initialization masks. For `dest` not in
  /// `from`'s subtree the first hop is the parent link (the initialization
  /// mask will hold No for it). Invalid LinkIndex when from == dest.
  [[nodiscard]] LinkIndex tree_next_hop(BrokerId from, BrokerId dest) const {
    return next_hop_[static_cast<std::size_t>(from.value) * n_ +
                     static_cast<std::size_t>(dest.value)];
  }

  /// As tree_next_hop but for a client destination (client port when local).
  [[nodiscard]] LinkIndex tree_next_hop_to_client(BrokerId from, ClientId client) const;

  /// Number of clients attached to brokers in the subtree rooted at the
  /// peer broker of port `link` of `from` — i.e. the downstream destination
  /// count of that link. Client ports count their own client (1). Zero for
  /// upstream/non-tree ports.
  [[nodiscard]] std::size_t downstream_client_count(BrokerId from, LinkIndex link) const {
    return downstream_clients_[static_cast<std::size_t>(from.value)]
                              [static_cast<std::size_t>(link.value)];
  }

  /// Depth of a broker in the tree (root = 0; -1 when unreachable).
  [[nodiscard]] int depth(BrokerId broker) const {
    return depth_[static_cast<std::size_t>(broker.value)];
  }

 private:
  const BrokerNetwork* network_;
  BrokerId root_;
  std::size_t n_{0};
  std::vector<BrokerId> parent_;
  std::vector<std::vector<BrokerId>> children_;
  std::vector<int> depth_;
  std::vector<LinkIndex> next_hop_;  // n x n first tree hop
  std::vector<std::vector<std::size_t>> downstream_clients_;  // per broker, per port
};

}  // namespace gryphon
