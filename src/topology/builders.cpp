#include "topology/builders.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace gryphon {

Figure6Topology make_figure6() { return make_figure6(Figure6Options{}); }

Figure6Topology make_figure6(const Figure6Options& options) {
  Figure6Topology topo;
  BrokerNetwork& net = topo.network;

  const Ticks root_delay = ticks_from_millis(options.root_delay_ms);
  const Ticks interior_delay = ticks_from_millis(options.interior_delay_ms);
  const Ticks leaf_delay = ticks_from_millis(options.leaf_delay_ms);
  const Ticks client_delay = ticks_from_millis(options.client_delay_ms);
  const Ticks lateral_delay = ticks_from_millis(options.lateral_delay_ms);

  topo.interior.resize(3);
  topo.leaves.resize(3);
  for (int region = 0; region < 3; ++region) {
    const BrokerId root = net.add_broker();
    topo.roots.push_back(root);
    for (int i = 0; i < 3; ++i) {
      const BrokerId mid = net.add_broker();
      topo.interior[static_cast<std::size_t>(region)].push_back(mid);
      net.connect(root, mid, interior_delay);
      for (int j = 0; j < 3; ++j) {
        const BrokerId leaf = net.add_broker();
        topo.leaves[static_cast<std::size_t>(region)].push_back(leaf);
        net.connect(mid, leaf, leaf_delay);
      }
    }
  }
  // Intercontinental triangle between the three roots.
  net.connect(topo.roots[0], topo.roots[1], root_delay);
  net.connect(topo.roots[1], topo.roots[2], root_delay);
  net.connect(topo.roots[0], topo.roots[2], root_delay);

  // Lateral links between interior brokers of neighbouring trees.
  for (std::size_t l = 0; l < options.lateral_links; ++l) {
    const std::size_t a_region = l % 3;
    const std::size_t b_region = (l + 1) % 3;
    const std::size_t slot = l % 3;
    net.connect(topo.interior[a_region][slot], topo.interior[b_region][slot], lateral_delay);
  }

  topo.region_of.resize(net.broker_count());
  for (std::size_t b = 0; b < net.broker_count(); ++b) {
    topo.region_of[b] = static_cast<int>(b / 13);
  }

  for (std::size_t b = 0; b < net.broker_count(); ++b) {
    for (std::size_t c = 0; c < options.clients_per_broker; ++c) {
      topo.subscribers.push_back(
          net.add_client(BrokerId{static_cast<BrokerId::rep_type>(b)}, client_delay));
    }
  }

  // P1, P2, P3 publish from leaf brokers in distinct regions (Figure 6 shows
  // them at the periphery of each tree).
  topo.publisher_brokers = {topo.leaves[0][0], topo.leaves[1][4], topo.leaves[2][8]};
  return topo;
}

BrokerNetwork make_line(std::size_t n, Ticks delay, std::size_t clients_per_broker,
                        Ticks client_delay) {
  if (n == 0) throw std::invalid_argument("make_line: n must be >= 1");
  BrokerNetwork net;
  for (std::size_t i = 0; i < n; ++i) net.add_broker();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    net.connect(BrokerId{static_cast<BrokerId::rep_type>(i)},
                BrokerId{static_cast<BrokerId::rep_type>(i + 1)}, delay);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < clients_per_broker; ++c) {
      net.add_client(BrokerId{static_cast<BrokerId::rep_type>(i)}, client_delay);
    }
  }
  return net;
}

BrokerNetwork make_star(std::size_t n, Ticks delay, std::size_t clients_per_broker,
                        Ticks client_delay) {
  if (n == 0) throw std::invalid_argument("make_star: n must be >= 1");
  BrokerNetwork net;
  for (std::size_t i = 0; i < n; ++i) net.add_broker();
  for (std::size_t i = 1; i < n; ++i) {
    net.connect(BrokerId{0}, BrokerId{static_cast<BrokerId::rep_type>(i)}, delay);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < clients_per_broker; ++c) {
      net.add_client(BrokerId{static_cast<BrokerId::rep_type>(i)}, client_delay);
    }
  }
  return net;
}

BrokerNetwork make_random_tree(std::size_t n, Rng& rng, Ticks min_delay, Ticks max_delay,
                               std::size_t clients_per_broker, Ticks client_delay) {
  if (n == 0) throw std::invalid_argument("make_random_tree: n must be >= 1");
  BrokerNetwork net;
  net.add_broker();
  for (std::size_t i = 1; i < n; ++i) {
    const BrokerId b = net.add_broker();
    const BrokerId parent{static_cast<BrokerId::rep_type>(rng.below(i))};
    net.connect(parent, b, rng.between(min_delay, max_delay));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < clients_per_broker; ++c) {
      net.add_client(BrokerId{static_cast<BrokerId::rep_type>(i)}, client_delay);
    }
  }
  return net;
}

BrokerNetwork make_random_tree_like(std::size_t n, Rng& rng, Ticks min_delay, Ticks max_delay,
                                    std::size_t clients_per_broker, Ticks client_delay,
                                    std::size_t extra_links) {
  BrokerNetwork net = make_random_tree(n, rng, min_delay, max_delay, clients_per_broker,
                                       client_delay);
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < extra_links && attempts < extra_links * 20 + 100) {
    ++attempts;
    if (n < 2) break;
    const BrokerId a{static_cast<BrokerId::rep_type>(rng.below(n))};
    const BrokerId b{static_cast<BrokerId::rep_type>(rng.below(n))};
    if (a == b) continue;
    try {
      net.connect(a, b, rng.between(min_delay, max_delay));
      ++added;
    } catch (const std::invalid_argument&) {
      // duplicate link; try another pair
    }
  }
  return net;
}

namespace {

BrokerId nth_broker(std::size_t i) { return BrokerId{static_cast<BrokerId::rep_type>(i)}; }

/// Attaches clients to every broker in `brokers` and records edge/subscriber
/// metadata on `topo`.
void attach_clients(GeneratedTopology& topo, const std::vector<BrokerId>& brokers,
                    std::size_t clients_per_broker, Ticks client_delay) {
  for (const BrokerId b : brokers) {
    if (clients_per_broker > 0) topo.edge_brokers.push_back(b);
    for (std::size_t c = 0; c < clients_per_broker; ++c) {
      topo.subscribers.push_back(topo.network.add_client(b, client_delay));
    }
  }
}

}  // namespace

GeneratedTopology make_fat_tree(const FatTreeOptions& options) {
  const std::size_t k = options.pods;
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("make_fat_tree: pods must be even and >= 2");
  }
  const std::size_t half = k / 2;
  const Ticks core_delay = ticks_from_millis(options.core_delay_ms);
  const Ticks agg_delay = ticks_from_millis(options.agg_delay_ms);
  const Ticks client_delay = ticks_from_millis(options.client_delay_ms);

  GeneratedTopology topo;
  BrokerNetwork& net = topo.network;

  // Cores first: (k/2)^2 of them, then per pod k/2 aggregation + k/2 edge.
  std::vector<BrokerId> cores(half * half);
  for (std::size_t i = 0; i < cores.size(); ++i) cores[i] = net.add_broker();
  std::vector<BrokerId> edges;
  for (std::size_t pod = 0; pod < k; ++pod) {
    std::vector<BrokerId> aggs(half);
    for (std::size_t j = 0; j < half; ++j) {
      aggs[j] = net.add_broker();
      for (std::size_t c = 0; c < half; ++c) {
        net.connect(aggs[j], cores[j * half + c], core_delay);
      }
    }
    for (std::size_t j = 0; j < half; ++j) {
      const BrokerId edge = net.add_broker();
      edges.push_back(edge);
      for (std::size_t a = 0; a < half; ++a) net.connect(edge, aggs[a], agg_delay);
    }
  }

  topo.region_count = k;
  topo.region_of.resize(net.broker_count(), 0);
  // Cores take region i % k (they host no clients; the value only has to be
  // in range); pod brokers take their pod index.
  for (std::size_t i = 0; i < cores.size(); ++i) {
    topo.region_of[static_cast<std::size_t>(cores[i].value)] = static_cast<int>(i % k);
  }
  const std::size_t pod_base = cores.size();
  for (std::size_t pod = 0; pod < k; ++pod) {
    for (std::size_t j = 0; j < 2 * half; ++j) {
      topo.region_of[pod_base + pod * 2 * half + j] = static_cast<int>(pod);
    }
  }

  attach_clients(topo, edges, options.clients_per_edge, client_delay);
  return topo;
}

GeneratedTopology make_waxman(const WaxmanOptions& options, std::uint64_t seed) {
  const std::size_t n = options.brokers;
  if (n == 0) throw std::invalid_argument("make_waxman: brokers must be >= 1");
  if (options.regions == 0) throw std::invalid_argument("make_waxman: regions must be >= 1");
  Rng rng(seed);

  GeneratedTopology topo;
  BrokerNetwork& net = topo.network;
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    net.add_broker();
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }

  const double diagonal = std::sqrt(2.0);
  const auto distance = [&](std::size_t a, std::size_t b) {
    const double dx = x[a] - x[b];
    const double dy = y[a] - y[b];
    return std::sqrt(dx * dx + dy * dy);
  };
  const auto delay_for = [&](double d) {
    const double ms = options.min_delay_ms +
                      (options.max_delay_ms - options.min_delay_ms) * (d / diagonal);
    return std::max<Ticks>(1, ticks_from_millis(ms));
  };

  std::vector<std::size_t> component(n);
  for (std::size_t i = 0; i < n; ++i) component[i] = i;
  const auto find = [&](std::size_t i) {
    while (component[i] != i) {
      component[i] = component[component[i]];
      i = component[i];
    }
    return i;
  };

  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double d = distance(a, b);
      const double p = options.alpha * std::exp(-d / (options.beta * diagonal));
      if (!rng.chance(p)) continue;
      net.connect(nth_broker(a), nth_broker(b), delay_for(d));
      component[find(a)] = find(b);
    }
  }

  // Stitch disconnected components together via their closest broker pair so
  // the routing table never sees an unreachable destination.
  while (true) {
    const std::size_t root0 = find(0);
    std::size_t best_a = n, best_b = n;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t b = 0; b < n; ++b) {
      if (find(b) == root0) continue;
      for (std::size_t a = 0; a < n; ++a) {
        if (find(a) != root0) continue;
        const double d = distance(a, b);
        if (d < best_d) {
          best_d = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_a == n) break;  // all connected
    net.connect(nth_broker(best_a), nth_broker(best_b), delay_for(best_d));
    component[find(best_a)] = find(best_b);
  }

  topo.region_count = options.regions;
  topo.region_of.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto stripe = static_cast<std::size_t>(x[i] * static_cast<double>(options.regions));
    topo.region_of[i] = static_cast<int>(std::min(stripe, options.regions - 1));
  }

  std::vector<BrokerId> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = nth_broker(i);
  attach_clients(topo, all, options.clients_per_broker,
                 ticks_from_millis(options.client_delay_ms));
  return topo;
}

GeneratedTopology make_wan(const WanOptions& options, std::uint64_t seed) {
  const std::size_t regions = options.regions;
  const std::size_t per_region = options.brokers_per_region;
  if (regions == 0 || per_region == 0) {
    throw std::invalid_argument("make_wan: regions and brokers_per_region must be >= 1");
  }
  Rng rng(seed);

  GeneratedTopology topo;
  BrokerNetwork& net = topo.network;
  topo.region_count = regions;

  std::vector<BrokerId> gateways(regions);
  for (std::size_t r = 0; r < regions; ++r) {
    // Per-region delay band: the configured band scaled by a region factor.
    const double spread = std::clamp(options.band_spread, 0.0, 0.95);
    const double factor = 1.0 + spread * (2.0 * rng.uniform() - 1.0);
    const Ticks intra_min =
        std::max<Ticks>(1, ticks_from_millis(options.intra_min_delay_ms * factor));
    const Ticks intra_max =
        std::max(intra_min, ticks_from_millis(options.intra_max_delay_ms * factor));

    const std::size_t base = net.broker_count();
    gateways[r] = net.add_broker();  // region broker 0 doubles as the gateway
    for (std::size_t i = 1; i < per_region; ++i) {
      const BrokerId b = net.add_broker();
      const BrokerId parent = nth_broker(base + rng.below(i));
      net.connect(parent, b, rng.between(intra_min, intra_max));
    }
    std::size_t added = 0, attempts = 0;
    while (per_region >= 2 && added < options.extra_intra_links &&
           attempts < options.extra_intra_links * 20 + 100) {
      ++attempts;
      const BrokerId a = nth_broker(base + rng.below(per_region));
      const BrokerId b = nth_broker(base + rng.below(per_region));
      if (a == b) continue;
      try {
        net.connect(a, b, rng.between(intra_min, intra_max));
        ++added;
      } catch (const std::invalid_argument&) {
        // duplicate link; try another pair
      }
    }
  }

  // Long-haul links: a gateway ring plus extra chords per region.
  const Ticks inter_min = std::max<Ticks>(1, ticks_from_millis(options.inter_min_delay_ms));
  const Ticks inter_max = std::max(inter_min, ticks_from_millis(options.inter_max_delay_ms));
  if (regions >= 2) {
    for (std::size_t r = 0; r < regions; ++r) {
      if (regions == 2 && r == 1) break;  // avoid the duplicate 1->0 ring link
      net.connect(gateways[r], gateways[(r + 1) % regions],
                  rng.between(inter_min, inter_max));
    }
    for (std::size_t r = 0; r < regions; ++r) {
      std::size_t added = 0, attempts = 0;
      while (added + 1 < options.inter_links_per_region && attempts < 50) {
        ++attempts;
        const std::size_t other = rng.below(regions);
        if (other == r) continue;
        try {
          net.connect(gateways[r], gateways[other], rng.between(inter_min, inter_max));
          ++added;
        } catch (const std::invalid_argument&) {
          // ring/chord already present
        }
      }
    }
  }

  topo.region_of.resize(net.broker_count());
  for (std::size_t b = 0; b < net.broker_count(); ++b) {
    topo.region_of[b] = static_cast<int>(b / per_region);
  }

  std::vector<BrokerId> all(net.broker_count());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = nth_broker(i);
  attach_clients(topo, all, options.clients_per_broker,
                 ticks_from_millis(options.client_delay_ms));
  return topo;
}

}  // namespace gryphon
