#include "topology/builders.h"

#include <stdexcept>

namespace gryphon {

Figure6Topology make_figure6() { return make_figure6(Figure6Options{}); }

Figure6Topology make_figure6(const Figure6Options& options) {
  Figure6Topology topo;
  BrokerNetwork& net = topo.network;

  const Ticks root_delay = ticks_from_millis(options.root_delay_ms);
  const Ticks interior_delay = ticks_from_millis(options.interior_delay_ms);
  const Ticks leaf_delay = ticks_from_millis(options.leaf_delay_ms);
  const Ticks client_delay = ticks_from_millis(options.client_delay_ms);
  const Ticks lateral_delay = ticks_from_millis(options.lateral_delay_ms);

  topo.interior.resize(3);
  topo.leaves.resize(3);
  for (int region = 0; region < 3; ++region) {
    const BrokerId root = net.add_broker();
    topo.roots.push_back(root);
    for (int i = 0; i < 3; ++i) {
      const BrokerId mid = net.add_broker();
      topo.interior[static_cast<std::size_t>(region)].push_back(mid);
      net.connect(root, mid, interior_delay);
      for (int j = 0; j < 3; ++j) {
        const BrokerId leaf = net.add_broker();
        topo.leaves[static_cast<std::size_t>(region)].push_back(leaf);
        net.connect(mid, leaf, leaf_delay);
      }
    }
  }
  // Intercontinental triangle between the three roots.
  net.connect(topo.roots[0], topo.roots[1], root_delay);
  net.connect(topo.roots[1], topo.roots[2], root_delay);
  net.connect(topo.roots[0], topo.roots[2], root_delay);

  // Lateral links between interior brokers of neighbouring trees.
  for (std::size_t l = 0; l < options.lateral_links; ++l) {
    const std::size_t a_region = l % 3;
    const std::size_t b_region = (l + 1) % 3;
    const std::size_t slot = l % 3;
    net.connect(topo.interior[a_region][slot], topo.interior[b_region][slot], lateral_delay);
  }

  topo.region_of.resize(net.broker_count());
  for (std::size_t b = 0; b < net.broker_count(); ++b) {
    topo.region_of[b] = static_cast<int>(b / 13);
  }

  for (std::size_t b = 0; b < net.broker_count(); ++b) {
    for (std::size_t c = 0; c < options.clients_per_broker; ++c) {
      topo.subscribers.push_back(
          net.add_client(BrokerId{static_cast<BrokerId::rep_type>(b)}, client_delay));
    }
  }

  // P1, P2, P3 publish from leaf brokers in distinct regions (Figure 6 shows
  // them at the periphery of each tree).
  topo.publisher_brokers = {topo.leaves[0][0], topo.leaves[1][4], topo.leaves[2][8]};
  return topo;
}

BrokerNetwork make_line(std::size_t n, Ticks delay, std::size_t clients_per_broker,
                        Ticks client_delay) {
  if (n == 0) throw std::invalid_argument("make_line: n must be >= 1");
  BrokerNetwork net;
  for (std::size_t i = 0; i < n; ++i) net.add_broker();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    net.connect(BrokerId{static_cast<BrokerId::rep_type>(i)},
                BrokerId{static_cast<BrokerId::rep_type>(i + 1)}, delay);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < clients_per_broker; ++c) {
      net.add_client(BrokerId{static_cast<BrokerId::rep_type>(i)}, client_delay);
    }
  }
  return net;
}

BrokerNetwork make_star(std::size_t n, Ticks delay, std::size_t clients_per_broker,
                        Ticks client_delay) {
  if (n == 0) throw std::invalid_argument("make_star: n must be >= 1");
  BrokerNetwork net;
  for (std::size_t i = 0; i < n; ++i) net.add_broker();
  for (std::size_t i = 1; i < n; ++i) {
    net.connect(BrokerId{0}, BrokerId{static_cast<BrokerId::rep_type>(i)}, delay);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < clients_per_broker; ++c) {
      net.add_client(BrokerId{static_cast<BrokerId::rep_type>(i)}, client_delay);
    }
  }
  return net;
}

BrokerNetwork make_random_tree(std::size_t n, Rng& rng, Ticks min_delay, Ticks max_delay,
                               std::size_t clients_per_broker, Ticks client_delay) {
  if (n == 0) throw std::invalid_argument("make_random_tree: n must be >= 1");
  BrokerNetwork net;
  net.add_broker();
  for (std::size_t i = 1; i < n; ++i) {
    const BrokerId b = net.add_broker();
    const BrokerId parent{static_cast<BrokerId::rep_type>(rng.below(i))};
    net.connect(parent, b, rng.between(min_delay, max_delay));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < clients_per_broker; ++c) {
      net.add_client(BrokerId{static_cast<BrokerId::rep_type>(i)}, client_delay);
    }
  }
  return net;
}

BrokerNetwork make_random_tree_like(std::size_t n, Rng& rng, Ticks min_delay, Ticks max_delay,
                                    std::size_t clients_per_broker, Ticks client_delay,
                                    std::size_t extra_links) {
  BrokerNetwork net = make_random_tree(n, rng, min_delay, max_delay, clients_per_broker,
                                       client_delay);
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < extra_links && attempts < extra_links * 20 + 100) {
    ++attempts;
    if (n < 2) break;
    const BrokerId a{static_cast<BrokerId::rep_type>(rng.below(n))};
    const BrokerId b{static_cast<BrokerId::rep_type>(rng.below(n))};
    if (a == b) continue;
    try {
      net.connect(a, b, rng.between(min_delay, max_delay));
      ++added;
    } catch (const std::invalid_argument&) {
      // duplicate link; try another pair
    }
  }
  return net;
}

}  // namespace gryphon
