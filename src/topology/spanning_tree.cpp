#include "topology/spanning_tree.h"

#include <stdexcept>

namespace gryphon {

SpanningTree::SpanningTree(const BrokerNetwork& network, const RoutingTable& routing,
                           BrokerId root)
    : network_(&network), root_(root), n_(network.broker_count()) {
  if (!root.valid() || static_cast<std::size_t>(root.value) >= n_) {
    throw std::invalid_argument("SpanningTree: bad root");
  }
  parent_.assign(n_, BrokerId{});
  children_.assign(n_, {});
  depth_.assign(n_, -1);
  next_hop_.assign(n_ * n_, LinkIndex{});

  // Parent of b = predecessor of b on the shortest path root -> b, found by
  // walking next hops from the root. Deterministic tie-breaking in the
  // routing table makes every walk consistent.
  depth_[static_cast<std::size_t>(root.value)] = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const BrokerId b{static_cast<BrokerId::rep_type>(i)};
    if (b == root || !routing.reachable(root, b)) continue;
    BrokerId cur = root;
    BrokerId prev = root;
    int guard = 0;
    while (cur != b) {
      const LinkIndex hop = routing.next_hop(cur, b);
      const auto& port = network.ports(cur).at(static_cast<std::size_t>(hop.value));
      prev = cur;
      cur = port.peer_broker;
      if (++guard > static_cast<int>(n_)) {
        throw std::logic_error("SpanningTree: routing walk did not terminate");
      }
    }
    parent_[i] = prev;
    children_[static_cast<std::size_t>(prev.value)].push_back(b);
  }

  // Depths (parents form a DAG toward the root, so iterate until fixed).
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < n_; ++i) {
      if (depth_[i] >= 0 || !parent_[i].valid()) continue;
      const int pd = depth_[static_cast<std::size_t>(parent_[i].value)];
      if (pd >= 0) {
        depth_[i] = pd + 1;
        progress = true;
      }
    }
  }

  // Tree next hops: default to the parent port; overwrite along each
  // root-to-destination chain with the downward port.
  std::vector<LinkIndex> parent_port(n_, LinkIndex{});
  for (std::size_t i = 0; i < n_; ++i) {
    if (parent_[i].valid()) {
      parent_port[i] = network.port_to_broker(BrokerId{static_cast<BrokerId::rep_type>(i)},
                                              parent_[i]);
    }
  }
  for (std::size_t d = 0; d < n_; ++d) {
    const BrokerId dest{static_cast<BrokerId::rep_type>(d)};
    if (depth_[d] < 0) continue;  // unreachable: leave invalid
    for (std::size_t x = 0; x < n_; ++x) {
      if (x != d) next_hop_[x * n_ + d] = parent_port[x];
    }
    BrokerId below = dest;
    BrokerId above = parent_[d];
    while (above.valid()) {
      next_hop_[static_cast<std::size_t>(above.value) * n_ + d] =
          network.port_to_broker(above, below);
      below = above;
      above = parent_[static_cast<std::size_t>(above.value)];
    }
  }

  // Downstream client counts per port.
  std::vector<std::size_t> subtree_clients(n_, 0);
  // Accumulate each broker's local clients up its ancestor chain.
  for (std::size_t i = 0; i < n_; ++i) {
    if (depth_[i] < 0) continue;
    const std::size_t local = network.clients_of(BrokerId{static_cast<BrokerId::rep_type>(i)})
                                  .size();
    BrokerId walk{static_cast<BrokerId::rep_type>(i)};
    while (walk.valid()) {
      subtree_clients[static_cast<std::size_t>(walk.value)] += local;
      walk = parent_[static_cast<std::size_t>(walk.value)];
    }
  }
  downstream_clients_.assign(n_, {});
  for (std::size_t i = 0; i < n_; ++i) {
    const BrokerId b{static_cast<BrokerId::rep_type>(i)};
    const auto& ports = network.ports(b);
    downstream_clients_[i].assign(ports.size(), 0);
    for (std::size_t pi = 0; pi < ports.size(); ++pi) {
      const auto& port = ports[pi];
      if (port.kind == BrokerNetwork::PortKind::kClient) {
        downstream_clients_[i][pi] = 1;
      } else {
        const BrokerId peer = port.peer_broker;
        if (parent_[static_cast<std::size_t>(peer.value)] == b) {
          downstream_clients_[i][pi] = subtree_clients[static_cast<std::size_t>(peer.value)];
        }
      }
    }
  }
}

bool SpanningTree::is_descendant(BrokerId descendant, BrokerId ancestor) const {
  BrokerId walk = descendant;
  while (walk.valid()) {
    if (walk == ancestor) return true;
    walk = parent_[static_cast<std::size_t>(walk.value)];
  }
  return false;
}

LinkIndex SpanningTree::tree_next_hop_to_client(BrokerId from, ClientId client) const {
  const BrokerId home = network_->client_home(client);
  if (home == from) return network_->client_port(client);
  return tree_next_hop(from, home);
}

}  // namespace gryphon
