// All-pairs shortest-path routing.
//
// "each broker constructs a routing table mapping each possible destination
// to the link which is the next hop along the best path to the destination"
// (Section 3.2). Best = minimum total hop delay, computed with Dijkstra from
// every broker.
#pragma once

#include <limits>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "topology/network.h"

namespace gryphon {

class RoutingTable {
 public:
  static constexpr Ticks kUnreachable = std::numeric_limits<Ticks>::max();

  explicit RoutingTable(const BrokerNetwork& network);

  /// Next-hop port on `from` toward broker `to`. Invalid LinkIndex when
  /// from == to or `to` is unreachable.
  [[nodiscard]] LinkIndex next_hop(BrokerId from, BrokerId to) const;

  /// Next-hop port on `from` toward a client: the client's own port when it
  /// is homed on `from`, otherwise the next hop toward its home broker.
  [[nodiscard]] LinkIndex next_hop_to_client(BrokerId from, ClientId client) const;

  /// Total best-path delay between brokers (0 for from == to).
  [[nodiscard]] Ticks distance(BrokerId from, BrokerId to) const;

  /// Number of hops on the best path between brokers (0 for from == to).
  [[nodiscard]] int hop_count(BrokerId from, BrokerId to) const;

  [[nodiscard]] bool reachable(BrokerId from, BrokerId to) const {
    return distance(from, to) != kUnreachable;
  }

 private:
  [[nodiscard]] std::size_t at(BrokerId from, BrokerId to) const {
    return static_cast<std::size_t>(from.value) * n_ + static_cast<std::size_t>(to.value);
  }

  const BrokerNetwork* network_;
  std::size_t n_{0};
  std::vector<Ticks> dist_;       // n x n
  std::vector<LinkIndex> first_;  // n x n next-hop port indices
  std::vector<int> hops_;         // n x n
};

}  // namespace gryphon
