// Random subscription and event generators (paper Section 4.1).
//
// Subscriptions: attribute i is non-* with probability p0 * decay^i (the
// paper uses p0 = 0.98 and decay 0.85 or 0.82); non-* values are drawn from
// a zipf distribution over the attribute's finite domain. "Locality of
// interest" is modeled by a per-region rank permutation: subscribers within
// one subtree of the broker topology share a value-popularity order that
// differs from the other subtrees'.
//
// Events: every attribute value drawn from the zipf distribution (through
// the publisher region's permutation when locality applies).
#pragma once

#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "event/event.h"
#include "event/schema.h"
#include "event/subscription.h"

namespace gryphon {

struct SubscriptionWorkloadConfig {
  /// Probability that the first attribute carries a test (paper: 0.98).
  double first_non_star_probability{0.98};
  /// Multiplicative decay of that probability per attribute (paper: 0.85
  /// for the network-loading run, 0.82 for the matching-time run).
  double non_star_decay{0.85};
  /// Zipf skew for value selection (1.0 = classic zipf).
  double zipf_skew{1.0};
};

/// Generates equality/don't-care subscriptions over a schema whose
/// attributes all declare finite domains.
class SubscriptionGenerator {
 public:
  SubscriptionGenerator(SchemaPtr schema, SubscriptionWorkloadConfig config);

  /// `region_permutation`, when provided, maps zipf rank -> domain index so
  /// different regions favour different values; it must be a permutation of
  /// the attribute domain size (see locality_permutation()).
  [[nodiscard]] Subscription generate(
      Rng& rng, const std::vector<std::uint32_t>* region_permutation = nullptr) const;

  [[nodiscard]] const SchemaPtr& schema() const { return schema_; }

 private:
  SchemaPtr schema_;
  SubscriptionWorkloadConfig config_;
  std::vector<double> non_star_probability_;  // per attribute
  std::vector<Zipf> value_zipf_;              // per attribute
};

/// Generates complete events with zipf-distributed attribute values.
class EventGenerator {
 public:
  explicit EventGenerator(SchemaPtr schema, double zipf_skew = 1.0);

  [[nodiscard]] Event generate(
      Rng& rng, const std::vector<std::uint32_t>* region_permutation = nullptr) const;

  [[nodiscard]] const SchemaPtr& schema() const { return schema_; }

 private:
  SchemaPtr schema_;
  std::vector<Zipf> value_zipf_;
};

/// Measures the average fraction of `subscriptions` matched by events from
/// `events` — the "selectivity" the paper quotes (0.1%, 1.3%).
double measure_selectivity(const std::vector<Subscription>& subscriptions,
                           const std::vector<Event>& events);

}  // namespace gryphon
