#include "workload/generators.h"

#include <stdexcept>

namespace gryphon {

namespace {
void require_finite_domains(const EventSchema& schema) {
  for (const Attribute& attr : schema.attributes()) {
    if (!attr.has_finite_domain()) {
      throw std::invalid_argument("workload generator: attribute '" + attr.name +
                                  "' must declare a finite domain");
    }
  }
}

const Value& pick_value(const Attribute& attr, const Zipf& zipf, Rng& rng,
                        const std::vector<std::uint32_t>* permutation) {
  const std::uint32_t rank = zipf.sample(rng);
  std::uint32_t index = rank;
  if (permutation != nullptr) {
    if (permutation->size() != attr.domain.size()) {
      throw std::invalid_argument("workload generator: permutation size mismatch");
    }
    index = (*permutation)[rank];
  }
  return attr.domain[index];
}
}  // namespace

SubscriptionGenerator::SubscriptionGenerator(SchemaPtr schema, SubscriptionWorkloadConfig config)
    : schema_(std::move(schema)), config_(config) {
  if (!schema_) throw std::invalid_argument("SubscriptionGenerator: null schema");
  require_finite_domains(*schema_);
  double p = config_.first_non_star_probability;
  for (const Attribute& attr : schema_->attributes()) {
    non_star_probability_.push_back(p);
    p *= config_.non_star_decay;
    value_zipf_.emplace_back(attr.domain.size(), config_.zipf_skew);
  }
}

Subscription SubscriptionGenerator::generate(
    Rng& rng, const std::vector<std::uint32_t>* region_permutation) const {
  std::vector<AttributeTest> tests;
  tests.reserve(schema_->attribute_count());
  for (std::size_t i = 0; i < schema_->attribute_count(); ++i) {
    if (rng.chance(non_star_probability_[i])) {
      tests.push_back(AttributeTest::equals(
          pick_value(schema_->attribute(i), value_zipf_[i], rng, region_permutation)));
    } else {
      tests.push_back(AttributeTest::dont_care());
    }
  }
  return Subscription(schema_, std::move(tests));
}

EventGenerator::EventGenerator(SchemaPtr schema, double zipf_skew)
    : schema_(std::move(schema)) {
  if (!schema_) throw std::invalid_argument("EventGenerator: null schema");
  require_finite_domains(*schema_);
  for (const Attribute& attr : schema_->attributes()) {
    value_zipf_.emplace_back(attr.domain.size(), zipf_skew);
  }
}

Event EventGenerator::generate(Rng& rng,
                               const std::vector<std::uint32_t>* region_permutation) const {
  std::vector<Value> values;
  values.reserve(schema_->attribute_count());
  for (std::size_t i = 0; i < schema_->attribute_count(); ++i) {
    values.push_back(pick_value(schema_->attribute(i), value_zipf_[i], rng, region_permutation));
  }
  return Event(schema_, std::move(values));
}

double measure_selectivity(const std::vector<Subscription>& subscriptions,
                           const std::vector<Event>& events) {
  if (subscriptions.empty() || events.empty()) return 0.0;
  std::uint64_t matches = 0;
  for (const Event& event : events) {
    for (const Subscription& sub : subscriptions) {
      if (sub.matches(event)) ++matches;
    }
  }
  return static_cast<double>(matches) /
         (static_cast<double>(subscriptions.size()) * static_cast<double>(events.size()));
}

}  // namespace gryphon
