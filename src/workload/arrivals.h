// Event arrival processes.
//
// "Events arrive at the publishing brokers according to a Poisson
// distribution" (Section 4.1). The bursty ON/OFF process supports the
// paper's future-work question (Section 6: "how our protocol performs with
// bursty message loads").
#pragma once

#include "common/rng.h"
#include "common/time.h"

namespace gryphon {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Ticks until the next arrival (>= 1).
  virtual Ticks next_gap(Rng& rng) = 0;
};

/// Exponential inter-arrival gaps with the given mean rate (events/second).
class PoissonArrivals : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double events_per_second);
  Ticks next_gap(Rng& rng) override;

 private:
  double rate_per_tick_;
};

/// Markov-modulated Poisson process: alternating exponentially-distributed
/// ON periods (arrivals at `on_events_per_second`) and silent OFF periods.
class BurstyArrivals : public ArrivalProcess {
 public:
  BurstyArrivals(double on_events_per_second, double mean_on_seconds, double mean_off_seconds);
  Ticks next_gap(Rng& rng) override;

  /// The long-run average rate (events/second), for comparing against a
  /// Poisson process of equal offered load.
  [[nodiscard]] double mean_rate() const;

 private:
  double on_rate_per_tick_;
  Ticks mean_on_ticks_;
  Ticks mean_off_ticks_;
  Ticks on_remaining_{0};
};

}  // namespace gryphon
