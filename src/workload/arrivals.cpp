#include "workload/arrivals.h"

#include <algorithm>
#include <stdexcept>

namespace gryphon {

namespace {
constexpr double kTicksPerSecond = 1e6 / kMicrosPerTick;
}

PoissonArrivals::PoissonArrivals(double events_per_second) {
  if (events_per_second <= 0) throw std::invalid_argument("PoissonArrivals: rate must be > 0");
  rate_per_tick_ = events_per_second / kTicksPerSecond;
}

Ticks PoissonArrivals::next_gap(Rng& rng) {
  return std::max<Ticks>(1, static_cast<Ticks>(rng.exponential(rate_per_tick_)));
}

BurstyArrivals::BurstyArrivals(double on_events_per_second, double mean_on_seconds,
                               double mean_off_seconds) {
  if (on_events_per_second <= 0 || mean_on_seconds <= 0 || mean_off_seconds < 0) {
    throw std::invalid_argument("BurstyArrivals: bad parameters");
  }
  on_rate_per_tick_ = on_events_per_second / kTicksPerSecond;
  mean_on_ticks_ = std::max<Ticks>(1, ticks_from_seconds(mean_on_seconds));
  mean_off_ticks_ = ticks_from_seconds(mean_off_seconds);
}

double BurstyArrivals::mean_rate() const {
  const double on = static_cast<double>(mean_on_ticks_);
  const double off = static_cast<double>(mean_off_ticks_);
  return on_rate_per_tick_ * kTicksPerSecond * (on / (on + off));
}

Ticks BurstyArrivals::next_gap(Rng& rng) {
  Ticks gap = 0;
  while (true) {
    if (on_remaining_ <= 0) {
      // Start a new cycle: an OFF pause then an ON window.
      if (mean_off_ticks_ > 0) {
        gap += std::max<Ticks>(
            1, static_cast<Ticks>(rng.exponential(1.0 / static_cast<double>(mean_off_ticks_))));
      }
      on_remaining_ = std::max<Ticks>(
          1, static_cast<Ticks>(rng.exponential(1.0 / static_cast<double>(mean_on_ticks_))));
    }
    const Ticks next = std::max<Ticks>(1, static_cast<Ticks>(rng.exponential(on_rate_per_tick_)));
    if (next <= on_remaining_) {
      on_remaining_ -= next;
      return gap + next;
    }
    // The ON window expired before the next arrival; burn it and loop.
    gap += on_remaining_;
    on_remaining_ = 0;
  }
}

}  // namespace gryphon
