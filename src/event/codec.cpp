#include "event/codec.h"

#include <cstring>

namespace gryphon {

namespace {
enum ValueTag : std::uint8_t {
  kTagUnset = 0,
  kTagInt = 1,
  kTagDouble = 2,
  kTagString = 3,
  kTagBool = 4,
};
}  // namespace

void Encoder::put_u8(std::uint8_t v) { buffer_.push_back(v); }

void Encoder::put_u16(std::uint16_t v) {
  put_u8(static_cast<std::uint8_t>(v));
  put_u8(static_cast<std::uint8_t>(v >> 8));
}

void Encoder::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

void Encoder::put_f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void Encoder::put_string(std::string_view v) {
  put_u32(static_cast<std::uint32_t>(v.size()));
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

void Encoder::put_bytes(std::span<const std::uint8_t> v) {
  put_u32(static_cast<std::uint32_t>(v.size()));
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

void Encoder::put_value(const Value& v) {
  if (!v.is_set()) {
    put_u8(kTagUnset);
  } else if (v.is_int()) {
    put_u8(kTagInt);
    put_i64(v.as_int());
  } else if (v.is_double()) {
    put_u8(kTagDouble);
    put_f64(v.as_double());
  } else if (v.is_string()) {
    put_u8(kTagString);
    put_string(v.as_string());
  } else {
    put_u8(kTagBool);
    put_u8(v.as_bool() ? 1 : 0);
  }
}

void Encoder::put_event(const Event& e) {
  put_u16(static_cast<std::uint16_t>(e.size()));
  for (std::size_t i = 0; i < e.size(); ++i) put_value(e.value(i));
}

void Encoder::put_test(const AttributeTest& t) {
  put_u8(static_cast<std::uint8_t>(t.kind));
  switch (t.kind) {
    case TestKind::kDontCare:
      break;
    case TestKind::kEquals:
    case TestKind::kNotEquals:
      put_value(t.operand);
      break;
    case TestKind::kRange: {
      std::uint8_t flags = 0;
      if (t.lo) flags |= 1;
      if (t.hi) flags |= 2;
      if (t.lo_inclusive) flags |= 4;
      if (t.hi_inclusive) flags |= 8;
      put_u8(flags);
      if (t.lo) put_value(*t.lo);
      if (t.hi) put_value(*t.hi);
      break;
    }
  }
}

void Encoder::put_subscription(const Subscription& s) {
  put_u16(static_cast<std::uint16_t>(s.tests().size()));
  for (const AttributeTest& t : s.tests()) put_test(t);
}

void Decoder::need(std::size_t n) const {
  if (remaining() < n) throw CodecError("decode past end of buffer");
}

std::uint8_t Decoder::get_u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Decoder::get_u16() {
  const auto lo = get_u8();
  const auto hi = get_u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t Decoder::get_u32() {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(get_u8()) << (8 * i);
  return v;
}

std::uint64_t Decoder::get_u64() {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(get_u8()) << (8 * i);
  return v;
}

std::int64_t Decoder::get_i64() { return static_cast<std::int64_t>(get_u64()); }

double Decoder::get_f64() {
  const std::uint64_t bits = get_u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Decoder::get_string() {
  const std::uint32_t n = get_u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::uint8_t> Decoder::get_bytes() {
  const std::uint32_t n = get_u32();
  need(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Value Decoder::get_value() {
  switch (get_u8()) {
    case kTagUnset: return Value();
    case kTagInt: return Value(get_i64());
    case kTagDouble: return Value(get_f64());
    case kTagString: return Value(get_string());
    case kTagBool: return Value(get_u8() != 0);
    default: throw CodecError("bad value tag");
  }
}

Event Decoder::get_event(const SchemaPtr& schema) {
  const std::uint16_t n = get_u16();
  if (n != schema->attribute_count()) throw CodecError("event arity mismatch with schema");
  std::vector<Value> values;
  values.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) values.push_back(get_value());
  return Event(schema, std::move(values));
}

AttributeTest Decoder::get_test() {
  AttributeTest t;
  const auto kind = get_u8();
  if (kind > static_cast<std::uint8_t>(TestKind::kRange)) throw CodecError("bad test kind");
  t.kind = static_cast<TestKind>(kind);
  switch (t.kind) {
    case TestKind::kDontCare:
      break;
    case TestKind::kEquals:
    case TestKind::kNotEquals:
      t.operand = get_value();
      break;
    case TestKind::kRange: {
      const std::uint8_t flags = get_u8();
      t.lo_inclusive = (flags & 4) != 0;
      t.hi_inclusive = (flags & 8) != 0;
      if (flags & 1) t.lo = get_value();
      if (flags & 2) t.hi = get_value();
      break;
    }
  }
  return t;
}

Subscription Decoder::get_subscription(const SchemaPtr& schema) {
  const std::uint16_t n = get_u16();
  if (n != schema->attribute_count()) throw CodecError("subscription arity mismatch with schema");
  std::vector<AttributeTest> tests;
  tests.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) tests.push_back(get_test());
  return Subscription(schema, std::move(tests));
}

std::vector<std::uint8_t> encode_event(const Event& e) {
  Encoder enc;
  enc.put_event(e);
  return enc.take();
}

Event decode_event(const SchemaPtr& schema, std::span<const std::uint8_t> data) {
  Decoder dec(data);
  return dec.get_event(schema);
}

std::vector<std::uint8_t> encode_subscription(const Subscription& s) {
  Encoder enc;
  enc.put_subscription(s);
  return enc.take();
}

Subscription decode_subscription(const SchemaPtr& schema, std::span<const std::uint8_t> data) {
  Decoder dec(data);
  return dec.get_subscription(schema);
}

}  // namespace gryphon
