// Text predicate parser.
//
// Grammar (conjunctions only, matching the paper's subscription language):
//
//   predicate := term ( '&' term )*            // '&&' and 'and' also accepted
//   term      := ident op literal
//   op        := '=' | '==' | '!=' | '<' | '<=' | '>' | '>='
//   literal   := integer | float | 'quoted string' | "quoted string"
//              | true | false
//
// Multiple comparisons on one attribute are folded into a single
// AttributeTest when they describe an interval (e.g. price > 100 & price
// <= 120); contradictory or unfoldable combinations are errors.
#pragma once

#include <string>
#include <string_view>

#include "event/subscription.h"

namespace gryphon {

/// Thrown on malformed predicate text; what() pinpoints the offending token.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& message) : std::runtime_error(message) {}
};

/// Parses a predicate against `schema`. Throws ParseError on syntax errors
/// and std::invalid_argument on semantic errors (unknown attribute, type
/// mismatch, contradictory tests).
Subscription parse_subscription(const SchemaPtr& schema, std::string_view text);

/// Parses a disjunction of conjunctions:
///
///   disjunction := predicate ( '|' predicate )*     // '||' and 'or' too
///
/// Content-based subscriptions are conjunctive (each is one PST path), so a
/// disjunctive predicate is decomposed into one Subscription per arm; a
/// subscriber registers them all and receives events matching any arm (the
/// broker delivers one copy per client regardless of how many arms match).
std::vector<Subscription> parse_disjunction(const SchemaPtr& schema, std::string_view text);

/// Parses an event literal like {issue: "IBM", price: 119.5, volume: 3000}.
/// Attributes may appear in any order but all must be present.
Event parse_event(const SchemaPtr& schema, std::string_view text);

}  // namespace gryphon
