// Attribute values and their types.
//
// An information space defines an event schema: an ordered list of typed
// attributes (paper Section 1: "[issue: string, price: dollar, volume:
// integer]"). Values are a closed variant over the supported attribute types.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace gryphon {

enum class AttributeType : std::uint8_t { kInt = 0, kDouble = 1, kString = 2, kBool = 3 };

/// Human-readable name of a type ("int", "double", "string", "bool").
const char* to_string(AttributeType type) noexcept;

/// A single attribute value. Monostate represents "unset" (only valid while
/// an event is under construction; complete events have every slot set).
class Value {
 public:
  Value() = default;
  // Implicit by design: attribute literals read as values in tests and
  // subscription builders (google-explicit-constructor is not part of the
  // curated .clang-tidy check set).
  Value(std::int64_t v) : data_(v) {}
  Value(int v) : data_(std::int64_t{v}) {}
  Value(double v) : data_(v) {}
  Value(std::string v) : data_(std::move(v)) {}
  Value(const char* v) : data_(std::string(v)) {}
  Value(bool v) : data_(v) {}

  [[nodiscard]] bool is_set() const { return data_.index() != 0; }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(data_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(data_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(data_); }

  /// Accessors; precondition: the value holds that alternative.
  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(data_); }
  [[nodiscard]] double as_double() const { return std::get<double>(data_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(data_); }
  [[nodiscard]] bool as_bool() const { return std::get<bool>(data_); }

  /// True when this value's dynamic type matches the schema type.
  [[nodiscard]] bool matches_type(AttributeType type) const;

  /// Numeric values of either arithmetic type widened to double.
  /// Precondition: is_int() || is_double().
  [[nodiscard]] double as_number() const;

  /// Total order within one type; ordering across types follows variant index.
  friend bool operator==(const Value& a, const Value& b) { return a.data_ == b.data_; }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) { return a.data_ < b.data_; }
  friend bool operator<=(const Value& a, const Value& b) { return !(b < a); }
  friend bool operator>(const Value& a, const Value& b) { return b < a; }
  friend bool operator>=(const Value& a, const Value& b) { return !(a < b); }

  /// Stable hash (used to key equality branches in the parallel search tree).
  [[nodiscard]] std::size_t hash() const noexcept;

  /// Rendering for logs, examples, and predicate round-tripping.
  [[nodiscard]] std::string to_text() const;

 private:
  std::variant<std::monostate, std::int64_t, double, std::string, bool> data_;
};

struct ValueHash {
  std::size_t operator()(const Value& v) const noexcept { return v.hash(); }
};

}  // namespace gryphon
