// Content-based subscriptions.
//
// A subscription is a conjunction of tests over the attributes of one event
// schema, e.g. (issue="IBM" & price < 120 & volume > 1000). Attributes not
// mentioned are "don't care" (the paper's `*`). Following the paper, at most
// one test applies per attribute; the parser folds multiple comparisons on
// the same attribute into a single interval test where possible.
#pragma once

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "event/event.h"
#include "event/schema.h"
#include "event/value.h"

namespace gryphon {

/// The kind of test attached to one attribute position.
enum class TestKind : std::uint8_t {
  kDontCare = 0,  // the `*` branch — matches anything
  kEquals = 1,    // attribute == operand
  kNotEquals = 2, // attribute != operand
  kRange = 3,     // lo (<|<=) attribute (<|<=) hi, either side may be open
};

/// One per-attribute test. For kRange, missing bounds are open (unbounded).
struct AttributeTest {
  TestKind kind{TestKind::kDontCare};
  Value operand;                 // for kEquals / kNotEquals
  std::optional<Value> lo;       // for kRange
  std::optional<Value> hi;       // for kRange
  bool lo_inclusive{true};
  bool hi_inclusive{true};

  static AttributeTest dont_care() { return {}; }
  static AttributeTest equals(Value v);
  static AttributeTest not_equals(Value v);
  static AttributeTest less_than(Value v, bool inclusive = false);
  static AttributeTest greater_than(Value v, bool inclusive = false);
  static AttributeTest between(Value lo, Value hi, bool lo_inclusive = true,
                               bool hi_inclusive = true);

  [[nodiscard]] bool is_dont_care() const { return kind == TestKind::kDontCare; }

  /// Evaluates the test against a concrete value.
  [[nodiscard]] bool accepts(const Value& v) const;

  /// Structural equality (used to share PST branches between subscriptions).
  friend bool operator==(const AttributeTest& a, const AttributeTest& b);

  [[nodiscard]] std::string to_text(const std::string& attribute_name) const;
};

/// An immutable conjunction of per-attribute tests over a schema.
class Subscription {
 public:
  /// `tests` is positional: tests[i] applies to schema attribute i.
  /// Throws std::invalid_argument on arity mismatch or type/domain errors.
  Subscription(SchemaPtr schema, std::vector<AttributeTest> tests);

  /// The all-don't-care subscription: matches every event of the schema.
  static Subscription match_all(SchemaPtr schema);

  [[nodiscard]] const SchemaPtr& schema() const { return schema_; }
  [[nodiscard]] const std::vector<AttributeTest>& tests() const { return tests_; }
  [[nodiscard]] const AttributeTest& test(std::size_t index) const { return tests_[index]; }

  /// Number of non-* tests (selectivity indicator).
  [[nodiscard]] std::size_t specific_test_count() const;

  /// Full predicate evaluation against an event.
  [[nodiscard]] bool matches(const Event& event) const;

  /// True when every test is an equality or a don't-care. Trit annotation of
  /// the PST (paper Section 3.1) is defined for this class of subscriptions.
  [[nodiscard]] bool equality_only() const;

  /// Rendering such as (issue = "IBM" & price < 120).
  [[nodiscard]] std::string to_text() const;

  friend bool operator==(const Subscription& a, const Subscription& b) {
    return a.schema_ == b.schema_ && a.tests_ == b.tests_;
  }

 private:
  SchemaPtr schema_;
  std::vector<AttributeTest> tests_;
};

}  // namespace gryphon
