#include "event/schema.h"

#include <algorithm>
#include <stdexcept>

namespace gryphon {

EventSchema::EventSchema(std::string name, std::vector<Attribute> attributes)
    : name_(std::move(name)), attributes_(std::move(attributes)) {
  if (attributes_.empty()) throw std::invalid_argument("EventSchema: needs >= 1 attribute");
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    const Attribute& attr = attributes_[i];
    if (attr.name.empty()) throw std::invalid_argument("EventSchema: empty attribute name");
    if (!index_.emplace(attr.name, i).second) {
      throw std::invalid_argument("EventSchema: duplicate attribute '" + attr.name + "'");
    }
    for (const Value& v : attr.domain) {
      if (!v.matches_type(attr.type)) {
        throw std::invalid_argument("EventSchema: domain value type mismatch for '" + attr.name +
                                    "'");
      }
    }
  }
}

std::optional<std::size_t> EventSchema::index_of(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

bool EventSchema::accepts(std::size_t index, const Value& value) const {
  if (index >= attributes_.size()) return false;
  const Attribute& attr = attributes_[index];
  if (!value.matches_type(attr.type)) return false;
  if (attr.has_finite_domain()) {
    return std::find(attr.domain.begin(), attr.domain.end(), value) != attr.domain.end();
  }
  return true;
}

SchemaPtr make_schema(std::string name, std::vector<Attribute> attributes) {
  return std::make_shared<const EventSchema>(std::move(name), std::move(attributes));
}

SchemaPtr make_synthetic_schema(std::size_t count, std::size_t values_per_attribute,
                                std::string name) {
  std::vector<Attribute> attrs;
  attrs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Attribute a;
    a.name = "a" + std::to_string(i + 1);
    a.type = AttributeType::kInt;
    a.domain.reserve(values_per_attribute);
    for (std::size_t v = 0; v < values_per_attribute; ++v) {
      a.domain.emplace_back(static_cast<std::int64_t>(v));
    }
    attrs.push_back(std::move(a));
  }
  return make_schema(std::move(name), std::move(attrs));
}

}  // namespace gryphon
