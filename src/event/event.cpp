#include "event/event.h"

#include <sstream>
#include <stdexcept>

namespace gryphon {

Event::Event(SchemaPtr schema) : schema_(std::move(schema)) {
  if (!schema_) throw std::invalid_argument("Event: null schema");
  values_.resize(schema_->attribute_count());
}

Event::Event(SchemaPtr schema, std::vector<Value> values) : schema_(std::move(schema)) {
  if (!schema_) throw std::invalid_argument("Event: null schema");
  if (values.size() != schema_->attribute_count()) {
    throw std::invalid_argument("Event: arity mismatch for schema '" + schema_->name() + "'");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!schema_->accepts(i, values[i])) {
      throw std::invalid_argument("Event: value " + values[i].to_text() +
                                  " rejected for attribute '" + schema_->attribute(i).name + "'");
    }
  }
  values_ = std::move(values);
}

void Event::set(std::size_t index, Value value) {
  if (index >= values_.size()) throw std::out_of_range("Event::set: index out of range");
  if (!schema_->accepts(index, value)) {
    throw std::invalid_argument("Event::set: value " + value.to_text() +
                                " rejected for attribute '" + schema_->attribute(index).name +
                                "'");
  }
  values_[index] = std::move(value);
}

void Event::set(std::string_view name, Value value) {
  const auto index = schema_->index_of(name);
  if (!index) throw std::invalid_argument("Event::set: unknown attribute");
  set(*index, std::move(value));
}

bool Event::complete() const {
  for (const Value& v : values_) {
    if (!v.is_set()) return false;
  }
  return true;
}

std::string Event::to_text() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i != 0) os << ", ";
    os << schema_->attribute(i).name << ": " << values_[i].to_text();
  }
  os << '}';
  return os.str();
}

}  // namespace gryphon
