// Binary wire codec for values, events, and subscriptions.
//
// The broker prototype (Section 4.2) marshals events onto the wire and
// un-marshals them against the pre-defined event schema; subscriptions are
// propagated between brokers in the same format. The encoding is a simple
// explicit little-endian TLV format — portable, versionable, and independent
// of host struct layout.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "event/event.h"
#include "event/subscription.h"

namespace gryphon {

/// Thrown when decoding runs off the end of the buffer or meets a bad tag.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& message) : std::runtime_error(message) {}
};

/// Append-only encoder over a growable byte buffer.
class Encoder {
 public:
  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }

  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_f64(double v);
  void put_string(std::string_view v);
  void put_bytes(std::span<const std::uint8_t> v);

  void put_value(const Value& v);
  /// Encodes only the values — the receiver decodes against the schema it
  /// already holds for the information space (events never carry schemas).
  void put_event(const Event& e);
  void put_test(const AttributeTest& t);
  void put_subscription(const Subscription& s);

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Sequential decoder over a fixed byte span.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  double get_f64();
  std::string get_string();
  std::vector<std::uint8_t> get_bytes();

  Value get_value();
  Event get_event(const SchemaPtr& schema);
  AttributeTest get_test();
  Subscription get_subscription(const SchemaPtr& schema);

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
};

/// Round-trip helpers used by tests and the broker wire protocol.
std::vector<std::uint8_t> encode_event(const Event& e);
Event decode_event(const SchemaPtr& schema, std::span<const std::uint8_t> data);
std::vector<std::uint8_t> encode_subscription(const Subscription& s);
Subscription decode_subscription(const SchemaPtr& schema, std::span<const std::uint8_t> data);

}  // namespace gryphon
