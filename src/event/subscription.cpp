#include "event/subscription.h"

#include <sstream>
#include <stdexcept>

namespace gryphon {

AttributeTest AttributeTest::equals(Value v) {
  AttributeTest t;
  t.kind = TestKind::kEquals;
  t.operand = std::move(v);
  return t;
}

AttributeTest AttributeTest::not_equals(Value v) {
  AttributeTest t;
  t.kind = TestKind::kNotEquals;
  t.operand = std::move(v);
  return t;
}

AttributeTest AttributeTest::less_than(Value v, bool inclusive) {
  AttributeTest t;
  t.kind = TestKind::kRange;
  t.hi = std::move(v);
  t.hi_inclusive = inclusive;
  return t;
}

AttributeTest AttributeTest::greater_than(Value v, bool inclusive) {
  AttributeTest t;
  t.kind = TestKind::kRange;
  t.lo = std::move(v);
  t.lo_inclusive = inclusive;
  return t;
}

AttributeTest AttributeTest::between(Value lo, Value hi, bool lo_inclusive, bool hi_inclusive) {
  AttributeTest t;
  t.kind = TestKind::kRange;
  t.lo = std::move(lo);
  t.hi = std::move(hi);
  t.lo_inclusive = lo_inclusive;
  t.hi_inclusive = hi_inclusive;
  return t;
}

bool AttributeTest::accepts(const Value& v) const {
  switch (kind) {
    case TestKind::kDontCare:
      return true;
    case TestKind::kEquals:
      return v == operand;
    case TestKind::kNotEquals:
      return v != operand;
    case TestKind::kRange: {
      if (lo) {
        if (lo_inclusive ? v < *lo : v <= *lo) return false;
      }
      if (hi) {
        if (hi_inclusive ? v > *hi : v >= *hi) return false;
      }
      return true;
    }
  }
  return false;
}

bool operator==(const AttributeTest& a, const AttributeTest& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case TestKind::kDontCare: return true;
    case TestKind::kEquals:
    case TestKind::kNotEquals: return a.operand == b.operand;
    case TestKind::kRange:
      // Inclusivity of an absent bound is meaningless; ignore it.
      return a.lo == b.lo && a.hi == b.hi &&
             (!a.lo.has_value() || a.lo_inclusive == b.lo_inclusive) &&
             (!a.hi.has_value() || a.hi_inclusive == b.hi_inclusive);
  }
  return false;
}

std::string AttributeTest::to_text(const std::string& attribute_name) const {
  std::ostringstream os;
  switch (kind) {
    case TestKind::kDontCare:
      os << attribute_name << " = *";
      break;
    case TestKind::kEquals:
      os << attribute_name << " = " << operand.to_text();
      break;
    case TestKind::kNotEquals:
      os << attribute_name << " != " << operand.to_text();
      break;
    case TestKind::kRange:
      // Emit the conjunction form so the output re-parses (see parser.h).
      if (lo && hi) {
        os << attribute_name << (lo_inclusive ? " >= " : " > ") << lo->to_text() << " & "
           << attribute_name << (hi_inclusive ? " <= " : " < ") << hi->to_text();
      } else if (lo) {
        os << attribute_name << (lo_inclusive ? " >= " : " > ") << lo->to_text();
      } else if (hi) {
        os << attribute_name << (hi_inclusive ? " <= " : " < ") << hi->to_text();
      } else {
        os << attribute_name << " = *";
      }
      break;
  }
  return os.str();
}

namespace {
void validate_test(const EventSchema& schema, std::size_t index, const AttributeTest& test) {
  const Attribute& attr = schema.attribute(index);
  const auto check = [&](const Value& v) {
    if (!v.matches_type(attr.type)) {
      throw std::invalid_argument("Subscription: operand " + v.to_text() +
                                  " has wrong type for attribute '" + attr.name + "'");
    }
  };
  switch (test.kind) {
    case TestKind::kDontCare:
      break;
    case TestKind::kEquals:
    case TestKind::kNotEquals:
      check(test.operand);
      if (attr.has_finite_domain() && !schema.accepts(index, test.operand)) {
        throw std::invalid_argument("Subscription: operand " + test.operand.to_text() +
                                    " outside the domain of '" + attr.name + "'");
      }
      break;
    case TestKind::kRange:
      if (!test.lo && !test.hi) {
        throw std::invalid_argument("Subscription: unbounded range test on '" + attr.name + "'");
      }
      if (attr.type == AttributeType::kBool) {
        throw std::invalid_argument("Subscription: range test on bool attribute '" + attr.name +
                                    "'");
      }
      if (test.lo) check(*test.lo);
      if (test.hi) check(*test.hi);
      if (test.lo && test.hi && *test.hi < *test.lo) {
        throw std::invalid_argument("Subscription: empty range on '" + attr.name + "'");
      }
      break;
  }
}
}  // namespace

Subscription::Subscription(SchemaPtr schema, std::vector<AttributeTest> tests)
    : schema_(std::move(schema)), tests_(std::move(tests)) {
  if (!schema_) throw std::invalid_argument("Subscription: null schema");
  if (tests_.size() != schema_->attribute_count()) {
    throw std::invalid_argument("Subscription: arity mismatch for schema '" + schema_->name() +
                                "'");
  }
  for (std::size_t i = 0; i < tests_.size(); ++i) validate_test(*schema_, i, tests_[i]);
}

Subscription Subscription::match_all(SchemaPtr schema) {
  std::vector<AttributeTest> tests(schema->attribute_count());
  return Subscription(std::move(schema), std::move(tests));
}

std::size_t Subscription::specific_test_count() const {
  std::size_t n = 0;
  for (const AttributeTest& t : tests_) {
    if (!t.is_dont_care()) ++n;
  }
  return n;
}

bool Subscription::matches(const Event& event) const {
  for (std::size_t i = 0; i < tests_.size(); ++i) {
    if (!tests_[i].accepts(event.value(i))) return false;
  }
  return true;
}

bool Subscription::equality_only() const {
  for (const AttributeTest& t : tests_) {
    if (t.kind != TestKind::kDontCare && t.kind != TestKind::kEquals) return false;
  }
  return true;
}

std::string Subscription::to_text() const {
  std::ostringstream os;
  os << '(';
  bool first = true;
  bool any = false;
  for (std::size_t i = 0; i < tests_.size(); ++i) {
    if (tests_[i].is_dont_care()) continue;
    if (!first) os << " & ";
    os << tests_[i].to_text(schema_->attribute(i).name);
    first = false;
    any = true;
  }
  if (!any) os << "*";
  os << ')';
  return os.str();
}

}  // namespace gryphon
