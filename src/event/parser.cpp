#include "event/parser.h"

#include <cctype>
#include <charconv>
#include <optional>
#include <vector>

namespace gryphon {

namespace {

enum class TokKind { kIdent, kNumber, kString, kOp, kAmp, kLBrace, kRBrace, kColon, kComma, kEnd };

struct Token {
  TokKind kind{TokKind::kEnd};
  std::string text;
  std::size_t pos{0};
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Token next() {
    skip_ws();
    Token tok;
    tok.pos = pos_;
    if (pos_ >= input_.size()) return tok;
    const char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      tok.kind = TokKind::kIdent;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) || input_[pos_] == '_' ||
              input_[pos_] == '.')) {
        tok.text += input_[pos_++];
      }
      return tok;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        ((c == '-' || c == '+') && pos_ + 1 < input_.size() &&
         std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
      tok.kind = TokKind::kNumber;
      tok.text += input_[pos_++];
      while (pos_ < input_.size() && (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
                                      input_[pos_] == '.' || input_[pos_] == 'e' ||
                                      input_[pos_] == 'E' ||
                                      ((input_[pos_] == '-' || input_[pos_] == '+') &&
                                       (input_[pos_ - 1] == 'e' || input_[pos_ - 1] == 'E')))) {
        tok.text += input_[pos_++];
      }
      return tok;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++pos_;
      tok.kind = TokKind::kString;
      while (pos_ < input_.size() && input_[pos_] != quote) {
        if (input_[pos_] == '\\' && pos_ + 1 < input_.size()) ++pos_;
        tok.text += input_[pos_++];
      }
      if (pos_ >= input_.size()) throw ParseError("unterminated string at position " +
                                                  std::to_string(tok.pos));
      ++pos_;  // closing quote
      return tok;
    }
    switch (c) {
      case '&':
        ++pos_;
        if (pos_ < input_.size() && input_[pos_] == '&') ++pos_;
        tok.kind = TokKind::kAmp;
        return tok;
      case '{': ++pos_; tok.kind = TokKind::kLBrace; return tok;
      case '}': ++pos_; tok.kind = TokKind::kRBrace; return tok;
      case ':': ++pos_; tok.kind = TokKind::kColon; return tok;
      case ',': ++pos_; tok.kind = TokKind::kComma; return tok;
      case '=': case '!': case '<': case '>': {
        tok.kind = TokKind::kOp;
        tok.text += input_[pos_++];
        if (pos_ < input_.size() && input_[pos_] == '=') tok.text += input_[pos_++];
        if (tok.text == "!") throw ParseError("stray '!' at position " + std::to_string(tok.pos));
        return tok;
      }
      case '(': case ')':
        // Outer parentheses are tolerated and skipped.
        ++pos_;
        return next();
      default:
        throw ParseError(std::string("unexpected character '") + c + "' at position " +
                         std::to_string(tok.pos));
    }
  }

 private:
  void skip_ws() {
    while (pos_ < input_.size() && std::isspace(static_cast<unsigned char>(input_[pos_]))) ++pos_;
  }

  std::string_view input_;
  std::size_t pos_{0};
};

Value parse_literal(const Token& tok, AttributeType expected) {
  if (tok.kind == TokKind::kString) {
    if (expected != AttributeType::kString) {
      throw std::invalid_argument("literal \"" + tok.text + "\" is a string but attribute is " +
                                  to_string(expected));
    }
    return Value(tok.text);
  }
  if (tok.kind == TokKind::kIdent && (tok.text == "true" || tok.text == "false")) {
    if (expected != AttributeType::kBool) {
      throw std::invalid_argument("boolean literal for non-bool attribute");
    }
    return Value(tok.text == "true");
  }
  if (tok.kind == TokKind::kNumber) {
    if (expected == AttributeType::kInt &&
        tok.text.find_first_of(".eE") == std::string::npos) {
      std::int64_t v = 0;
      const auto [ptr, ec] = std::from_chars(tok.text.data(), tok.text.data() + tok.text.size(), v);
      if (ec != std::errc() || ptr != tok.text.data() + tok.text.size()) {
        throw ParseError("bad integer literal '" + tok.text + "'");
      }
      return Value(v);
    }
    if (expected == AttributeType::kDouble || expected == AttributeType::kInt) {
      const double v = std::stod(tok.text);
      if (expected == AttributeType::kInt) {
        const auto i = static_cast<std::int64_t>(v);
        if (static_cast<double>(i) != v) {
          throw std::invalid_argument("non-integer literal '" + tok.text +
                                      "' for int attribute");
        }
        return Value(i);
      }
      return Value(v);
    }
    throw std::invalid_argument("numeric literal for non-numeric attribute");
  }
  throw ParseError("expected a literal, got '" + tok.text + "'");
}

// Accumulates possibly-multiple comparisons on one attribute.
struct TestBuilder {
  bool used{false};
  std::optional<Value> eq;
  std::optional<Value> ne;
  std::optional<Value> lo;
  bool lo_inclusive{false};
  std::optional<Value> hi;
  bool hi_inclusive{false};

  void add(const std::string& op, Value v, const std::string& attr) {
    used = true;
    if (op == "=" || op == "==") {
      if (eq && *eq != v) throw std::invalid_argument("contradictory equality on '" + attr + "'");
      eq = std::move(v);
    } else if (op == "!=") {
      if (ne) throw std::invalid_argument("multiple != tests on '" + attr + "' not supported");
      ne = std::move(v);
    } else if (op == "<" || op == "<=") {
      const bool inc = op == "<=";
      if (!hi || v < *hi || (v == *hi && !inc)) {
        hi = std::move(v);
        hi_inclusive = inc;
      }
    } else if (op == ">" || op == ">=") {
      const bool inc = op == ">=";
      if (!lo || *lo < v || (v == *lo && !inc)) {
        lo = std::move(v);
        lo_inclusive = inc;
      }
    } else {
      throw ParseError("unknown operator '" + op + "'");
    }
  }

  AttributeTest build(const std::string& attr) const {
    if (!used) return AttributeTest::dont_care();
    if (eq) {
      if (ne || lo || hi) {
        // Equality composed with bounds: verify consistency, reduce to equality.
        AttributeTest range;
        range.kind = TestKind::kRange;
        range.lo = lo;
        range.hi = hi;
        range.lo_inclusive = lo_inclusive;
        range.hi_inclusive = hi_inclusive;
        if ((lo || hi) && !range.accepts(*eq)) {
          throw std::invalid_argument("contradictory tests on '" + attr + "'");
        }
        if (ne && *ne == *eq) {
          throw std::invalid_argument("contradictory tests on '" + attr + "'");
        }
      }
      return AttributeTest::equals(*eq);
    }
    if (ne) {
      if (lo || hi) {
        throw std::invalid_argument("mixing != with range bounds on '" + attr +
                                    "' is not supported");
      }
      return AttributeTest::not_equals(*ne);
    }
    AttributeTest t;
    t.kind = TestKind::kRange;
    t.lo = lo;
    t.hi = hi;
    t.lo_inclusive = lo_inclusive;
    t.hi_inclusive = hi_inclusive;
    if (t.lo && t.hi) {
      if (*t.hi < *t.lo || (*t.hi == *t.lo && !(t.lo_inclusive && t.hi_inclusive))) {
        throw std::invalid_argument("empty range on '" + attr + "'");
      }
    }
    return t;
  }
};

}  // namespace

Subscription parse_subscription(const SchemaPtr& schema, std::string_view text) {
  if (!schema) throw std::invalid_argument("parse_subscription: null schema");
  Lexer lexer(text);
  std::vector<TestBuilder> builders(schema->attribute_count());

  // Match-everything special forms: empty text, "all", "*" (optionally in
  // parentheses — the rendering of Subscription::match_all().to_text()).
  {
    std::string trimmed;
    for (const char c : text) {
      if (!std::isspace(static_cast<unsigned char>(c)) && c != '(' && c != ')') trimmed += c;
    }
    if (trimmed.empty() || trimmed == "all" || trimmed == "*") {
      return Subscription::match_all(schema);
    }
  }

  Token tok = lexer.next();

  while (true) {
    if (tok.kind != TokKind::kIdent) {
      throw ParseError("expected attribute name at position " + std::to_string(tok.pos));
    }
    const auto index = schema->index_of(tok.text);
    if (!index) throw std::invalid_argument("unknown attribute '" + tok.text + "'");
    const std::string attr_name = tok.text;

    Token op = lexer.next();
    if (op.kind != TokKind::kOp) {
      throw ParseError("expected comparison operator after '" + attr_name + "'");
    }
    Token lit = lexer.next();
    Value v = parse_literal(lit, schema->attribute(*index).type);
    if (!schema->accepts(*index, v)) {
      throw std::invalid_argument("value " + v.to_text() + " outside the domain of '" +
                                  attr_name + "'");
    }
    builders[*index].add(op.text, std::move(v), attr_name);

    tok = lexer.next();
    if (tok.kind == TokKind::kEnd) break;
    if (tok.kind == TokKind::kAmp ||
        (tok.kind == TokKind::kIdent && (tok.text == "and" || tok.text == "AND"))) {
      tok = lexer.next();
      continue;
    }
    throw ParseError("expected '&' at position " + std::to_string(tok.pos));
  }

  std::vector<AttributeTest> tests;
  tests.reserve(builders.size());
  for (std::size_t i = 0; i < builders.size(); ++i) {
    tests.push_back(builders[i].build(schema->attribute(i).name));
  }
  return Subscription(schema, std::move(tests));
}

std::vector<Subscription> parse_disjunction(const SchemaPtr& schema, std::string_view text) {
  if (!schema) throw std::invalid_argument("parse_disjunction: null schema");
  // Split on top-level '|' / '||' / the word 'or' (quotes respected), then
  // parse each arm as an ordinary conjunction.
  std::vector<std::string> arms;
  std::string current;
  char quote = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quote != 0) {
      current += c;
      if (c == quote && text[i - 1] != '\\') quote = 0;
      continue;
    }
    if (c == '"' || c == '\'') {
      quote = c;
      current += c;
      continue;
    }
    if (c == '|') {
      arms.push_back(current);
      current.clear();
      if (i + 1 < text.size() && text[i + 1] == '|') ++i;
      continue;
    }
    // The word "or"/"OR" surrounded by whitespace.
    if ((c == 'o' || c == 'O') && i + 1 < text.size() && (text[i + 1] == 'r' || text[i + 1] == 'R') &&
        (i == 0 || std::isspace(static_cast<unsigned char>(text[i - 1]))) &&
        (i + 2 == text.size() || std::isspace(static_cast<unsigned char>(text[i + 2])))) {
      arms.push_back(current);
      current.clear();
      ++i;
      continue;
    }
    current += c;
  }
  arms.push_back(current);

  std::vector<Subscription> out;
  out.reserve(arms.size());
  for (const std::string& arm : arms) {
    const bool blank = arm.find_first_not_of(" \t\r\n()") == std::string::npos;
    if (blank && arms.size() > 1) {
      throw ParseError("empty arm in disjunction (stray '|'?)");
    }
    out.push_back(parse_subscription(schema, arm));
  }
  return out;
}

Event parse_event(const SchemaPtr& schema, std::string_view text) {
  if (!schema) throw std::invalid_argument("parse_event: null schema");
  Lexer lexer(text);
  Token tok = lexer.next();
  if (tok.kind != TokKind::kLBrace) throw ParseError("expected '{'");

  Event event(schema);
  std::vector<bool> seen(schema->attribute_count(), false);
  tok = lexer.next();
  while (tok.kind != TokKind::kRBrace) {
    if (tok.kind != TokKind::kIdent) throw ParseError("expected attribute name");
    const auto index = schema->index_of(tok.text);
    if (!index) throw std::invalid_argument("unknown attribute '" + tok.text + "'");
    if (seen[*index]) throw std::invalid_argument("duplicate attribute '" + tok.text + "'");
    seen[*index] = true;

    tok = lexer.next();
    if (tok.kind != TokKind::kColon) throw ParseError("expected ':'");
    tok = lexer.next();
    event.set(*index, parse_literal(tok, schema->attribute(*index).type));

    tok = lexer.next();
    if (tok.kind == TokKind::kComma) tok = lexer.next();
  }
  if (!event.complete()) throw std::invalid_argument("event literal missing attributes");
  return event;
}

}  // namespace gryphon
