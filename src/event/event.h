// Published events.
//
// An event is a complete assignment of values to every attribute of its
// schema. Events are the unit of publication, matching, and routing.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "event/schema.h"
#include "event/value.h"

namespace gryphon {

class Event {
 public:
  /// Constructs an event with all slots unset; fill via set().
  explicit Event(SchemaPtr schema);

  /// Constructs a complete event from positional values.
  /// Throws std::invalid_argument on arity or type/domain mismatch.
  Event(SchemaPtr schema, std::vector<Value> values);

  [[nodiscard]] const SchemaPtr& schema() const { return schema_; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] const Value& value(std::size_t index) const { return values_[index]; }
  [[nodiscard]] const std::vector<Value>& values() const { return values_; }

  /// Sets one attribute by index; throws on type/domain mismatch.
  void set(std::size_t index, Value value);
  /// Sets one attribute by name; throws on unknown attribute.
  void set(std::string_view name, Value value);

  /// True when every slot is set.
  [[nodiscard]] bool complete() const;

  /// Rendering such as {issue: "IBM", price: 119, volume: 3000}.
  [[nodiscard]] std::string to_text() const;

  friend bool operator==(const Event& a, const Event& b) {
    return a.schema_ == b.schema_ && a.values_ == b.values_;
  }

 private:
  SchemaPtr schema_;
  std::vector<Value> values_;
};

}  // namespace gryphon
