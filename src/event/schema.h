// Event schemas: the typed attribute layout of an information space.
//
// A broker network may host multiple information spaces; each is described by
// one EventSchema (paper Section 1 and 4.2). Attributes are ordered — the
// parallel search tree tests them level by level in a configurable order.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "event/value.h"

namespace gryphon {

/// One attribute of a schema. An attribute may declare a finite enumerated
/// domain; declared domains enable the factoring optimization (Section 2.1),
/// which must enumerate every possible value of a factored attribute.
struct Attribute {
  std::string name;
  AttributeType type{AttributeType::kInt};
  /// Optional closed domain. When present, every event/subscription value for
  /// this attribute must be a member.
  std::vector<Value> domain;

  [[nodiscard]] bool has_finite_domain() const { return !domain.empty(); }
};

/// Immutable, shareable schema. Brokers, matchers, and codecs hold
/// shared_ptr<const EventSchema> so events stay valid independent of the
/// registry that created the schema.
class EventSchema {
 public:
  EventSchema(std::string name, std::vector<Attribute> attributes);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t attribute_count() const { return attributes_.size(); }
  [[nodiscard]] const Attribute& attribute(std::size_t index) const { return attributes_[index]; }
  [[nodiscard]] const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of an attribute by name, or nullopt when unknown.
  [[nodiscard]] std::optional<std::size_t> index_of(std::string_view name) const;

  /// Validates that `value` is acceptable for the attribute at `index`:
  /// type matches and, when a finite domain is declared, the value is in it.
  [[nodiscard]] bool accepts(std::size_t index, const Value& value) const;

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
  std::unordered_map<std::string, std::size_t> index_;
};

using SchemaPtr = std::shared_ptr<const EventSchema>;

/// Convenience factory.
SchemaPtr make_schema(std::string name, std::vector<Attribute> attributes);

/// A schema with `count` integer attributes named "a1".."aN", each with the
/// finite domain {0..valuesPerAttribute-1}. This is the synthetic schema shape
/// used throughout the paper's evaluation (Section 4.1).
SchemaPtr make_synthetic_schema(std::size_t count, std::size_t values_per_attribute,
                                std::string name = "synthetic");

}  // namespace gryphon
