#include "event/value.h"

#include <functional>
#include <sstream>

namespace gryphon {

const char* to_string(AttributeType type) noexcept {
  switch (type) {
    case AttributeType::kInt: return "int";
    case AttributeType::kDouble: return "double";
    case AttributeType::kString: return "string";
    case AttributeType::kBool: return "bool";
  }
  return "?";
}

bool Value::matches_type(AttributeType type) const {
  switch (type) {
    case AttributeType::kInt: return is_int();
    case AttributeType::kDouble: return is_double();
    case AttributeType::kString: return is_string();
    case AttributeType::kBool: return is_bool();
  }
  return false;
}

double Value::as_number() const {
  return is_int() ? static_cast<double>(as_int()) : as_double();
}

std::size_t Value::hash() const noexcept {
  const std::size_t tag = data_.index();
  std::size_t h = 0;
  switch (data_.index()) {
    case 1: h = std::hash<std::int64_t>{}(as_int()); break;
    case 2: h = std::hash<double>{}(as_double()); break;
    case 3: h = std::hash<std::string>{}(as_string()); break;
    case 4: h = std::hash<bool>{}(as_bool()); break;
    default: break;
  }
  // Mix in the alternative tag so int 1 and bool true hash differently.
  return h ^ (tag * 0x9e3779b97f4a7c15ULL);
}

std::string Value::to_text() const {
  std::ostringstream os;
  if (is_int()) {
    os << as_int();
  } else if (is_double()) {
    os << as_double();
  } else if (is_string()) {
    os << '"' << as_string() << '"';
  } else if (is_bool()) {
    os << (as_bool() ? "true" : "false");
  } else {
    os << "<unset>";
  }
  return os.str();
}

}  // namespace gryphon
