// The parallel search graph (PSG).
//
// The paper notes (Section 2.1) that "under certain circumstances, after
// applying optimizations, the parallel search tree will no longer be a tree
// but instead a directed acyclic graph". A FrozenPsg is an immutable
// snapshot of a Pst with those optimizations applied structurally:
//
//  * star-only chains are collapsed away entirely (trivial-test
//    elimination applied to the structure, not at match time): an edge may
//    jump several levels, and each surviving node stores the level it
//    actually tests. Under the paper's workloads — where most trailing
//    attributes are don't-care — this removes the majority of nodes;
//  * isomorphic subgraphs are merged by hash-consing. Because every
//    subscription id lives at exactly one leaf, distinct leaves never
//    merge, so this fires only for id-free structure; it is what makes the
//    result a DAG rather than a tree when it applies;
//  * matching memoizes visited nodes per event (sound on a DAG: the union
//    of leaf subscriber sets is path-independent), so a shared node is
//    expanded at most once.
//
// The PSG is a read-only index: build it from a Pst snapshot, rebuild after
// bulk changes. The mutable Pst remains the source of truth (and the trit
// annotation layer stays on the tree, whose unique parent spines make
// incremental annotation possible).
#pragma once

#include <cstdint>
#include <vector>

#include "matching/pst.h"

namespace gryphon {

class FrozenPsg {
 public:
  /// Snapshots `tree` (which may be mutated or destroyed afterwards).
  explicit FrozenPsg(const Pst& tree);

  /// Appends every matched subscription id to `out` (no duplicates).
  /// `stats->nodes_visited` counts distinct node expansions — revisits of
  /// shared nodes are memoized away.
  void match(const Event& event, std::vector<SubscriptionId>& out,
             MatchStats* stats = nullptr) const;

  /// Number of DAG nodes (<= the tree's live node count).
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Live nodes in the source tree at snapshot time, for compression ratios.
  [[nodiscard]] std::size_t source_node_count() const { return source_nodes_; }

  [[nodiscard]] std::size_t subscription_count() const { return subscription_count_; }

  /// Approximate heap footprint of the graph structure.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  using NodeId = std::int32_t;
  struct Node {
    int level{0};
    NodeId star{-1};
    std::vector<std::pair<Value, NodeId>> eq;                // sorted by value
    std::vector<std::pair<AttributeTest, NodeId>> other;
    std::vector<SubscriptionId> subs;  // leaves only, sorted
  };

  NodeId intern(Node node);

  const SchemaPtr schema_;
  std::vector<std::size_t> order_;
  Pst::Options options_;
  std::vector<Node> nodes_;
  NodeId root_{-1};
  std::size_t source_nodes_{0};
  std::size_t subscription_count_{0};
  // Per-match memoization stamps (mutable scratch, sized to nodes_).
  mutable std::vector<std::uint32_t> stamps_;
  mutable std::uint32_t current_stamp_{0};
};

}  // namespace gryphon
