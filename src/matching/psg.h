// The parallel search graph (PSG).
//
// The paper notes (Section 2.1) that "under certain circumstances, after
// applying optimizations, the parallel search tree will no longer be a tree
// but instead a directed acyclic graph". A FrozenPsg is an immutable
// snapshot of a Pst with those optimizations applied structurally:
//
//  * star-only chains are collapsed away entirely (trivial-test
//    elimination applied to the structure, not at match time): an edge may
//    jump several levels, and each surviving node stores the level it
//    actually tests. Under the paper's workloads — where most trailing
//    attributes are don't-care — this removes the majority of nodes;
//  * isomorphic subgraphs are merged by hash-consing. Because every
//    subscription id lives at exactly one leaf, distinct leaves never
//    merge, so this fires only for id-free structure; it is what makes the
//    result a DAG rather than a tree when it applies;
//  * matching memoizes visited nodes per event (sound on a DAG: the union
//    of leaf subscriber sets is path-independent), so a shared node is
//    expanded at most once. The memoization stamps live in a caller-owned
//    per-thread MatchScratch, never in the graph itself: a FrozenPsg is
//    deeply immutable after construction, so any number of threads may
//    match against one instance concurrently.
//
// The PSG is a read-only index: build it from a Pst snapshot, rebuild after
// bulk changes. The mutable Pst remains the source of truth. The structural
// accessors (root/level/children/subscribers) exist for layers that walk
// the graph themselves — the snapshot trit annotation (routing/) computes
// per-link annotation rows bottom-up over these nodes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "matching/match_scratch.h"
#include "matching/pst.h"

namespace gryphon {

class FrozenPsg {
 public:
  using NodeId = std::int32_t;
  static constexpr NodeId kNoNode = -1;

  /// Snapshots `tree` (which may be mutated or destroyed afterwards).
  explicit FrozenPsg(const Pst& tree);

  /// Appends every matched subscription id to `out` (no duplicates), using
  /// the caller's scratch for memoization. Thread-safe: concurrent calls
  /// with distinct scratches never touch shared mutable state.
  /// `stats->nodes_visited` counts distinct node expansions — revisits of
  /// shared nodes are memoized away.
  void match(const Event& event, std::vector<SubscriptionId>& out, MatchScratch& scratch,
             MatchStats* stats = nullptr) const;

  /// Convenience overload using the calling thread's scratch.
  void match(const Event& event, std::vector<SubscriptionId>& out,
             MatchStats* stats = nullptr) const {
    match(event, out, thread_match_scratch(), stats);
  }

  /// The parallel search, delivering each reached leaf to `leaf_fn(NodeId)`
  /// exactly once (memoized on the scratch). match() is visit() plus an
  /// append of `subscribers(leaf)`; other layers substitute their own leaf
  /// payloads (e.g. the broker snapshot's locally-owned subscriber lists).
  template <typename LeafFn>
  void visit(const Event& event, MatchScratch& scratch, MatchStats* stats,
             LeafFn&& leaf_fn) const;

  // --- structural introspection (snapshot annotation layer, tests) ---

  [[nodiscard]] NodeId root() const { return root_; }
  /// The schema attribute level this node tests; leaves sit at order().size().
  [[nodiscard]] int level(NodeId n) const { return nodes_[static_cast<std::size_t>(n)].level; }
  [[nodiscard]] bool is_leaf(NodeId n) const {
    return static_cast<std::size_t>(nodes_[static_cast<std::size_t>(n)].level) == order_.size();
  }
  [[nodiscard]] NodeId star_child(NodeId n) const {
    return nodes_[static_cast<std::size_t>(n)].star;
  }
  [[nodiscard]] std::span<const std::pair<Value, NodeId>> eq_children(NodeId n) const {
    return nodes_[static_cast<std::size_t>(n)].eq;
  }
  [[nodiscard]] std::span<const std::pair<AttributeTest, NodeId>> other_children(NodeId n) const {
    return nodes_[static_cast<std::size_t>(n)].other;
  }
  [[nodiscard]] std::span<const SubscriptionId> subscribers(NodeId n) const {
    return nodes_[static_cast<std::size_t>(n)].subs;
  }
  /// As Pst::eq_children_cover_domain: true when the node's equality
  /// branches cover the full declared finite domain of its attribute and no
  /// general branches exist (the annotation layer's implicit all-No
  /// alternative is then skippable).
  [[nodiscard]] bool eq_children_cover_domain(NodeId n) const;

  /// Node ids are assigned bottom-up: every child id is strictly smaller
  /// than its parent's, so a forward scan over [0, node_count()) visits
  /// children before parents. The annotation builder relies on this.
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  [[nodiscard]] const SchemaPtr& schema() const { return schema_; }
  [[nodiscard]] const std::vector<std::size_t>& order() const { return order_; }
  /// Options of the source tree (delayed branching governs search order).
  [[nodiscard]] const Pst::Options& options() const { return options_; }

  /// Live nodes in the source tree at snapshot time, for compression ratios.
  [[nodiscard]] std::size_t source_node_count() const { return source_nodes_; }

  [[nodiscard]] std::size_t subscription_count() const { return subscription_count_; }

  /// Approximate heap footprint of the graph structure.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  struct Node {
    int level{0};
    NodeId star{-1};
    std::vector<std::pair<Value, NodeId>> eq;                // sorted by value
    std::vector<std::pair<AttributeTest, NodeId>> other;
    std::vector<SubscriptionId> subs;  // leaves only, sorted
  };

  const SchemaPtr schema_;
  std::vector<std::size_t> order_;
  Pst::Options options_;
  std::vector<Node> nodes_;
  NodeId root_{-1};
  std::size_t source_nodes_{0};
  std::size_t subscription_count_{0};
};

template <typename LeafFn>
void FrozenPsg::visit(const Event& event, MatchScratch& scratch, MatchStats* stats,
                      LeafFn&& leaf_fn) const {
  if (subscription_count_ == 0 || root_ < 0) return;
  scratch.begin(nodes_.size());
  const std::size_t leaf_level = order_.size();

  std::vector<NodeId> stack{root_};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    // Memoization: a shared node reached along a second path contributes
    // nothing new (leaf subscriber sets are unioned).
    if (!scratch.visit(static_cast<std::size_t>(n))) continue;
    if (stats != nullptr) ++stats->nodes_visited;

    const Node& node = nodes_[static_cast<std::size_t>(n)];
    if (static_cast<std::size_t>(node.level) == leaf_level) {
      leaf_fn(n);
      continue;
    }
    const Value& v = event.value(order_[static_cast<std::size_t>(node.level)]);
    if (options_.delayed_star && node.star >= 0) stack.push_back(node.star);
    for (const auto& [test, child] : node.other) {
      if (stats != nullptr) ++stats->tests_evaluated;
      if (test.accepts(v)) stack.push_back(child);
    }
    if (!node.eq.empty()) {
      if (stats != nullptr) ++stats->tests_evaluated;
      const auto it = std::lower_bound(
          node.eq.begin(), node.eq.end(), v,
          [](const auto& entry, const Value& key) { return entry.first < key; });
      if (it != node.eq.end() && it->first == v) stack.push_back(it->second);
    }
    if (!options_.delayed_star && node.star >= 0) stack.push_back(node.star);
  }
}

}  // namespace gryphon
