#include "matching/naive_matcher.h"

#include <stdexcept>

namespace gryphon {

void NaiveMatcher::add(SubscriptionId id, const Subscription& subscription) {
  if (index_.contains(id)) throw std::invalid_argument("NaiveMatcher::add: duplicate id");
  index_.emplace(id, entries_.size());
  entries_.emplace_back(id, subscription);
}

bool NaiveMatcher::remove(SubscriptionId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  const std::size_t pos = it->second;
  index_.erase(it);
  if (pos != entries_.size() - 1) {
    entries_[pos] = std::move(entries_.back());
    index_[entries_[pos].first] = pos;
  }
  entries_.pop_back();
  return true;
}

void NaiveMatcher::match_into(const Event& event, std::vector<SubscriptionId>& out,
                              MatchStats* stats) const {
  for (const auto& [id, sub] : entries_) {
    if (stats != nullptr) {
      ++stats->nodes_visited;
      stats->tests_evaluated += sub.tests().size();
    }
    if (sub.matches(event)) out.push_back(id);
  }
}

MatchResult NaiveMatcher::match(const Event& event) const {
  MatchResult result;
  match_into(event, result.ids, &result.stats);
  return result;
}

}  // namespace gryphon
