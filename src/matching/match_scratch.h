// Per-thread scratch state for matching against frozen (immutable) search
// structures.
//
// A FrozenPsg memoizes node visits per event so a DAG node shared between
// several paths is expanded at most once. The memoization stamps used to
// live inside the graph as `mutable` members, which made even const matching
// single-threaded. They now live here: each matching thread owns one
// MatchScratch and passes it down through FrozenPsg / BrokerCore::dispatch,
// so any number of threads can match against one shared snapshot
// concurrently with zero synchronization.
//
// One MatchScratch may be reused across different graphs and events: stamps
// are versioned, so "visited" marks from a previous match (or a previous
// graph) can never leak into the current one.
//
// The scratch also owns the other per-dispatch buffers the compiled kernel
// needs — the resolved equality-key vector, the factoring key, the DFS
// node stack, and the dispatch search's per-level trit masks — so a warm
// dispatch performs no heap allocation at all (enforced by gryphon-analyze
// rule 3 over everything reachable from BrokerCore::dispatch).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "event/value.h"

namespace gryphon {

class MatchScratch {
 public:
  /// Starts a new match over a structure with `node_count` nodes. After this
  /// call every node reads as unvisited.
  void begin(std::size_t node_count) {
    // gryphon-analyze: allow(alloc): stamp array grows to the largest graph
    // seen, then every later begin() reuses it.
    if (stamps_.size() < node_count) stamps_.resize(node_count, 0);
    if (++current_ == 0) {  // stamp wrapped: reset the whole array once
      std::fill(stamps_.begin(), stamps_.end(), 0);
      current_ = 1;
    }
  }

  /// Marks `node` visited; returns true when it was NOT yet visited in the
  /// current match (i.e. the caller should expand it).
  bool visit(std::size_t node) {
    if (stamps_[node] == current_) return false;
    stamps_[node] = current_;
    return true;
  }

  /// True when `node` was already visited in the current match.
  [[nodiscard]] bool visited(std::size_t node) const { return stamps_[node] == current_; }

  /// Resolved per-level equality keys (CompiledPst::resolve output).
  [[nodiscard]] std::vector<std::uint64_t>& value_keys() { return value_keys_; }

  /// Reusable factoring key (FactoringIndex::event_key_into output). Values
  /// are assigned element-wise, so string capacity is reused across events.
  [[nodiscard]] std::vector<Value>& factoring_key() { return factoring_key_; }

  /// Reusable DFS stack for the compiled kernel's iterative walk.
  [[nodiscard]] std::vector<std::int32_t>& node_stack() { return node_stack_; }

  /// Indexed reusable byte buffers — the compiled dispatch search keeps one
  /// trit mask per recursion level here (slot layout defined in
  /// routing/compiled_annotation.h), so a warm dispatch never allocates.
  /// Growing the slot table moves the inner vectors but never their heap
  /// blocks, so spans taken over a slot's data survive later claims.
  [[nodiscard]] std::vector<std::uint8_t>& byte_slot(std::size_t slot) {
    if (slot >= byte_slots_.size()) {
      // gryphon-analyze: allow(alloc): cold-path arena growth, bounded by
      // the deepest kernel level order; warm dispatches reuse every slot.
      byte_slots_.resize(slot + 1);
    }
    return byte_slots_[slot];
  }

 private:
  std::vector<std::uint32_t> stamps_;
  std::uint32_t current_{0};
  std::vector<std::uint64_t> value_keys_;
  std::vector<Value> factoring_key_;
  std::vector<std::int32_t> node_stack_;
  std::vector<std::vector<std::uint8_t>> byte_slots_;
};

/// The calling thread's lazily-created scratch, for convenience overloads
/// that do not thread an explicit MatchScratch through. Hot multi-threaded
/// paths (broker match workers, benchmarks) should own their scratch
/// explicitly instead of paying the thread-local lookup per match.
inline MatchScratch& thread_match_scratch() {
  thread_local MatchScratch scratch;
  return scratch;
}

}  // namespace gryphon
