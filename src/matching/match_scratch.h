// Per-thread scratch state for matching against frozen (immutable) search
// structures.
//
// A FrozenPsg memoizes node visits per event so a DAG node shared between
// several paths is expanded at most once. The memoization stamps used to
// live inside the graph as `mutable` members, which made even const matching
// single-threaded. They now live here: each matching thread owns one
// MatchScratch and passes it down through FrozenPsg / BrokerCore::dispatch,
// so any number of threads can match against one shared snapshot
// concurrently with zero synchronization.
//
// One MatchScratch may be reused across different graphs and events: stamps
// are versioned, so "visited" marks from a previous match (or a previous
// graph) can never leak into the current one.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace gryphon {

class MatchScratch {
 public:
  /// Starts a new match over a structure with `node_count` nodes. After this
  /// call every node reads as unvisited.
  void begin(std::size_t node_count) {
    if (stamps_.size() < node_count) stamps_.resize(node_count, 0);
    if (++current_ == 0) {  // stamp wrapped: reset the whole array once
      std::fill(stamps_.begin(), stamps_.end(), 0);
      current_ = 1;
    }
  }

  /// Marks `node` visited; returns true when it was NOT yet visited in the
  /// current match (i.e. the caller should expand it).
  bool visit(std::size_t node) {
    if (stamps_[node] == current_) return false;
    stamps_[node] = current_;
    return true;
  }

  /// True when `node` was already visited in the current match.
  [[nodiscard]] bool visited(std::size_t node) const { return stamps_[node] == current_; }

 private:
  std::vector<std::uint32_t> stamps_;
  std::uint32_t current_{0};
};

/// The calling thread's lazily-created scratch, for convenience overloads
/// that do not thread an explicit MatchScratch through. Hot multi-threaded
/// paths (broker match workers, benchmarks) should own their scratch
/// explicitly instead of paying the thread-local lookup per match.
inline MatchScratch& thread_match_scratch() {
  thread_local MatchScratch scratch;
  return scratch;
}

}  // namespace gryphon
