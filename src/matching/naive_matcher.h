// Brute-force baseline: evaluate every subscription against every event.
#pragma once

#include <unordered_map>

#include "matching/matcher.h"

namespace gryphon {

class NaiveMatcher : public Matcher {
 public:
  void add(SubscriptionId id, const Subscription& subscription) override;
  bool remove(SubscriptionId id) override;
  [[nodiscard]] MatchResult match(const Event& event) const override;
  /// Allocation-free variant: appends matches to `out`.
  void match_into(const Event& event, std::vector<SubscriptionId>& out,
                  MatchStats* stats = nullptr) const;
  [[nodiscard]] std::size_t subscription_count() const override { return entries_.size(); }

 private:
  // Insertion-ordered storage keeps match output deterministic.
  std::vector<std::pair<SubscriptionId, Subscription>> entries_;
  std::unordered_map<SubscriptionId, std::size_t> index_;
};

}  // namespace gryphon
