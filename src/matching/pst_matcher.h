// PstMatcher: the paper's full matching engine — a parallel search tree with
// the factoring optimization layered on top (Section 2.1).
//
// Factoring: the first `factoring_levels` attributes of the configured order
// become an index. A separate subtree is built for each combination of values
// of the factored attributes; subscriptions that don't pin a factored
// attribute (don't-care or a multi-value test) are replicated across every
// matching combination — trading space for skipped search steps, exactly as
// the paper describes. Factored attributes must declare finite domains.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "matching/compiled_pst.h"
#include "matching/match_scratch.h"
#include "matching/matcher.h"
#include "matching/pst.h"

namespace gryphon {

/// Computes factoring bucket keys for events and subscriptions.
class FactoringIndex {
 public:
  using Key = std::vector<Value>;

  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::size_t h = 0xcbf29ce484222325ULL;
      for (const Value& v : k) h = (h ^ v.hash()) * 1099511628211ULL;
      return h;
    }
  };

  /// `factored` lists the schema attribute indices consumed by the index.
  /// Throws std::invalid_argument if any lacks a finite domain.
  FactoringIndex(SchemaPtr schema, std::vector<std::size_t> factored);

  [[nodiscard]] const std::vector<std::size_t>& factored_attributes() const { return factored_; }

  /// The single bucket an event belongs to.
  [[nodiscard]] Key event_key(const Event& event) const;

  /// As event_key, into a caller-owned buffer: values are assigned
  /// element-wise so a reused key (MatchScratch::factoring_key()) performs
  /// no heap allocation on the hot dispatch path.
  void event_key_into(const Event& event, Key& out) const;

  /// Every bucket a subscription must live in: the cartesian product of the
  /// domain values accepted by its test on each factored attribute.
  [[nodiscard]] std::vector<Key> subscription_keys(const Subscription& subscription) const;

 private:
  SchemaPtr schema_;
  std::vector<std::size_t> factored_;
};

struct PstMatcherOptions {
  /// Full permutation of schema attribute indices; empty selects the schema
  /// declaration order. See order_by_fewest_dont_cares() for the paper's
  /// recommended heuristic.
  std::vector<std::size_t> attribute_order;
  /// How many leading attributes of the order are factored (0 = none).
  std::size_t factoring_levels{0};
  /// Match through the compiled flat kernel (CompiledPst) once a bucket
  /// tree has proven stable — see PstMatcher::kCompileThreshold. Off means
  /// every match walks the mutable tree directly (the pre-compilation
  /// behaviour; benchmarks compare the two).
  bool compiled_kernel{true};
  Pst::Options tree;
};

class PstMatcher : public Matcher {
 public:
  explicit PstMatcher(SchemaPtr schema, PstMatcherOptions options = PstMatcherOptions());

  void add(SubscriptionId id, const Subscription& subscription) override;
  bool remove(SubscriptionId id) override;
  [[nodiscard]] MatchResult match(const Event& event) const override;
  /// Allocation-free variant: appends matches to `out`. The overload with a
  /// scratch is the hot path (no thread-local lookup, reused buffers).
  void match_into(const Event& event, std::vector<SubscriptionId>& out,
                  MatchStats* stats = nullptr) const;
  void match_into(const Event& event, std::vector<SubscriptionId>& out, MatchScratch& scratch,
                  MatchStats* stats = nullptr) const;

  /// A bucket tree is compiled lazily, after this many consecutive matches
  /// at an unchanged mutation epoch: interleaved add/match traffic keeps
  /// walking the mutable tree (compiling per mutation would be O(tree) per
  /// op), while phased workloads — bulk subscribe, then dispatch — pay one
  /// compile and stay on the flat kernel. The snapshot engine
  /// (broker/core_snapshot.h) does not use this hysteresis: it compiles
  /// eagerly at publication, where the rebuild is already batched.
  static constexpr unsigned kCompileThreshold = 4;
  [[nodiscard]] std::size_t subscription_count() const override { return registry_.size(); }

  [[nodiscard]] const SchemaPtr& schema() const { return schema_; }
  [[nodiscard]] const PstMatcherOptions& options() const { return options_; }
  [[nodiscard]] const Subscription* find_subscription(SubscriptionId id) const;

  // --- rich mutation interface for the link-matching layer ---

  /// One (tree, spine) pair touched by a mutation. `tree_created` marks a
  /// bucket tree that did not exist before the call.
  struct TouchedTree {
    Pst* tree;
    Pst::Mutation mutation;
    bool tree_created{false};
  };
  using TouchedTrees = std::vector<TouchedTree>;

  /// As add()/remove(), additionally reporting every touched tree so callers
  /// maintaining per-tree state (trit annotations) can update incrementally.
  TouchedTrees add_with_result(SubscriptionId id, const Subscription& subscription);
  TouchedTrees remove_with_result(SubscriptionId id);

  /// The tree an event would be matched against (nullptr when the event's
  /// factoring bucket holds no subscriptions). The overload taking a
  /// scratch key avoids allocating the factoring key per event.
  [[nodiscard]] const Pst* tree_for_event(const Event& event) const;
  [[nodiscard]] const Pst* tree_for_event(const Event& event,
                                          FactoringIndex::Key& scratch_key) const;
  [[nodiscard]] Pst* tree_for_event(const Event& event);

  /// Invokes `fn(Pst&)` for every live tree (the single tree when factoring
  /// is off, each bucket tree otherwise).
  template <typename Fn>
  void for_each_tree(Fn&& fn) {
    if (single_tree_) {
      fn(*single_tree_);
      return;
    }
    for (auto& [key, tree] : buckets_) fn(*tree);
  }

  [[nodiscard]] std::size_t tree_count() const {
    return single_tree_ ? 1 : buckets_.size();
  }

  /// Invokes `fn(const FactoringIndex::Key*, const Pst&)` for every live
  /// tree. The key pointer is null for the single (unfactored) tree.
  template <typename Fn>
  void for_each_bucket(Fn&& fn) const {
    if (single_tree_) {
      fn(static_cast<const FactoringIndex::Key*>(nullptr), *single_tree_);
      return;
    }
    for (const auto& [key, tree] : buckets_) fn(&key, *tree);
  }

  /// The factoring index, or nullptr when factoring is off.
  [[nodiscard]] const FactoringIndex* factoring() const { return factoring_.get(); }

 private:
  /// Per-tree compile state. Bucket Pst objects are never freed while the
  /// matcher lives (see remove_with_result), so the tree pointer is a
  /// stable key; the mutation epoch invalidates stale kernels.
  struct CompiledEntry {
    std::uint64_t epoch{0};
    unsigned stable_matches{0};
    std::shared_ptr<const CompiledPst> kernel;
  };

  [[nodiscard]] std::unique_ptr<Pst> make_tree() const;
  /// The compiled kernel for `tree` at its current epoch, or nullptr while
  /// the hysteresis counter is still warming up. Thread-compatible with
  /// concurrent const matching: the cache is guarded by compile_mutex_, and
  /// a returned kernel stays valid (shared_ptr) even if a concurrent epoch
  /// bump replaces the cache entry.
  [[nodiscard]] std::shared_ptr<const CompiledPst> compiled_for(const Pst& tree) const;

  SchemaPtr schema_;
  PstMatcherOptions options_;
  std::vector<std::size_t> residual_order_;  // attribute order minus factored prefix
  std::unique_ptr<FactoringIndex> factoring_;  // null when factoring off
  std::unique_ptr<Pst> single_tree_;           // used when factoring off
  std::unordered_map<FactoringIndex::Key, std::unique_ptr<Pst>, FactoringIndex::KeyHash>
      buckets_;
  std::unordered_map<SubscriptionId, Subscription> registry_;
  mutable Mutex compile_mutex_;
  mutable std::unordered_map<const Pst*, CompiledEntry> compiled_ GUARDED_BY(compile_mutex_);
};

}  // namespace gryphon
