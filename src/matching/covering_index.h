// CoveringIndex: subscription aggregation by predicate containment.
//
// Subscription a *covers* b when a's accepted event set contains b's —
// decided per attribute over the equality/not-equals/range/don't-care test
// grammar (conjunctions contain iff they contain attribute-wise). A covered
// subscription adds nothing to the routing problem of its coverer's owner:
// every event it matches, the coverer matches too, and both resolve to the
// same link in every spanning-tree group (links depend only on the owner).
// So instead of inserting it into the PST — and paying a tree mutation plus
// a kernel recompile for state that cannot change any forwarding decision —
// the broker *parks* it here, under its coverer, and the compiled data
// plane carries only the covering frontier.
//
// Parking is restricted to pairs with the same owner broker and is flat
// (one level): every parked subscription hangs directly under a frontier
// coverer, never under another parked one.
//
// Subscriptions owned by the *local* broker never park and never cover:
// they always enter the frontier, unindexed. A remote subscription only
// influences forwarding masks, which covering preserves exactly, but a
// local one must be enumerated per matching event for client delivery —
// and enumeration through parked children is a per-child interpreted
// re-evaluation, the linear scan the compiled kernels exist to avoid.
// Keeping locals compiled costs aggregation only on the broker's own
// clients; the propagated remote population (the bulk of a transit
// broker's table) parks as before. That keeps uncovering simple —
// when a frontier subscription is removed, its children are re-homed
// broadest-first, so a promoted child immediately re-covers its tighter
// siblings and the frontier grows by the minimum. Conversely, a new
// subscription that covers existing frontier entries *demotes* them (and
// inherits their children), shrinking the tree.
//
// The index is control-plane state: callers serialize it exactly like the
// mutable PSTs (BrokerCore does both under one capability). The data plane
// never reads it — it reads the immutable CoveringSnapshot this index
// maintains persistently (one slice cloned per change, O(1) to publish).
//
// Containment detection is exact but not complete: a test is only
// recognized as covering when the containment is structural (e.g. a range
// with both bounds absent accepts everything, but a range that happens to
// span an attribute's whole finite domain is not folded). Incompleteness
// only costs aggregation ratio, never correctness — an unrecognized
// coveree simply stays in the frontier.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "event/subscription.h"
#include "matching/covering_snapshot.h"

namespace gryphon {

class CoveringIndex {
 public:
  /// `local` is the owning broker whose subscriptions bypass covering
  /// (see above). An invalid id — the default — disables the bypass, which
  /// keeps the index fully general for oracle tests.
  explicit CoveringIndex(SchemaPtr schema, BrokerId local = BrokerId{});

  /// Attribute-wise containment: does `a` accept every value `b` accepts?
  [[nodiscard]] static bool test_covers(const AttributeTest& a, const AttributeTest& b);
  /// Predicate containment over whole subscriptions (same schema assumed).
  [[nodiscard]] static bool covers(const Subscription& a, const Subscription& b);

  struct AddResult {
    /// True: the subscription was parked under `coverer` — keep it out of
    /// the PST. False: it entered the frontier; insert it, and remove every
    /// id in `demoted` (previous frontier members it now covers).
    bool parked{false};
    SubscriptionId coverer;
    std::vector<SubscriptionId> demoted;
  };
  AddResult add(SubscriptionId id, const Subscription& subscription, BrokerId owner);

  struct Promoted {
    SubscriptionId id;
    std::shared_ptr<const Subscription> subscription;
  };
  struct RemoveResult {
    bool known{false};
    /// True: a parked child was removed — the PST is untouched.
    bool was_parked{false};
    /// Frontier removal only: previously parked children that could not be
    /// re-covered and must be inserted into the PST.
    std::vector<Promoted> promoted;
  };
  RemoveResult remove(SubscriptionId id);

  [[nodiscard]] std::size_t frontier_count() const { return frontier_.size(); }
  [[nodiscard]] std::size_t parked_count() const { return parked_.size(); }
  /// Looks up any live subscription, frontier or parked.
  [[nodiscard]] std::shared_ptr<const Subscription> find(SubscriptionId id) const;
  [[nodiscard]] bool is_parked(SubscriptionId id) const { return parked_.contains(id); }

  /// The current persistent coverer -> children view for the data plane.
  /// Deeply immutable; successive snapshots share unchanged slices.
  [[nodiscard]] std::shared_ptr<const CoveringSnapshot> snapshot() const { return snapshot_; }

 private:
  struct Frontier {
    std::shared_ptr<const Subscription> subscription;
    BrokerId owner;
    std::size_t specific_tests{0};
    /// First attribute with an equality test, if any — the candidate-index
    /// anchor: anything this entry covers must carry the same equality.
    std::optional<std::pair<std::size_t, Value>> anchor;
    std::vector<SubscriptionId> children;  // parked directly under this
  };
  struct Parked {
    std::shared_ptr<const Subscription> subscription;
    BrokerId owner;
    SubscriptionId coverer;
  };
  struct AnchorKey {
    BrokerId owner;
    std::size_t attribute;
    Value value;
    bool operator==(const AnchorKey&) const = default;
  };
  struct AnchorKeyHash {
    std::size_t operator()(const AnchorKey& k) const noexcept;
  };

  [[nodiscard]] static std::optional<std::pair<std::size_t, Value>> anchor_of(
      const Subscription& subscription);
  /// A frontier subscription with `owner` covering `subscription`, or an
  /// invalid id. Probes the anchor index at each of the subscription's
  /// equality attributes, then the owner's unanchored list.
  [[nodiscard]] SubscriptionId find_coverer(const Subscription& subscription,
                                            BrokerId owner) const;
  void index_frontier(SubscriptionId id, const Frontier& entry);
  void unindex_frontier(SubscriptionId id, const Frontier& entry);
  /// Re-syncs the published snapshot's child list for `coverer` from the
  /// mutable model (clones exactly one slice).
  void publish_children(SubscriptionId coverer);

  SchemaPtr schema_;
  BrokerId local_;
  std::unordered_map<SubscriptionId, Frontier> frontier_;
  std::unordered_map<SubscriptionId, Parked> parked_;
  std::unordered_map<AnchorKey, std::vector<SubscriptionId>, AnchorKeyHash> anchored_;
  std::unordered_map<BrokerId, std::vector<SubscriptionId>> unanchored_;
  std::shared_ptr<const CoveringSnapshot> snapshot_;
};

}  // namespace gryphon
