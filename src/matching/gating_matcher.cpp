#include "matching/gating_matcher.h"

#include <algorithm>
#include <stdexcept>

namespace gryphon {

GatingMatcher::GatingMatcher(SchemaPtr schema) : schema_(std::move(schema)) {
  if (!schema_) throw std::invalid_argument("GatingMatcher: null schema");
  scan_gates_.resize(schema_->attribute_count());
}

void GatingMatcher::erase_id(std::vector<SubscriptionId>& v, SubscriptionId id) {
  v.erase(std::remove(v.begin(), v.end(), id), v.end());
}

void GatingMatcher::add(SubscriptionId id, const Subscription& subscription) {
  if (registry_.contains(id)) throw std::invalid_argument("GatingMatcher::add: duplicate id");
  if (subscription.schema()->attribute_count() != schema_->attribute_count()) {
    throw std::invalid_argument("GatingMatcher::add: schema arity mismatch");
  }
  // Choose the gating test: first equality wins, then first non-*.
  for (std::size_t i = 0; i < subscription.tests().size(); ++i) {
    const AttributeTest& t = subscription.test(i);
    if (t.kind == TestKind::kEquals) {
      eq_gates_[EqKey{i, t.operand}].push_back(id);
      registry_.emplace(id, subscription);
      return;
    }
  }
  for (std::size_t i = 0; i < subscription.tests().size(); ++i) {
    const AttributeTest& t = subscription.test(i);
    if (!t.is_dont_care()) {
      scan_gates_[i].push_back(ScanEntry{id, t});
      registry_.emplace(id, subscription);
      return;
    }
  }
  match_all_.push_back(id);
  registry_.emplace(id, subscription);
}

bool GatingMatcher::remove(SubscriptionId id) {
  const auto it = registry_.find(id);
  if (it == registry_.end()) return false;
  const Subscription& sub = it->second;
  bool gated = false;
  for (std::size_t i = 0; i < sub.tests().size() && !gated; ++i) {
    const AttributeTest& t = sub.test(i);
    if (t.kind == TestKind::kEquals) {
      const auto gate = eq_gates_.find(EqKey{i, t.operand});
      if (gate != eq_gates_.end()) {
        erase_id(gate->second, id);
        if (gate->second.empty()) eq_gates_.erase(gate);
      }
      gated = true;
    }
  }
  for (std::size_t i = 0; i < sub.tests().size() && !gated; ++i) {
    if (!sub.test(i).is_dont_care()) {
      auto& entries = scan_gates_[i];
      entries.erase(std::remove_if(entries.begin(), entries.end(),
                                   [&](const ScanEntry& e) { return e.id == id; }),
                    entries.end());
      gated = true;
    }
  }
  if (!gated) erase_id(match_all_, id);
  registry_.erase(it);
  return true;
}

void GatingMatcher::match_into(const Event& event, std::vector<SubscriptionId>& out,
                               MatchStats* stats) const {
  const auto evaluate_residual = [&](SubscriptionId id) {
    const Subscription& sub = registry_.at(id);
    if (stats != nullptr) {
      ++stats->nodes_visited;
      stats->tests_evaluated += sub.tests().size();
    }
    if (sub.matches(event)) out.push_back(id);
  };

  for (std::size_t i = 0; i < schema_->attribute_count(); ++i) {
    const auto gate = eq_gates_.find(EqKey{i, event.value(i)});
    if (stats != nullptr) ++stats->tests_evaluated;
    if (gate != eq_gates_.end()) {
      for (const SubscriptionId id : gate->second) evaluate_residual(id);
    }
    for (const ScanEntry& entry : scan_gates_[i]) {
      if (stats != nullptr) ++stats->tests_evaluated;
      if (entry.gate.accepts(event.value(i))) evaluate_residual(entry.id);
    }
  }
  for (const SubscriptionId id : match_all_) evaluate_residual(id);
}

MatchResult GatingMatcher::match(const Event& event) const {
  MatchResult result;
  match_into(event, result.ids, &result.stats);
  return result;
}

}  // namespace gryphon
