// The parallel search tree (PST) of Section 2.
//
// Each subscription is a root-to-leaf path; level d of the tree tests the
// schema attribute `order[d]`. Branches are labeled with tests: equality
// branches (kept sorted for binary search), general branches (ranges,
// not-equals, scanned linearly), and at most one `*` (don't-care) branch per
// node. Leaves sit at level order.size() and carry subscription ids.
//
// Matching walks every satisfied path: at a node, the branch whose test
// accepts the event value is followed, and the `*` branch is always followed
// — 0, 1, or 2 successors for equality-only trees, possibly more with ranges
// (paper Section 2).
//
// Optimizations (Section 2.1):
//  * trivial-test elimination — a node whose only branch is `*` performs no
//    test; such chains are skipped via a maintained `skip` pointer;
//  * delayed branching — non-`*` branches are explored before the `*`
//    branch, letting the link-matching search (Section 3.3) prune `*`
//    subtrees once its mask is fully refined;
//  * factoring is layered on top by PstMatcher (see pst_matcher.h).
//
// The tree is mutable (subscribe/unsubscribe) and exposes the structural
// introspection that the trit-annotation layer (src/routing) requires:
// stable node ids, parent pointers, child enumeration, and mutation results
// identifying the changed spine.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/ids.h"
#include "event/event.h"
#include "event/subscription.h"
#include "matching/matcher.h"

namespace gryphon {

class Pst {
 public:
  using NodeId = std::int32_t;
  static constexpr NodeId kNoNode = -1;

  struct Options {
    bool trivial_test_elimination{true};
    /// Explore non-`*` branches before the `*` branch (delayed branching).
    bool delayed_star{true};
  };

  /// `order` is the sequence of schema attribute indices tested level by
  /// level. It need not cover all attributes (factoring consumes some), but
  /// must not repeat and must be valid for the schema. Subscriptions added
  /// to this tree must be don't-care on attributes outside `order`
  /// (PstMatcher guarantees this by construction).
  Pst(SchemaPtr schema, std::vector<std::size_t> order, Options options);
  Pst(SchemaPtr schema, std::vector<std::size_t> order)
      : Pst(std::move(schema), std::move(order), Options()) {}

  [[nodiscard]] const SchemaPtr& schema() const { return schema_; }
  [[nodiscard]] const std::vector<std::size_t>& order() const { return order_; }
  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] std::size_t level_count() const { return order_.size(); }
  [[nodiscard]] std::size_t subscription_count() const { return subscription_count_; }

  /// Result of a mutation: the leaf whose payload changed and the deepest
  /// node that survived pruning (for removals). The annotation layer
  /// re-propagates trit vectors starting from `start` up to the root.
  struct Mutation {
    NodeId leaf{kNoNode};   // leaf touched (kNoNode if the path vanished)
    NodeId start{kNoNode};  // deepest surviving node on the changed spine
    /// Node ids pruned by a removal. Annotation layers zero these rows so a
    /// later arena reuse of the slot can never alias a stale annotation.
    std::vector<NodeId> freed;
  };

  /// Inserts the subscription's path (creating nodes as needed) and records
  /// `id` at the leaf. The same id may be added once per tree.
  Mutation add(SubscriptionId id, const Subscription& subscription);

  /// Removes `id` from the leaf addressed by the subscription's path, and
  /// prunes now-empty nodes. Returns nullopt when the path or id is absent.
  std::optional<Mutation> remove(SubscriptionId id, const Subscription& subscription);

  /// The parallel search: appends every matched subscription id to `out`.
  void match(const Event& event, std::vector<SubscriptionId>& out,
             MatchStats* stats = nullptr) const;

  // --- structural introspection (annotation layer, tests, debugging) ---

  [[nodiscard]] NodeId root() const { return root_; }
  [[nodiscard]] NodeId parent(NodeId n) const { return nodes_[n].parent; }
  [[nodiscard]] int level(NodeId n) const { return nodes_[n].level; }
  [[nodiscard]] bool is_leaf(NodeId n) const {
    return nodes_[n].level == static_cast<int>(order_.size());
  }
  [[nodiscard]] NodeId star_child(NodeId n) const { return nodes_[n].star; }
  [[nodiscard]] std::span<const SubscriptionId> subscribers(NodeId n) const {
    return nodes_[n].subs;
  }
  [[nodiscard]] std::span<const std::pair<Value, NodeId>> eq_children(NodeId n) const {
    return nodes_[n].eq;
  }
  [[nodiscard]] std::span<const std::pair<AttributeTest, NodeId>> other_children(NodeId n) const {
    return nodes_[n].other;
  }
  /// True when the node's equality branches cover the full declared finite
  /// domain of its attribute and it has no other non-star branches. Used by
  /// the annotation layer to decide whether the implicit all-No alternative
  /// (paper Section 3.1) applies.
  [[nodiscard]] bool eq_children_cover_domain(NodeId n) const;

  /// Total node-id space (arena size); ids in [0, node_slot_count()) are
  /// either live or free-listed. Annotation arrays size to this.
  [[nodiscard]] std::size_t node_slot_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t live_node_count() const { return live_nodes_; }

  /// Incremented on every mutation; cheap staleness check for annotations.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Invariant checker used by tests: parent/child coherence, sorted
  /// equality branches, correct skip pointers, leaves exactly at the last
  /// level. Throws std::logic_error with a description on violation.
  void check_invariants() const;

 private:
  struct Node {
    NodeId parent{kNoNode};
    int level{0};
    NodeId star{kNoNode};
    std::vector<std::pair<Value, NodeId>> eq;  // sorted by Value
    std::vector<std::pair<AttributeTest, NodeId>> other;
    std::vector<SubscriptionId> subs;  // leaf payload

    /// A star-only node performs no test — trivial-test elimination skips it.
    [[nodiscard]] bool star_only() const { return eq.empty() && other.empty() && star >= 0; }
    [[nodiscard]] bool childless() const { return eq.empty() && other.empty() && star < 0; }
  };

  NodeId new_node(NodeId parent, int level);
  void free_node(NodeId n);
  NodeId find_eq_child(NodeId n, const Value& v) const;
  void detach_child(NodeId parent_id, NodeId child_id);

  SchemaPtr schema_;
  std::vector<std::size_t> order_;
  Options options_;
  std::vector<Node> nodes_;
  std::vector<NodeId> free_list_;
  NodeId root_{0};
  std::size_t subscription_count_{0};
  std::size_t live_nodes_{0};
  std::uint64_t epoch_{0};
};

}  // namespace gryphon
