#include "matching/pst_matcher.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "matching/attribute_order.h"

namespace gryphon {

FactoringIndex::FactoringIndex(SchemaPtr schema, std::vector<std::size_t> factored)
    : schema_(std::move(schema)), factored_(std::move(factored)) {
  if (!schema_) throw std::invalid_argument("FactoringIndex: null schema");
  for (const std::size_t attr : factored_) {
    if (attr >= schema_->attribute_count()) {
      throw std::invalid_argument("FactoringIndex: bad attribute index");
    }
    if (!schema_->attribute(attr).has_finite_domain()) {
      throw std::invalid_argument("FactoringIndex: factored attribute '" +
                                  schema_->attribute(attr).name +
                                  "' must declare a finite domain");
    }
  }
}

FactoringIndex::Key FactoringIndex::event_key(const Event& event) const {
  Key key;
  event_key_into(event, key);
  return key;
}

void FactoringIndex::event_key_into(const Event& event, Key& out) const {
  // gryphon-analyze: allow(alloc): the scratch key grows once per factoring
  // shape; element-wise assignment below reuses its capacity after that.
  out.resize(factored_.size());
  // Element-wise assignment: a string slot reuses its existing capacity,
  // so a warm scratch key allocates nothing.
  for (std::size_t i = 0; i < factored_.size(); ++i) out[i] = event.value(factored_[i]);
}

std::vector<FactoringIndex::Key> FactoringIndex::subscription_keys(
    const Subscription& subscription) const {
  std::vector<Key> keys{Key{}};
  for (const std::size_t attr : factored_) {
    const AttributeTest& test = subscription.test(attr);
    std::vector<Value> accepted;
    for (const Value& v : schema_->attribute(attr).domain) {
      if (test.accepts(v)) accepted.push_back(v);
    }
    std::vector<Key> extended;
    extended.reserve(keys.size() * accepted.size());
    for (const Key& prefix : keys) {
      for (const Value& v : accepted) {
        Key next = prefix;
        next.push_back(v);
        extended.push_back(std::move(next));
      }
    }
    keys = std::move(extended);
    if (keys.empty()) break;  // contradictory test: lives in no bucket
  }
  return keys;
}

PstMatcher::PstMatcher(SchemaPtr schema, PstMatcherOptions options)
    : schema_(std::move(schema)), options_(std::move(options)) {
  if (!schema_) throw std::invalid_argument("PstMatcher: null schema");
  if (options_.attribute_order.empty()) {
    options_.attribute_order = identity_order(schema_);
  }
  if (options_.attribute_order.size() != schema_->attribute_count()) {
    throw std::invalid_argument("PstMatcher: attribute order must cover the schema");
  }
  if (options_.factoring_levels > schema_->attribute_count()) {
    throw std::invalid_argument("PstMatcher: factoring_levels exceeds attribute count");
  }
  const auto& order = options_.attribute_order;
  if (options_.factoring_levels > 0) {
    std::vector<std::size_t> factored(order.begin(),
                                      order.begin() + static_cast<std::ptrdiff_t>(
                                                          options_.factoring_levels));
    factoring_ = std::make_unique<FactoringIndex>(schema_, std::move(factored));
    residual_order_.assign(order.begin() + static_cast<std::ptrdiff_t>(options_.factoring_levels),
                           order.end());
  } else {
    residual_order_ = order;
    single_tree_ = make_tree();
  }
}

std::unique_ptr<Pst> PstMatcher::make_tree() const {
  return std::make_unique<Pst>(schema_, residual_order_, options_.tree);
}

const Subscription* PstMatcher::find_subscription(SubscriptionId id) const {
  const auto it = registry_.find(id);
  return it == registry_.end() ? nullptr : &it->second;
}

PstMatcher::TouchedTrees PstMatcher::add_with_result(SubscriptionId id,
                                                     const Subscription& subscription) {
  if (registry_.contains(id)) throw std::invalid_argument("PstMatcher::add: duplicate id");
  if (subscription.schema()->attribute_count() != schema_->attribute_count()) {
    throw std::invalid_argument("PstMatcher::add: schema arity mismatch");
  }
  TouchedTrees touched;
  if (single_tree_) {
    touched.push_back({single_tree_.get(), single_tree_->add(id, subscription), false});
  } else {
    for (const auto& key : factoring_->subscription_keys(subscription)) {
      auto it = buckets_.find(key);
      bool created = false;
      if (it == buckets_.end()) {
        it = buckets_.emplace(key, make_tree()).first;
        created = true;
      }
      touched.push_back({it->second.get(), it->second->add(id, subscription), created});
    }
  }
  registry_.emplace(id, subscription);
  return touched;
}

PstMatcher::TouchedTrees PstMatcher::remove_with_result(SubscriptionId id) {
  const auto it = registry_.find(id);
  if (it == registry_.end()) return {};
  const Subscription& subscription = it->second;
  TouchedTrees touched;
  if (single_tree_) {
    if (auto mutation = single_tree_->remove(id, subscription)) {
      touched.push_back({single_tree_.get(), *mutation, false});
    }
  } else {
    for (const auto& key : factoring_->subscription_keys(subscription)) {
      const auto bucket = buckets_.find(key);
      if (bucket == buckets_.end()) continue;
      if (auto mutation = bucket->second->remove(id, subscription)) {
        touched.push_back({bucket->second.get(), *mutation, false});
      }
      // Empty bucket trees are kept: callers hold per-tree annotation state
      // keyed by tree identity, and buckets are typically reused.
    }
  }
  registry_.erase(it);
  return touched;
}

void PstMatcher::add(SubscriptionId id, const Subscription& subscription) {
  add_with_result(id, subscription);
}

bool PstMatcher::remove(SubscriptionId id) {
  if (!registry_.contains(id)) return false;
  remove_with_result(id);
  return true;
}

const Pst* PstMatcher::tree_for_event(const Event& event) const {
  if (single_tree_) return single_tree_.get();
  const auto it = buckets_.find(factoring_->event_key(event));
  return it == buckets_.end() ? nullptr : it->second.get();
}

const Pst* PstMatcher::tree_for_event(const Event& event,
                                      FactoringIndex::Key& scratch_key) const {
  if (single_tree_) return single_tree_.get();
  factoring_->event_key_into(event, scratch_key);
  const auto it = buckets_.find(scratch_key);
  return it == buckets_.end() ? nullptr : it->second.get();
}

Pst* PstMatcher::tree_for_event(const Event& event) {
  return const_cast<Pst*>(std::as_const(*this).tree_for_event(event));
}

std::shared_ptr<const CompiledPst> PstMatcher::compiled_for(const Pst& tree) const {
  MutexLock lock(compile_mutex_);
  CompiledEntry& entry = compiled_[&tree];
  const std::uint64_t epoch = tree.epoch();
  if (entry.kernel && entry.epoch == epoch) return entry.kernel;
  if (entry.epoch != epoch) {
    entry.epoch = epoch;
    entry.stable_matches = 0;
    entry.kernel.reset();
  }
  if (++entry.stable_matches < kCompileThreshold) return nullptr;
  entry.kernel = std::make_shared<const CompiledPst>(FrozenPsg(tree));
  return entry.kernel;
}

void PstMatcher::match_into(const Event& event, std::vector<SubscriptionId>& out,
                            MatchStats* stats) const {
  match_into(event, out, thread_match_scratch(), stats);
}

void PstMatcher::match_into(const Event& event, std::vector<SubscriptionId>& out,
                            MatchScratch& scratch, MatchStats* stats) const {
  const Pst* tree = tree_for_event(event, scratch.factoring_key());
  if (factoring_ && stats != nullptr) ++stats->nodes_visited;  // the index probe
  if (tree == nullptr) return;
  if (options_.compiled_kernel) {
    if (const auto kernel = compiled_for(*tree)) {
      kernel->match(event, out, scratch, stats);
      return;
    }
  }
  tree->match(event, out, stats);
}

MatchResult PstMatcher::match(const Event& event) const {
  MatchResult result;
  match_into(event, result.ids, &result.stats);
  return result;
}

}  // namespace gryphon
