// CoveringSnapshot: the data-plane view of subscription covering.
//
// The control plane (matching/covering_index.h) parks a subscription that is
// *covered* — its predicate is contained in another live subscription with
// the same owner broker — under that coverer instead of inserting it into
// the PST. The compiled kernels therefore carry only the covering frontier.
// Containment plus same-owner parking keeps every forwarding mask exact: an
// event matching a parked child also matches its coverer, and both map to
// the same link in every spanning-tree group (links depend only on the
// owner), so the child's absence from the trit rows can never change a
// forwarding decision.
//
// What the data plane still owes is *enumeration* for match_all, which
// must report parked subscriptions too: for each frontier match it looks
// up the parked children and evaluates each child's predicate against the
// event (the coverer matching does not imply the tighter child does). The
// dispatch hot path never expands — locally-owned subscriptions bypass
// covering entirely (the index never parks them, so local fan-out comes
// straight out of the compiled kernels), and remote parked children cannot
// change a forwarding mask their live coverer already decided.
//
// Persistence: the child table is split into kGroups slices by a splitmix64
// of the subscription id. Each slice is a shared_ptr to an immutable map,
// and each child list is itself a shared_ptr to an immutable vector, so a
// control-plane change clones exactly one slice map (and one list) while
// every published snapshot keeps its own consistent view. Covering-only
// churn — parking or unparking without touching any tree — publishes in
// O(1) by swapping this object alone (see broker/core_snapshot.h).
//
// This is a fully data-plane translation unit (gryphon-analyze planes
// rule, tools/analyze): it must never reference mutable-matcher or
// control-plane state.
#pragma once

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/ids.h"
#include "event/subscription.h"

namespace gryphon {

class CoveringSnapshot {
 public:
  /// One parked subscription. The Subscription is shared with the control
  /// plane's covering index; both sides treat it as immutable.
  struct Child {
    SubscriptionId id;
    std::shared_ptr<const Subscription> subscription;
  };
  using ChildList = std::vector<Child>;
  using Slice = std::unordered_map<SubscriptionId, std::shared_ptr<const ChildList>>;

  static constexpr std::size_t kSlices = 64;

  [[nodiscard]] static std::size_t slice_of(SubscriptionId id) noexcept {
    return splitmix64(static_cast<std::uint64_t>(id.value)) % kSlices;
  }

  [[nodiscard]] bool empty() const { return parked_count_ == 0; }
  [[nodiscard]] std::size_t parked_count() const { return parked_count_; }

  /// The children parked under `coverer`, or nullptr when it has none.
  [[nodiscard]] const ChildList* children_of(SubscriptionId coverer) const {
    if (parked_count_ == 0) return nullptr;
    const Slice* slice = slices_[slice_of(coverer)].get();
    if (slice == nullptr) return nullptr;
    const auto it = slice->find(coverer);
    return it == slice->end() ? nullptr : it->second.get();
  }

  /// Invokes `fn(SubscriptionId)` for every child of `coverer` whose
  /// predicate accepts `event`, in parked order, counting one step per
  /// predicate evaluated. The coverer matching the event is the caller's
  /// precondition (it came out of a kernel match); children are tighter, so
  /// each must be re-evaluated.
  template <typename Fn>
  std::uint64_t expand(SubscriptionId coverer, const Event& event, Fn&& fn) const {
    const ChildList* children = children_of(coverer);
    if (children == nullptr) return 0;
    std::uint64_t steps = 0;
    for (const Child& child : *children) {
      ++steps;
      if (child.subscription->matches(event)) fn(child.id);
    }
    return steps;
  }

 private:
  friend class CoveringIndex;  // sole producer (control plane)

  std::array<std::shared_ptr<const Slice>, kSlices> slices_;
  std::size_t parked_count_{0};
};

}  // namespace gryphon
