// The matcher interface: given an event, return the satisfied subscriptions.
//
// Three implementations are provided:
//  * PstMatcher    — the paper's parallel search tree (Section 2), with the
//                    factoring / trivial-test-elimination / delayed-branching
//                    optimizations of Section 2.1;
//  * NaiveMatcher  — brute-force linear scan (the obvious baseline);
//  * GatingMatcher — the predicate-indexing algorithm of Hanson et al. [9],
//                    discussed in the paper's related-work section.
//
// match() returns a MatchResult value (ids + cost counters). Implementations
// additionally expose a non-virtual match_into() that appends into a
// caller-owned vector for allocation-free hot loops.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "event/event.h"
#include "event/subscription.h"

namespace gryphon {

/// Cost counters for one match operation. A "step" in the paper is the
/// visitation of a single node in the matching tree (Section 4.1); for the
/// non-tree matchers we report the analogous unit of work.
struct MatchStats {
  std::uint64_t nodes_visited{0};
  std::uint64_t tests_evaluated{0};

  MatchStats& operator+=(const MatchStats& other) {
    nodes_visited += other.nodes_visited;
    tests_evaluated += other.tests_evaluated;
    return *this;
  }
};

/// The outcome of matching one event: the satisfied subscription ids (order
/// unspecified, no duplicates) and the work spent finding them.
struct MatchResult {
  std::vector<SubscriptionId> ids;
  MatchStats stats;
};

class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Registers a subscription under a caller-chosen unique id.
  /// Throws std::invalid_argument on duplicate id or schema mismatch.
  virtual void add(SubscriptionId id, const Subscription& subscription) = 0;

  /// Removes a subscription; returns false when the id is unknown.
  virtual bool remove(SubscriptionId id) = 0;

  /// Matches one event, returning the satisfied ids and the cost counters.
  [[nodiscard]] virtual MatchResult match(const Event& event) const = 0;

  [[nodiscard]] virtual std::size_t subscription_count() const = 0;
};

}  // namespace gryphon
