#include "matching/covering_index.h"

#include <algorithm>
#include <stdexcept>

#include "common/hash.h"

namespace gryphon {

namespace {

/// A range with both bounds absent accepts every value of the attribute.
bool accepts_all(const AttributeTest& t) {
  return t.kind == TestKind::kDontCare ||
         (t.kind == TestKind::kRange && !t.lo.has_value() && !t.hi.has_value());
}

}  // namespace

CoveringIndex::CoveringIndex(SchemaPtr schema, BrokerId local)
    : schema_(std::move(schema)), local_(local) {
  if (!schema_) throw std::invalid_argument("CoveringIndex: null schema");
  snapshot_ = std::make_shared<const CoveringSnapshot>();
}

bool CoveringIndex::test_covers(const AttributeTest& a, const AttributeTest& b) {
  if (accepts_all(a)) return true;
  switch (b.kind) {
    case TestKind::kDontCare:
      return false;  // b accepts everything, a does not
    case TestKind::kEquals:
      // b accepts exactly one value; containment is a's acceptance of it.
      return a.accepts(b.operand);
    case TestKind::kNotEquals:
      // b rejects exactly one value, so only the same co-set contains it.
      return a.kind == TestKind::kNotEquals && a.operand == b.operand;
    case TestKind::kRange:
      if (a.kind == TestKind::kEquals) {
        // Only the degenerate closed range [v, v] fits inside {v}.
        return b.lo.has_value() && b.hi.has_value() && *b.lo == a.operand &&
               *b.hi == a.operand && b.lo_inclusive && b.hi_inclusive;
      }
      if (a.kind == TestKind::kNotEquals) {
        return !b.accepts(a.operand);  // the interval misses a's one hole
      }
      // Range in range: each present bound of a must pin b at least as
      // tightly on that side.
      if (a.lo.has_value()) {
        if (!b.lo.has_value() || *b.lo < *a.lo) return false;
        if (*b.lo == *a.lo && b.lo_inclusive && !a.lo_inclusive) return false;
      }
      if (a.hi.has_value()) {
        if (!b.hi.has_value() || *b.hi > *a.hi) return false;
        if (*b.hi == *a.hi && b.hi_inclusive && !a.hi_inclusive) return false;
      }
      return true;
  }
  return false;
}

bool CoveringIndex::covers(const Subscription& a, const Subscription& b) {
  const auto& at = a.tests();
  const auto& bt = b.tests();
  if (at.size() != bt.size()) return false;
  for (std::size_t i = 0; i < at.size(); ++i) {
    if (!test_covers(at[i], bt[i])) return false;
  }
  return true;
}

std::size_t CoveringIndex::AnchorKeyHash::operator()(const AnchorKey& k) const noexcept {
  std::uint64_t h = splitmix64(static_cast<std::uint64_t>(k.owner.value));
  h = splitmix64(h ^ static_cast<std::uint64_t>(k.attribute));
  return static_cast<std::size_t>(splitmix64(h ^ k.value.hash()));
}

std::optional<std::pair<std::size_t, Value>> CoveringIndex::anchor_of(
    const Subscription& subscription) {
  const auto& tests = subscription.tests();
  for (std::size_t i = 0; i < tests.size(); ++i) {
    if (tests[i].kind == TestKind::kEquals) return std::make_pair(i, tests[i].operand);
  }
  return std::nullopt;
}

SubscriptionId CoveringIndex::find_coverer(const Subscription& subscription,
                                           BrokerId owner) const {
  // A frontier entry anchored at (attribute, value) can only cover
  // subscriptions that pin that attribute to the same value, so probing the
  // anchor index at each of this subscription's equality tests enumerates
  // every anchored candidate. Unanchored frontier entries (no equality
  // test) are few in equality-heavy workloads and are scanned directly.
  const auto& tests = subscription.tests();
  for (std::size_t i = 0; i < tests.size(); ++i) {
    if (tests[i].kind != TestKind::kEquals) continue;
    const auto it = anchored_.find(AnchorKey{owner, i, tests[i].operand});
    if (it == anchored_.end()) continue;
    for (const SubscriptionId candidate : it->second) {
      if (covers(*frontier_.at(candidate).subscription, subscription)) return candidate;
    }
  }
  const auto it = unanchored_.find(owner);
  if (it != unanchored_.end()) {
    for (const SubscriptionId candidate : it->second) {
      if (covers(*frontier_.at(candidate).subscription, subscription)) return candidate;
    }
  }
  return SubscriptionId{};
}

void CoveringIndex::index_frontier(SubscriptionId id, const Frontier& entry) {
  if (entry.anchor.has_value()) {
    anchored_[AnchorKey{entry.owner, entry.anchor->first, entry.anchor->second}].push_back(id);
  } else {
    unanchored_[entry.owner].push_back(id);
  }
}

void CoveringIndex::unindex_frontier(SubscriptionId id, const Frontier& entry) {
  std::vector<SubscriptionId>* bucket = nullptr;
  if (entry.anchor.has_value()) {
    const AnchorKey key{entry.owner, entry.anchor->first, entry.anchor->second};
    bucket = &anchored_.at(key);
    if (bucket->size() == 1) {
      anchored_.erase(key);
      return;
    }
  } else {
    bucket = &unanchored_.at(entry.owner);
    if (bucket->size() == 1) {
      unanchored_.erase(entry.owner);
      return;
    }
  }
  bucket->erase(std::find(bucket->begin(), bucket->end(), id));
}

void CoveringIndex::publish_children(SubscriptionId coverer) {
  const std::size_t si = CoveringSnapshot::slice_of(coverer);
  auto next = std::make_shared<CoveringSnapshot>(*snapshot_);
  auto slice = next->slices_[si] != nullptr
                   ? std::make_shared<CoveringSnapshot::Slice>(*next->slices_[si])
                   : std::make_shared<CoveringSnapshot::Slice>();
  const auto it = frontier_.find(coverer);
  if (it == frontier_.end() || it->second.children.empty()) {
    slice->erase(coverer);
  } else {
    auto list = std::make_shared<CoveringSnapshot::ChildList>();
    list->reserve(it->second.children.size());
    for (const SubscriptionId child : it->second.children) {
      list->push_back({child, parked_.at(child).subscription});
    }
    (*slice)[coverer] = std::move(list);
  }
  next->slices_[si] = std::move(slice);
  next->parked_count_ = parked_.size();
  snapshot_ = std::move(next);
}

CoveringIndex::AddResult CoveringIndex::add(SubscriptionId id,
                                            const Subscription& subscription, BrokerId owner) {
  if (frontier_.contains(id) || parked_.contains(id)) {
    throw std::invalid_argument("CoveringIndex: duplicate subscription");
  }
  auto shared = std::make_shared<const Subscription>(subscription);

  // Locally-owned subscriptions stay compiled (see the header): frontier
  // membership without candidate indexing, so they neither park nor cover.
  if (owner == local_) {
    frontier_.emplace(
        id, Frontier{std::move(shared), owner, subscription.specific_test_count(),
                     std::nullopt, {}});
    return AddResult{};
  }

  const SubscriptionId coverer = find_coverer(subscription, owner);
  if (coverer.valid()) {
    parked_.emplace(id, Parked{shared, owner, coverer});
    frontier_.at(coverer).children.push_back(id);
    publish_children(coverer);
    AddResult result;
    result.parked = true;
    result.coverer = coverer;
    return result;
  }

  // Entering the frontier: demote every same-owner frontier entry this
  // subscription covers. The anchor probes run in reverse — at each of the
  // *new* subscription's equality attributes, anchored entries pinning the
  // same value are the only anchored entries it can cover. Demoted entries
  // hand their children straight to the new coverer (parking stays flat).
  AddResult result;
  Frontier entry{shared, owner, subscription.specific_test_count(), anchor_of(subscription), {}};
  const auto consider = [&](const SubscriptionId candidate) {
    if (std::find(result.demoted.begin(), result.demoted.end(), candidate) !=
        result.demoted.end()) {
      return;
    }
    if (covers(subscription, *frontier_.at(candidate).subscription)) {
      result.demoted.push_back(candidate);
    }
  };
  const auto& tests = subscription.tests();
  for (std::size_t i = 0; i < tests.size(); ++i) {
    if (tests[i].kind != TestKind::kEquals) continue;
    const auto it = anchored_.find(AnchorKey{owner, i, tests[i].operand});
    if (it == anchored_.end()) continue;
    for (const SubscriptionId candidate : it->second) consider(candidate);
  }
  if (const auto it = unanchored_.find(owner); it != unanchored_.end()) {
    for (const SubscriptionId candidate : it->second) consider(candidate);
  }

  for (const SubscriptionId demoted : result.demoted) {
    Frontier victim = std::move(frontier_.at(demoted));
    unindex_frontier(demoted, victim);
    frontier_.erase(demoted);
    for (const SubscriptionId grandchild : victim.children) {
      parked_.at(grandchild).coverer = id;
      entry.children.push_back(grandchild);
    }
    parked_.emplace(demoted, Parked{std::move(victim.subscription), owner, id});
    entry.children.push_back(demoted);
  }
  const bool had_children = !entry.children.empty();
  index_frontier(id, entry);
  frontier_.emplace(id, std::move(entry));
  for (const SubscriptionId demoted : result.demoted) publish_children(demoted);
  if (had_children) publish_children(id);
  return result;
}

CoveringIndex::RemoveResult CoveringIndex::remove(SubscriptionId id) {
  RemoveResult result;
  if (const auto it = parked_.find(id); it != parked_.end()) {
    const SubscriptionId coverer = it->second.coverer;
    parked_.erase(it);
    auto& children = frontier_.at(coverer).children;
    children.erase(std::find(children.begin(), children.end(), id));
    publish_children(coverer);
    result.known = true;
    result.was_parked = true;
    return result;
  }
  const auto it = frontier_.find(id);
  if (it == frontier_.end()) return result;
  result.known = true;

  Frontier removed = std::move(it->second);
  if (removed.owner == local_) {
    // Never indexed, never a coverer: nothing to unhook or re-home.
    frontier_.erase(it);
    return result;
  }
  unindex_frontier(id, removed);
  frontier_.erase(it);
  publish_children(id);  // erases the snapshot entry

  // Re-home the orphaned children broadest-first: a promoted broad child
  // immediately becomes a parking candidate for its tighter siblings, so
  // the frontier grows by a minimal set.
  std::sort(removed.children.begin(), removed.children.end(),
            [this](SubscriptionId a, SubscriptionId b) {
              const auto key = [this](SubscriptionId s) {
                return std::make_pair(parked_.at(s).subscription->specific_test_count(),
                                      s.value);
              };
              return key(a) < key(b);
            });
  std::vector<SubscriptionId> reparked_under;
  for (const SubscriptionId child : removed.children) {
    Parked orphan = std::move(parked_.at(child));
    parked_.erase(child);
    const SubscriptionId coverer = find_coverer(*orphan.subscription, orphan.owner);
    if (coverer.valid()) {
      frontier_.at(coverer).children.push_back(child);
      orphan.coverer = coverer;
      parked_.emplace(child, std::move(orphan));
      reparked_under.push_back(coverer);
    } else {
      Frontier promoted{orphan.subscription, orphan.owner,
                        orphan.subscription->specific_test_count(),
                        anchor_of(*orphan.subscription), {}};
      index_frontier(child, promoted);
      frontier_.emplace(child, std::move(promoted));
      result.promoted.push_back({child, std::move(orphan.subscription)});
    }
  }
  std::sort(reparked_under.begin(), reparked_under.end());
  reparked_under.erase(std::unique(reparked_under.begin(), reparked_under.end()),
                       reparked_under.end());
  for (const SubscriptionId coverer : reparked_under) publish_children(coverer);
  if (!reparked_under.empty() || !removed.children.empty()) {
    // Even when every child promoted (no re-parks), parked_count changed;
    // publish_children above only ran for re-park targets.
    publish_children(id);
  }
  return result;
}

std::shared_ptr<const Subscription> CoveringIndex::find(SubscriptionId id) const {
  if (const auto it = frontier_.find(id); it != frontier_.end()) return it->second.subscription;
  if (const auto it = parked_.find(id); it != parked_.end()) return it->second.subscription;
  return nullptr;
}

}  // namespace gryphon
