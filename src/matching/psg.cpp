#include "matching/psg.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "event/codec.h"

namespace gryphon {

namespace {

/// Canonical byte key of a node whose children are already interned: two
/// structurally identical subgraphs serialize identically.
std::string node_key(const std::vector<std::pair<Value, std::int32_t>>& eq,
                     const std::vector<std::pair<AttributeTest, std::int32_t>>& other,
                     std::int32_t star, int level, const std::vector<SubscriptionId>& subs) {
  Encoder enc;
  enc.put_u32(static_cast<std::uint32_t>(level));
  enc.put_u32(static_cast<std::uint32_t>(star));
  enc.put_u32(static_cast<std::uint32_t>(eq.size()));
  for (const auto& [value, child] : eq) {
    enc.put_value(value);
    enc.put_u32(static_cast<std::uint32_t>(child));
  }
  enc.put_u32(static_cast<std::uint32_t>(other.size()));
  for (const auto& [test, child] : other) {
    enc.put_test(test);
    enc.put_u32(static_cast<std::uint32_t>(child));
  }
  enc.put_u32(static_cast<std::uint32_t>(subs.size()));
  for (const SubscriptionId id : subs) enc.put_i64(id.value);
  const auto& bytes = enc.buffer();
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

}  // namespace

FrozenPsg::FrozenPsg(const Pst& tree)
    : schema_(tree.schema()),
      order_(tree.order()),
      options_(tree.options()),
      source_nodes_(tree.live_node_count()),
      subscription_count_(tree.subscription_count()) {
  std::unordered_map<std::string, NodeId> interned;

  // Bottom-up conversion; recursion depth is bounded by the level count.
  // Children are interned before their parent, so child ids are strictly
  // smaller than parent ids (see node_count() contract).
  const auto convert = [&](const auto& self, Pst::NodeId n) -> NodeId {
    // Structural trivial-test elimination: star-only chains vanish; the
    // parent's edge points straight at the first node that tests anything.
    while (!tree.is_leaf(n) && tree.eq_children(n).empty() &&
           tree.other_children(n).empty() && tree.star_child(n) != Pst::kNoNode) {
      n = tree.star_child(n);
    }
    Node node;
    node.level = tree.level(n);
    if (tree.is_leaf(n)) {
      const auto subs = tree.subscribers(n);
      node.subs.assign(subs.begin(), subs.end());
      std::sort(node.subs.begin(), node.subs.end());
    } else {
      for (const auto& [value, child] : tree.eq_children(n)) {
        node.eq.emplace_back(value, self(self, child));
      }
      for (const auto& [test, child] : tree.other_children(n)) {
        node.other.emplace_back(test, self(self, child));
      }
      if (tree.star_child(n) != Pst::kNoNode) node.star = self(self, tree.star_child(n));
    }
    const std::string key = node_key(node.eq, node.other, node.star, node.level, node.subs);
    const auto it = interned.find(key);
    if (it != interned.end()) return it->second;
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(std::move(node));
    interned.emplace(key, id);
    return id;
  };
  root_ = convert(convert, tree.root());
}

bool FrozenPsg::eq_children_cover_domain(NodeId n) const {
  const Node& node = nodes_[static_cast<std::size_t>(n)];
  if (!node.other.empty()) return false;
  if (is_leaf(n)) return false;
  const Attribute& attr = schema_->attribute(order_[static_cast<std::size_t>(node.level)]);
  if (!attr.has_finite_domain()) return false;
  if (node.eq.size() != attr.domain.size()) return false;
  // eq is sorted and value-unique; equal sizes make a subset check a cover
  // check.
  for (const Value& v : attr.domain) {
    const auto it = std::lower_bound(
        node.eq.begin(), node.eq.end(), v,
        [](const auto& entry, const Value& key) { return entry.first < key; });
    if (it == node.eq.end() || !(it->first == v)) return false;
  }
  return true;
}

std::size_t FrozenPsg::memory_bytes() const {
  std::size_t total = nodes_.capacity() * sizeof(Node);
  for (const Node& node : nodes_) {
    total += node.eq.capacity() * sizeof(std::pair<Value, NodeId>);
    total += node.other.capacity() * sizeof(std::pair<AttributeTest, NodeId>);
    total += node.subs.capacity() * sizeof(SubscriptionId);
  }
  return total;
}

void FrozenPsg::match(const Event& event, std::vector<SubscriptionId>& out,
                      MatchScratch& scratch, MatchStats* stats) const {
  visit(event, scratch, stats, [&](NodeId leaf) {
    const Node& node = nodes_[static_cast<std::size_t>(leaf)];
    out.insert(out.end(), node.subs.begin(), node.subs.end());
  });
}

}  // namespace gryphon
