// Compiled flat parallel search trees: the immutable, cache-friendly match
// kernel behind the snapshot engine.
//
// A FrozenPsg is already immutable and hash-consed, but it is still a
// pointer-chasing arena: every node owns three std::vectors, and every
// equality branch compares full `Value` variants (heap strings included)
// through std::lower_bound. CompiledPst flattens a FrozenPsg once — at
// snapshot publication, or lazily behind PstMatcher — into a
// struct-of-arrays layout built for the data-plane walk:
//
//  * nodes live in one contiguous array (32 bytes each) in DFS first-visit
//    order; branch tables, leaf subscriber lists, and general (range /
//    not-equals) tests live in parallel arenas addressed by [begin, count)
//    slices, so a match touches a handful of dense arrays instead of a
//    vector-per-node heap walk;
//  * every equality operand is lowered to a u64 key: integers, doubles, and
//    bools via order-preserving bit tricks, strings by interning into a
//    per-tree pool. resolve() lowers an event to its key vector once per
//    dispatch, so an equality test is a u64 compare instead of a Value
//    variant comparison — branchless binary search for wide fan-out, a
//    linear scan for narrow nodes;
//  * star-only chains were already collapsed structurally by the FrozenPsg
//    (trivial-test elimination), and eq_children_cover_domain is
//    precomputed into a per-node flag, so the walk does no structural
//    analysis at match time.
//
// The mutable Pst remains the write-side source of truth. A CompiledPst is
// deeply immutable after construction: any number of threads may match
// against one instance concurrently, each with its own MatchScratch
// (memoization stamps, resolved-key buffer, DFS stack). The routing layer
// lays its frozen trit-annotation rows out against these node ids — see
// routing/compiled_annotation.h.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "matching/match_scratch.h"
#include "matching/psg.h"

namespace gryphon {

class CompiledPst {
 public:
  using NodeId = std::int32_t;
  static constexpr NodeId kNoNode = -1;
  /// Key of an event value that cannot equal any branch operand (e.g. a
  /// string absent from the intern pool). Never collides with a real key:
  /// string keys are dense pool indices, and within one node every operand
  /// shares the attribute's type, so numeric encodings are never compared
  /// against it.
  static constexpr std::uint64_t kUnknownKey = ~std::uint64_t{0};

  /// Compiles a frozen snapshot. `graph` may be destroyed afterwards.
  explicit CompiledPst(const FrozenPsg& graph);

  /// Lowers the event's tested attributes to equality keys, one per level
  /// of order(). Called once per dispatch; `keys` is a reusable scratch
  /// buffer (typically MatchScratch::value_keys()).
  void resolve(const Event& event, std::vector<std::uint64_t>& keys) const;

  /// Appends every matched subscription id to `out` (no duplicates).
  /// Thread-safe: concurrent calls with distinct scratches share only
  /// immutable state.
  void match(const Event& event, std::vector<SubscriptionId>& out, MatchScratch& scratch,
             MatchStats* stats = nullptr) const;

  // --- structural introspection (annotation layer, tests) ---

  [[nodiscard]] NodeId root() const { return root_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] int level(NodeId n) const { return nodes_[static_cast<std::size_t>(n)].level; }
  [[nodiscard]] bool is_leaf(NodeId n) const {
    return (nodes_[static_cast<std::size_t>(n)].flags & kLeafFlag) != 0;
  }
  /// Precomputed FrozenPsg::eq_children_cover_domain of the source node.
  [[nodiscard]] bool covers_domain(NodeId n) const {
    return (nodes_[static_cast<std::size_t>(n)].flags & kCoversDomainFlag) != 0;
  }
  [[nodiscard]] NodeId star_child(NodeId n) const {
    return nodes_[static_cast<std::size_t>(n)].star;
  }
  [[nodiscard]] std::span<const std::uint64_t> eq_keys(NodeId n) const {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    return {eq_keys_.data() + node.eq_begin, node.eq_count};
  }
  [[nodiscard]] std::span<const NodeId> eq_targets(NodeId n) const {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    return {eq_targets_.data() + node.eq_begin, node.eq_count};
  }
  [[nodiscard]] std::span<const AttributeTest> other_tests(NodeId n) const {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    return {other_tests_.data() + node.other_begin, node.other_count};
  }
  [[nodiscard]] std::span<const NodeId> other_targets(NodeId n) const {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    return {other_targets_.data() + node.other_begin, node.other_count};
  }
  [[nodiscard]] std::span<const SubscriptionId> subscribers(NodeId n) const {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    return {subs_.data() + node.subs_begin, node.subs_count};
  }

  /// The equality child selected by a resolved key, or kNoNode. Branchless
  /// binary search on wide nodes, linear scan on narrow ones.
  [[nodiscard]] NodeId eq_child(NodeId n, std::uint64_t key) const {
    return eq_child(nodes_[static_cast<std::size_t>(n)], key);
  }

  /// Node ids ordered children-before-parents (inherited from the source
  /// FrozenPsg's bottom-up id contract). One forward pass over this order
  /// computes any bottom-up node property — the annotation builder uses it.
  [[nodiscard]] std::span<const NodeId> bottom_up_order() const { return bottom_up_; }

  /// The compile-time key of a value (strings must be in the intern pool,
  /// else kUnknownKey). Exposed for tests.
  [[nodiscard]] std::uint64_t key_of(const Value& v) const;

  [[nodiscard]] const SchemaPtr& schema() const { return schema_; }
  [[nodiscard]] const std::vector<std::size_t>& order() const { return order_; }
  [[nodiscard]] bool delayed_star() const { return delayed_star_; }
  [[nodiscard]] std::size_t subscription_count() const { return subscription_count_; }
  [[nodiscard]] std::size_t string_pool_size() const { return pool_.size(); }

  /// Approximate heap footprint of the compiled structure.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  static constexpr std::uint16_t kLeafFlag = 1;
  static constexpr std::uint16_t kCoversDomainFlag = 2;
  /// Below this fan-out a linear key scan beats the binary search.
  static constexpr std::uint32_t kLinearScanMax = 8;

  struct Node {  // 32 bytes
    NodeId star{kNoNode};
    std::uint16_t level{0};
    std::uint16_t flags{0};
    std::uint32_t eq_begin{0};
    std::uint32_t eq_count{0};
    std::uint32_t other_begin{0};
    std::uint32_t other_count{0};
    std::uint32_t subs_begin{0};
    std::uint32_t subs_count{0};
  };
  static_assert(sizeof(Node) == 32);

  [[nodiscard]] NodeId eq_child(const Node& node, std::uint64_t key) const;

  SchemaPtr schema_;
  std::vector<std::size_t> order_;
  std::vector<AttributeType> level_types_;  // attribute type per level
  bool delayed_star_{true};
  std::size_t subscription_count_{0};
  NodeId root_{kNoNode};

  std::vector<Node> nodes_;                  // DFS first-visit order, root first
  std::vector<std::uint64_t> eq_keys_;       // per-node slices, sorted by key
  std::vector<NodeId> eq_targets_;           // parallel to eq_keys_
  std::vector<AttributeTest> other_tests_;   // general branches
  std::vector<NodeId> other_targets_;        // parallel to other_tests_
  std::vector<SubscriptionId> subs_;         // leaf payload slices, sorted
  std::vector<NodeId> bottom_up_;            // children-before-parents order
  std::unordered_map<std::string, std::uint64_t> pool_;  // string interning
};

}  // namespace gryphon
