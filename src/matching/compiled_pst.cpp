#include "matching/compiled_pst.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <stdexcept>

#include "event/event.h"

namespace gryphon {
namespace {

// Order-preserving lowerings into u64. Every node's equality branch set is
// monotyped (Subscription construction validates operand types against the
// schema), so keys of different encodings are never compared.
std::uint64_t encode_int(std::int64_t v) {
  return static_cast<std::uint64_t>(v) ^ (std::uint64_t{1} << 63);
}

std::uint64_t encode_double(double v) {
  if (v == 0.0) v = 0.0;  // collapse -0.0 onto +0.0 (Value treats them equal)
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  // Flip all bits of negatives, just the sign bit of non-negatives: total
  // order matching double comparison for every non-NaN value.
  return (bits & (std::uint64_t{1} << 63)) != 0 ? ~bits : (bits | (std::uint64_t{1} << 63));
}

std::uint64_t encode_bool(bool v) { return v ? 1 : 0; }

}  // namespace

CompiledPst::CompiledPst(const FrozenPsg& graph)
    : schema_(graph.schema()),
      order_(graph.order()),
      delayed_star_(graph.options().delayed_star),
      subscription_count_(graph.subscription_count()) {
  level_types_.reserve(order_.size());
  for (const std::size_t attr : order_) level_types_.push_back(schema_->attribute(attr).type);

  if (subscription_count_ == 0 || graph.root() < 0) return;

  // Pass 1: intern every string equality operand. Ids are assigned in
  // lexicographic order so the later key transform is monotone and each
  // node's (already Value-sorted) equality slice stays sorted by key.
  std::vector<const std::string*> strings;
  for (FrozenPsg::NodeId n = 0; n < static_cast<FrozenPsg::NodeId>(graph.node_count()); ++n) {
    for (const auto& [value, child] : graph.eq_children(n)) {
      if (value.is_string()) strings.push_back(&value.as_string());
    }
  }
  std::sort(strings.begin(), strings.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  strings.erase(std::unique(strings.begin(), strings.end(),
                            [](const std::string* a, const std::string* b) { return *a == *b; }),
                strings.end());
  pool_.reserve(strings.size());
  for (std::size_t i = 0; i < strings.size(); ++i) pool_.emplace(*strings[i], i);

  // Pass 2: flatten in DFS first-visit (preorder) order. Shared DAG nodes
  // are converted once and reused. Branch/leaf slices are appended after a
  // node's children return, so each slice is contiguous in its arena.
  nodes_.reserve(graph.node_count());
  std::vector<NodeId> new_id(graph.node_count(), kNoNode);
  const std::function<NodeId(FrozenPsg::NodeId)> convert = [&](FrozenPsg::NodeId old) -> NodeId {
    if (new_id[static_cast<std::size_t>(old)] != kNoNode) {
      return new_id[static_cast<std::size_t>(old)];
    }
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.emplace_back();
    new_id[static_cast<std::size_t>(old)] = id;
    nodes_[static_cast<std::size_t>(id)].level = static_cast<std::uint16_t>(graph.level(old));

    if (graph.is_leaf(old)) {
      const auto subs = graph.subscribers(old);
      Node& node = nodes_[static_cast<std::size_t>(id)];
      node.flags = kLeafFlag;
      node.subs_begin = static_cast<std::uint32_t>(subs_.size());
      node.subs_count = static_cast<std::uint32_t>(subs.size());
      subs_.insert(subs_.end(), subs.begin(), subs.end());
      return id;
    }

    // Children first (their arena slices land before this node's).
    std::vector<std::pair<std::uint64_t, NodeId>> eq;
    eq.reserve(graph.eq_children(old).size());
    for (const auto& [value, child] : graph.eq_children(old)) {
      eq.emplace_back(key_of(value), convert(child));
    }
    // Monotone encodings keep the Value-sorted input key-sorted already;
    // sort anyway so the binary-search invariant never depends on it.
    std::sort(eq.begin(), eq.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<std::pair<const AttributeTest*, NodeId>> other;
    other.reserve(graph.other_children(old).size());
    for (const auto& [test, child] : graph.other_children(old)) {
      other.emplace_back(&test, convert(child));
    }
    const NodeId star =
        graph.star_child(old) >= 0 ? convert(graph.star_child(old)) : kNoNode;

    Node& node = nodes_[static_cast<std::size_t>(id)];
    node.star = star;
    if (graph.eq_children_cover_domain(old)) node.flags |= kCoversDomainFlag;
    node.eq_begin = static_cast<std::uint32_t>(eq_keys_.size());
    node.eq_count = static_cast<std::uint32_t>(eq.size());
    for (const auto& [key, child] : eq) {
      eq_keys_.push_back(key);
      eq_targets_.push_back(child);
    }
    node.other_begin = static_cast<std::uint32_t>(other_tests_.size());
    node.other_count = static_cast<std::uint32_t>(other.size());
    for (const auto& [test, child] : other) {
      other_tests_.push_back(*test);
      other_targets_.push_back(child);
    }
    return id;
  };
  root_ = convert(graph.root());

  // Every FrozenPsg node is reachable from its root, so ascending old ids
  // (children strictly smaller than parents) map onto a full bottom-up
  // order of the compiled ids.
  bottom_up_.reserve(nodes_.size());
  for (std::size_t old = 0; old < graph.node_count(); ++old) {
    if (new_id[old] != kNoNode) bottom_up_.push_back(new_id[old]);
  }
  if (bottom_up_.size() != nodes_.size()) {
    throw std::logic_error("CompiledPst: source graph has unreachable nodes");
  }
}

std::uint64_t CompiledPst::key_of(const Value& v) const {
  if (v.is_int()) return encode_int(v.as_int());
  if (v.is_double()) return encode_double(v.as_double());
  if (v.is_bool()) return encode_bool(v.as_bool());
  if (v.is_string()) {
    const auto it = pool_.find(v.as_string());
    return it != pool_.end() ? it->second : kUnknownKey;
  }
  return kUnknownKey;  // unset
}

void CompiledPst::resolve(const Event& event, std::vector<std::uint64_t>& keys) const {
  // gryphon-analyze: allow(alloc): the key buffer grows to the deepest
  // level order seen, then every later resolve reuses it.
  keys.resize(order_.size());
  for (std::size_t d = 0; d < order_.size(); ++d) {
    const Value& v = event.value(order_[d]);
    switch (level_types_[d]) {
      case AttributeType::kInt:
        keys[d] = encode_int(v.as_int());
        break;
      case AttributeType::kDouble:
        keys[d] = encode_double(v.as_double());
        break;
      case AttributeType::kBool:
        keys[d] = encode_bool(v.as_bool());
        break;
      case AttributeType::kString: {
        const auto it = pool_.find(v.as_string());
        keys[d] = it != pool_.end() ? it->second : kUnknownKey;
        break;
      }
    }
  }
}

CompiledPst::NodeId CompiledPst::eq_child(const Node& node, std::uint64_t key) const {
  const std::uint64_t* keys = eq_keys_.data() + node.eq_begin;
  const NodeId* targets = eq_targets_.data() + node.eq_begin;
  const std::uint32_t n = node.eq_count;
  if (n <= kLinearScanMax) {
    for (std::uint32_t i = 0; i < n; ++i) {
      if (keys[i] == key) return targets[i];
    }
    return kNoNode;
  }
  // Branchless binary search: `base` advances by conditional move only.
  std::size_t base = 0;
  std::size_t len = n;
  while (len > 1) {
    const std::size_t half = len / 2;
    base += (keys[base + half - 1] < key) ? half : 0;
    len -= half;
  }
  return keys[base] == key ? targets[base] : kNoNode;
}

void CompiledPst::match(const Event& event, std::vector<SubscriptionId>& out,
                        MatchScratch& scratch, MatchStats* stats) const {
  if (subscription_count_ == 0 || root_ == kNoNode) return;
  resolve(event, scratch.value_keys());
  const std::uint64_t* keys = scratch.value_keys().data();
  scratch.begin(nodes_.size());

  std::vector<std::int32_t>& stack = scratch.node_stack();
  stack.clear();
  stack.push_back(root_);
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    // Memoization: a shared DAG node reached along a second path contributes
    // nothing new (leaf subscriber sets are unioned).
    if (!scratch.visit(static_cast<std::size_t>(n))) continue;
    if (stats != nullptr) ++stats->nodes_visited;

    const Node& node = nodes_[static_cast<std::size_t>(n)];
    if ((node.flags & kLeafFlag) != 0) {
      out.insert(out.end(), subs_.begin() + node.subs_begin,
                 subs_.begin() + node.subs_begin + node.subs_count);
      continue;
    }
    if (delayed_star_ && node.star != kNoNode) stack.push_back(node.star);
    if (node.other_count != 0) {
      const Value& v = event.value(order_[node.level]);
      for (std::uint32_t i = 0; i < node.other_count; ++i) {
        if (stats != nullptr) ++stats->tests_evaluated;
        if (other_tests_[node.other_begin + i].accepts(v)) {
          stack.push_back(other_targets_[node.other_begin + i]);
        }
      }
    }
    if (node.eq_count != 0) {
      if (stats != nullptr) ++stats->tests_evaluated;
      const NodeId child = eq_child(node, keys[node.level]);
      if (child != kNoNode) stack.push_back(child);
    }
    if (!delayed_star_ && node.star != kNoNode) stack.push_back(node.star);
  }
}

std::size_t CompiledPst::memory_bytes() const {
  std::size_t total = sizeof(*this);
  total += nodes_.capacity() * sizeof(Node);
  total += eq_keys_.capacity() * sizeof(std::uint64_t);
  total += eq_targets_.capacity() * sizeof(NodeId);
  total += other_tests_.capacity() * sizeof(AttributeTest);
  total += other_targets_.capacity() * sizeof(NodeId);
  total += subs_.capacity() * sizeof(SubscriptionId);
  total += bottom_up_.capacity() * sizeof(NodeId);
  for (const auto& [str, id] : pool_) {
    total += sizeof(std::pair<const std::string, std::uint64_t>) + str.capacity();
  }
  return total;
}

}  // namespace gryphon
