// ShardRouter: deterministic factoring-key -> shard placement for the
// sharded data plane.
//
// The broker partitions each factored information space into independently
// matchable shards: every factoring bucket is owned by exactly one shard,
// chosen here by hashing the bucket's factoring key. Placement is a pure
// function of (key, shard_count), so the control plane (SnapshotBuilder,
// distributing buckets at freeze time) and the data plane (batch dispatch,
// grouping events by the shard that will serve them) always agree without
// sharing any mutable state.
//
// Unfactored spaces have a single bucket and therefore a single effective
// shard; shard_of_* returns 0 for them by construction (shard_count == 1).
//
// This is a fully data-plane translation unit (gryphon-analyze planes
// rule, tools/analyze): it must never reference mutable-matcher or
// control-plane state.
#pragma once

#include <cstddef>

#include "common/hash.h"
#include "matching/pst_matcher.h"

namespace gryphon {

class ShardRouter {
 public:
  /// `shard_count` is clamped to at least 1 (0 would make every modulo UB).
  explicit ShardRouter(std::size_t shard_count)
      : shard_count_(shard_count == 0 ? 1 : shard_count) {}

  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }

  /// The shard owning a factoring bucket. FactoringIndex::KeyHash (FNV over
  /// a handful of small-domain values) has poor low-bit avalanche, and the
  /// modulo below only looks at low bits — taken raw it left entire shards
  /// empty at 16 shards (BENCH_mt_throughput per_shard_events zeros). The
  /// splitmix64 finalizer spreads every input bit across the word first.
  /// Still a pure function of (key, shard_count), so SnapshotBuilder and
  /// dispatch keep agreeing without coordination.
  [[nodiscard]] std::size_t shard_of_key(const FactoringIndex::Key& key) const {
    return splitmix64(FactoringIndex::KeyHash{}(key)) % shard_count_;
  }

 private:
  std::size_t shard_count_;
};

}  // namespace gryphon
