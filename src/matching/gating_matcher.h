// The gating-test predicate matcher of Hanson et al. (SIGMOD 1990),
// discussed in the paper's related-work section [9].
//
// At subscribe time, one test of each subscription is chosen as the gating
// test; the rest are residual. At match time, the event's value for each
// attribute selects the subscriptions whose gating test it satisfies, and
// their residual tests are then evaluated in full.
//
// Gating test selection: the first equality test if any (indexed by a hash
// on (attribute, value) — O(1) candidate lookup), otherwise the first non-*
// test (kept in a per-attribute scan list), otherwise the subscription is a
// match-all and lands on an always-candidate list.
#pragma once

#include <unordered_map>
#include <vector>

#include "matching/matcher.h"

namespace gryphon {

class GatingMatcher : public Matcher {
 public:
  explicit GatingMatcher(SchemaPtr schema);

  void add(SubscriptionId id, const Subscription& subscription) override;
  bool remove(SubscriptionId id) override;
  [[nodiscard]] MatchResult match(const Event& event) const override;
  /// Allocation-free variant: appends matches to `out`.
  void match_into(const Event& event, std::vector<SubscriptionId>& out,
                  MatchStats* stats = nullptr) const;
  [[nodiscard]] std::size_t subscription_count() const override { return registry_.size(); }

 private:
  struct EqKey {
    std::size_t attribute;
    Value value;
    friend bool operator==(const EqKey& a, const EqKey& b) {
      return a.attribute == b.attribute && a.value == b.value;
    }
  };
  struct EqKeyHash {
    std::size_t operator()(const EqKey& k) const noexcept {
      return k.value.hash() * 1099511628211ULL + k.attribute;
    }
  };
  struct ScanEntry {
    SubscriptionId id;
    AttributeTest gate;
  };

  static void erase_id(std::vector<SubscriptionId>& v, SubscriptionId id);

  SchemaPtr schema_;
  std::unordered_map<SubscriptionId, Subscription> registry_;
  std::unordered_map<EqKey, std::vector<SubscriptionId>, EqKeyHash> eq_gates_;
  std::vector<std::vector<ScanEntry>> scan_gates_;  // one list per attribute
  std::vector<SubscriptionId> match_all_;
};

}  // namespace gryphon
