// Attribute-ordering heuristic for the parallel search tree.
//
// "performance seems to be better if the attributes near the root are chosen
// to have the fewest number of subscriptions labeled with a *" (Section 2).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "event/subscription.h"

namespace gryphon {

/// Returns a permutation of attribute indices, fewest-don't-care first.
/// Ties break toward the original schema order. An empty sample returns the
/// identity order.
std::vector<std::size_t> order_by_fewest_dont_cares(const SchemaPtr& schema,
                                                    std::span<const Subscription> sample);

/// The identity order 0..n-1 for a schema.
std::vector<std::size_t> identity_order(const SchemaPtr& schema);

}  // namespace gryphon
