#include "matching/pst.h"

#include <algorithm>
#include <stdexcept>

namespace gryphon {

Pst::Pst(SchemaPtr schema, std::vector<std::size_t> order, Options options)
    : schema_(std::move(schema)), order_(std::move(order)), options_(options) {
  if (!schema_) throw std::invalid_argument("Pst: null schema");
  std::vector<bool> seen(schema_->attribute_count(), false);
  for (const std::size_t attr : order_) {
    if (attr >= schema_->attribute_count()) throw std::invalid_argument("Pst: bad order index");
    if (seen[attr]) throw std::invalid_argument("Pst: repeated attribute in order");
    seen[attr] = true;
  }
  root_ = new_node(kNoNode, 0);
}

Pst::NodeId Pst::new_node(NodeId parent, int level) {
  NodeId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    nodes_[id] = Node{};
  } else {
    id = static_cast<NodeId>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[id].parent = parent;
  nodes_[id].level = level;
  ++live_nodes_;
  return id;
}

void Pst::free_node(NodeId n) {
  nodes_[n] = Node{};
  nodes_[n].parent = kNoNode;
  free_list_.push_back(n);
  --live_nodes_;
}

Pst::NodeId Pst::find_eq_child(NodeId n, const Value& v) const {
  const auto& eq = nodes_[n].eq;
  const auto it = std::lower_bound(eq.begin(), eq.end(), v,
                                   [](const auto& entry, const Value& key) {
                                     return entry.first < key;
                                   });
  if (it != eq.end() && it->first == v) return it->second;
  return kNoNode;
}

bool Pst::eq_children_cover_domain(NodeId n) const {
  const Node& node = nodes_[n];
  if (!node.other.empty()) return false;
  if (is_leaf(n)) return false;
  const Attribute& attr = schema_->attribute(order_[static_cast<std::size_t>(node.level)]);
  if (!attr.has_finite_domain()) return false;
  if (node.eq.size() != attr.domain.size()) return false;
  for (const Value& v : attr.domain) {
    if (find_eq_child(n, v) == kNoNode) return false;
  }
  return true;
}

Pst::Mutation Pst::add(SubscriptionId id, const Subscription& subscription) {
  if (subscription.schema()->attribute_count() != schema_->attribute_count()) {
    throw std::invalid_argument("Pst::add: subscription schema arity mismatch");
  }
  NodeId n = root_;
  for (std::size_t d = 0; d < order_.size(); ++d) {
    const AttributeTest& test = subscription.test(order_[d]);
    const int child_level = static_cast<int>(d) + 1;
    Node& node = nodes_[n];
    NodeId child = kNoNode;
    if (test.is_dont_care()) {
      if (node.star == kNoNode) {
        child = new_node(n, child_level);
        nodes_[n].star = child;  // (new_node may reallocate nodes_)
      } else {
        child = node.star;
      }
    } else if (test.kind == TestKind::kEquals) {
      child = find_eq_child(n, test.operand);
      if (child == kNoNode) {
        child = new_node(n, child_level);
        auto& eq = nodes_[n].eq;
        const auto it = std::lower_bound(eq.begin(), eq.end(), test.operand,
                                         [](const auto& entry, const Value& key) {
                                           return entry.first < key;
                                         });
        eq.insert(it, {test.operand, child});
      }
    } else {
      for (const auto& [branch_test, branch_child] : node.other) {
        if (branch_test == test) {
          child = branch_child;
          break;
        }
      }
      if (child == kNoNode) {
        child = new_node(n, child_level);
        nodes_[n].other.emplace_back(test, child);
      }
    }
    n = child;
  }
  auto& subs = nodes_[n].subs;
  if (std::find(subs.begin(), subs.end(), id) != subs.end()) {
    throw std::invalid_argument("Pst::add: duplicate subscription id at leaf");
  }
  subs.push_back(id);
  ++subscription_count_;
  ++epoch_;
  return Mutation{n, n, {}};
}

std::optional<Pst::Mutation> Pst::remove(SubscriptionId id, const Subscription& subscription) {
  NodeId n = root_;
  for (std::size_t d = 0; d < order_.size(); ++d) {
    const AttributeTest& test = subscription.test(order_[d]);
    const Node& node = nodes_[n];
    NodeId child = kNoNode;
    if (test.is_dont_care()) {
      child = node.star;
    } else if (test.kind == TestKind::kEquals) {
      child = find_eq_child(n, test.operand);
    } else {
      for (const auto& [branch_test, branch_child] : node.other) {
        if (branch_test == test) {
          child = branch_child;
          break;
        }
      }
    }
    if (child == kNoNode) return std::nullopt;
    n = child;
  }
  auto& subs = nodes_[n].subs;
  const auto it = std::find(subs.begin(), subs.end(), id);
  if (it == subs.end()) return std::nullopt;
  subs.erase(it);
  --subscription_count_;
  ++epoch_;

  Mutation result;
  result.leaf = n;
  // Prune the now-useless tail of the path.
  while (n != root_ && nodes_[n].childless() && nodes_[n].subs.empty()) {
    const NodeId parent_id = nodes_[n].parent;
    detach_child(parent_id, n);
    free_node(n);
    result.freed.push_back(n);
    if (result.leaf == n) result.leaf = kNoNode;
    n = parent_id;
  }
  result.start = n;
  return result;
}

void Pst::detach_child(NodeId parent_id, NodeId child_id) {
  Node& parent = nodes_[parent_id];
  if (parent.star == child_id) {
    parent.star = kNoNode;
    return;
  }
  for (auto it = parent.eq.begin(); it != parent.eq.end(); ++it) {
    if (it->second == child_id) {
      parent.eq.erase(it);
      return;
    }
  }
  for (auto it = parent.other.begin(); it != parent.other.end(); ++it) {
    if (it->second == child_id) {
      parent.other.erase(it);
      return;
    }
  }
  throw std::logic_error("Pst::detach_child: child not found under parent");
}

void Pst::match(const Event& event, std::vector<SubscriptionId>& out, MatchStats* stats) const {
  if (subscription_count_ == 0) return;
  std::vector<NodeId> stack;
  stack.reserve(16);
  stack.push_back(root_);
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    // Trivial-test elimination: star-only chains perform no test.
    if (options_.trivial_test_elimination) {
      while (!is_leaf(n) && nodes_[n].star_only()) n = nodes_[n].star;
    }
    if (stats != nullptr) ++stats->nodes_visited;
    const Node& node = nodes_[n];
    if (is_leaf(n)) {
      out.insert(out.end(), node.subs.begin(), node.subs.end());
      continue;
    }
    const Value& v = event.value(order_[static_cast<std::size_t>(node.level)]);
    // Push the star branch first so non-star branches pop (run) before it —
    // the "delayed branching" exploration order of Section 2.1.
    if (options_.delayed_star && node.star != kNoNode) stack.push_back(node.star);
    for (const auto& [test, child] : node.other) {
      if (stats != nullptr) ++stats->tests_evaluated;
      if (test.accepts(v)) stack.push_back(child);
    }
    if (!node.eq.empty()) {
      if (stats != nullptr) ++stats->tests_evaluated;
      const NodeId child = find_eq_child(n, v);
      if (child != kNoNode) stack.push_back(child);
    }
    if (!options_.delayed_star && node.star != kNoNode) stack.push_back(node.star);
  }
}

void Pst::check_invariants() const {
  std::vector<NodeId> stack{root_};
  std::size_t reached = 0;
  std::size_t subs_found = 0;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    ++reached;
    const Node& node = nodes_[n];
    if (n != root_ && node.parent == kNoNode) {
      throw std::logic_error("Pst invariant: non-root node without parent");
    }
    if (is_leaf(n)) {
      if (!node.eq.empty() || !node.other.empty() || node.star != kNoNode) {
        throw std::logic_error("Pst invariant: leaf with children");
      }
      subs_found += node.subs.size();
      continue;
    }
    if (!node.subs.empty()) throw std::logic_error("Pst invariant: interior node with subs");
    if (n != root_ && node.childless()) {
      throw std::logic_error("Pst invariant: childless interior node not pruned");
    }
    if (!std::is_sorted(node.eq.begin(), node.eq.end(),
                        [](const auto& a, const auto& b) { return a.first < b.first; })) {
      throw std::logic_error("Pst invariant: equality branches not sorted");
    }
    const auto check_child = [&](NodeId child) {
      if (nodes_[child].parent != n) {
        throw std::logic_error("Pst invariant: child parent pointer wrong");
      }
      if (nodes_[child].level != node.level + 1) {
        throw std::logic_error("Pst invariant: child level wrong");
      }
      stack.push_back(child);
    };
    for (const auto& [value, child] : node.eq) {
      (void)value;
      check_child(child);
    }
    for (const auto& [test, child] : node.other) {
      if (test.is_dont_care()) {
        throw std::logic_error("Pst invariant: don't-care test on non-star branch");
      }
      check_child(child);
    }
    if (node.star != kNoNode) check_child(node.star);
  }
  if (reached != live_nodes_) {
    throw std::logic_error("Pst invariant: live node count mismatch");
  }
  if (reached + free_list_.size() != nodes_.size()) {
    throw std::logic_error("Pst invariant: arena accounting mismatch");
  }
  if (subs_found != subscription_count_) {
    throw std::logic_error("Pst invariant: subscription count mismatch");
  }
}

}  // namespace gryphon
