#include "matching/attribute_order.h"

#include <algorithm>
#include <numeric>

namespace gryphon {

std::vector<std::size_t> identity_order(const SchemaPtr& schema) {
  std::vector<std::size_t> order(schema->attribute_count());
  std::iota(order.begin(), order.end(), std::size_t{0});
  return order;
}

std::vector<std::size_t> order_by_fewest_dont_cares(const SchemaPtr& schema,
                                                    std::span<const Subscription> sample) {
  std::vector<std::size_t> dont_cares(schema->attribute_count(), 0);
  for (const Subscription& sub : sample) {
    for (std::size_t i = 0; i < schema->attribute_count(); ++i) {
      if (sub.test(i).is_dont_care()) ++dont_cares[i];
    }
  }
  std::vector<std::size_t> order = identity_order(schema);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return dont_cares[a] < dont_cares[b];
  });
  return order;
}

}  // namespace gryphon
