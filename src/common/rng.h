// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (workload generators, the network
// simulator, property tests) draw from this engine so that every experiment
// is reproducible from a single seed. The engine is xoshiro256**, seeded via
// splitmix64 as recommended by its authors.
#pragma once

#include <cstdint>

namespace gryphon {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** engine. Satisfies the essentials of UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept;

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Fork an independent stream (useful to decorrelate generator components).
  Rng split() noexcept;

 private:
  std::uint64_t s_[4]{};
};

}  // namespace gryphon
