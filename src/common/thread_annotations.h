// Clang thread-safety-analysis capability macros.
//
// These turn the concurrency contract documented in docs/concurrency.md into
// compile-time facts: members carry GUARDED_BY(mutex), functions carry
// REQUIRES / ACQUIRE / RELEASE, and a Clang build with
// -Wthread-safety -Werror=thread-safety (enabled automatically for the src/
// libraries, see src/CMakeLists.txt) rejects any access that violates the
// locking discipline. Under GCC (or any compiler without the capability
// attributes) every macro expands to nothing, so the annotations cost
// nothing and change nothing.
//
// libstdc++'s std::mutex carries no capability attributes, so the analysis
// cannot see through it; annotated code must hold locks through the wrapper
// types in common/mutex.h (gryphon::Mutex / MutexLock / MutexUniqueLock).
//
// The negative-compilation probe (tests/negative/thread_safety_probe.cpp,
// driven from tests/CMakeLists.txt) asserts that an unguarded write to a
// GUARDED_BY member fails to compile under Clang, so these macros can never
// silently rot into no-ops.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define GRYPHON_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef GRYPHON_THREAD_ANNOTATION
#define GRYPHON_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

/// Marks a type as a capability (a lock). `x` names the capability kind in
/// diagnostics, e.g. CAPABILITY("mutex").
#define CAPABILITY(x) GRYPHON_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (std::lock_guard-shaped classes).
#define SCOPED_CAPABILITY GRYPHON_THREAD_ANNOTATION(scoped_lockable)

/// The member may only be accessed while holding the given capability.
#define GUARDED_BY(x) GRYPHON_THREAD_ANNOTATION(guarded_by(x))

/// The data *pointed to* by the member may only be accessed while holding
/// the given capability (the pointer itself is unguarded).
#define PT_GUARDED_BY(x) GRYPHON_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations: this capability must be acquired before /
/// after the listed ones. Detects ordering cycles at compile time.
#define ACQUIRED_BEFORE(...) GRYPHON_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) GRYPHON_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The function may only be called while holding the listed capabilities
/// exclusively (REQUIRES) or at least shared (REQUIRES_SHARED).
#define REQUIRES(...) GRYPHON_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) GRYPHON_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the listed capabilities and holds /
/// releases them on return.
#define ACQUIRE(...) GRYPHON_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) GRYPHON_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) GRYPHON_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) GRYPHON_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The function attempts to acquire the capability; the first argument is
/// the return value indicating success.
#define TRY_ACQUIRE(...) GRYPHON_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The function may not be called while holding the listed capabilities
/// (deadlock prevention on re-entry).
#define EXCLUDES(...) GRYPHON_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares (without runtime effect) that the calling thread holds the
/// capability — for invariants the analysis cannot see, e.g. external
/// serialization by an owning object's mutex.
#define ASSERT_CAPABILITY(x) GRYPHON_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the given capability; lets accessor
/// functions participate in capability expressions.
#define RETURN_CAPABILITY(x) GRYPHON_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function out of the analysis entirely. Use only with a comment
/// explaining why the discipline holds anyway; every use counts against the
/// NOLINT budget in docs/static-analysis.md.
#define NO_THREAD_SAFETY_ANALYSIS GRYPHON_THREAD_ANNOTATION(no_thread_safety_analysis)
