// Shared integer hash finalizers.
//
// splitmix64 (Steele, Lea & Flood — the SplitMix64 output permutation) is a
// full-avalanche bijection over 64-bit words: every input bit flips each
// output bit with probability ~1/2. We use it wherever a raw hash or a
// sequential id feeds a small modulo — FNV composites and dense ids have
// weak low bits, and `x % n` only looks at those.
#pragma once

#include <cstdint>

namespace gryphon {

[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace gryphon
