#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <string>

#include "common/mutex.h"

namespace gryphon {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (level < log_level()) return;
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace gryphon
