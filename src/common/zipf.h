// Zipf-distributed sampling over a finite domain {0, 1, ..., n-1}.
//
// The paper (Section 4.1) generates both event attribute values and non-*
// subscription values from a zipf distribution; "locality of interest" is
// modeled by permuting the rank order per region so different regions favour
// different values.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace gryphon {

/// Samples ranks 0..n-1 with P(rank k) proportional to 1/(k+1)^s.
/// An optional permutation maps ranks to domain values, so distinct regions
/// can share one Zipf object family but prefer different concrete values.
class Zipf {
 public:
  /// Builds the sampler. `n` must be >= 1; `s` is the skew exponent
  /// (s = 0 degenerates to uniform; the classic zipf has s = 1).
  Zipf(std::size_t n, double s = 1.0);

  /// Number of values in the domain.
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

  /// Draws a value in [0, size()). Most-probable value is 0 (rank order).
  std::uint32_t sample(Rng& rng) const;

  /// Probability mass of a given rank.
  [[nodiscard]] double pmf(std::uint32_t rank) const;

 private:
  std::vector<double> cdf_;  // cumulative probabilities, cdf_.back() == 1.0
};

/// A rank->value permutation for modeling regional locality of interest.
/// Region r rotates the value order by an offset derived from r, so the hot
/// values of one region are the cold values of another.
std::vector<std::uint32_t> locality_permutation(std::size_t n, std::uint32_t region);

}  // namespace gryphon
