// Capability-annotated mutex wrappers for Clang's thread-safety analysis.
//
// libstdc++ ships std::mutex without capability attributes, so code locking
// a raw std::mutex is invisible to -Wthread-safety. These zero-overhead
// wrappers carry the attributes; all shared-state owners in this codebase
// (Broker, BrokerCore, SnapshotSlot, Client, the transports) hold their
// locks through them so the analysis can prove the discipline documented in
// docs/concurrency.md and docs/static-analysis.md.
//
//   Mutex mu;                          int value GUARDED_BY(mu);
//   { MutexLock lock(mu); value = 1; }            // ok
//   value = 2;                                    // compile error on Clang
//
// Condition-variable waits use MutexUniqueLock::native() with an explicit
// predicate loop (`while (!pred()) cv.wait(lock.native());`) instead of the
// predicate-lambda overloads: the analysis does not propagate the held
// capability set into lambda bodies, while the explicit loop keeps every
// guarded access inside the annotated function scope.
#pragma once

#include <mutex>

#include "common/thread_annotations.h"

namespace gryphon {

/// std::mutex with the capability attribute. Same size, same cost.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped mutex, for std::unique_lock / condition-variable plumbing.
  /// Only MutexUniqueLock should need this.
  [[nodiscard]] std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// std::lock_guard over a Mutex (scoped, non-movable, always locked).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) ACQUIRE(m) : m_(&m) { m_->lock(); }
  ~MutexLock() RELEASE() { m_->unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* m_;
};

/// std::unique_lock over a Mutex: relockable (sender loops that drop the
/// lock around I/O) and exposing the native lock for condition variables.
class SCOPED_CAPABILITY MutexUniqueLock {
 public:
  explicit MutexUniqueLock(Mutex& m) ACQUIRE(m) : lock_(m.native()) {}
  ~MutexUniqueLock() RELEASE() {}
  MutexUniqueLock(const MutexUniqueLock&) = delete;
  MutexUniqueLock& operator=(const MutexUniqueLock&) = delete;

  void lock() ACQUIRE() { lock_.lock(); }
  void unlock() RELEASE() { lock_.unlock(); }

  /// For condition_variable::wait; the capability is considered held across
  /// the wait, which matches the lock state whenever guarded members are
  /// actually read (the predicate runs locked).
  [[nodiscard]] std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace gryphon
