#include "common/rng.h"

#include <cmath>

namespace gryphon {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded sampling, debiased by rejection.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = -n % n;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept { return uniform() < p; }

double Rng::exponential(double rate) noexcept {
  // Inverse transform; 1 - uniform() is in (0, 1] so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

Rng Rng::split() noexcept {
  Rng child;
  for (auto& word : child.s_) word = (*this)();
  return child;
}

}  // namespace gryphon
