// Strongly-typed identifiers used throughout the library.
//
// Each id type is a distinct struct wrapping an integer so that a BrokerId
// cannot be accidentally passed where a ClientId is expected. Ids are cheap
// value types, hashable, totally ordered, and printable.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace gryphon {

/// CRTP-free tagged integer id. `Tag` only serves to make distinct types.
template <typename Tag, typename Rep = std::int32_t>
struct TypedId {
  using rep_type = Rep;

  Rep value{-1};

  constexpr TypedId() = default;
  constexpr explicit TypedId(Rep v) : value(v) {}

  /// True when the id has been assigned (ids are allocated from 0 upward).
  [[nodiscard]] constexpr bool valid() const { return value >= 0; }

  friend constexpr bool operator==(TypedId a, TypedId b) { return a.value == b.value; }
  friend constexpr bool operator!=(TypedId a, TypedId b) { return a.value != b.value; }
  friend constexpr bool operator<(TypedId a, TypedId b) { return a.value < b.value; }
  friend constexpr bool operator<=(TypedId a, TypedId b) { return a.value <= b.value; }
  friend constexpr bool operator>(TypedId a, TypedId b) { return a.value > b.value; }
  friend constexpr bool operator>=(TypedId a, TypedId b) { return a.value >= b.value; }

  friend std::ostream& operator<<(std::ostream& os, TypedId id) { return os << id.value; }
};

/// Identifies a broker node within a broker network.
using BrokerId = TypedId<struct BrokerIdTag>;
/// Identifies a client (publisher or subscriber) attached to some broker.
using ClientId = TypedId<struct ClientIdTag>;
/// Identifies a subscription registered in the network.
using SubscriptionId = TypedId<struct SubscriptionIdTag, std::int64_t>;
/// A broker-local outgoing link index (position in that broker's trit vectors).
using LinkIndex = TypedId<struct LinkIndexTag>;
/// Identifies an information space (event schema + its subscriptions). Spaces
/// are small dense integers; the wire encodes them as uint16.
using SpaceId = TypedId<struct SpaceIdTag>;

}  // namespace gryphon

namespace std {
template <typename Tag, typename Rep>
struct hash<gryphon::TypedId<Tag, Rep>> {
  size_t operator()(gryphon::TypedId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value);
  }
};
}  // namespace std
