#include "common/zipf.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace gryphon {

Zipf::Zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("Zipf: domain size must be >= 1");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::uint32_t Zipf::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint32_t>(it - cdf_.begin());
}

double Zipf::pmf(std::uint32_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

std::vector<std::uint32_t> locality_permutation(std::size_t n, std::uint32_t region) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  if (n == 0) return perm;
  const std::uint32_t offset =
      static_cast<std::uint32_t>((static_cast<std::uint64_t>(region) * n) / 3 % n);
  std::rotate(perm.begin(), perm.begin() + offset, perm.end());
  return perm;
}

}  // namespace gryphon
