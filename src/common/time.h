// Virtual time.
//
// The simulator measures time in "ticks" of a virtual clock, each tick
// corresponding to about 12 microseconds (paper Section 4.1). Link delays in
// the topology are expressed in ticks so the topology and simulator agree.
#pragma once

#include <cstdint>

namespace gryphon {

using Ticks = std::int64_t;

/// Microseconds represented by one tick (paper: "about 12 microseconds").
inline constexpr double kMicrosPerTick = 12.0;

constexpr Ticks ticks_from_micros(double micros) noexcept {
  return static_cast<Ticks>(micros / kMicrosPerTick + 0.5);
}

constexpr Ticks ticks_from_millis(double millis) noexcept {
  return ticks_from_micros(millis * 1000.0);
}

constexpr double ticks_to_micros(Ticks t) noexcept {
  return static_cast<double>(t) * kMicrosPerTick;
}

constexpr double ticks_to_millis(Ticks t) noexcept { return ticks_to_micros(t) / 1000.0; }

constexpr double ticks_to_seconds(Ticks t) noexcept { return ticks_to_micros(t) / 1e6; }

constexpr Ticks ticks_from_seconds(double seconds) noexcept {
  return ticks_from_micros(seconds * 1e6);
}

}  // namespace gryphon
