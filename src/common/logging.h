// Minimal leveled logger.
//
// The broker prototype and the simulator both log through this sink; tests
// raise the threshold to keep output quiet. Thread-safe: a single mutex
// serializes writes (logging is not on the hot path — matching is).
#pragma once

#include <sstream>
#include <string_view>

namespace gryphon {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Writes one formatted line ("[level] component: message") to stderr.
void log_line(LogLevel level, std::string_view component, std::string_view message);

namespace detail {
/// Stream-style helper: collects the message then emits it on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace detail

#define GRYPHON_LOG(level, component)                      \
  if (::gryphon::log_level() > (level)) {                  \
  } else                                                   \
    ::gryphon::detail::LogStream((level), (component))

#define GRYPHON_DEBUG(component) GRYPHON_LOG(::gryphon::LogLevel::kDebug, component)
#define GRYPHON_INFO(component) GRYPHON_LOG(::gryphon::LogLevel::kInfo, component)
#define GRYPHON_WARN(component) GRYPHON_LOG(::gryphon::LogLevel::kWarn, component)
#define GRYPHON_ERROR(component) GRYPHON_LOG(::gryphon::LogLevel::kError, component)

}  // namespace gryphon
