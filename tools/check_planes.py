#!/usr/bin/env python3
"""Static plane-separation checker for the broker core.

The concurrency design (docs/static-analysis.md, docs/concurrency.md) splits
the broker into a serialized *control plane* (mutable Pst trees, the
subscription registry, snapshot publication) and a lock-free *data plane*
(event dispatch over pinned immutable CoreSnapshots). Clang's thread-safety
analysis proves the locking side of that contract; this checker proves the
*reachability* side, which capability analysis cannot see:

Rule 1 — data-plane purity. Data-plane code must never reference a
    mutable-Pst write API or a control-plane member. Enforced over the
    fully data-plane translation units (the compiled kernel, its
    annotations, the shard router, the covering sidecar match_all
    enumerates parked subscriptions from, and the batch context) and over the
    brace-extracted bodies of the mixed-TU data-plane entry points
    (BrokerCore::dispatch / dispatch_pinned / match_all,
    PstMatcher::match / match_into).

Rule 2 — snapshot provenance. No code outside src/broker/core_snapshot.*
    may construct a CoreSnapshot. Every snapshot the data plane can pin
    must therefore have gone through SnapshotBuilder's compile/reuse
    pipeline.

Comments and string literals are stripped before matching, so prose about
the contract does not trip the checker. Exit status 0 when clean, 1 with
file:line diagnostics otherwise.

Usage: check_planes.py [--root DIR]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Tokens the data plane must never reference: the mutable-matcher write
# API, the control-plane registry state, and the snapshot write side.
FORBIDDEN_IN_DATA_PLANE = [
    "add_with_result",
    "remove_with_result",
    "add_subscription",
    "remove_subscription",
    "publish_snapshot",
    "registry_",
    "space_counts_",
    "builder_",
    "snapshot_.store",
]

# Translation units that are data-plane in their entirety.
DATA_PLANE_FILES = [
    "src/matching/compiled_pst.h",
    "src/matching/compiled_pst.cpp",
    "src/matching/shard_router.h",
    "src/matching/covering_snapshot.h",
    "src/routing/compiled_annotation.h",
    "src/routing/compiled_annotation.cpp",
    "src/broker/dispatch_batch.h",
]

# (file, qualified function name) pairs whose *bodies* are data-plane even
# though the surrounding TU also holds control-plane code.
DATA_PLANE_FUNCTIONS = [
    ("src/broker/broker_core.cpp", "BrokerCore::dispatch"),
    # The "dispatch" pattern matches only whole names, so the per-event
    # kernel behind the batch entry point needs its own entry.
    ("src/broker/broker_core.cpp", "BrokerCore::dispatch_pinned"),
    ("src/broker/broker_core.cpp", "BrokerCore::match_all"),
    ("src/matching/pst_matcher.cpp", "PstMatcher::match"),
    ("src/matching/pst_matcher.cpp", "PstMatcher::match_into"),
]

# Construction of the snapshot root type, allowed only here.
SNAPSHOT_HOME = ("src/broker/core_snapshot.h", "src/broker/core_snapshot.cpp")
CONSTRUCT_RE = re.compile(
    r"(make_shared\s*<\s*(?:const\s+)?CoreSnapshot\s*>"  # make_shared<CoreSnapshot>
    r"|new\s+CoreSnapshot\b"                             # new CoreSnapshot
    r"|\bCoreSnapshot\s*[({])"                           # CoreSnapshot{...} / (...)
)

SCAN_DIRS = ("src/broker", "src/matching", "src/routing")


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure
    (newlines survive so reported line numbers match the source)."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
            out.append(" ")
        else:
            out.append(c)
            i += 1
    return "".join(out)


def extract_function_bodies(code: str, qualified_name: str) -> list[tuple[int, str]]:
    """All brace-delimited bodies of `qualified_name` definitions (covers
    overloads). Returns (start_line, body_text) pairs; body line structure
    is preserved. `code` must already be comment/string-stripped."""
    bodies: list[tuple[int, str]] = []
    pattern = re.compile(re.escape(qualified_name) + r"\s*\(")
    for m in pattern.finditer(code):
        # Walk to the end of the parameter list, then find the opening
        # brace of the definition (skip declarations ending in ';').
        depth, i = 0, m.end() - 1
        while i < len(code):
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        j = i + 1
        while j < len(code) and code[j] not in "{;":
            j += 1
        if j >= len(code) or code[j] == ";":
            continue  # declaration, not a definition
        start = j
        depth = 0
        while j < len(code):
            if code[j] == "{":
                depth += 1
            elif code[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        body = code[start : j + 1]
        bodies.append((code.count("\n", 0, start) + 1, body))
    return bodies


def find_tokens(body: str, tokens: list[str], line_offset: int) -> list[tuple[int, str]]:
    hits = []
    for lineno, line in enumerate(body.splitlines(), start=line_offset):
        for token in tokens:
            if token in line:
                hits.append((lineno, token))
    return hits


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root to scan")
    args = parser.parse_args()
    root = pathlib.Path(args.root)

    errors: list[str] = []

    # Rule 1a: fully data-plane translation units.
    for rel in DATA_PLANE_FILES:
        path = root / rel
        if not path.is_file():
            errors.append(f"{rel}: data-plane file missing (stale checker config?)")
            continue
        code = strip_comments_and_strings(path.read_text())
        for lineno, token in find_tokens(code, FORBIDDEN_IN_DATA_PLANE, 1):
            errors.append(
                f"{rel}:{lineno}: data-plane TU references control-plane "
                f"token '{token}'"
            )

    # Rule 1b: data-plane function bodies inside mixed TUs.
    for rel, fn in DATA_PLANE_FUNCTIONS:
        path = root / rel
        if not path.is_file():
            errors.append(f"{rel}: file with data-plane function {fn} missing")
            continue
        code = strip_comments_and_strings(path.read_text())
        bodies = extract_function_bodies(code, fn)
        if not bodies:
            errors.append(f"{rel}: no definition of data-plane function {fn} found")
        for start_line, body in bodies:
            for lineno, token in find_tokens(body, FORBIDDEN_IN_DATA_PLANE, start_line):
                errors.append(
                    f"{rel}:{lineno}: data-plane function {fn} references "
                    f"control-plane token '{token}'"
                )

    # Rule 2: CoreSnapshot construction stays inside core_snapshot.*.
    for scan_dir in SCAN_DIRS:
        base = root / scan_dir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cpp"):
                continue
            rel = path.relative_to(root).as_posix()
            if rel in SNAPSHOT_HOME:
                continue
            code = strip_comments_and_strings(path.read_text())
            for lineno, line in enumerate(code.splitlines(), start=1):
                if CONSTRUCT_RE.search(line):
                    errors.append(
                        f"{rel}:{lineno}: CoreSnapshot constructed outside "
                        f"core_snapshot.* (go through SnapshotBuilder)"
                    )

    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"check_planes: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("check_planes: plane separation holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
