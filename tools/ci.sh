#!/usr/bin/env bash
# Local CI: release build + full test suite, sanitizer passes (ASan, UBSan,
# TSan — each pure, in its own build directory), a perf smoke over the
# matching kernels, and the static-analysis lint leg (plane-separation
# checker + clang-tidy). See docs/static-analysis.md for the full matrix.
#
#   tools/ci.sh             # release + asan + ubsan + tsan + chaos + perf + lint
#   tools/ci.sh release     # just the release leg
#   tools/ci.sh tsan        # just the ThreadSanitizer leg
#   tools/ci.sh asan ubsan  # any subset, in order
#   tools/ci.sh chaos       # fault-injection sweep over extra seeds
#
# The TSan leg runs the tests labeled `concurrency` (the snapshot /
# worker-pipeline races are what TSan is here to catch); the ASan, UBSan
# and release legs run everything. The perf leg reuses the release build to
# run micro_bench on the compiled-vs-mutable kernel pair plus the
# standalone compiled_pst_bench, leaving BENCH_micro_kernels.json and
# BENCH_compiled_pst.json at the repo root as uploadable artifacts. The
# lint leg always runs tools/check_planes.py and its self-test; clang-tidy
# runs when the binary exists (any diagnostic fails) and is skipped with a
# notice otherwise, so the leg degrades gracefully on GCC-only hosts.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
if [[ $# -gt 0 ]]; then
  LEGS=("$@")
else
  LEGS=(release asan ubsan tsan chaos perf lint)
fi

# NOLINT budget enforced alongside clang-tidy (policy in .clang-tidy).
NOLINT_BUDGET=10

run_lint() {
  echo "=== [lint] configure (compilation database) ==="
  cmake -B build -S . >/dev/null

  echo "=== [lint] plane-separation checker self-test ==="
  python3 tools/test_check_planes.py

  echo "=== [lint] plane-separation checker ==="
  python3 tools/check_planes.py --root .

  echo "=== [lint] NOLINT budget (max $NOLINT_BUDGET) ==="
  local nolints
  nolints=$(grep -rn 'NOLINT' src/ --include='*.h' --include='*.cpp' | wc -l)
  echo "NOLINT markers in src/: $nolints"
  if (( nolints > NOLINT_BUDGET )); then
    echo "ci.sh: NOLINT budget exceeded ($nolints > $NOLINT_BUDGET)" >&2
    exit 1
  fi

  if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== [lint] clang-tidy over src/ ==="
    local srcs
    mapfile -t srcs < <(find src -name '*.cpp' | sort)
    # --warnings-as-errors in .clang-tidy mirrors Checks: any diagnostic is
    # a non-zero exit. --quiet keeps the output to the diagnostics.
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -p build -quiet "${srcs[@]}"
    else
      clang-tidy -p build --quiet "${srcs[@]}"
    fi
  else
    echo "=== [lint] clang-tidy not found; skipping the tidy pass ==="
    echo "    (install clang-tidy to run the full lint leg)"
  fi
}

run_leg() {
  local leg="$1" dir sanitize
  case "$leg" in
    release) dir=build          sanitize=""          ;;
    asan)    dir=build-asan     sanitize="address"   ;;
    ubsan)   dir=build-ubsan    sanitize="undefined" ;;
    tsan)    dir=build-tsan     sanitize="thread"    ;;
    chaos)   dir=build          sanitize=""          ;;
    perf)    dir=build          sanitize=""          ;;
    lint)    run_lint; return ;;
    *)
      echo "ci.sh: unknown leg '$leg' (release|asan|ubsan|tsan|chaos|perf|lint)" >&2
      exit 2
      ;;
  esac

  echo "=== [$leg] configure + build ==="
  cmake -B "$dir" -S . -DGRYPHON_SANITIZE="$sanitize" >/dev/null
  cmake --build "$dir" -j "$JOBS"

  if [[ "$leg" == chaos ]]; then
    # Fault-injection sweep (docs/fault-tolerance.md): the chaos suite runs
    # its three baked-in seeds every time; GRYPHON_CHAOS_SEED adds one more
    # per pass, so this leg widens the explored fault schedules on every
    # run while staying reproducible from the log.
    # Run the binary directly: ctest pins --gtest_filter to the test names
    # discovered at build time, which would silently skip the env seed's
    # instantiations.
    for seed in 11 42 20260806; do
      echo "=== [chaos] fault-injection suite, extra seed $seed ==="
      GRYPHON_CHAOS_SEED="$seed" "$dir/tests/chaos_tests"
    done
    return
  fi

  if [[ "$leg" == perf ]]; then
    echo "=== [perf] kernel smoke: micro_bench compiled vs mutable ==="
    "$dir/bench/micro_bench" \
      --benchmark_filter='PstMatch(Compiled|Mutable)' \
      --benchmark_min_time=0.2 \
      --benchmark_out=BENCH_micro_kernels.json \
      --benchmark_out_format=json
    echo "=== [perf] kernel smoke: compiled_pst_bench ==="
    # Trimmed point (2k subs, few passes) — the smoke guards against the
    # compiled path regressing below the mutable walk, not absolute numbers;
    # run the binary with no args for the full 10k acceptance measurement.
    "$dir/bench/compiled_pst_bench" 2000 500 5
    echo "perf artifacts: BENCH_micro_kernels.json BENCH_compiled_pst.json"
    return
  fi

  echo "=== [$leg] test ==="
  if [[ "$leg" == tsan ]]; then
    # TSan slows execution ~10x; run only the tests labeled for it.
    TSAN_OPTIONS="halt_on_error=1" \
      ctest --test-dir "$dir" --output-on-failure -L concurrency
  else
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  fi
}

for leg in "${LEGS[@]}"; do
  run_leg "$leg"
done
echo "ci.sh: all legs passed"
