#!/usr/bin/env bash
# Local CI: release build + full test suite, then AddressSanitizer and
# ThreadSanitizer passes. The sanitizer builds live in their own build
# directories so they never pollute the primary one.
#
#   tools/ci.sh             # release + asan + tsan
#   tools/ci.sh release     # just the release leg
#   tools/ci.sh tsan        # just the ThreadSanitizer leg
#
# The TSan leg runs the dedicated concurrency_tests binary (the snapshot /
# worker-pipeline races are what TSan is here to catch); the ASan and
# release legs run everything.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
LEGS=("${@:-release asan tsan}")
[[ $# -eq 0 ]] && LEGS=(release asan tsan)

run_leg() {
  local leg="$1" dir sanitize
  case "$leg" in
    release) dir=build          sanitize=""        ;;
    asan)    dir=build-asan     sanitize="address" ;;
    tsan)    dir=build-tsan     sanitize="thread"  ;;
    *) echo "ci.sh: unknown leg '$leg' (release|asan|tsan)" >&2; exit 2 ;;
  esac

  echo "=== [$leg] configure + build ==="
  cmake -B "$dir" -S . -DGRYPHON_SANITIZE="$sanitize" >/dev/null
  cmake --build "$dir" -j "$JOBS"

  echo "=== [$leg] test ==="
  if [[ "$leg" == tsan ]]; then
    # TSan slows execution ~10x; focus on the threading tests.
    TSAN_OPTIONS="halt_on_error=1" \
      ctest --test-dir "$dir" --output-on-failure -R ConcurrentMatching
  else
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  fi
}

for leg in ${LEGS[@]}; do
  run_leg "$leg"
done
echo "ci.sh: all legs passed"
