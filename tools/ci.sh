#!/usr/bin/env bash
# Local CI: release build + full test suite, sanitizer passes (ASan, UBSan,
# TSan — each pure, in its own build directory), a perf smoke over the
# matching kernels, a multi-core scaling check over the sharded batch
# dispatch pipeline, the gryphon-analyze invariant leg, and the lint leg
# (clang-tidy). See docs/static-analysis.md for the full matrix.
#
#   tools/ci.sh             # release + asan + ubsan + tsan + chaos +
#                           # failover + perf + scaling + churn + analyze +
#                           # lint
#   tools/ci.sh release     # just the release leg
#   tools/ci.sh tsan        # just the ThreadSanitizer leg
#   tools/ci.sh asan ubsan  # any subset, in order
#   tools/ci.sh chaos       # fault-injection sweep over extra seeds
#   tools/ci.sh failover    # broker-kill/promote sweep under ASan + bench gate
#   tools/ci.sh scaling     # mt_throughput sharded-dispatch scaling check
#   tools/ci.sh churn       # covering/delta control-plane churn check
#   tools/ci.sh sim-scale   # parallel sim engine: equivalence + scale sweep
#   tools/ci.sh analyze     # gryphon-analyze self-test + live-tree run
#
# The TSan leg runs the tests labeled `concurrency` (the snapshot /
# worker-pipeline races are what TSan is here to catch); the ASan, UBSan
# and release legs run everything. The perf leg reuses the release build to
# run micro_bench on the compiled-vs-mutable kernel pair plus the
# standalone compiled_pst_bench, leaving BENCH_micro_kernels.json and
# BENCH_compiled_pst.json at the repo root as uploadable artifacts. The
# analyze leg runs tools/analyze (plane purity, lock order, hot-path
# allocations, protocol exhaustiveness) with its dependency-free fallback
# frontend as the gate, repeats the run on the libclang frontend when
# clang.cindex is importable, and leaves gryphon-analyze-findings.json as
# an uploadable artifact. The lint leg runs clang-tidy when the binary
# exists (any diagnostic fails) and is skipped with a notice otherwise, so
# it degrades gracefully on GCC-only hosts.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
if [[ $# -gt 0 ]]; then
  LEGS=("$@")
else
  LEGS=(release asan ubsan tsan chaos failover perf scaling churn sim-scale analyze lint)
fi

# NOLINT budget enforced alongside clang-tidy (policy in .clang-tidy). The
# tree is currently NOLINT-free; raising this requires a written
# justification next to the new marker.
NOLINT_BUDGET=0

run_analyze() {
  echo "=== [analyze] gryphon-analyze fixture self-test ==="
  python3 tools/test_analyze.py

  echo "=== [analyze] gryphon-analyze over the live tree (fallback frontend) ==="
  python3 tools/analyze/gryphon_analyze.py --root . --frontend fallback \
    --json gryphon-analyze-findings.json

  if python3 -c "import clang.cindex" >/dev/null 2>&1; then
    echo "=== [analyze] gryphon-analyze over the live tree (libclang frontend) ==="
    cmake -B build -S . >/dev/null  # compile_commands.json for the cindex args
    python3 tools/analyze/gryphon_analyze.py --root . --frontend cindex \
      --json gryphon-analyze-findings.json
  else
    echo "=== [analyze] clang.cindex not importable; libclang pass skipped ==="
    echo "    (install python3-clang to run both frontends)"
  fi
  echo "analyze artifact: gryphon-analyze-findings.json"
}

run_lint() {
  echo "=== [lint] configure (compilation database) ==="
  cmake -B build -S . >/dev/null

  echo "=== [lint] NOLINT budget (max $NOLINT_BUDGET) ==="
  local nolints
  nolints=$(grep -rn 'NOLINT(' src/ --include='*.h' --include='*.cpp' | wc -l)
  echo "NOLINT markers in src/: $nolints"
  if (( nolints > NOLINT_BUDGET )); then
    echo "ci.sh: NOLINT budget exceeded ($nolints > $NOLINT_BUDGET)" >&2
    exit 1
  fi

  if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== [lint] clang-tidy over src/ ==="
    local srcs
    mapfile -t srcs < <(find src -name '*.cpp' | sort)
    # --warnings-as-errors in .clang-tidy mirrors Checks: any diagnostic is
    # a non-zero exit. --quiet keeps the output to the diagnostics.
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -p build -quiet "${srcs[@]}"
    else
      clang-tidy -p build --quiet "${srcs[@]}"
    fi
  else
    echo "=== [lint] clang-tidy not found; skipping the tidy pass ==="
    echo "    (install clang-tidy to run the full lint leg)"
  fi
}

run_leg() {
  local leg="$1" dir sanitize
  case "$leg" in
    release) dir=build          sanitize=""          ;;
    asan)    dir=build-asan     sanitize="address"   ;;
    ubsan)   dir=build-ubsan    sanitize="undefined" ;;
    tsan)    dir=build-tsan     sanitize="thread"    ;;
    chaos)   dir=build          sanitize=""          ;;
    failover) dir=build-asan    sanitize="address"   ;;
    perf)    dir=build          sanitize=""          ;;
    scaling) dir=build          sanitize=""          ;;
    churn)   dir=build          sanitize=""          ;;
    sim-scale) dir=build        sanitize=""          ;;
    analyze) run_analyze; return ;;
    lint)    run_lint; return ;;
    *)
      echo "ci.sh: unknown leg '$leg' (release|asan|ubsan|tsan|chaos|failover|perf|scaling|churn|sim-scale|analyze|lint)" >&2
      exit 2
      ;;
  esac

  echo "=== [$leg] configure + build ==="
  cmake -B "$dir" -S . -DGRYPHON_SANITIZE="$sanitize" >/dev/null
  cmake --build "$dir" -j "$JOBS"

  if [[ "$leg" == chaos ]]; then
    # Fault-injection sweep (docs/fault-tolerance.md): the chaos suite runs
    # its three baked-in seeds every time; GRYPHON_CHAOS_SEED adds one more
    # per pass, so this leg widens the explored fault schedules on every
    # run while staying reproducible from the log.
    # Run the binary directly: ctest pins --gtest_filter to the test names
    # discovered at build time, which would silently skip the env seed's
    # instantiations.
    for seed in 11 42 20260806; do
      echo "=== [chaos] fault-injection suite, extra seed $seed ==="
      GRYPHON_CHAOS_SEED="$seed" "$dir/tests/chaos_tests"
    done
    return
  fi

  if [[ "$leg" == failover ]]; then
    # Broker-kill failover sweep (docs/fault-tolerance.md § Replication):
    # kill the middle broker of the line mid-run with a hot standby
    # attached, promote it, redial the neighbors, and hold the exactly-once
    # multiset oracle. Runs under ASan so the promotion / log-rebase /
    # identity-takeover paths are watched for lifetime bugs; the five
    # baked-in seeds run in every suite pass and GRYPHON_CHAOS_SEED widens
    # the sweep here (binary run directly, same reason as the chaos leg).
    for seed in 7 1337 20260809; do
      echo "=== [failover] broker-kill/promote sweep, extra seed $seed ==="
      GRYPHON_CHAOS_SEED="$seed" "$dir/tests/chaos_tests" \
        --gtest_filter='*FailoverChaosTest*'
    done
    echo "=== [failover] failover_bench: hot-path delta + promote cost ==="
    # Trimmed point; the bench exits non-zero itself when a trial's
    # redelivered multiset diverges from the retained-delivery oracle.
    "$dir/bench/failover_bench" 300 10
    python3 - <<'PY'
import json, sys
data = json.load(open("BENCH_failover.json"))
fo = data["failover"]
if not fo["valid"]:
    print(f"[failover] FAIL: {fo['invalid_reason']}", file=sys.stderr)
    sys.exit(1)
print(f"[failover] {fo['trials']} trials: promote p50 "
      f"{fo['promote_p50_us']:.1f} us, first redelivery p50 "
      f"{fo['first_redelivery_p50_us']:.1f} us; publish-path p50 overhead "
      f"{data['publish_path']['p50_overhead_ratio']:.2f}x")
PY
    echo "failover artifact: BENCH_failover.json"
    return
  fi

  if [[ "$leg" == perf ]]; then
    echo "=== [perf] kernel smoke: micro_bench compiled vs mutable ==="
    "$dir/bench/micro_bench" \
      --benchmark_filter='PstMatch(Compiled|Mutable)' \
      --benchmark_min_time=0.2 \
      --benchmark_out=BENCH_micro_kernels.json \
      --benchmark_out_format=json
    echo "=== [perf] kernel smoke: compiled_pst_bench ==="
    # Trimmed point (2k subs, few passes) — the smoke guards against the
    # compiled path regressing below the mutable walk, not absolute numbers;
    # run the binary with no args for the full 10k acceptance measurement.
    "$dir/bench/compiled_pst_bench" 2000 500 5
    echo "=== [perf] dispatch smoke: mt_throughput sharded batch pipeline ==="
    # Trimmed sweep (2k subs, 200ms/point, threads capped at nproc). The
    # regression comparison — parallel points must not fall below the
    # single-thread baseline — is only meaningful on hosts that can run the
    # points in parallel, so it is skipped with a notice whenever the bench
    # reports scaling_valid:false (the JSON then carries
    # results_invalid_reason instead of speedups).
    "$dir/bench/mt_throughput" 2000 200 "$(nproc)"
    python3 - <<'PY'
import json, sys
data = json.load(open("BENCH_mt_throughput.json"))
if not data["scaling_valid"]:
    print(f"[perf] scaling_valid=false, skipping regression comparison: "
          f"{data['results_invalid_reason']}")
    sys.exit(0)
regressed = [p for p in data["results"] if p.get("speedup_vs_1", 1.0) < 0.9]
for p in regressed:
    print(f"[perf] REGRESSION: {p['threads']} threads ran at "
          f"{p['speedup_vs_1']:.2f}x the single-thread baseline", file=sys.stderr)
sys.exit(1 if regressed else 0)
PY
    echo "perf artifacts: BENCH_micro_kernels.json BENCH_compiled_pst.json BENCH_mt_throughput.json"
    return
  fi

  if [[ "$leg" == scaling ]]; then
    # Multi-core scaling acceptance for the sharded batch data plane:
    # >= 2x at 4 threads/4 shards, asserted only where the claim is
    # honest — scaling_valid:true and at least 4 hardware threads. On
    # smaller hosts the leg still runs the sweep (exercising the batch
    # pipeline) but reports why no scaling claim is checked.
    echo "=== [scaling] mt_throughput, threads capped at hardware concurrency ==="
    "$dir/bench/mt_throughput" 5000 500 "$(nproc)"
    python3 - <<'PY'
import json, sys
data = json.load(open("BENCH_mt_throughput.json"))
hw = data["hardware_concurrency"]
if not data["scaling_valid"]:
    print(f"[scaling] no claim checked: {data['results_invalid_reason']}")
    sys.exit(0)
if hw < 4:
    print(f"[scaling] no claim checked: only {hw} hardware threads (need >= 4 "
          f"for the 4-shard acceptance point)")
    sys.exit(0)
point = next((p for p in data["results"] if p["threads"] == 4), None)
if point is None:
    print("[scaling] no 4-thread point in the sweep", file=sys.stderr)
    sys.exit(1)
speedup = point["speedup_vs_1"]
print(f"[scaling] 4 threads / 4 shards: {speedup:.2f}x vs single thread "
      f"(per-shard events: {point['per_shard_events']})")
if speedup < 2.0:
    print(f"[scaling] FAIL: expected >= 2.0x at 4 shards, got {speedup:.2f}x",
          file=sys.stderr)
    sys.exit(1)
PY
    return
  fi

  if [[ "$leg" == churn ]]; then
    # Control-plane churn acceptance for the covering/delta work, gated on
    # the statistics that are stable run-to-run:
    #   1. The delta-compile p50 must sit >= 5x below the full-recompile
    #      p50 at the 100k point — a ratio over the identical op sequence
    #      on the same host, valid on any hardware, and far from the
    #      boundary (observed ~75-100x; a broken segment-reuse path
    #      collapses it to ~1x). The p99 ratio is reported (and asserted
    #      >= 5x in the full BENCH_churn.json artifact) but not gated
    #      here: the delta tail is dominated by rare mass-demotion ops,
    #      so a 120-op CI sample puts 3-4x run-to-run noise on it.
    #   2. The full-recompile p50 (the freeze+compile pipeline itself,
    #      stable within a few percent) must not regress >20% over
    #      tools/churn_baseline.json. Absolute latency only compares
    #      within like hardware, so this gate is skipped with a notice
    #      when the host's hardware_concurrency differs from the
    #      baseline's — the same honesty rule as the scaling leg.
    # Trimmed sweep (10k + 100k points); run churn_bench with no
    # arguments for the full 1M acceptance measurement.
    echo "=== [churn] control-plane churn: covering + delta compilation ==="
    "$dir/bench/churn_bench" 100000 60 1.0
    python3 - <<'PY'
import json, sys
data = json.load(open("BENCH_churn.json"))
base = json.load(open("tools/churn_baseline.json"))
point = next((s for s in data["sizes"]
              if s["subscriptions"] == base["subscriptions"]), None)
if point is None:
    print(f"[churn] no {base['subscriptions']}-subscription point in the sweep",
          file=sys.stderr)
    sys.exit(1)
full_p50 = point["full"]["compile_p50_us"]
delta_p50 = point["delta"]["compile_p50_us"]
speedup = full_p50 / delta_p50 if delta_p50 > 0 else 0.0
print(f"[churn] {base['subscriptions']} subs: delta compile p50 "
      f"{delta_p50:.0f} us vs full recompile {full_p50:.0f} us "
      f"({speedup:.1f}x; p99 ratio {point['compile_p99_speedup']:.1f}x)")
if speedup < 5.0:
    print(f"[churn] FAIL: delta compile p50 must be >= 5x below the full "
          f"recompile, got {speedup:.1f}x", file=sys.stderr)
    sys.exit(1)
hw = data["hardware_concurrency"]
if hw != base["hardware_concurrency"]:
    print(f"[churn] absolute-latency regression gate skipped: host has {hw} "
          f"hardware threads, baseline was recorded with "
          f"{base['hardware_concurrency']}")
    sys.exit(0)
limit = base["full_compile_p50_us"] * 1.2
if full_p50 > limit:
    print(f"[churn] REGRESSION: full-recompile p50 {full_p50:.0f} us exceeds "
          f"the baseline {base['full_compile_p50_us']:.0f} us by more than 20%",
          file=sys.stderr)
    sys.exit(1)
print(f"[churn] full-recompile p50 {full_p50:.0f} us within 20% of the "
      f"baseline {base['full_compile_p50_us']:.0f} us")
PY
    echo "churn artifact: BENCH_churn.json"
    return
  fi

  if [[ "$leg" == sim-scale ]]; then
    # Parallel discrete-event engine acceptance on the reduced (~200 broker)
    # sweep: every (point, protocol) pair must report the serial and
    # parallel engine runs bit-identical (same_outcome over all
    # deterministic SimResult fields) and a clean delivery oracle. The
    # >= 2x parallel speedup claim is asserted only where it is honest —
    # scaling_valid:true, which the bench grants only on hosts with >= 4
    # hardware threads; elsewhere the JSON records the reason instead.
    echo "=== [sim-scale] sim_scale_bench reduced sweep ==="
    "$dir/bench/sim_scale_bench" --ci --out BENCH_sim_scale.json
    python3 - <<'PY'
import json, sys
data = json.load(open("BENCH_sim_scale.json"))
rows = [(p["name"], r) for p in data["points"] for r in p["protocols"]]
bad_eq = [(n, r["protocol"]) for n, r in rows if not r["serial_parallel_identical"]]
bad_oracle = [(n, r["protocol"]) for n, r in rows
              if r["missing_deliveries"] or r["spurious_deliveries"]
              or r["duplicate_deliveries"]]
for n, proto in bad_eq:
    print(f"[sim-scale] FAIL: serial != parallel at {n}/{proto}", file=sys.stderr)
for n, proto in bad_oracle:
    print(f"[sim-scale] FAIL: delivery oracle violated at {n}/{proto}", file=sys.stderr)
if bad_eq or bad_oracle:
    sys.exit(1)
print(f"[sim-scale] {len(rows)} (point, protocol) runs: serial/parallel identical, "
      f"oracle clean")
if not data["scaling_valid"]:
    print(f"[sim-scale] speedup claim skipped: {data['scaling_reason']}")
    sys.exit(0)
wan = next(p for p in data["points"] if p["name"].startswith("wan"))
lm = next(r for r in wan["protocols"] if r["protocol"] == "link-matching")
print(f"[sim-scale] {wan['name']} link-matching: {lm['speedup']:.2f}x with "
      f"{data['parallel_threads']} threads")
if lm["speedup"] < 2.0:
    print(f"[sim-scale] FAIL: expected >= 2.0x parallel speedup, got "
          f"{lm['speedup']:.2f}x", file=sys.stderr)
    sys.exit(1)
PY
    echo "sim-scale artifact: BENCH_sim_scale.json"
    return
  fi

  echo "=== [$leg] test ==="
  if [[ "$leg" == tsan ]]; then
    # TSan slows execution ~10x; run only the tests labeled for it.
    TSAN_OPTIONS="halt_on_error=1" \
      ctest --test-dir "$dir" --output-on-failure -L concurrency
  else
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  fi
}

for leg in "${LEGS[@]}"; do
  run_leg "$leg"
done
echo "ci.sh: all legs passed"
