#!/usr/bin/env bash
# Local CI: release build + full test suite, then AddressSanitizer and
# ThreadSanitizer passes, then a perf smoke over the matching kernels. The
# sanitizer builds live in their own build directories so they never pollute
# the primary one.
#
#   tools/ci.sh             # release + asan + tsan + perf
#   tools/ci.sh release     # just the release leg
#   tools/ci.sh tsan        # just the ThreadSanitizer leg
#   tools/ci.sh perf        # just the kernel perf smoke
#
# The TSan leg runs the dedicated concurrency_tests binary (the snapshot /
# worker-pipeline races are what TSan is here to catch); the ASan and
# release legs run everything. The perf leg reuses the release build to run
# micro_bench on the compiled-vs-mutable kernel pair plus the standalone
# compiled_pst_bench, leaving BENCH_micro_kernels.json and
# BENCH_compiled_pst.json at the repo root as uploadable artifacts.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
LEGS=("${@:-release asan tsan perf}")
[[ $# -eq 0 ]] && LEGS=(release asan tsan perf)

run_leg() {
  local leg="$1" dir sanitize
  case "$leg" in
    release) dir=build          sanitize=""        ;;
    asan)    dir=build-asan     sanitize="address" ;;
    tsan)    dir=build-tsan     sanitize="thread"  ;;
    perf)    dir=build          sanitize=""        ;;
    *) echo "ci.sh: unknown leg '$leg' (release|asan|tsan|perf)" >&2; exit 2 ;;
  esac

  echo "=== [$leg] configure + build ==="
  cmake -B "$dir" -S . -DGRYPHON_SANITIZE="$sanitize" >/dev/null
  cmake --build "$dir" -j "$JOBS"

  if [[ "$leg" == perf ]]; then
    echo "=== [perf] kernel smoke: micro_bench compiled vs mutable ==="
    "$dir/bench/micro_bench" \
      --benchmark_filter='PstMatch(Compiled|Mutable)' \
      --benchmark_min_time=0.2 \
      --benchmark_out=BENCH_micro_kernels.json \
      --benchmark_out_format=json
    echo "=== [perf] kernel smoke: compiled_pst_bench ==="
    # Trimmed point (2k subs, few passes) — the smoke guards against the
    # compiled path regressing below the mutable walk, not absolute numbers;
    # run the binary with no args for the full 10k acceptance measurement.
    "$dir/bench/compiled_pst_bench" 2000 500 5
    echo "perf artifacts: BENCH_micro_kernels.json BENCH_compiled_pst.json"
    return
  fi

  echo "=== [$leg] test ==="
  if [[ "$leg" == tsan ]]; then
    # TSan slows execution ~10x; focus on the threading tests.
    TSAN_OPTIONS="halt_on_error=1" \
      ctest --test-dir "$dir" --output-on-failure -R ConcurrentMatching
  else
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  fi
}

for leg in ${LEGS[@]}; do
  run_leg "$leg"
done
echo "ci.sh: all legs passed"
