#include "tool_config.h"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/time.h"

namespace gryphon::tools {

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string current;
  std::istringstream stream(text);
  while (std::getline(stream, current, sep)) {
    if (!current.empty()) out.push_back(current);
  }
  return out;
}

int parse_int(const std::string& text, const char* what) {
  int value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw std::invalid_argument(std::string("bad ") + what + ": '" + text + "'");
  }
  return value;
}

}  // namespace

SchemaPtr parse_schema_spec(const std::string& spec) {
  std::istringstream stream(spec);
  std::string name;
  if (!(stream >> name)) {
    throw std::invalid_argument("schema spec: expected \"NAME attr:type ...\"");
  }
  std::vector<Attribute> attributes;
  std::string token;
  while (stream >> token) {
    const auto colon = token.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("schema spec: attribute '" + token +
                                  "' must be NAME:TYPE (types: int, double, string, bool; "
                                  "int may declare a domain, e.g. a1:int(0..4))");
    }
    Attribute attr;
    attr.name = token.substr(0, colon);
    std::string type = token.substr(colon + 1);
    // Optional finite int domain: int(LO..HI).
    const auto paren = type.find('(');
    std::string domain;
    if (paren != std::string::npos) {
      if (type.back() != ')') throw std::invalid_argument("schema spec: unbalanced '('");
      domain = type.substr(paren + 1, type.size() - paren - 2);
      type = type.substr(0, paren);
    }
    if (type == "int") {
      attr.type = AttributeType::kInt;
    } else if (type == "double") {
      attr.type = AttributeType::kDouble;
    } else if (type == "string") {
      attr.type = AttributeType::kString;
    } else if (type == "bool") {
      attr.type = AttributeType::kBool;
    } else {
      throw std::invalid_argument("schema spec: unknown type '" + type + "'");
    }
    if (!domain.empty()) {
      if (attr.type != AttributeType::kInt) {
        throw std::invalid_argument("schema spec: domains are supported for int attributes");
      }
      const auto dots = domain.find("..");
      if (dots == std::string::npos) {
        throw std::invalid_argument("schema spec: domain must be LO..HI");
      }
      const int lo = parse_int(domain.substr(0, dots), "domain bound");
      const int hi = parse_int(domain.substr(dots + 2), "domain bound");
      if (hi < lo) throw std::invalid_argument("schema spec: empty domain");
      for (int v = lo; v <= hi; ++v) attr.domain.emplace_back(static_cast<std::int64_t>(v));
    }
    attributes.push_back(std::move(attr));
  }
  if (attributes.empty()) {
    throw std::invalid_argument("schema spec: needs at least one attribute");
  }
  return make_schema(name, std::move(attributes));
}

BrokerNetwork parse_topology_spec(std::size_t broker_count, const std::string& spec) {
  BrokerNetwork net;
  for (std::size_t i = 0; i < broker_count; ++i) net.add_broker();
  for (const std::string& link : split(spec, ',')) {
    const auto dash = link.find('-');
    if (dash == std::string::npos) {
      throw std::invalid_argument("topology spec: link '" + link + "' must be A-B[:DELAY_MS]");
    }
    const auto colon = link.find(':', dash);
    const int a = parse_int(link.substr(0, dash), "broker id");
    const int b = parse_int(colon == std::string::npos
                                ? link.substr(dash + 1)
                                : link.substr(dash + 1, colon - dash - 1),
                            "broker id");
    const int delay_ms = colon == std::string::npos
                             ? 1
                             : parse_int(link.substr(colon + 1), "delay");
    net.connect(BrokerId{a}, BrokerId{b}, ticks_from_millis(delay_ms));
  }
  return net;
}

void parse_endpoint(const std::string& spec, std::string& host, std::uint16_t& port) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("endpoint '" + spec + "' must be HOST:PORT");
  }
  host = spec.substr(0, colon);
  port = static_cast<std::uint16_t>(parse_int(spec.substr(colon + 1), "port"));
}

DialTarget parse_dial_spec(const std::string& spec) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos) {
    throw std::invalid_argument("dial spec '" + spec + "' must be BROKERID=HOST:PORT");
  }
  DialTarget target;
  target.peer = BrokerId{parse_int(spec.substr(0, eq), "broker id")};
  parse_endpoint(spec.substr(eq + 1), target.host, target.port);
  return target;
}

std::size_t parse_thread_count(const std::string& spec) {
  if (spec == "auto") {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }
  const int value = parse_int(spec, "thread count");
  if (value < 0) throw std::invalid_argument("thread count must be >= 0");
  return static_cast<std::size_t>(value);
}

BrokerConfig parse_broker_config(const std::vector<std::string>& args) {
  BrokerConfig config;
  int brokers = -1;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument("missing value for " + arg);
      }
      return args[++i];
    };
    const auto next_positive = [&](const char* what) {
      const int value = parse_int(next(), what);
      if (value <= 0) {
        throw std::invalid_argument(arg + " must be > 0, got " + std::to_string(value));
      }
      return value;
    };
    if (arg == "--id") {
      config.id = parse_int(next(), "broker id");
    } else if (arg == "--brokers") {
      brokers = parse_int(next(), "broker count");
    } else if (arg == "--links") {
      config.links = next();
    } else if (arg == "--listen") {
      const int port = parse_int(next(), "port");
      if (port < 0 || port > 65535) {
        throw std::invalid_argument("--listen port must be in [0, 65535]");
      }
      config.listen_port = port;
    } else if (arg == "--dial") {
      config.dials.push_back(parse_dial_spec(next()));
    } else if (arg == "--schema") {
      config.schemas.push_back(parse_schema_spec(next()));
    } else if (arg == "--gc-seconds") {
      config.gc_seconds = next_positive("gc seconds");
    } else if (arg == "--match-threads") {
      config.match_threads = parse_thread_count(next());
    } else if (arg == "--shards") {
      config.shards = static_cast<std::size_t>(next_positive("shard count"));
    } else if (arg == "--batch-max") {
      config.batch_max = static_cast<std::size_t>(next_positive("batch size"));
    } else if (arg == "--no-covering") {
      config.covering = false;
    } else if (arg == "--covering") {
      config.covering = true;
    } else if (arg == "--delta-segment-target") {
      config.delta_segment_target = static_cast<std::size_t>(next_positive("segment target"));
    } else if (arg == "--max-delta-segments") {
      config.max_delta_segments = static_cast<std::size_t>(next_positive("segment cap"));
    } else if (arg == "--verbose") {
      config.verbose = true;
    } else if (arg == "--link-rto-ms") {
      config.link_rto_ms = next_positive("retransmit timeout");
    } else if (arg == "--link-heartbeat-ms") {
      config.link_heartbeat_ms = next_positive("heartbeat interval");
    } else if (arg == "--link-idle-timeout-ms") {
      config.link_idle_timeout_ms = next_positive("idle timeout");
    } else if (arg == "--redial-backoff-ms") {
      config.redial_backoff_ms = next_positive("redial backoff");
    } else if (arg == "--redial-backoff-max-ms") {
      config.redial_backoff_max_ms = next_positive("redial backoff cap");
    } else if (arg == "--redial-budget") {
      const int budget = parse_int(next(), "redial budget");
      if (budget < 0) throw std::invalid_argument("--redial-budget must be >= 0");
      config.redial_budget = budget;
    } else if (arg == "--standby-of") {
      parse_endpoint(next(), config.standby_host, config.standby_port);
    } else if (arg == "--replica-listen") {
      const int port = parse_int(next(), "port");
      if (port < 0 || port > 65535) {
        throw std::invalid_argument("--replica-listen port must be in [0, 65535]");
      }
      config.replica_listen_port = port;
    } else if (arg == "--repl-window") {
      config.repl_window = static_cast<std::size_t>(next_positive("replication window"));
    } else if (arg == "--promote-timeout-ms") {
      config.promote_timeout_ms = next_positive("promote timeout");
    } else {
      throw std::invalid_argument("unknown argument " + arg);
    }
  }
  if (config.id < 0) throw std::invalid_argument("--id is required");
  if (brokers <= 0) throw std::invalid_argument("--brokers is required");
  config.brokers = static_cast<std::size_t>(brokers);
  if (static_cast<std::size_t>(config.id) >= config.brokers) {
    throw std::invalid_argument("--id must be < --brokers");
  }
  if (config.listen_port < 0) throw std::invalid_argument("--listen is required");
  if (config.schemas.empty()) {
    throw std::invalid_argument("at least one --schema is required");
  }
  if (config.redial_backoff_max_ms < config.redial_backoff_ms) {
    throw std::invalid_argument("--redial-backoff-max-ms must be >= --redial-backoff-ms");
  }
  for (const DialTarget& dial : config.dials) {
    if (static_cast<std::size_t>(dial.peer.value) >= config.brokers) {
      throw std::invalid_argument("--dial peer " + std::to_string(dial.peer.value) +
                                  " is not in the topology (brokers = " +
                                  std::to_string(config.brokers) + ")");
    }
  }
  // Replication roles are exclusive: a standby shadows a primary; it does
  // not serve a standby of its own, and it must not dial broker links —
  // neighbors redial it after promotion.
  if (config.standby()) {
    if (config.replica_listen_port >= 0) {
      throw std::invalid_argument(
          "--standby-of conflicts with --replica-listen: a standby cannot "
          "also serve a replication stream");
    }
    if (!config.dials.empty()) {
      throw std::invalid_argument(
          "--standby-of conflicts with --dial: a standby must not dial "
          "broker links before promotion (neighbors redial it afterwards)");
    }
  }
  return config;
}

}  // namespace gryphon::tools
