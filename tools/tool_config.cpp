#include "tool_config.h"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/time.h"

namespace gryphon::tools {

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string current;
  std::istringstream stream(text);
  while (std::getline(stream, current, sep)) {
    if (!current.empty()) out.push_back(current);
  }
  return out;
}

int parse_int(const std::string& text, const char* what) {
  int value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw std::invalid_argument(std::string("bad ") + what + ": '" + text + "'");
  }
  return value;
}

}  // namespace

SchemaPtr parse_schema_spec(const std::string& spec) {
  std::istringstream stream(spec);
  std::string name;
  if (!(stream >> name)) {
    throw std::invalid_argument("schema spec: expected \"NAME attr:type ...\"");
  }
  std::vector<Attribute> attributes;
  std::string token;
  while (stream >> token) {
    const auto colon = token.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("schema spec: attribute '" + token +
                                  "' must be NAME:TYPE (types: int, double, string, bool; "
                                  "int may declare a domain, e.g. a1:int(0..4))");
    }
    Attribute attr;
    attr.name = token.substr(0, colon);
    std::string type = token.substr(colon + 1);
    // Optional finite int domain: int(LO..HI).
    const auto paren = type.find('(');
    std::string domain;
    if (paren != std::string::npos) {
      if (type.back() != ')') throw std::invalid_argument("schema spec: unbalanced '('");
      domain = type.substr(paren + 1, type.size() - paren - 2);
      type = type.substr(0, paren);
    }
    if (type == "int") {
      attr.type = AttributeType::kInt;
    } else if (type == "double") {
      attr.type = AttributeType::kDouble;
    } else if (type == "string") {
      attr.type = AttributeType::kString;
    } else if (type == "bool") {
      attr.type = AttributeType::kBool;
    } else {
      throw std::invalid_argument("schema spec: unknown type '" + type + "'");
    }
    if (!domain.empty()) {
      if (attr.type != AttributeType::kInt) {
        throw std::invalid_argument("schema spec: domains are supported for int attributes");
      }
      const auto dots = domain.find("..");
      if (dots == std::string::npos) {
        throw std::invalid_argument("schema spec: domain must be LO..HI");
      }
      const int lo = parse_int(domain.substr(0, dots), "domain bound");
      const int hi = parse_int(domain.substr(dots + 2), "domain bound");
      if (hi < lo) throw std::invalid_argument("schema spec: empty domain");
      for (int v = lo; v <= hi; ++v) attr.domain.emplace_back(static_cast<std::int64_t>(v));
    }
    attributes.push_back(std::move(attr));
  }
  if (attributes.empty()) {
    throw std::invalid_argument("schema spec: needs at least one attribute");
  }
  return make_schema(name, std::move(attributes));
}

BrokerNetwork parse_topology_spec(std::size_t broker_count, const std::string& spec) {
  BrokerNetwork net;
  for (std::size_t i = 0; i < broker_count; ++i) net.add_broker();
  for (const std::string& link : split(spec, ',')) {
    const auto dash = link.find('-');
    if (dash == std::string::npos) {
      throw std::invalid_argument("topology spec: link '" + link + "' must be A-B[:DELAY_MS]");
    }
    const auto colon = link.find(':', dash);
    const int a = parse_int(link.substr(0, dash), "broker id");
    const int b = parse_int(colon == std::string::npos
                                ? link.substr(dash + 1)
                                : link.substr(dash + 1, colon - dash - 1),
                            "broker id");
    const int delay_ms = colon == std::string::npos
                             ? 1
                             : parse_int(link.substr(colon + 1), "delay");
    net.connect(BrokerId{a}, BrokerId{b}, ticks_from_millis(delay_ms));
  }
  return net;
}

void parse_endpoint(const std::string& spec, std::string& host, std::uint16_t& port) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("endpoint '" + spec + "' must be HOST:PORT");
  }
  host = spec.substr(0, colon);
  port = static_cast<std::uint16_t>(parse_int(spec.substr(colon + 1), "port"));
}

DialTarget parse_dial_spec(const std::string& spec) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos) {
    throw std::invalid_argument("dial spec '" + spec + "' must be BROKERID=HOST:PORT");
  }
  DialTarget target;
  target.peer = BrokerId{parse_int(spec.substr(0, eq), "broker id")};
  parse_endpoint(spec.substr(eq + 1), target.host, target.port);
  return target;
}

std::size_t parse_thread_count(const std::string& spec) {
  if (spec == "auto") {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }
  const int value = parse_int(spec, "thread count");
  if (value < 0) throw std::invalid_argument("thread count must be >= 0");
  return static_cast<std::size_t>(value);
}

}  // namespace gryphon::tools
