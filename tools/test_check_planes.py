#!/usr/bin/env python3
"""Self-test for tools/check_planes.py (run by the ci.sh lint leg and
registered in ctest as `check_planes_selftest`).

Builds throwaway source trees in a temp directory — one clean, plus one
per violation class — and asserts the checker's exit status and
diagnostics against each. Runs the checker through its CLI so the exit
codes and --root plumbing are covered too.
"""

import pathlib
import subprocess
import sys
import tempfile
import unittest

CHECKER = pathlib.Path(__file__).resolve().parent / "check_planes.py"

# A minimal tree the checker accepts: every configured data-plane TU and
# function present, no forbidden references.
CLEAN_TREE = {
    "src/matching/compiled_pst.h": "struct CompiledPst { int match; };\n",
    "src/matching/compiled_pst.cpp": "int compiled_match() { return 1; }\n",
    "src/matching/shard_router.h": "struct ShardRouter { int shard_of_key; };\n",
    "src/matching/covering_snapshot.h": "struct CoveringSnapshot { int expand; };\n",
    "src/routing/compiled_annotation.h": "struct CompiledAnnotation {};\n",
    "src/routing/compiled_annotation.cpp": "int annotate() { return 2; }\n",
    "src/broker/dispatch_batch.h": "struct DispatchBatch { int items; };\n",
    "src/broker/core_snapshot.h": (
        "struct CoreSnapshot { int version; };\n"
        "struct SnapshotBuilder { CoreSnapshot build(); };\n"
    ),
    "src/broker/core_snapshot.cpp": (
        "CoreSnapshot SnapshotBuilder::build() { return CoreSnapshot{1}; }\n"
    ),
    "src/broker/broker_core.cpp": (
        "int BrokerCore::dispatch(int event) {\n"
        "  if (event > 0) { return event; }\n"
        "  return 0;\n"
        "}\n"
        "int BrokerCore::dispatch_pinned(int event) { return event; }\n"
        "int BrokerCore::match_all(int event) { return event; }\n"
        "void BrokerCore::add_subscription(int id) { registry_.insert(id); }\n"
    ),
    "src/matching/pst_matcher.cpp": (
        "void PstMatcher::match(int event) const { (void)event; }\n"
        "void PstMatcher::match_into(int event, int out) const {\n"
        "  (void)event; (void)out;\n"
        "}\n"
    ),
}


def run_checker(root: pathlib.Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(CHECKER), "--root", str(root)],
        capture_output=True,
        text=True,
        check=False,
    )


def write_tree(root: pathlib.Path, overrides=None) -> None:
    files = dict(CLEAN_TREE)
    if overrides:
        files.update(overrides)
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)


class CheckPlanesTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = pathlib.Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def test_clean_tree_passes(self):
        write_tree(self.root)
        result = run_checker(self.root)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("plane separation holds", result.stdout)

    def test_forbidden_token_in_data_plane_tu(self):
        write_tree(
            self.root,
            {
                "src/matching/compiled_pst.cpp": (
                    "int compiled_match() { return add_with_result(1); }\n"
                )
            },
        )
        result = run_checker(self.root)
        self.assertEqual(result.returncode, 1)
        self.assertIn("compiled_pst.cpp:1", result.stderr)
        self.assertIn("add_with_result", result.stderr)

    def test_forbidden_token_in_covering_snapshot_rejected(self):
        # The covering sidecar is read on every dispatch; it must never
        # reach back into the control plane's registry.
        write_tree(
            self.root,
            {
                "src/matching/covering_snapshot.h": (
                    "struct CoveringSnapshot { int n = registry_.size(); };\n"
                )
            },
        )
        result = run_checker(self.root)
        self.assertEqual(result.returncode, 1)
        self.assertIn("covering_snapshot.h:1", result.stderr)
        self.assertIn("registry_", result.stderr)

    def test_forbidden_token_in_data_plane_function_body(self):
        write_tree(
            self.root,
            {
                "src/broker/broker_core.cpp": (
                    "int BrokerCore::dispatch(int event) {\n"
                    "  publish_snapshot(event);\n"
                    "  return 0;\n"
                    "}\n"
                    "int BrokerCore::dispatch_pinned(int event) { return event; }\n"
                    "int BrokerCore::match_all(int event) { return event; }\n"
                )
            },
        )
        result = run_checker(self.root)
        self.assertEqual(result.returncode, 1)
        self.assertIn("broker_core.cpp:2", result.stderr)
        self.assertIn("BrokerCore::dispatch", result.stderr)
        self.assertIn("publish_snapshot", result.stderr)

    def test_control_plane_function_in_same_tu_is_allowed(self):
        # add_subscription touching registry_ lives in the same TU as
        # dispatch; only the data-plane *bodies* are constrained.
        write_tree(self.root)
        result = run_checker(self.root)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_snapshot_construction_outside_home_rejected(self):
        write_tree(
            self.root,
            {
                "src/broker/broker_core.cpp": (
                    CLEAN_TREE["src/broker/broker_core.cpp"]
                    + "void BrokerCore::rebuild() {\n"
                    "  auto s = std::make_shared<CoreSnapshot>();\n"
                    "}\n"
                )
            },
        )
        result = run_checker(self.root)
        self.assertEqual(result.returncode, 1)
        self.assertIn("CoreSnapshot constructed outside", result.stderr)

    def test_brace_init_construction_rejected(self):
        write_tree(
            self.root,
            {
                "src/routing/psg_annotation.cpp": (
                    "int f() { auto s = CoreSnapshot{2}; return s.version; }\n"
                )
            },
        )
        result = run_checker(self.root)
        self.assertEqual(result.returncode, 1)
        self.assertIn("psg_annotation.cpp:1", result.stderr)

    def test_comments_and_strings_ignored(self):
        write_tree(
            self.root,
            {
                "src/matching/compiled_pst.cpp": (
                    "// prose about add_with_result and publish_snapshot\n"
                    "/* registry_ and new CoreSnapshot in a block comment */\n"
                    'const char* k = "snapshot_.store(CoreSnapshot{})";\n'
                    "int compiled_match() { return 1; }\n"
                )
            },
        )
        result = run_checker(self.root)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_missing_data_plane_function_reported(self):
        write_tree(
            self.root,
            {
                "src/broker/broker_core.cpp": (
                    "int BrokerCore::match_all(int event) { return event; }\n"
                )
            },
        )
        result = run_checker(self.root)
        self.assertEqual(result.returncode, 1)
        self.assertIn("no definition of data-plane function", result.stderr)

    def test_declaration_is_not_a_body(self):
        # A declaration of dispatch (ends in ';') must not be brace-scanned;
        # the definition after it still is.
        write_tree(
            self.root,
            {
                "src/broker/broker_core.cpp": (
                    "int BrokerCore::dispatch(int event);\n"
                    "int BrokerCore::dispatch(int event) { return event; }\n"
                    "int BrokerCore::dispatch_pinned(int event) { return event; }\n"
                    "int BrokerCore::match_all(int event) { return event; }\n"
                )
            },
        )
        result = run_checker(self.root)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_real_repo_is_clean(self):
        repo = CHECKER.parent.parent
        result = run_checker(repo)
        self.assertEqual(result.returncode, 0, result.stderr)


if __name__ == "__main__":
    unittest.main()
