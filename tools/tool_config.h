// Shared command-line configuration parsing for the CLI tools.
//
// Schema spec:    "trades issue:string price:double volume:int urgent:bool"
//                 An int attribute may declare a finite domain:
//                 "synthetic a1:int(0..4) a2:int(0..4)"
// Topology spec:  "0-1:10,1-2:25"   (brokerA-brokerB:one-way-delay-ms)
// Dial spec:      "1=127.0.0.1:7001"
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "event/schema.h"
#include "topology/network.h"

namespace gryphon::tools {

/// Parses a schema spec; throws std::invalid_argument with a usage hint.
SchemaPtr parse_schema_spec(const std::string& spec);

/// Parses a topology spec into a broker-only network with `broker_count`
/// brokers. Delays are milliseconds.
BrokerNetwork parse_topology_spec(std::size_t broker_count, const std::string& spec);

struct DialTarget {
  BrokerId peer;
  std::string host;
  std::uint16_t port{0};
};

/// Parses one dial spec "ID=HOST:PORT".
DialTarget parse_dial_spec(const std::string& spec);

/// Parses a worker-thread count: a non-negative integer, or "auto" for the
/// hardware concurrency (at least 1). 0 means synchronous matching.
std::size_t parse_thread_count(const std::string& spec);

/// Splits a host:port endpoint.
void parse_endpoint(const std::string& spec, std::string& host, std::uint16_t& port);

}  // namespace gryphon::tools
