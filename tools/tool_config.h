// Shared command-line configuration parsing for the CLI tools.
//
// Schema spec:    "trades issue:string price:double volume:int urgent:bool"
//                 An int attribute may declare a finite domain:
//                 "synthetic a1:int(0..4) a2:int(0..4)"
// Topology spec:  "0-1:10,1-2:25"   (brokerA-brokerB:one-way-delay-ms)
// Dial spec:      "1=127.0.0.1:7001"
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "event/schema.h"
#include "topology/network.h"

namespace gryphon::tools {

/// Parses a schema spec; throws std::invalid_argument with a usage hint.
SchemaPtr parse_schema_spec(const std::string& spec);

/// Parses a topology spec into a broker-only network with `broker_count`
/// brokers. Delays are milliseconds.
BrokerNetwork parse_topology_spec(std::size_t broker_count, const std::string& spec);

struct DialTarget {
  BrokerId peer;
  std::string host;
  std::uint16_t port{0};
};

/// Parses one dial spec "ID=HOST:PORT".
DialTarget parse_dial_spec(const std::string& spec);

/// Parses a worker-thread count: a non-negative integer, or "auto" for the
/// hardware concurrency (at least 1). 0 means synchronous matching.
std::size_t parse_thread_count(const std::string& spec);

/// Splits a host:port endpoint.
void parse_endpoint(const std::string& spec, std::string& host, std::uint16_t& port);

/// The full validated configuration of one brokerd process: every flag
/// family (identity/topology, schemas, match pipeline, data-plane shards
/// and batching, link-session timings, redial policy) behind a single
/// parse + validate entry point, so the tool's main() does no flag
/// plumbing of its own and every tool reusing brokers parses identically.
struct BrokerConfig {
  // Identity and topology (required).
  int id{-1};
  std::size_t brokers{0};
  std::string links;          // "0-1:10,1-2:25"; parsed via parse_topology_spec
  int listen_port{-1};        // 0 picks an ephemeral port
  std::vector<DialTarget> dials;
  std::vector<SchemaPtr> schemas;  // positional information spaces

  // Match pipeline and the sharded, batched data plane.
  std::size_t match_threads{0};   // 0 = synchronous matching
  std::size_t shards{1};          // data-plane shards per factored space
  std::size_t batch_max{32};      // events per worker DispatchBatch drain

  // Control plane: covering aggregation + delta compilation (broker_core.h).
  bool covering{true};                      // --no-covering disables parking
  std::size_t delta_segment_target{16384};  // frontier subs per delta segment
  std::size_t max_delta_segments{64};       // slice-count growth cap

  // Maintenance.
  int gc_seconds{3600};
  bool verbose{false};

  // Link-session timings (docs/fault-tolerance.md).
  int link_rto_ms{50};
  int link_heartbeat_ms{500};
  int link_idle_timeout_ms{2000};
  int redial_backoff_ms{20};
  int redial_backoff_max_ms{5000};
  int redial_budget{0};  // 0 = redial forever

  // Replication (docs/fault-tolerance.md § Replication). A process is
  // either a primary (optionally exposing --replica-listen for a hot
  // standby to dial) or a standby (--standby-of pointing at its primary's
  // replica listener); the two roles are mutually exclusive, and a standby
  // must not dial broker links either — neighbors redial *it* after
  // promotion.
  std::string standby_host;       // --standby-of HOST:PORT (empty = primary)
  std::uint16_t standby_port{0};
  int replica_listen_port{-1};    // second listen port; -1 = no standby served
  std::size_t repl_window{4096};  // update-log window = snapshot cadence
  int promote_timeout_ms{2000};   // standby: repl idle before auto-promotion

  [[nodiscard]] bool standby() const { return !standby_host.empty(); }

  /// The parsed topology (convenience over brokers + links).
  [[nodiscard]] BrokerNetwork topology() const {
    return parse_topology_spec(brokers, links);
  }
};

/// Parses brokerd-style arguments (argv[1..argc), already split) into a
/// validated BrokerConfig. Throws std::invalid_argument naming the
/// offending flag on: unknown flags, missing values, missing required
/// flags (--id, --brokers, --listen, at least one --schema), non-positive
/// --shards/--batch-max, and non-positive link timings.
BrokerConfig parse_broker_config(const std::vector<std::string>& args);

}  // namespace gryphon::tools
