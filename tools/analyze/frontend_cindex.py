"""libclang frontend for gryphon-analyze.

Uses `clang.cindex` to lower the tree into the shared IR.  The AST supplies
the brittle structural facts — class/namespace scopes, member lists, enum
values, parameter types — while function *bodies* are analyzed with the
same token-level engine as the fallback frontend (frontend_fallback's
`_Parser._analyze_body` run over the body extent), so both frontends
produce identical call/lock/alloc site streams and every rule verdict is
frontend-independent.  Thread-safety annotation macros (ACQUIRED_BEFORE,
REQUIRES, ...) vanish during preprocessing unless the build defines them,
so they are recovered from each cursor's pre-expansion source tokens.

Compile flags come from build/compile_commands.json when present
(CMAKE_EXPORT_COMPILE_COMMANDS is on in this repo); otherwise a minimal
`-std=c++20 -I<root>/src` invocation is used.  Files libclang cannot parse
fall back to the token frontend so a partial toolchain never hides code
from the rules.
"""

from __future__ import annotations

import json
import os
import re
from typing import Optional

import frontend_fallback as fb
from ir import ClassInfo, FileIR, Function, Model, MutexDecl, Param

try:
    from clang import cindex
    _HAVE_CINDEX = True
except ImportError:  # pragma: no cover - exercised only without libclang
    cindex = None
    _HAVE_CINDEX = False

_ANNOT_ARG_RE = re.compile(r"(ACQUIRED_BEFORE|ACQUIRED_AFTER|REQUIRES|REQUIRES_SHARED)"
                           r"\s*\(([^)]*)\)")


def available() -> bool:
    if not _HAVE_CINDEX:
        return False
    try:
        cindex.Index.create()
        return True
    except Exception:  # pragma: no cover - broken libclang install
        return False


# ---------------------------------------------------------------------------
# Compile flags
# ---------------------------------------------------------------------------


def _compile_args(root: str) -> list[str]:
    args = ["-xc++", "-std=c++20", "-ferror-limit=0",
            "-I" + os.path.join(root, "src")]
    cc_path = os.path.join(root, "build", "compile_commands.json")
    try:
        with open(cc_path, encoding="utf-8") as fh:
            entries = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return args
    if not entries:
        return args
    words = entries[0].get("command", "").split() or entries[0].get("arguments", [])
    extra: list[str] = []
    it = iter(range(len(words)))
    for i in it:
        w = words[i]
        if w.startswith(("-I", "-D", "-std=")):
            extra.append(w)
        elif w in ("-I", "-D", "-isystem", "-include") and i + 1 < len(words):
            extra.extend([w, words[i + 1]])
            next(it, None)
    seen = set(args)
    for w in extra:
        if w not in seen:
            args.append(w)
            seen.add(w)
    return args


# ---------------------------------------------------------------------------
# Cursor helpers
# ---------------------------------------------------------------------------


def _qualified_class(cursor) -> str:
    """Name with owning classes prepended ('Broker::Stats'); namespaces are
    dropped, matching the fallback frontend's naming."""
    parts = [cursor.spelling or f"<anon>@{cursor.location.line}"]
    parent = cursor.semantic_parent
    while parent is not None and parent.kind in (
            cindex.CursorKind.CLASS_DECL, cindex.CursorKind.STRUCT_DECL,
            cindex.CursorKind.UNION_DECL, cindex.CursorKind.CLASS_TEMPLATE):
        parts.insert(0, parent.spelling)
        parent = parent.semantic_parent
    return "::".join(parts)


def _type_tokens(type_spelling: str) -> list[str]:
    return [t for t in re.findall(r"[A-Za-z_]\w*", type_spelling)
            if t not in ("const", "volatile", "struct", "class", "std")]


def _annotation_args(cursor, macro_names: tuple) -> list[str]:
    """Pre-expansion source tokens of the cursor's extent, searched for
    annotation macros (they are no-ops after preprocessing)."""
    try:
        text = " ".join(t.spelling for t in cursor.get_tokens())
    except Exception:  # pragma: no cover - extent outside main file
        return []
    out: list[str] = []
    for m in _ANNOT_ARG_RE.finditer(text):
        if m.group(1) in macro_names:
            out.extend(re.findall(r"[A-Za-z_]\w*", m.group(2)))
    return out


def _is_by_value(t) -> bool:
    return t.kind not in (cindex.TypeKind.LVALUEREFERENCE,
                          cindex.TypeKind.RVALUEREFERENCE,
                          cindex.TypeKind.POINTER)


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


class _Lowerer:
    def __init__(self, model: Model, root: str, rel: str, text: str) -> None:
        self.model = model
        self.root = root
        self.rel = rel
        self.text = text
        self.lines = text.split("\n")

    def _offset(self, location) -> Optional[int]:
        try:
            return location.offset
        except Exception:  # pragma: no cover
            return None

    def lower(self, tu) -> None:
        for cursor in tu.cursor.get_children():
            self._walk(cursor, cls=None)

    def _in_this_file(self, cursor) -> bool:
        f = cursor.location.file
        return f is not None and os.path.abspath(f.name) == \
            os.path.abspath(os.path.join(self.root, self.rel))

    def _walk(self, cursor, cls: Optional[ClassInfo]) -> None:
        if not self._in_this_file(cursor):
            return
        kind = cursor.kind
        if kind == cindex.CursorKind.NAMESPACE:
            for child in cursor.get_children():
                self._walk(child, cls=None)
            return
        if kind in (cindex.CursorKind.CLASS_DECL, cindex.CursorKind.STRUCT_DECL,
                    cindex.CursorKind.UNION_DECL):
            if cursor.is_definition():
                self._lower_class(cursor)
            return
        if kind == cindex.CursorKind.ENUM_DECL:
            self._lower_enum(cursor, cls)
            return
        if kind in (cindex.CursorKind.FUNCTION_DECL, cindex.CursorKind.CXX_METHOD,
                    cindex.CursorKind.CONSTRUCTOR, cindex.CursorKind.DESTRUCTOR):
            if cursor.is_definition():
                self._lower_function(cursor)
            return
        if kind == cindex.CursorKind.VAR_DECL and cursor.semantic_parent is not None \
                and cursor.semantic_parent.kind in (cindex.CursorKind.NAMESPACE,
                                                    cindex.CursorKind.TRANSLATION_UNIT):
            if "Mutex" in _type_tokens(cursor.type.spelling):
                self.model.global_mutexes.append(MutexDecl(
                    name=cursor.spelling, cls=None, file=self.rel,
                    line=cursor.location.line,
                    acquired_before=_annotation_args(cursor, ("ACQUIRED_BEFORE",)),
                    acquired_after=_annotation_args(cursor, ("ACQUIRED_AFTER",))))
            return

    def _lower_class(self, cursor) -> None:
        qual = _qualified_class(cursor)
        info = ClassInfo(name=qual, file=self.rel, line=cursor.location.line)
        for child in cursor.get_children():
            ck = child.kind
            if ck == cindex.CursorKind.CXX_BASE_SPECIFIER:
                toks = _type_tokens(child.type.spelling)
                if toks:
                    info.bases.append(toks[-1])
            elif ck == cindex.CursorKind.FIELD_DECL:
                name = child.spelling
                toks = _type_tokens(child.type.spelling)
                if "Mutex" in toks and not any(t in ("MutexLock", "MutexUniqueLock")
                                               for t in toks):
                    info.mutexes[name] = MutexDecl(
                        name=name, cls=qual, file=self.rel, line=child.location.line,
                        acquired_before=_annotation_args(child, ("ACQUIRED_BEFORE",)),
                        acquired_after=_annotation_args(child, ("ACQUIRED_AFTER",)))
                else:
                    if name not in info.fields:
                        info.fields[name] = toks
                        info.field_order.append(name)
            elif ck in (cindex.CursorKind.CXX_METHOD, cindex.CursorKind.CONSTRUCTOR,
                        cindex.CursorKind.DESTRUCTOR):
                info.methods.add(child.spelling)
                reqs = _annotation_args(child, ("REQUIRES", "REQUIRES_SHARED"))
                if reqs and child.spelling not in info.method_requires:
                    info.method_requires[child.spelling] = reqs
                if child.is_definition():
                    self._lower_function(child)
            elif ck in (cindex.CursorKind.CLASS_DECL, cindex.CursorKind.STRUCT_DECL,
                        cindex.CursorKind.UNION_DECL):
                if child.is_definition():
                    self._lower_class(child)
            elif ck == cindex.CursorKind.ENUM_DECL:
                self._lower_enum(child, info)
        self.model.add_class(info)

    def _lower_enum(self, cursor, cls: Optional[ClassInfo]) -> None:
        name = cursor.spelling
        if not name:
            return
        enumerators = [(c.spelling, c.enum_value) for c in cursor.get_children()
                       if c.kind == cindex.CursorKind.ENUM_CONSTANT_DECL]
        key = f"{cls.name}::{name}" if cls else name
        self.model.enums[key] = enumerators
        self.model.enums.setdefault(name, enumerators)

    def _lower_function(self, cursor) -> None:
        fn = Function(name=cursor.spelling, file=self.rel, line=cursor.location.line)
        parent = cursor.semantic_parent
        if parent is not None and parent.kind in (
                cindex.CursorKind.CLASS_DECL, cindex.CursorKind.STRUCT_DECL,
                cindex.CursorKind.UNION_DECL, cindex.CursorKind.CLASS_TEMPLATE):
            fn.cls = _qualified_class(parent)
        fn.return_type_tokens = _type_tokens(cursor.result_type.spelling)
        fn.requires = _annotation_args(cursor, ("REQUIRES", "REQUIRES_SHARED"))
        for arg in cursor.get_arguments():
            fn.params.append(Param(
                name=arg.spelling or "", type_tokens=_type_tokens(arg.type.spelling),
                by_value=_is_by_value(arg.type), line=arg.location.line))

        body = None
        for child in cursor.get_children():
            if child.kind == cindex.CursorKind.COMPOUND_STMT:
                body = child
        if body is None:
            return
        start = self._offset(body.extent.start)
        end = self._offset(body.extent.end)
        if start is None or end is None or end <= start:
            return
        snippet = self.text[start:end]
        base_line = body.extent.start.line - 1
        tokens, _, _ = fb.strip_and_tokenize(snippet)
        tokens = [(k, t, line + base_line) for k, t, line in tokens]
        # Reuse the shared body analyzer over the brace-delimited extent.
        parser = fb._Parser(self.rel, tokens, self.model)
        body_start = 1 if tokens and tokens[0][1] == "{" else 0
        body_end = len(tokens) - 1 if tokens and tokens[-1][1] == "}" else len(tokens)
        parser._analyze_body(fn, body_start, body_end)
        self.model.functions.append(fn)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def build_model(root: str, rel_paths: list[str]) -> Model:
    if not _HAVE_CINDEX:
        raise RuntimeError("clang.cindex is not importable")
    index = cindex.Index.create()
    args = _compile_args(root)
    model = Model()
    for rel in rel_paths:
        full = os.path.join(root, rel)
        try:
            with open(full, encoding="utf-8", errors="replace") as fh:
                text = fh.read()
        except OSError:
            continue
        tokens, suppressions, code_lines = fb.strip_and_tokenize(text)
        model.files[rel] = FileIR(path=rel, tokens=tokens, suppressions=suppressions,
                                  code_lines=code_lines)
        try:
            tu = index.parse(full, args=args)
        except Exception:
            tu = None
        if tu is None:
            # Unparseable through libclang: fall back to the token frontend
            # for this file so nothing is hidden from the rules.
            fb._Parser(rel, tokens, model).parse()
            continue
        _Lowerer(model, root, rel, text).lower(tu)
    model.finalize()
    return model
