"""Self-contained C++ frontend for gryphon-analyze.

A tokenizer plus a scope parser that lowers the repo's C++ into the shared
IR without any compiler dependency.  It is not a general C++ parser; it
handles the dialect this codebase is written in (classes, out-of-line
members, constructor init lists, nested types, annotation macros) and is
the authoritative frontend: the clang.cindex frontend produces the same IR
where libclang is available, and the fixture self-tests pin both to the
same verdicts.
"""

from __future__ import annotations

import re
from typing import Optional

from ir import (AllocSite, CallSite, ClassInfo, FileIR, Function, LocalDecl, LockSite, Model,
                MutexDecl, Param)

SUPPRESS_RE = re.compile(r"gryphon-analyze:\s*allow\((\w+)\)")

TOKEN_RE = re.compile(
    r"""(?P<id>[A-Za-z_]\w*)
      | (?P<num>\.?\d(?:[\w.]|'\d|[eEpP][+-])*)
      | (?P<punct>::|->|\+\+|--|<<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=
                 |\.\.\.|[{}()\[\];:,.<>+\-*/%&|^!~=?])
    """,
    re.VERBOSE,
)

KEYWORDS = {
    "alignas", "alignof", "auto", "bool", "break", "case", "catch", "char", "class", "concept",
    "const", "const_cast", "consteval", "constexpr", "constinit", "continue", "decltype",
    "default", "delete", "do", "double", "dynamic_cast", "else", "enum", "explicit", "extern",
    "false", "float", "for", "friend", "goto", "if", "inline", "int", "long", "mutable",
    "namespace", "new", "noexcept", "nullptr", "operator", "private", "protected", "public",
    "register", "reinterpret_cast", "requires", "return", "short", "signed", "sizeof", "static",
    "static_assert", "static_cast", "struct", "switch", "template", "this", "thread_local",
    "throw", "true", "try", "typedef", "typeid", "typename", "union", "unsigned", "using",
    "virtual", "void", "volatile", "while",
}

ANNOTATION_MACROS = {
    "CAPABILITY", "SCOPED_CAPABILITY", "GUARDED_BY", "PT_GUARDED_BY", "ACQUIRED_BEFORE",
    "ACQUIRED_AFTER", "REQUIRES", "REQUIRES_SHARED", "ACQUIRE", "ACQUIRE_SHARED", "RELEASE",
    "RELEASE_SHARED", "RELEASE_GENERIC", "TRY_ACQUIRE", "TRY_ACQUIRE_SHARED", "EXCLUDES",
    "ASSERT_CAPABILITY", "ASSERT_SHARED_CAPABILITY", "RETURN_CAPABILITY",
    "NO_THREAD_SAFETY_ANALYSIS", "GRYPHON_THREAD_ANNOTATION",
}

GUARD_TYPES = {"MutexLock", "MutexUniqueLock"}

QUALIFIER_TOKENS = {"const", "noexcept", "override", "final", "mutable", "volatile", "&", "&&",
                    "*", "->", "::", "<", ">", ",", "inline", "constexpr", "try"}

ALLOC_CALLS = {"malloc", "calloc", "realloc", "strdup", "aligned_alloc", "make_shared",
               "make_unique"}
GROW_METHODS = {"push_back", "emplace_back", "push_front", "emplace_front", "resize", "reserve",
                "insert", "emplace", "emplace_hint", "assign", "append", "operator+="}
ALLOC_ALGOS = {"stable_sort", "stable_partition", "inplace_merge"}

NON_CALL_BEFORE_PAREN = KEYWORDS | ANNOTATION_MACROS | GUARD_TYPES


# ---------------------------------------------------------------------------
# Stripping and tokenizing
# ---------------------------------------------------------------------------


def strip_and_tokenize(text: str):
    """Remove comments, strings, and preprocessor lines; return
    (tokens, suppressions, code_lines).  Suppressions are collected from
    comment text before it is discarded."""
    suppressions: list[tuple[int, str]] = []
    out: list[str] = []
    i, n = 0, len(text)
    line = 1
    at_line_start = True

    def blank_preprocessor(j: int) -> int:
        nonlocal line
        while j < n:
            c = text[j]
            if c == "\\" and j + 1 < n and text[j + 1] == "\n":
                out.append("\n")
                line += 1
                j += 2
                continue
            if c == "\n":
                return j
            out.append(" ")
            j += 1
        return j

    while i < n:
        c = text[i]
        if at_line_start:
            j = i
            while j < n and text[j] in " \t":
                j += 1
            if j < n and text[j] == "#":
                out.append(" " * (j - i))
                i = blank_preprocessor(j)
                at_line_start = False
                continue
        at_line_start = False
        if c == "\n":
            out.append("\n")
            line += 1
            i += 1
            at_line_start = True
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j < 0:
                j = n
            for m in SUPPRESS_RE.finditer(text[i:j]):
                suppressions.append((line, m.group(1)))
            out.append(" " * (j - i))
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            seg = text[i:j]
            seg_line = line
            for off_line, part in enumerate(seg.split("\n")):
                for m in SUPPRESS_RE.finditer(part):
                    suppressions.append((seg_line + off_line, m.group(1)))
            out.append(re.sub(r"[^\n]", " ", seg))
            line += seg.count("\n")
            i = j
            continue
        if c == '"':
            if out and text[i - 1] == "R":  # raw string R"delim( ... )delim"
                m = re.match(r'R"([^(]*)\(', text[i - 1:])
                if m:
                    end = text.find(")" + m.group(1) + '"', i)
                    end = n if end < 0 else end + len(m.group(1)) + 2
                    seg = text[i:end]
                    out.append(re.sub(r"[^\n]", " ", seg))
                    line += seg.count("\n")
                    i = end
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append('""' + " " * (j - i - 2))
            i = j
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append("''" + " " * (j - i - 2))
            i = j
            continue
        out.append(c)
        i += 1

    stripped = "".join(out)
    tokens: list[tuple[str, str, int]] = []
    code_lines: set = set()
    for lineno, linetext in enumerate(stripped.split("\n"), start=1):
        for m in TOKEN_RE.finditer(linetext):
            kind = m.lastgroup or "punct"
            tokens.append((kind, m.group(0), lineno))
            code_lines.add(lineno)
    return tokens, suppressions, code_lines


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, path: str, tokens: list[tuple[str, str, int]], model: Model) -> None:
        self.path = path
        self.toks = tokens
        self.n = len(tokens)
        self.model = model
        self.i = 0

    # -- token helpers ------------------------------------------------------

    def _t(self, j: int) -> str:
        return self.toks[j][1] if 0 <= j < self.n else ""

    def _kind(self, j: int) -> str:
        return self.toks[j][0] if 0 <= j < self.n else ""

    def _line(self, j: int) -> int:
        return self.toks[j][2] if 0 <= j < self.n else 0

    def _match_group(self, j: int, open_tok: str, close_tok: str) -> int:
        """Given toks[j] == open_tok, return the index after the matching
        close token."""
        depth = 0
        while j < self.n:
            t = self._t(j)
            if t == open_tok:
                depth += 1
            elif t == close_tok:
                depth -= 1
                if depth == 0:
                    return j + 1
            j += 1
        return self.n

    def _skip_angles(self, j: int) -> int:
        """Skip a template argument list starting at `<`."""
        depth = 0
        while j < self.n:
            t = self._t(j)
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return j + 1
            elif t == ">>":
                depth -= 2
                if depth <= 0:
                    return j + 1
            elif t in (";", "{"):
                return j  # bail: not a template list after all
            j += 1
        return self.n

    # -- top-level / scope parsing ------------------------------------------

    def parse(self) -> None:
        self._scope(cls=None, stop_at_brace=False)

    def _scope(self, cls: Optional[ClassInfo], stop_at_brace: bool) -> None:
        while self.i < self.n:
            t = self._t(self.i)
            if t == "}":
                self.i += 1
                if stop_at_brace:
                    return
                continue
            if t == ";":
                self.i += 1
                continue
            if t == "namespace":
                self.i += 1
                while self._kind(self.i) == "id" or self._t(self.i) == "::":
                    self.i += 1
                if self._t(self.i) == "{":
                    self.i += 1
                    self._scope(cls=None, stop_at_brace=True)
                else:  # namespace alias
                    while self.i < self.n and self._t(self.i) != ";":
                        self.i += 1
                continue
            if t == "enum":
                self._parse_enum(cls)
                continue
            if t == "template":
                self.i += 1
                if self._t(self.i) == "<":
                    self.i = self._skip_angles(self.i)
                continue
            if t in ("public", "private", "protected") and self._t(self.i + 1) == ":":
                self.i += 2
                continue
            if t in ("using", "typedef", "static_assert"):
                while self.i < self.n and self._t(self.i) != ";":
                    if self._t(self.i) == "{":
                        self.i = self._match_group(self.i, "{", "}")
                        continue
                    self.i += 1
                continue
            if t in ("class", "struct", "union") and self._is_class_definition():
                self._parse_class(cls)
                continue
            self._parse_declaration(cls)

    def _is_class_definition(self) -> bool:
        """Distinguish `class X { ... }` from `class X;` and `struct X v;`."""
        j = self.i + 1
        while self._kind(j) == "id" or self._t(j) in ("::", "final"):
            j += 1
        if self._t(j) == "<":
            j = self._skip_angles(j)
        if self._t(j) == ":":  # base clause
            while j < self.n and self._t(j) not in ("{", ";"):
                if self._t(j) == "<":
                    j = self._skip_angles(j)
                    continue
                j += 1
        return self._t(j) == "{"

    def _parse_class(self, outer: Optional[ClassInfo]) -> None:
        line = self._line(self.i)
        self.i += 1  # class/struct/union
        name = None
        while self._kind(self.i) == "id" and self._t(self.i) not in ("final",):
            name = self._t(self.i)
            self.i += 1
            if self._t(self.i) == "::":
                self.i += 1
                continue
            break
        if self._t(self.i) == "final":
            self.i += 1
        bases: list[str] = []
        if self._t(self.i) == ":":
            self.i += 1
            while self.i < self.n and self._t(self.i) != "{":
                if self._t(self.i) == "<":
                    self.i = self._skip_angles(self.i)
                    continue
                if self._kind(self.i) == "id" and self._t(self.i) not in (
                        "public", "private", "protected", "virtual", "std"):
                    # The last identifier of each base path wins.
                    if self._t(self.i + 1) in (",", "{", "<"):
                        bases.append(self._t(self.i))
                self.i += 1
        if self._t(self.i) != "{":
            while self.i < self.n and self._t(self.i) != ";":
                self.i += 1
            return
        qual = f"{outer.name}::{name}" if (outer and name) else (name or f"<anon>@{line}")
        info = ClassInfo(name=qual, file=self.path, line=line, bases=bases)
        self.i += 1  # {
        self._scope(cls=info, stop_at_brace=True)
        self.model.add_class(info)
        while self.i < self.n and self._t(self.i) != ";":  # `} name;` declarators
            self.i += 1

    def _parse_enum(self, cls: Optional[ClassInfo]) -> None:
        self.i += 1  # enum
        if self._t(self.i) in ("class", "struct"):
            self.i += 1
        name = None
        if self._kind(self.i) == "id":
            name = self._t(self.i)
            self.i += 1
        if self._t(self.i) == ":":  # underlying type
            while self.i < self.n and self._t(self.i) not in ("{", ";"):
                self.i += 1
        if self._t(self.i) != "{":
            while self.i < self.n and self._t(self.i) != ";":
                self.i += 1
            return
        self.i += 1
        enumerators: list[tuple[str, int]] = []
        value = -1
        while self.i < self.n and self._t(self.i) != "}":
            if self._kind(self.i) == "id":
                ename = self._t(self.i)
                self.i += 1
                if self._t(self.i) == "=":
                    self.i += 1
                    expr: list[str] = []
                    while self.i < self.n and self._t(self.i) not in (",", "}"):
                        expr.append(self._t(self.i))
                        self.i += 1
                    try:
                        value = int("".join(expr), 0)
                    except ValueError:
                        value += 1
                else:
                    value += 1
                enumerators.append((ename, value))
            else:
                self.i += 1
        self.i += 1  # }
        if name:
            key = f"{cls.name}::{name}" if cls else name
            self.model.enums[key] = enumerators
            self.model.enums.setdefault(name, enumerators)

    # -- declarations -------------------------------------------------------

    def _parse_declaration(self, cls: Optional[ClassInfo]) -> None:
        """Parse one class/namespace-scope declaration: a member variable, a
        method/function declaration, or a definition with a body."""
        start = self.i
        declarator: Optional[str] = None
        decl_chain: list[str] = []
        decl_line = self._line(self.i)
        params_start = params_end = -1
        requires: list[str] = []
        macro_args: dict[str, list[str]] = {}
        after_params = False

        while self.i < self.n:
            t = self._t(self.i)
            if t == "[" and self._t(self.i + 1) == "[":  # [[nodiscard]] etc.
                self.i = self._match_group(self.i, "[", "]")
                if self._t(self.i) == "]":
                    self.i += 1
                continue
            if t == "<" and not after_params:
                nxt = self._skip_angles(self.i)
                if nxt > self.i + 1:
                    self.i = nxt
                    continue
                self.i += 1
                continue
            if t == "(":
                prev = self._t(self.i - 1)
                prev_kind = self._kind(self.i - 1)
                group_end = self._match_group(self.i, "(", ")")
                if prev in ANNOTATION_MACROS:
                    args = [self._t(j) for j in range(self.i + 1, group_end - 1)
                            if self._kind(j) == "id"]
                    macro_args.setdefault(prev, []).extend(args)
                    if prev in ("REQUIRES", "REQUIRES_SHARED"):
                        requires.extend(args)
                    self.i = group_end
                    continue
                if declarator is None and prev_kind == "id" and prev not in NON_CALL_BEFORE_PAREN:
                    declarator = prev
                    decl_line = self._line(self.i - 1)
                    j = self.i - 1
                    if self._t(j - 1) == "~":  # destructor
                        declarator = "~" + declarator
                        j -= 1
                    chain: list[str] = []
                    while self._t(j - 1) == "::" and self._kind(j - 2) == "id":
                        chain.insert(0, self._t(j - 2))
                        j -= 2
                    decl_chain = chain
                    params_start, params_end = self.i, group_end
                    self.i = group_end
                    after_params = True
                    continue
                if declarator is None and prev == "operator" or (
                        declarator is None and self._t(self.i - 2) == "operator"):
                    declarator = "operator" + (prev if prev != "operator" else "()")
                    decl_line = self._line(self.i - 1)
                    params_start, params_end = self.i, group_end
                    self.i = group_end
                    after_params = True
                    continue
                self.i = group_end
                continue
            if t == ":" and after_params and self._t(self.i + 1) != ":":
                # Constructor initializer list.
                self.i += 1
                self._skip_init_list()
                if self._t(self.i) == "{":
                    self._finish_function(declarator, decl_chain, decl_line, start,
                                          params_start, params_end, requires, cls)
                    return
                continue
            if t == "{":
                if declarator is not None and after_params:
                    self._finish_function(declarator, decl_chain, decl_line, start,
                                          params_start, params_end, requires, cls)
                    return
                self.i = self._match_group(self.i, "{", "}")  # brace initializer
                continue
            if t == ";":
                stmt = list(range(start, self.i))
                self.i += 1
                if declarator is not None:
                    if cls is not None:
                        cls.methods.add(declarator)
                        if requires:
                            cls.method_requires.setdefault(declarator, requires)
                else:
                    self._parse_member(stmt, cls, macro_args)
                return
            if t == "=":
                # `= default`, `= delete`, `= 0`, or a member initializer.
                self.i += 1
                continue
            self.i += 1
        # EOF fallthrough

    def _skip_init_list(self) -> None:
        """Consume a ctor init list; stop with self.i at the body `{`."""
        while self.i < self.n:
            while self._kind(self.i) == "id" or self._t(self.i) == "::":
                self.i += 1
            if self._t(self.i) == "<":
                self.i = self._skip_angles(self.i)
                continue
            if self._t(self.i) == "(":
                self.i = self._match_group(self.i, "(", ")")
            elif self._t(self.i) == "{":
                # `{` directly after an identifier is a member brace-init;
                # otherwise it is the constructor body.
                if self._kind(self.i - 1) == "id" or self._t(self.i - 1) in (">", "::"):
                    self.i = self._match_group(self.i, "{", "}")
                else:
                    return
            if self._t(self.i) == ",":
                self.i += 1
                continue
            if self._t(self.i) == "{":
                return
            if self._t(self.i) in (";", "}"):
                return
            self.i += 1

    def _parse_member(self, stmt: list[int], cls: Optional[ClassInfo],
                      macro_args: dict[str, list[str]]) -> None:
        toks = [(self._t(j), self._line(j)) for j in stmt]
        words = [t for t, _ in toks]
        if not words or words[0] in ("friend", "using", "typedef", "extern"):
            return
        if "Mutex" in words:
            mi = words.index("Mutex")
            if mi + 1 < len(words) and re.match(r"[A-Za-z_]\w*$", words[mi + 1]):
                decl = MutexDecl(
                    name=words[mi + 1],
                    cls=cls.name if cls else None,
                    file=self.path,
                    line=toks[mi][1],
                    acquired_before=macro_args.get("ACQUIRED_BEFORE", []),
                    acquired_after=macro_args.get("ACQUIRED_AFTER", []),
                )
                if cls is not None:
                    cls.mutexes[decl.name] = decl
                else:
                    self.model.global_mutexes.append(decl)
                return
        if cls is None:
            return
        # Field: strip trailing initializer and annotation macros, the last
        # identifier left is the name.
        end = len(words)
        depth = 0
        cut = end
        for j in range(end):
            t = words[j]
            if t in "([{":
                depth += 1
            elif t in ")]}":
                depth -= 1
            elif t == "=" and depth == 0:
                cut = j
                break
        words = words[:cut]
        toks = toks[:cut]
        # Drop annotation-macro groups and brace initializers from the tail.
        j = len(words)
        while j > 0:
            if words[j - 1] in ("}",):
                depth = 0
                k = j - 1
                while k >= 0:
                    if words[k] == "}":
                        depth += 1
                    elif words[k] == "{":
                        depth -= 1
                        if depth == 0:
                            break
                    k -= 1
                j = k
                continue
            if words[j - 1] == ")":
                depth = 0
                k = j - 1
                while k >= 0:
                    if words[k] == ")":
                        depth += 1
                    elif words[k] == "(":
                        depth -= 1
                        if depth == 0:
                            break
                    k -= 1
                if k > 0 and words[k - 1] in ANNOTATION_MACROS:
                    j = k - 1
                    continue
                break
            break
        words = words[:j]
        toks = toks[:j]
        name = None
        for k in range(len(words) - 1, -1, -1):
            if re.match(r"[A-Za-z_]\w*$", words[k]) and words[k] not in KEYWORDS:
                name = words[k]
                type_tokens = [w for w in words[:k] if w not in ("static", "constexpr", "inline",
                                                                "mutable", "const")]
                break
        if name and cls is not None and name not in cls.fields:
            cls.fields[name] = type_tokens
            cls.field_order.append(name)

    # -- function bodies ----------------------------------------------------

    def _finish_function(self, declarator: str, chain: list[str], line: int, start: int,
                         params_start: int, params_end: int, requires: list[str],
                         cls: Optional[ClassInfo]) -> None:
        fn = Function(name=declarator, file=self.path, line=line)
        fn.qualifier_chain = chain
        if cls is not None:
            fn.cls = cls.name
            cls.methods.add(declarator)
        fn.requires = list(requires)
        fn.return_type_tokens = [
            self._t(j) for j in range(start, max(start, params_start - 1 - 2 * len(chain)))
            if self._kind(j) == "id" and self._t(j) not in KEYWORDS
        ]
        if params_start >= 0:
            self._parse_params(fn, params_start, params_end)
        body_start = self.i
        body_end = self._match_group(self.i, "{", "}")
        self._analyze_body(fn, body_start + 1, body_end - 1)
        self.i = body_end
        self.model.functions.append(fn)

    def _parse_params(self, fn: Function, start: int, end: int) -> None:
        """`start` indexes `(`, `end` is one past `)`."""
        groups: list[list[int]] = [[]]
        depth = 0
        for j in range(start + 1, end - 1):
            t = self._t(j)
            if t in "([{" or t == "<":
                depth += 1
            elif t in ")]}" or t == ">":
                depth -= 1
            elif t == ">>":
                depth -= 2
            elif t == "," and depth <= 0:
                groups.append([])
                continue
            groups[-1].append(j)
        for g in groups:
            if not g:
                continue
            words = [self._t(j) for j in g]
            name = None
            for k in range(len(words) - 1, -1, -1):
                if re.match(r"[A-Za-z_]\w*$", words[k]) and words[k] not in KEYWORDS:
                    name = words[k]
                    break
            if name is None:
                continue
            type_tokens = [w for w in words[:k] if re.match(r"[A-Za-z_]\w*$", w)
                           and w not in ("const", "struct", "class", "typename")]
            by_value = "&" not in words[:k + 1] and "*" not in words[:k + 1] and \
                       "&&" not in words[:k + 1]
            fn.params.append(Param(name=name, type_tokens=type_tokens, by_value=by_value,
                                   line=self._line(g[0])))

    def _analyze_body(self, fn: Function, start: int, end: int) -> None:
        depth = 0
        j = start
        pending_lambda: set = set()  # indices of `{` tokens that open lambda bodies
        lambda_depths: list[int] = []
        while j < end:
            kind, t, line = self.toks[j]
            if t == "[" and self._t(j - 1) not in (")", "]") and self._kind(j - 1) != "id":
                # Lambda introducer: `[caps] (params)? specifiers? { ... }`.
                b = self._match_group(j, "[", "]")
                if self._t(b) == "(":
                    b = self._match_group(b, "(", ")")
                steps = 0
                while b < end and steps < 12 and self._t(b) not in ("{", ";", ")", ","):
                    if self._t(b) == "<":
                        b = self._skip_angles(b)
                        continue
                    b += 1
                    steps += 1
                if self._t(b) == "{":
                    pending_lambda.add(b)
            if t == "{":
                depth += 1
                if j in pending_lambda:
                    lambda_depths.append(depth)
                j += 1
                continue
            if t == "}":
                depth -= 1
                if lambda_depths and lambda_depths[-1] == depth + 1:
                    lambda_depths.pop()
                fn.events.append(("close", depth, line))
                j += 1
                continue
            if t == "new":
                fn.allocs.append(AllocSite(kind="new", detail="operator new", line=line))
                fn.token_seq.append((t, line))
                j += 1
                continue
            if kind == "id":
                fn.token_seq.append((t, line))
                fn.idents.setdefault(t, line)

                # Guard declarations: MutexLock lock(expr);
                if t in GUARD_TYPES and self._kind(j + 1) == "id" and self._t(j + 2) == "(":
                    gvar = self._t(j + 1)
                    gend = self._match_group(j + 2, "(", ")")
                    expr = [self._t(k) for k in range(j + 3, gend - 1) if self._kind(k) == "id"]
                    site = LockSite(kind="guard", target=expr, guard_var=gvar, depth=depth,
                                    line=line)
                    fn.locks.append(site)
                    fn.events.append(("lock", site))
                    for k in range(j + 3, gend - 1):
                        if self._kind(k) == "id":
                            fn.token_seq.append((self._t(k), self._line(k)))
                            fn.idents.setdefault(self._t(k), self._line(k))
                    j = gend
                    continue

                # Local declarations: Type name(=|(|{|;|:)
                consumed = self._try_local_decl(fn, j, end, depth, bool(lambda_depths))
                if consumed:
                    j = consumed
                    continue

                # Calls: identifier followed by `(`.
                if self._t(j + 1) == "(" and t not in NON_CALL_BEFORE_PAREN:
                    call = self._make_call(fn, j, depth)
                    if call is not None:
                        call.in_lambda = bool(lambda_depths)
                        if call.name in ("lock", "unlock", "try_lock") and call.receiver_chain:
                            site = LockSite(kind="unlock" if call.name == "unlock" else "lock",
                                            target=list(call.receiver_chain), guard_var=None,
                                            depth=depth, line=line)
                            fn.locks.append(site)
                            fn.events.append(("lock", site))
                        else:
                            fn.calls.append(call)
                            fn.events.append(("call", call))
                            self._record_alloc_for_call(fn, call, line)
                j += 1
                continue
            if kind != "id":
                fn.token_seq.append((t, line))
            j += 1

    def _record_alloc_for_call(self, fn: Function, call: CallSite, line: int) -> None:
        if call.name in ALLOC_CALLS:
            fn.allocs.append(AllocSite(kind="call", detail=call.name, line=line))
        elif call.name in ALLOC_ALGOS:
            fn.allocs.append(AllocSite(kind="algorithm", detail=call.name, line=line))
        elif call.name in GROW_METHODS and (call.receiver_chain or call.explicit_chain):
            recv = ".".join(call.receiver_chain) or "::".join(call.explicit_chain)
            fn.allocs.append(AllocSite(kind="grow", detail=f"{recv}.{call.name}", line=line))

    def _try_local_decl(self, fn: Function, j: int, end: int, depth: int,
                        in_lambda: bool = False) -> Optional[int]:
        """Recognize `[const] Type [*&]* name (init)` at a statement start.
        Returns the index just past the declared name (so the initializer is
        still scanned for calls), or None."""
        prev = self._t(j - 1)
        prev2 = self._t(j - 2)
        stmt_start = prev in (";", "{", "}") or \
            (prev == "const" and prev2 in (";", "{", "}", "(")) or \
            (prev == "(" and prev2 in ("for", "if", "while", "switch"))
        if not stmt_start:
            return None
        t = self._t(j)
        if t in KEYWORDS and t != "auto":
            return None
        # Scan type tokens.
        k = j
        type_tokens: list[str] = []
        while k < end:
            tk = self._t(k)
            if self._kind(k) == "id" and tk not in KEYWORDS:
                type_tokens.append(tk)
                k += 1
            elif tk == "auto" or tk == "const":
                k += 1
            elif tk == "::":
                k += 1
            elif tk == "<":
                close = self._skip_angles(k)
                for m in range(k, close):
                    if self._kind(m) == "id":
                        type_tokens.append(self._t(m))
                k = close
            elif tk in ("*", "&", "&&"):
                k += 1
            else:
                break
        if k <= j or k >= end or len(type_tokens) < 1:
            return None
        # The declared name is the LAST identifier scanned; everything before
        # it is the type.  Need at least type + name, or `auto name`.
        name = type_tokens[-1] if type_tokens else None
        had_auto = "auto" in [self._t(m) for m in range(j, k)]
        if name is None:
            return None
        if len(type_tokens) < 2 and not had_auto:
            return None
        terminator = self._t(k)
        if terminator not in ("=", "(", "{", ";", ":"):
            return None
        if terminator == "(" and len(type_tokens) < 2:
            return None  # `name(...)` alone is a call, not a decl
        tokens_before_name = type_tokens[:-1]
        has_init = terminator in ("=", "(", "{")
        init_call = None
        if terminator == "=" and self._kind(k + 1) == "id" and self._t(k + 2) == "(":
            init_call = self._t(k + 1)
        elif terminator == "=":
            # `auto x = compiled_for(...)` / `auto x = ns::call(...)`: find
            # the last identifier before the first `(` of the initializer.
            # Member-access initializers (`auto it = map_.find(...)`) are
            # skipped: the callee is almost always a std container method
            # whose return type would mistype the local.
            m = k + 1
            last_id = None
            last_id_member = False
            while m < end and self._t(m) not in (";", ","):
                if self._kind(m) == "id":
                    last_id = self._t(m)
                    last_id_member = self._t(m - 1) in (".", "->")
                elif self._t(m) == "(":
                    if not last_id_member:
                        init_call = last_id
                    break
                m += 1
        by_value = not any(self._t(m) in ("*", "&", "&&") for m in range(j, k))
        decl = LocalDecl(name=name, type_tokens=tokens_before_name, has_init=has_init,
                         init_call=init_call, line=self._line(k - 1), by_value=by_value)
        fn.locals.setdefault(name, decl)
        if terminator == "(" and tokens_before_name:
            # `Type var(args)`: record a constructor pseudo-call.
            call = CallSite(name=tokens_before_name[-1], line=self._line(j), depth=depth,
                            is_construct=True, in_lambda=in_lambda)
            fn.calls.append(call)
            fn.events.append(("call", call))
        for m in range(j, k):
            if self._kind(m) == "id":
                fn.token_seq.append((self._t(m), self._line(m)))
                fn.idents.setdefault(self._t(m), self._line(m))
        return k

    def _make_call(self, fn: Function, j: int, depth: int) -> Optional[CallSite]:
        name = self._t(j)
        line = self._line(j)
        prev = self._t(j - 1)
        call = CallSite(name=name, line=line, depth=depth)
        if prev == "::":
            chain: list[str] = []
            k = j
            while self._t(k - 1) == "::" and self._kind(k - 2) == "id":
                chain.insert(0, self._t(k - 2))
                k -= 2
            call.explicit_chain = chain
            return call
        if prev in (".", "->"):
            chain = []
            k = j - 1
            while k > 0 and self._t(k) in (".", "->"):
                k -= 1
                if self._t(k) == "]":
                    dd = 0
                    while k >= 0:
                        if self._t(k) == "]":
                            dd += 1
                        elif self._t(k) == "[":
                            dd -= 1
                            if dd == 0:
                                break
                        k -= 1
                    k -= 1
                if self._t(k) == ")":
                    dd = 0
                    while k >= 0:
                        if self._t(k) == ")":
                            dd += 1
                        elif self._t(k) == "(":
                            dd -= 1
                            if dd == 0:
                                break
                        k -= 1
                    k -= 1
                if self._kind(k) != "id":
                    break
                elem = self._t(k)
                if elem == "this":
                    call.receiver_is_this = True
                    break
                chain.insert(0, elem)
                k -= 1
                if self._t(k) not in (".", "->"):
                    break
            call.receiver_chain = chain
            return call
        return call


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def parse_into(model: Model, rel_path: str, text: str) -> None:
    tokens, suppressions, code_lines = strip_and_tokenize(text)
    fir = FileIR(path=rel_path, tokens=tokens, suppressions=suppressions,
                 code_lines=code_lines)
    model.files[rel_path] = fir
    _Parser(rel_path, tokens, model).parse()


def build_model(root: str, rel_paths: list[str]) -> Model:
    import os

    model = Model()
    for rel in rel_paths:
        full = os.path.join(root, rel)
        try:
            with open(full, "r", encoding="utf-8", errors="replace") as fh:
                text = fh.read()
        except OSError:
            continue
        parse_into(model, rel, text)
    model.finalize()
    return model
