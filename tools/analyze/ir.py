"""Shared intermediate representation for gryphon-analyze.

Both frontends lower C++ translation units into this IR: the clang.cindex
frontend when libclang is importable, and the self-contained tokenizer /
scope-parser fallback otherwise.  Every rule consumes only the IR, so a
verdict never depends on which frontend produced the model.

The model is deliberately coarser than a full AST.  It captures exactly
what the four rules need:

  * functions with class membership, parameters, locals, call sites,
    lock sites, allocation sites, and the raw body token stream;
  * classes with fields (typed by token), mutex members (with declared
    ACQUIRED_BEFORE / ACQUIRED_AFTER order), methods, and bases;
  * enums with enumerator values;
  * per-file token streams and `gryphon-analyze: allow(tag)` suppressions.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional


# ---------------------------------------------------------------------------
# Leaf records
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class CallSite:
    """One call expression inside a function body."""

    name: str  # rightmost identifier of the callee
    line: int
    depth: int  # brace depth inside the body at the site
    explicit_chain: list[str] = dataclasses.field(default_factory=list)  # A::B::f -> [A, B]
    receiver_chain: list[str] = dataclasses.field(default_factory=list)  # a.b_.f -> [a, b_]
    receiver_is_this: bool = False
    is_construct: bool = False  # `Type var(args)` local construction
    in_lambda: bool = False  # site is inside a lambda body (may run deferred)


@dataclasses.dataclass
class LockSite:
    """A guard declaration or a manual lock()/unlock() on a guard variable."""

    kind: str  # "guard" | "lock" | "unlock"
    target: list[str]  # identifiers of the mutex expression, or [guard_var]
    guard_var: Optional[str]
    depth: int
    line: int


@dataclasses.dataclass
class AllocSite:
    """A heap-allocating expression the hot-path rule cares about."""

    kind: str  # "new" | "call" | "grow" | "algorithm"
    detail: str
    line: int


@dataclasses.dataclass
class Param:
    name: str
    type_tokens: list[str]
    by_value: bool
    line: int
    type_class: Optional[str] = None  # resolved during Model.finalize


@dataclasses.dataclass
class LocalDecl:
    name: str
    type_tokens: list[str]
    has_init: bool
    init_call: Optional[str]  # callee name when initialized from one call
    line: int
    by_value: bool = True  # False for reference / pointer declarations
    type_class: Optional[str] = None


@dataclasses.dataclass
class Function:
    name: str
    file: str  # repo-relative posix path
    line: int
    cls: Optional[str] = None  # owning class (qualified), resolved in finalize
    qualifier_chain: list[str] = dataclasses.field(default_factory=list)  # X::Y::name -> [X, Y]
    return_type_tokens: list[str] = dataclasses.field(default_factory=list)
    params: list[Param] = dataclasses.field(default_factory=list)
    locals: dict[str, LocalDecl] = dataclasses.field(default_factory=dict)
    calls: list[CallSite] = dataclasses.field(default_factory=list)
    locks: list[LockSite] = dataclasses.field(default_factory=list)
    allocs: list[AllocSite] = dataclasses.field(default_factory=list)
    idents: dict[str, int] = dataclasses.field(default_factory=dict)  # body ident -> first line
    token_seq: list[tuple[str, int]] = dataclasses.field(default_factory=list)
    # Ordered replay stream for the lock rule: ("lock", LockSite),
    # ("call", CallSite), ("close", depth, line).
    events: list[tuple] = dataclasses.field(default_factory=list)
    requires: list[str] = dataclasses.field(default_factory=list)  # REQUIRES(...) args
    is_definition: bool = True

    @property
    def qualname(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name


@dataclasses.dataclass
class MutexDecl:
    name: str
    cls: Optional[str]  # owning class (qualified); None for namespace-scope mutexes
    file: str
    line: int
    acquired_before: list[str] = dataclasses.field(default_factory=list)
    acquired_after: list[str] = dataclasses.field(default_factory=list)

    @property
    def identity(self) -> str:
        if self.cls:
            return f"{self.cls}::{self.name}"
        return f"{self.name}@{os.path.basename(self.file)}"


@dataclasses.dataclass
class ClassInfo:
    name: str  # qualified with the outer class for nested types ("Broker::Stats")
    file: str
    line: int
    bases: list[str] = dataclasses.field(default_factory=list)
    fields: dict[str, list[str]] = dataclasses.field(default_factory=dict)
    field_order: list[str] = dataclasses.field(default_factory=list)
    mutexes: dict[str, MutexDecl] = dataclasses.field(default_factory=dict)
    methods: set = dataclasses.field(default_factory=set)
    method_requires: dict[str, list[str]] = dataclasses.field(default_factory=dict)

    @property
    def plain(self) -> str:
        return self.name.rsplit("::", 1)[-1]


@dataclasses.dataclass
class FileIR:
    path: str  # repo-relative posix path
    tokens: list[tuple[str, str, int]] = dataclasses.field(default_factory=list)
    suppressions: list[tuple[int, str]] = dataclasses.field(default_factory=list)
    code_lines: set = dataclasses.field(default_factory=set)

    def suppressed(self, line: int, tag: str) -> bool:
        """True when `line` is covered by an allow(tag) suppression.

        A suppression covers its own line and the next line that carries
        code, provided only comment/blank lines sit in between (the idiom
        is a comment block directly above the allocating statement).
        """
        for s_line, s_tag in self.suppressions:
            if s_tag != tag or s_line > line:
                continue
            if s_line == line:
                return True
            between = [l for l in self.code_lines if s_line <= l < line]
            if not between:
                return True
        return False


# ---------------------------------------------------------------------------
# Model
# ---------------------------------------------------------------------------

_EXTERNAL = ("external", [])


class Model:
    """The merged whole-repo model plus the conservative call resolver."""

    def __init__(self) -> None:
        self.files: dict[str, FileIR] = {}
        self.functions: list[Function] = []
        self.classes: dict[str, ClassInfo] = {}  # qualified name -> info
        self.enums: dict[str, list[tuple[str, int]]] = {}
        self.global_mutexes: list[MutexDecl] = []
        # Indices built by finalize():
        self.by_qualname: dict[str, list[Function]] = {}
        self.by_name: dict[str, list[Function]] = {}
        self.plain_classes: dict[str, list[str]] = {}
        self.derived: dict[str, set] = {}  # qualified base -> transitive derived set
        self.field_types: dict[str, set] = {}  # field name -> set of resolved type classes
        self.mutex_index: dict[str, MutexDecl] = {}  # identity -> decl

    # -- construction -------------------------------------------------------

    def add_class(self, info: ClassInfo) -> None:
        existing = self.classes.get(info.name)
        if existing is None:
            self.classes[info.name] = info
            return
        # Merge redeclarations (e.g. a header seen from several TUs).
        existing.bases = existing.bases or info.bases
        for fname, ftoks in info.fields.items():
            existing.fields.setdefault(fname, ftoks)
            if fname not in existing.field_order:
                existing.field_order.append(fname)
        for mname, mdecl in info.mutexes.items():
            existing.mutexes.setdefault(mname, mdecl)
        existing.methods |= info.methods
        for mname, reqs in info.method_requires.items():
            existing.method_requires.setdefault(mname, reqs)

    # -- finalize -----------------------------------------------------------

    def finalize(self) -> None:
        self.plain_classes = {}
        for qual in self.classes:
            self.plain_classes.setdefault(qual.rsplit("::", 1)[-1], []).append(qual)

        # Transitive derived-class map (for virtual call unions).
        direct: dict[str, set] = {}
        for qual, info in self.classes.items():
            for base in info.bases:
                base_qual = self._resolve_class(base, context=qual)
                if base_qual:
                    direct.setdefault(base_qual, set()).add(qual)
        self.derived = {}
        for base in direct:
            seen: set = set()
            stack = list(direct.get(base, ()))
            while stack:
                d = stack.pop()
                if d in seen:
                    continue
                seen.add(d)
                stack.extend(direct.get(d, ()))
            self.derived[base] = seen

        # Attach out-of-line definitions to their classes and merge
        # declaration-site REQUIRES annotations.
        for fn in self.functions:
            if fn.cls is None and fn.qualifier_chain:
                fn.cls = self._resolve_class(fn.qualifier_chain[-1], context=None) \
                    or "::".join(fn.qualifier_chain)
            if fn.cls:
                info = self.classes.get(fn.cls)
                if info is not None:
                    info.methods.add(fn.name)
                    decl_reqs = info.method_requires.get(fn.name)
                    if decl_reqs:
                        for r in decl_reqs:
                            if r not in fn.requires:
                                fn.requires.append(r)

        self.by_qualname = {}
        self.by_name = {}
        for fn in self.functions:
            self.by_qualname.setdefault(fn.qualname, []).append(fn)
            self.by_name.setdefault(fn.name, []).append(fn)

        # Resolve declared types for params, locals and fields.
        for fn in self.functions:
            for p in fn.params:
                p.type_class = self._resolve_type(p.type_tokens, context=fn.cls)
            for loc in fn.locals.values():
                loc.type_class = self._resolve_type(loc.type_tokens, context=fn.cls)
        self.field_types = {}
        for qual, info in self.classes.items():
            for fname, ftoks in info.fields.items():
                t = self._resolve_type(ftoks, context=qual)
                if t:
                    self.field_types.setdefault(fname, set()).add(t)

        # `auto x = call(...)` typing via a unique return type.
        for fn in self.functions:
            for loc in fn.locals.values():
                if loc.type_class is None and loc.init_call:
                    rets = set()
                    for cand in self.by_name.get(loc.init_call, []):
                        r = self._resolve_type(cand.return_type_tokens, context=cand.cls)
                        if r:
                            rets.add(r)
                    if len(rets) == 1:
                        loc.type_class = next(iter(rets))

        self.mutex_index = {}
        for info in self.classes.values():
            for mdecl in info.mutexes.values():
                self.mutex_index[mdecl.identity] = mdecl
        for mdecl in self.global_mutexes:
            self.mutex_index[mdecl.identity] = mdecl

    # -- type helpers -------------------------------------------------------

    def _resolve_class(self, name: str, context: Optional[str]) -> Optional[str]:
        """Map a plain class name to its qualified form."""
        if name in self.classes:
            return name
        if context:
            # Prefer a nested sibling: Broker::Stats from inside Broker.
            outer = context
            while True:
                nested = f"{outer}::{name}"
                if nested in self.classes:
                    return nested
                if "::" not in outer:
                    break
                outer = outer.rsplit("::", 1)[0]
        cands = self.plain_classes.get(name, [])
        if len(cands) == 1:
            return cands[0]
        return None

    def _resolve_type(self, tokens: list[str], context: Optional[str]) -> Optional[str]:
        """Pick the class a declaration's type tokens denote.

        The rightmost token naming a known class wins, which handles both
        plain declarations (`const FrozenBucket* b`) and smart-pointer /
        container wrappers (`std::shared_ptr<const CompiledAnnotation>`).
        """
        for tok in reversed(tokens):
            resolved = self._resolve_class(tok, context)
            if resolved:
                return resolved
        return None

    def class_methods(self, qual: str, name: str, virtual: bool = True) -> list[Function]:
        """Methods `name` on `qual`, its bases, and (virtual) its overrides."""
        out: list[Function] = []
        seen_classes: set = set()
        stack = [qual]
        if virtual:
            stack.extend(self.derived.get(qual, ()))
        # Walk bases upward from every candidate class.
        while stack:
            c = stack.pop()
            if c in seen_classes:
                continue
            seen_classes.add(c)
            out.extend(self.by_qualname.get(f"{c}::{name}", []))
            info = self.classes.get(c)
            if info:
                for base in info.bases:
                    bq = self._resolve_class(base, context=c)
                    if bq:
                        stack.append(bq)
        return out

    # -- mutex resolution ---------------------------------------------------

    def mutex_identity(self, fn: Function, expr: list[str]) -> Optional[str]:
        """Resolve a lock-expression to a mutex identity, or None."""
        if not expr:
            return None
        name = expr[-1]
        # Member of the enclosing class (or an outer class for nested types).
        ctx = fn.cls
        while ctx:
            info = self.classes.get(ctx)
            if info and name in info.mutexes:
                return info.mutexes[name].identity
            ctx = ctx.rsplit("::", 1)[0] if "::" in ctx else None
        # Qualified access `Other::mutex_` or member-of-member: unique owner.
        owners = [
            info.mutexes[name].identity
            for info in self.classes.values()
            if name in info.mutexes
        ]
        if len(owners) == 1 and len(expr) > 1:
            return owners[0]
        # Namespace-scope mutex in the same file.
        for g in self.global_mutexes:
            if g.name == name and g.file == fn.file:
                return g.identity
        for g in self.global_mutexes:
            if g.name == name:
                return g.identity
        return None

    # -- call resolution ----------------------------------------------------

    def resolve_call(self, fn: Function, call: CallSite, never_traverse: set,
                     call_aliases: dict[str, str]) -> tuple[str, list[Function]]:
        """Conservatively resolve a call site to candidate functions.

        Returns ("resolved", targets) or ("external", []).  The hierarchy:
        explicit qualification, receiver typing through locals / params /
        fields, unique field-name typing, enclosing-class methods, free
        functions, configured macro aliases, then an all-functions-by-name
        union.  Names in `never_traverse` (std container vocabulary) go
        external when nothing typed them first.
        """
        name = call.name
        if name in call_aliases:
            name = call_aliases[name]
            return ("resolved", [f for f in self.by_name.get(name, []) if f.cls is None]) \
                if self.by_name.get(name) else _EXTERNAL

        if call.explicit_chain:
            if call.explicit_chain[0] == "std":
                return _EXTERNAL
            qual = self._resolve_class(call.explicit_chain[-1], context=fn.cls)
            if qual:
                targets = self.class_methods(qual, name, virtual=False)
                return ("resolved", targets) if targets else _EXTERNAL
            # Namespace qualification (gryphon::f, wire::f): free functions.
            frees = [f for f in self.by_name.get(name, []) if f.cls is None]
            if frees:
                return ("resolved", frees)
            return self._fallback(name, never_traverse)

        if call.receiver_is_this and fn.cls:
            targets = self.class_methods(fn.cls, name)
            if targets:
                return ("resolved", targets)
            return self._fallback(name, never_traverse)

        if call.receiver_chain:
            cls = self._type_of_chain(fn, call.receiver_chain)
            if cls:
                targets = self.class_methods(cls, name)
                if targets:
                    return ("resolved", targets)
                return _EXTERNAL  # typed receiver, unknown method: std/stdlib type
            return self._fallback(name, never_traverse)

        # Unqualified call.
        if call.is_construct:
            qual = self._resolve_class(name, context=fn.cls)
            if qual:
                return ("resolved", self.by_qualname.get(f"{qual}::{name.rsplit('::', 1)[-1]}",
                                                         self.by_qualname.get(f"{qual}::{qual.rsplit('::', 1)[-1]}", [])))
            return _EXTERNAL
        if fn.cls:
            targets = self.class_methods(fn.cls, name)
            if targets:
                return ("resolved", targets)
        frees = [f for f in self.by_name.get(name, []) if f.cls is None]
        if frees:
            return ("resolved", frees)
        qual = self._resolve_class(name, context=fn.cls)
        if qual:  # unqualified constructor call `Type(...)`
            ctor = self.by_qualname.get(f"{qual}::{qual.rsplit('::', 1)[-1]}", [])
            return ("resolved", ctor) if ctor else _EXTERNAL
        return self._fallback(name, never_traverse)

    def _fallback(self, name: str, never_traverse: set) -> tuple[str, list[Function]]:
        if name in never_traverse:
            return _EXTERNAL
        cands = self.by_name.get(name, [])
        return ("resolved", cands) if cands else _EXTERNAL

    def _type_of_chain(self, fn: Function, chain: list[str]) -> Optional[str]:
        """Type the receiver chain root through locals/params/fields, then
        walk member accesses; unique field-name typing is the last resort."""
        root = chain[0]
        cls: Optional[str] = None
        if root == "this":
            cls = fn.cls
        elif root in fn.locals and fn.locals[root].type_class:
            cls = fn.locals[root].type_class
        else:
            for p in fn.params:
                if p.name == root and p.type_class:
                    cls = p.type_class
                    break
        if cls is None and fn.cls:
            ctx = fn.cls
            while ctx and cls is None:
                info = self.classes.get(ctx)
                if info and root in info.fields:
                    cls = self._resolve_type(info.fields[root], context=ctx)
                    break
                ctx = ctx.rsplit("::", 1)[0] if "::" in ctx else None
        remaining = chain[1:]
        if cls is None:
            # Unique field-name typing: `segment->kernel->match` types via
            # the one field type every `kernel` field shares.
            for i in range(len(chain) - 1, -1, -1):
                types = self.field_types.get(chain[i])
                if types and len(types) == 1:
                    cls = next(iter(types))
                    remaining = chain[i + 1:]
                    break
            if cls is None:
                return None
        for elem in remaining:
            info = self.classes.get(cls)
            nxt: Optional[str] = None
            if info and elem in info.fields:
                nxt = self._resolve_type(info.fields[elem], context=cls)
            if nxt is None:
                types = self.field_types.get(elem)
                if types and len(types) == 1:
                    nxt = next(iter(types))
            if nxt is None:
                return None
            cls = nxt
        return cls
