#!/usr/bin/env python3
"""gryphon-analyze: whole-repo invariant checker for the Gryphon broker.

Four rules over a shared IR of the C++ tree (see rules.py):

  planes    data-plane purity + CoreSnapshot construction provenance
  locks     lock-order cycle freedom + declared-order coverage
  alloc     hot-path allocation freedom with a counted suppression list
  protocol  FrameType / Broker::Stats exhaustiveness oracles

Two frontends lower the sources into the IR: a libclang one
(`clang.cindex`, steered by build/compile_commands.json when present) and
a self-contained tokenizer/scope-parser fallback with no dependencies.
`--frontend auto` prefers libclang and silently falls back; the fixture
self-tests (tools/test_analyze.py) pin both to the same verdicts.

Exit status: 0 clean, 1 findings, 2 configuration / usage error.

Usage: gryphon_analyze.py [--root DIR] [--config FILE] [--json OUT]
                          [--frontend auto|fallback|cindex]
                          [--rules planes,locks,alloc,protocol]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import rules as rules_mod  # noqa: E402


def collect_files(root: str, cfg: dict) -> list[str]:
    rels: list[str] = []
    for scan_dir in cfg.get("scan_dirs", ["src"]):
        base = os.path.join(root, scan_dir)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for fname in sorted(filenames):
                if os.path.splitext(fname)[1] in (".h", ".hpp", ".cpp", ".cc"):
                    full = os.path.join(dirpath, fname)
                    rels.append(os.path.relpath(full, root).replace(os.sep, "/"))
    for extra in cfg.get("extra_files", []):
        if os.path.isfile(os.path.join(root, extra)) and extra not in rels:
            rels.append(extra)
    return rels


def build_model(root: str, rels: list[str], frontend: str):
    """Returns (model, frontend_actually_used)."""
    if frontend in ("auto", "cindex"):
        try:
            import frontend_cindex

            if frontend_cindex.available():
                return frontend_cindex.build_model(root, rels), "cindex"
            if frontend == "cindex":
                raise RuntimeError("libclang (clang.cindex) is not available")
        except ImportError:
            if frontend == "cindex":
                raise
    import frontend_fallback

    return frontend_fallback.build_model(root, rels), "fallback"


def main(argv=None) -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=".", help="repository root to scan")
    parser.add_argument("--config", default=os.path.join(here, "config.json"))
    parser.add_argument("--frontend", choices=("auto", "fallback", "cindex"),
                        default="auto")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write findings as JSON to this path")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of: "
                             + ",".join(rules_mod.ALL_RULES))
    args = parser.parse_args(argv)

    try:
        with open(args.config, encoding="utf-8") as fh:
            cfg = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"gryphon-analyze: cannot load config {args.config}: {exc}",
              file=sys.stderr)
        return 2

    selected = None
    if args.rules:
        selected = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in selected if r not in rules_mod.ALL_RULES]
        if unknown:
            print(f"gryphon-analyze: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    root = args.root
    rels = collect_files(root, cfg)
    if not rels:
        print(f"gryphon-analyze: no sources found under {root}", file=sys.stderr)
        return 2

    try:
        model, used = build_model(root, rels, args.frontend)
    except Exception as exc:  # noqa: BLE001 - surfaced as a config error
        print(f"gryphon-analyze: frontend '{args.frontend}' failed: {exc}",
              file=sys.stderr)
        return 2

    findings = rules_mod.run_rules(model, cfg, root, selected)

    if args.json_out:
        payload = {
            "frontend": used,
            "files_scanned": len(rels),
            "rules": selected or list(rules_mod.ALL_RULES),
            "findings": [f.as_dict() for f in findings],
        }
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

    for f in findings:
        print(f.render(), file=sys.stderr)
    ran = ", ".join(selected or list(rules_mod.ALL_RULES))
    if findings:
        print(f"gryphon-analyze: {len(findings)} violation(s) "
              f"[frontend={used}, rules={ran}]", file=sys.stderr)
        return 1
    print(f"gryphon-analyze: all invariants hold "
          f"[frontend={used}, {len(rels)} files, rules={ran}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
