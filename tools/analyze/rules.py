"""Rule implementations for gryphon-analyze.

Every rule consumes the shared IR (`ir.Model`) plus the JSON config and
returns `Finding` records; nothing here touches the C++ source directly
except the protocol rule's documentation check (docs are not C++).

  planes   -- data-plane purity: token scans over the fully data-plane
              TUs and the data-plane entry-point bodies (the retired
              check_planes.py contract), call-graph reachability from the
              dispatch roots (no mutex acquisition, no control-plane
              writer, no registry/builder member), and CoreSnapshot
              construction provenance.
  locks    -- lock-order consistency: scope-accurate replay of guard
              lifetimes per function, transitive may-acquire sets over
              the call graph, cycle detection over observed + declared
              edges, and a declared-order requirement for classes owning
              several mutexes.
  alloc    -- hot-path allocation freedom: allocation sites, by-value
              parameters and locals of allocating types reachable from
              the dispatch roots, with a counted `allow(alloc)`
              suppression budget.
  protocol -- exhaustiveness oracles: every FrameType enumerator has a
              handler arm and wire-robustness coverage; every
              Broker::Stats counter reaches the brokerd report and the
              fault-tolerance doc.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional

from ir import FileIR, Function, Model


@dataclasses.dataclass
class Finding:
    file: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def compute_reachable(model: Model, roots: list[str], never_traverse: set,
                      call_aliases: dict[str, str]):
    """Breadth-first closure of the call graph from `roots` (qualnames).
    Returns (functions in discovery order, parent map for path messages)."""
    parent: dict[int, Optional[Function]] = {}
    order: list[Function] = []
    queue: list[Function] = []
    for q in roots:
        for fn in model.by_qualname.get(q, []):
            if id(fn) not in parent:
                parent[id(fn)] = None
                order.append(fn)
                queue.append(fn)
    head = 0
    while head < len(queue):
        fn = queue[head]
        head += 1
        for call in fn.calls:
            _, targets = model.resolve_call(fn, call, never_traverse, call_aliases)
            for t in targets:
                if id(t) not in parent:
                    parent[id(t)] = fn
                    order.append(t)
                    queue.append(t)
    return order, parent


def _path(fn: Function, parent: dict) -> str:
    names = []
    cur: Optional[Function] = fn
    while cur is not None:
        names.append(cur.qualname)
        cur = parent.get(id(cur))
    names.reverse()
    if len(names) > 5:
        names = names[:2] + ["..."] + names[-2:]
    return " -> ".join(names)


def _split_forbidden(tokens: list[str]):
    single = set()
    multi = []
    for t in tokens:
        if "." in t:
            multi.append(t.split("."))
        else:
            single.add(t)
    return single, multi


def _scan_texts(texts: list[tuple[str, int]], single: set, multi: list):
    """Scan an ordered (text, line) stream for forbidden tokens; multi-part
    entries like `snapshot_.store` match the `a . b` token sequence."""
    hits = []
    for i, (t, line) in enumerate(texts):
        if t in single:
            hits.append((line, t))
        for parts in multi:
            if t != parts[0]:
                continue
            j = i
            ok = True
            for part in parts[1:]:
                if j + 2 >= len(texts) or texts[j + 1][0] not in (".", "->") \
                        or texts[j + 2][0] != part:
                    ok = False
                    break
                j += 2
            if ok:
                hits.append((line, ".".join(parts)))
    return hits


# ---------------------------------------------------------------------------
# Rule 1: plane purity
# ---------------------------------------------------------------------------


def rule_planes(model: Model, cfg: dict, root: str) -> list[Finding]:
    pc = cfg.get("planes", {})
    never = set(cfg.get("never_traverse", []))
    aliases = cfg.get("call_aliases", {})
    out: list[Finding] = []
    single, multi = _split_forbidden(pc.get("forbidden_tokens", []))

    # 1a: fully data-plane translation units.
    for rel in pc.get("data_plane_files", []):
        fir = model.files.get(rel)
        if fir is None:
            out.append(Finding(rel, 0, "planes",
                               "data-plane file missing (stale analyzer config?)"))
            continue
        texts = [(t, line) for _, t, line in fir.tokens]
        for line, token in _scan_texts(texts, single, multi):
            out.append(Finding(rel, line, "planes",
                               f"data-plane TU references control-plane token '{token}'"))

    # 1b: data-plane function bodies inside mixed TUs.
    for rel, qual in pc.get("data_plane_functions", []):
        if model.files.get(rel) is None:
            out.append(Finding(rel, 0, "planes",
                               f"file with data-plane function {qual} missing"))
            continue
        fns = [f for f in model.functions if f.file == rel and f.qualname == qual]
        if not fns:
            out.append(Finding(rel, 0, "planes",
                               f"no definition of data-plane function {qual} found"))
        for fn in fns:
            for line, token in _scan_texts(fn.token_seq, single, multi):
                out.append(Finding(rel, line, "planes",
                                   f"data-plane function {qual} references "
                                   f"control-plane token '{token}'"))

    # 1c: call-graph reachability from the dispatch roots.
    roots = pc.get("reachability_roots", [])
    allowed_locking = set(pc.get("allowed_locking", []))
    forbidden_calls = pc.get("forbidden_calls", [])
    forbidden_plain = {q.rsplit("::", 1)[-1] for q in forbidden_calls}
    member_tokens = set()
    for members in pc.get("forbidden_members", {}).values():
        member_tokens.update(members)
    order, parent = compute_reachable(model, roots, never, aliases)
    for fn in order:
        if fn.qualname not in allowed_locking:
            for site in fn.locks:
                if site.kind in ("guard", "lock"):
                    out.append(Finding(fn.file, site.line, "planes",
                                       f"mutex acquisition in data-plane reachable code "
                                       f"({_path(fn, parent)})"))
        for call in fn.calls:
            if call.name not in forbidden_plain:
                continue
            hit = None
            for q in forbidden_calls:
                if "::" in q:
                    if q.rsplit("::", 1)[-1] != call.name:
                        continue
                    _, targets = model.resolve_call(fn, call, never, aliases)
                    if any(t.qualname == q for t in targets):
                        hit = q
                        break
                elif q == call.name:
                    hit = q
                    break
            if hit:
                out.append(Finding(fn.file, call.line, "planes",
                                   f"control-plane writer '{hit}' reachable from data "
                                   f"plane ({_path(fn, parent)})"))
        for tok in member_tokens:
            if tok in fn.idents:
                out.append(Finding(fn.file, fn.idents[tok], "planes",
                                   f"control-plane member '{tok}' referenced in "
                                   f"data-plane reachable code ({_path(fn, parent)})"))

    # 1d: snapshot construction provenance.
    snap = pc.get("snapshot")
    if snap:
        tname = snap["type"]
        home = set(snap.get("home", []))
        prefixes = tuple(snap.get("scan_prefixes", ["src/"]))
        for rel, fir in sorted(model.files.items()):
            if not rel.startswith(prefixes) or rel in home:
                continue
            toks = fir.tokens
            for i, (_, t, line) in enumerate(toks):
                if t != tname:
                    continue
                prev = toks[i - 1][1] if i > 0 else ""
                nxt = toks[i + 1][1] if i + 1 < len(toks) else ""
                back = i - 1
                if prev == "const":
                    back = i - 2
                make_shared = (back >= 1 and toks[back][1] == "<"
                               and toks[back - 1][1] == "make_shared")
                if prev == "new" or nxt in ("(", "{") or make_shared:
                    out.append(Finding(rel, line, "planes",
                                       f"{tname} constructed outside "
                                       f"{'/'.join(sorted(home))} (go through "
                                       f"SnapshotBuilder)"))
    return out


# ---------------------------------------------------------------------------
# Rule 2: lock order
# ---------------------------------------------------------------------------


def _replay_function(model: Model, fn: Function):
    """Replay the ordered event stream, tracking guard lifetimes by brace
    depth.  Returns (direct mutex ids, direct edges with lines, calls with
    the held-set at the site)."""
    entry = set()
    for r in fn.requires:
        mid = model.mutex_identity(fn, [r])
        if mid:
            entry.add(mid)
    held: list[dict] = []
    direct: set = set()
    edges: list[tuple[str, str, int]] = []
    calls_held: list[tuple] = []

    def held_now() -> set:
        return entry | {h["id"] for h in held if h["active"] and h["id"]}

    def acquire(mid: Optional[str], depth: int, guard: Optional[str], line: int) -> None:
        if mid:
            for h in held_now():
                if h != mid:
                    edges.append((h, mid, line))
            direct.add(mid)
        held.append({"id": mid, "depth": depth, "guard": guard, "active": True})

    for ev in fn.events:
        if ev[0] == "lock":
            site = ev[1]
            if site.kind == "guard":
                acquire(model.mutex_identity(fn, site.target), site.depth,
                        site.guard_var, site.line)
            elif site.kind == "lock":
                name = site.target[-1] if site.target else ""
                g = next((h for h in reversed(held) if h["guard"] == name), None)
                if g is not None:
                    g["active"] = True
                    if g["id"]:
                        for h in held_now() - {g["id"]}:
                            edges.append((h, g["id"], site.line))
                else:
                    acquire(model.mutex_identity(fn, site.target), site.depth,
                            None, site.line)
            elif site.kind == "unlock":
                name = site.target[-1] if site.target else ""
                g = next((h for h in reversed(held) if h["guard"] == name), None)
                if g is None:
                    mid = model.mutex_identity(fn, site.target)
                    g = next((h for h in reversed(held) if h["id"] == mid), None)
                if g is not None:
                    g["active"] = False
        elif ev[0] == "call":
            calls_held.append((ev[1], frozenset(held_now())))
        elif ev[0] == "close":
            depth = ev[1]
            held = [h for h in held if h["depth"] <= depth]
    return direct, edges, calls_held


def rule_locks(model: Model, cfg: dict, root: str) -> list[Finding]:
    lc = cfg.get("locks", {})
    never = set(cfg.get("never_traverse", []))
    aliases = cfg.get("call_aliases", {})
    out: list[Finding] = []

    summaries: dict[int, tuple] = {}
    resolved_calls: dict[int, list] = {}
    for fn in model.functions:
        direct, edges, calls_held = _replay_function(model, fn)
        summaries[id(fn)] = (fn, direct, edges, calls_held)
        rc = []
        for call, held in calls_held:
            # Calls inside lambda bodies may run deferred (thread entry
            # points, stored callbacks); attributing them to the enclosing
            # held-set fabricates edges, so the lock rule skips them.
            if call.in_lambda:
                continue
            _, targets = model.resolve_call(fn, call, never, aliases)
            if targets:
                rc.append((call, held, targets))
        resolved_calls[id(fn)] = rc

    # Transitive may-acquire sets (fixpoint over the call graph).
    ta: dict[int, set] = {fid: set(s[1]) for fid, s in summaries.items()}
    changed = True
    while changed:
        changed = False
        for fid, rc in resolved_calls.items():
            acc = ta[fid]
            before = len(acc)
            for _, _, targets in rc:
                for t in targets:
                    acc |= ta.get(id(t), set())
            if len(acc) != before:
                changed = True

    # Observed edges: direct (replay) plus held-at-call-site x callee TA.
    edge_where: dict[tuple, tuple] = {}
    for fid, (fn, _, edges, _) in summaries.items():
        for a, b, line in edges:
            edge_where.setdefault((a, b), (fn.file, line, fn.qualname))
        for call, held, targets in resolved_calls[fid]:
            for t in targets:
                for m in ta.get(id(t), set()):
                    for h in held:
                        if h != m:
                            edge_where.setdefault(
                                (h, m), (fn.file, call.line,
                                         f"{fn.qualname} calls {t.qualname}"))

    # Declared edges: ACQUIRED_BEFORE / ACQUIRED_AFTER plus the config's
    # documented cross-class order.
    declared: set = set()
    for decl in model.mutex_index.values():
        for arg in decl.acquired_before:
            tgt = _declared_target(model, decl, arg)
            if tgt:
                declared.add((decl.identity, tgt))
        for arg in decl.acquired_after:
            src = _declared_target(model, decl, arg)
            if src:
                declared.add((src, decl.identity))
    for entry in lc.get("declared_edges", []):
        declared.add((entry["from"], entry["to"]))

    graph: dict[str, set] = {}
    for (a, b) in list(edge_where) + list(declared):
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())

    for cyc in _find_cycles(graph):
        parts = []
        for a, b in zip(cyc, cyc[1:]):
            where = edge_where.get((a, b))
            if where:
                parts.append(f"{a} -> {b} ({where[2]} at {where[0]}:{where[1]})")
            else:
                parts.append(f"{a} -> {b} (declared)")
        anchor = next((edge_where[(a, b)] for a, b in zip(cyc, cyc[1:])
                       if (a, b) in edge_where), None)
        file, line = (anchor[0], anchor[1]) if anchor else ("", 0)
        out.append(Finding(file, line, "locks",
                           "lock-order cycle: " + "; ".join(parts)))

    # Classes owning several mutexes must declare a total order.
    closure = _transitive(declared)
    for info in model.classes.values():
        names = sorted(info.mutexes)
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                a = info.mutexes[names[i]].identity
                b = info.mutexes[names[j]].identity
                if (a, b) not in closure and (b, a) not in closure:
                    out.append(Finding(
                        info.file, info.mutexes[names[j]].line, "locks",
                        f"class {info.name} owns mutexes '{names[i]}' and "
                        f"'{names[j]}' with no declared acquisition order "
                        f"(annotate with ACQUIRED_BEFORE / ACQUIRED_AFTER)"))
    return out


def _declared_target(model: Model, decl, arg: str) -> Optional[str]:
    if decl.cls:
        info = model.classes.get(decl.cls)
        if info and arg in info.mutexes:
            return info.mutexes[arg].identity
    owners = [m.identity for m in model.mutex_index.values() if m.name == arg]
    if len(owners) == 1:
        return owners[0]
    return None


def _transitive(edges: set) -> set:
    adj: dict[str, set] = {}
    for a, b in edges:
        adj.setdefault(a, set()).add(b)
    closure = set(edges)
    changed = True
    while changed:
        changed = False
        for a, b in list(closure):
            for c in adj.get(b, ()):  # noqa: B023
                if (a, c) not in closure and a != c:
                    closure.add((a, c))
                    changed = True
    return closure


def _find_cycles(graph: dict[str, set]) -> list[list[str]]:
    cycles: list[list[str]] = []
    seen_sets: set = set()
    color: dict[str, int] = {}
    path: list[str] = []

    def dfs(u: str) -> None:
        color[u] = 1
        path.append(u)
        for v in sorted(graph.get(u, ())):
            if color.get(v, 0) == 0:
                dfs(v)
            elif color.get(v) == 1:
                cyc = path[path.index(v):] + [v]
                key = frozenset(cyc)
                if key not in seen_sets:
                    seen_sets.add(key)
                    cycles.append(cyc)
        path.pop()
        color[u] = 2

    for node in sorted(graph):
        if color.get(node, 0) == 0:
            dfs(node)
    return cycles


# ---------------------------------------------------------------------------
# Rule 3: hot-path allocation freedom
# ---------------------------------------------------------------------------


def rule_alloc(model: Model, cfg: dict, root: str) -> list[Finding]:
    ac = cfg.get("alloc", {})
    never = set(cfg.get("never_traverse", []))
    aliases = cfg.get("call_aliases", {})
    alloc_types = set(ac.get("allocating_types", []))
    out: list[Finding] = []

    def is_allocating(type_class: Optional[str], type_tokens: list[str]) -> bool:
        if type_class and type_class.rsplit("::", 1)[-1] in alloc_types:
            return True
        return any(t in alloc_types for t in type_tokens)

    order, parent = compute_reachable(model, ac.get("roots", []), never, aliases)
    for fn in order:
        fir = model.files.get(fn.file)
        for site in fn.allocs:
            if fir and fir.suppressed(site.line, "alloc"):
                continue
            out.append(Finding(fn.file, site.line, "alloc",
                               f"{site.kind} allocation '{site.detail}' reachable from "
                               f"dispatch ({_path(fn, parent)})"))
        for p in fn.params:
            if p.by_value and is_allocating(p.type_class, p.type_tokens):
                if fir and fir.suppressed(p.line, "alloc"):
                    continue
                out.append(Finding(fn.file, p.line, "alloc",
                                   f"by-value parameter '{p.name}' of allocating type "
                                   f"in {fn.qualname} ({_path(fn, parent)})"))
        for loc in fn.locals.values():
            if loc.by_value and loc.has_init and \
                    is_allocating(loc.type_class, loc.type_tokens):
                if fir and fir.suppressed(loc.line, "alloc"):
                    continue
                out.append(Finding(fn.file, loc.line, "alloc",
                                   f"local '{loc.name}' of allocating type constructed "
                                   f"in {fn.qualname} ({_path(fn, parent)})"))

    total = sum(1 for fir in model.files.values()
                for _, tag in fir.suppressions if tag == "alloc")
    max_sup = ac.get("max_suppressions")
    if max_sup is not None and total > max_sup:
        out.append(Finding("", 0, "alloc",
                           f"{total} allow(alloc) suppressions exceed the budget of "
                           f"{max_sup}"))
    expected = ac.get("expected_suppressions")
    if expected is not None and total != expected:
        out.append(Finding("", 0, "alloc",
                           f"allow(alloc) suppression count drifted: {total} in tree, "
                           f"baseline {expected} (re-audit, then update "
                           f"alloc.expected_suppressions)"))
    return out


# ---------------------------------------------------------------------------
# Rule 4: protocol exhaustiveness
# ---------------------------------------------------------------------------


def _case_arms(fir: FileIR) -> set:
    arms = set()
    toks = fir.tokens
    for i, (_, t, _) in enumerate(toks):
        if t != "case":
            continue
        last_id = None
        j = i + 1
        while j < len(toks):
            kind, text, _ = toks[j]
            if kind == "id":
                last_id = text
            elif text != "::":
                break
            j += 1
        if last_id:
            arms.add(last_id)
    return arms


def rule_protocol(model: Model, cfg: dict, root: str) -> list[Finding]:
    pc = cfg.get("protocol", {})
    out: list[Finding] = []
    if not pc:
        return out

    enum_name = pc.get("enum", "FrameType")
    enum_file = pc.get("enum_file", "")
    enumerators = model.enums.get(enum_name)
    if enumerators is None:
        for key, vals in model.enums.items():
            if key.endswith("::" + enum_name):
                enumerators = vals
                break
    if enumerators is None:
        out.append(Finding(enum_file, 0, "protocol",
                           f"enum {enum_name} not found in the scanned tree"))
        enumerators = []

    arms: set = set()
    for rel in pc.get("handler_files", []):
        fir = model.files.get(rel)
        if fir is None:
            out.append(Finding(rel, 0, "protocol", "handler file missing"))
            continue
        arms |= _case_arms(fir)

    test_rel = pc.get("test_file", "")
    test_fir = model.files.get(test_rel)
    test_tokens = {t for _, t, _ in test_fir.tokens} if test_fir else set()
    if test_rel and test_fir is None:
        out.append(Finding(test_rel, 0, "protocol", "wire robustness test file missing"))

    for name, _ in enumerators:
        if name not in arms:
            out.append(Finding(enum_file, 0, "protocol",
                               f"FrameType::{name} has no `case` arm in any handler "
                               f"({', '.join(pc.get('handler_files', []))})"))
        if test_fir is not None and name not in test_tokens:
            out.append(Finding(test_rel, 0, "protocol",
                               f"FrameType::{name} has no round-trip coverage in "
                               f"{test_rel}"))

    count_token = pc.get("count_token")
    if count_token and test_fir is not None and count_token not in test_tokens:
        out.append(Finding(test_rel, 0, "protocol",
                           f"{count_token} is not referenced by {test_rel} (the frame "
                           f"table must be pinned to the enum size)"))
    if count_token and enum_file:
        efir = model.files.get(enum_file)
        if efir is not None:
            declared = _constant_value(efir, count_token)
            if declared is None:
                out.append(Finding(enum_file, 0, "protocol",
                                   f"{count_token} is not defined in {enum_file}"))
            elif enumerators and declared != len(enumerators):
                out.append(Finding(enum_file, 0, "protocol",
                                   f"{count_token} = {declared} but {enum_name} has "
                                   f"{len(enumerators)} enumerators"))

    stats_class = pc.get("stats_class")
    if stats_class:
        info = model.classes.get(stats_class)
        if info is None:
            out.append(Finding("", 0, "protocol",
                               f"stats class {stats_class} not found"))
        else:
            report_rel = pc.get("stats_report_file", "")
            report_fir = model.files.get(report_rel)
            report_tokens = {t for _, t, _ in report_fir.tokens} if report_fir else set()
            doc_rel = pc.get("stats_doc_file", "")
            doc_text = ""
            if doc_rel:
                try:
                    with open(os.path.join(root, doc_rel), encoding="utf-8") as fh:
                        doc_text = fh.read()
                except OSError:
                    out.append(Finding(doc_rel, 0, "protocol",
                                       "stats documentation file missing"))
            for field in info.field_order:
                if report_fir is not None and field not in report_tokens:
                    out.append(Finding(report_rel, 0, "protocol",
                                       f"{stats_class}::{field} never reaches the "
                                       f"shutdown report in {report_rel}"))
                if doc_text and field not in doc_text:
                    out.append(Finding(doc_rel, 0, "protocol",
                                       f"{stats_class}::{field} is undocumented in "
                                       f"{doc_rel}"))
    return out


def _constant_value(fir: FileIR, name: str) -> Optional[int]:
    toks = fir.tokens
    for i, (_, t, _) in enumerate(toks):
        if t == name and i + 2 < len(toks) and toks[i + 1][1] == "=":
            try:
                return int(toks[i + 2][1], 0)
            except ValueError:
                return None
    return None


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

ALL_RULES = {
    "planes": rule_planes,
    "locks": rule_locks,
    "alloc": rule_alloc,
    "protocol": rule_protocol,
}


def run_rules(model: Model, cfg: dict, root: str,
              rules: Optional[list[str]] = None) -> list[Finding]:
    findings: list[Finding] = []
    for name in rules or list(ALL_RULES):
        findings.extend(ALL_RULES[name](model, cfg, root))
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.message))
    return findings
