// pubsub — command-line publisher/subscriber client for brokerd.
//
// Usage:
//   pubsub --connect HOST:PORT --name NAME --schema "NAME attr:type ..." ...
//          [--schema ...] <command>
//
// Commands:
//   sub [--space N] 'PREDICATE'        subscribe and print deliveries until
//                                      EOF on stdin or --count events arrive
//   pub [--space N] 'EVENT' ...        publish event literals, e.g.
//                                      '{issue: "IBM", price: 119.5, volume: 3000}'
//   pub [--space N] -                  read one event literal per stdin line
//
// Examples:
//   pubsub --connect 127.0.0.1:7002 --name alice ...
//          --schema "trades issue:string price:double volume:int" ...
//          sub 'issue = "IBM" & price < 120 | volume > 50000'
//   pubsub --connect 127.0.0.1:7000 --name feed ...
//          --schema "trades issue:string price:double volume:int" ...
//          pub '{issue: "IBM", price: 119.5, volume: 3000}'
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>

#include "broker/client.h"
#include "broker/tcp_transport.h"
#include "event/parser.h"
#include "tool_config.h"

using namespace gryphon;

namespace {

struct Relay : TransportHandler {
  TransportHandler* target{nullptr};
  void on_connect(ConnId c) override { target->on_connect(c); }
  void on_frame(ConnId c, std::span<const std::uint8_t> f) override { target->on_frame(c, f); }
  void on_disconnect(ConnId c) override { target->on_disconnect(c); }
};

[[noreturn]] void usage(const char* argv0, const char* error) {
  std::fprintf(stderr, "error: %s\n", error);
  std::fprintf(stderr,
               "usage: %s --connect HOST:PORT --name NAME --schema \"...\" [--schema ...]\n"
               "          sub [--space N] [--count N] 'PREDICATE'\n"
               "        | pub [--space N] 'EVENT'... | pub [--space N] -\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect_spec;
  std::string name;
  std::vector<std::string> schemas;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], ("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--connect") connect_spec = next();
    else if (arg == "--name") name = next();
    else if (arg == "--schema") schemas.push_back(next());
    else break;
  }
  if (connect_spec.empty()) usage(argv[0], "--connect is required");
  if (name.empty()) usage(argv[0], "--name is required");
  if (schemas.empty()) usage(argv[0], "at least one --schema is required");
  if (i >= argc) usage(argv[0], "missing command (sub | pub)");
  const std::string command = argv[i++];

  std::uint16_t space = 0;
  std::size_t count = 0;  // 0 = unbounded
  std::vector<std::string> operands;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--space") {
      if (i + 1 >= argc) usage(argv[0], "missing value for --space");
      space = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--count") {
      if (i + 1 >= argc) usage(argv[0], "missing value for --count");
      count = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      operands.push_back(arg);
    }
  }

  try {
    std::vector<SchemaPtr> spaces;
    for (const std::string& spec : schemas) spaces.push_back(tools::parse_schema_spec(spec));
    std::string host;
    std::uint16_t port = 0;
    tools::parse_endpoint(connect_spec, host, port);

    Relay relay;
    TcpTransport transport(relay);
    Client client(name, transport, spaces);
    relay.target = &client;
    client.bind(transport.connect(host, port));

    if (command == "sub") {
      if (operands.size() != 1) usage(argv[0], "sub takes exactly one predicate");
      const auto tokens = client.subscribe_predicate(space, operands[0]);
      for (const auto token : tokens) {
        for (int spin = 0; spin < 500 && !client.subscription_id(token); ++spin) {
          std::this_thread::sleep_for(std::chrono::milliseconds(4));
        }
        if (!client.subscription_id(token)) {
          for (const auto& error : client.take_errors()) {
            std::fprintf(stderr, "pubsub: broker rejected subscription: %s\n", error.c_str());
          }
          transport.shutdown();
          return 1;
        }
      }
      std::fprintf(stderr, "pubsub: subscribed (%zu arm%s); waiting for events...\n",
                   tokens.size(), tokens.size() == 1 ? "" : "s");
      std::size_t received = 0;
      while (count == 0 || received < count) {
        client.wait_for_deliveries(1, 500);
        for (auto& delivery : client.take_deliveries()) {
          std::printf("[space %u, seq %llu] %s\n", delivery.space,
                      static_cast<unsigned long long>(delivery.seq),
                      delivery.event.to_text().c_str());
          std::fflush(stdout);
          ++received;
        }
        if (!client.connected()) {
          std::fprintf(stderr, "pubsub: disconnected\n");
          break;
        }
      }
    } else if (command == "pub") {
      if (operands.empty()) usage(argv[0], "pub needs event literals or '-'");
      std::size_t published = 0;
      const auto publish_literal = [&](const std::string& literal) {
        client.publish(space, parse_event(spaces.at(space), literal));
        ++published;
      };
      if (operands.size() == 1 && operands[0] == "-") {
        std::string line;
        while (std::getline(std::cin, line)) {
          if (!line.empty()) publish_literal(line);
        }
      } else {
        for (const std::string& literal : operands) publish_literal(literal);
      }
      // Give the sender pool a moment to flush before tearing down.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      std::fprintf(stderr, "pubsub: published %zu event%s\n", published,
                   published == 1 ? "" : "s");
    } else {
      usage(argv[0], ("unknown command '" + command + "'").c_str());
    }
    transport.shutdown();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pubsub: %s\n", e.what());
    return 1;
  }
  return 0;
}
