#!/usr/bin/env python3
"""Self-test for tools/analyze (run by the ci.sh analyze leg and registered
in ctest as `gryphon_analyze_selftest`).

Builds throwaway source trees in a temp directory — one clean, plus one per
violation class — and asserts the analyzer's exit status and diagnostics
against each, through the CLI so exit codes and --root/--config plumbing
are covered too. The first block reproduces every verdict of the retired
tools/check_planes.py fixture suite; the rest cover the rules check_planes
never had: lock-order cycles across translation units, undeclared
multi-mutex acquisition order, allocations reachable from the dispatch
hot path (with the counted suppression budget), and the protocol
exhaustiveness oracles. Everything runs against the fallback frontend
(always present); when clang.cindex is importable the final test pins the
libclang frontend to the same live-tree verdict.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

ANALYZER = pathlib.Path(__file__).resolve().parent / "analyze" / "gryphon_analyze.py"
REPO = ANALYZER.parent.parent.parent


def _have_cindex() -> bool:
    try:
        import clang.cindex  # noqa: F401
        return True
    except ImportError:
        return False


# ---------------------------------------------------------------------------
# Fixture tree + config
# ---------------------------------------------------------------------------

# A minimal tree the analyzer accepts: every configured data-plane TU and
# function present, no forbidden references, no mutexes, no hot-path
# allocations.
CLEAN_TREE = {
    "src/matching/compiled_pst.h": "struct CompiledPst { int match; };\n",
    "src/matching/compiled_pst.cpp": "int compiled_match() { return 1; }\n",
    "src/matching/shard_router.h": "struct ShardRouter { int shard_of_key; };\n",
    "src/matching/covering_snapshot.h": "struct CoveringSnapshot { int expand; };\n",
    "src/routing/compiled_annotation.h": "struct CompiledAnnotation {};\n",
    "src/routing/compiled_annotation.cpp": "int annotate() { return 2; }\n",
    "src/broker/dispatch_batch.h": "struct DispatchBatch { int items; };\n",
    "src/broker/core_snapshot.h": (
        "struct CoreSnapshot { int version; };\n"
        "struct SnapshotBuilder { CoreSnapshot build(); };\n"
    ),
    "src/broker/core_snapshot.cpp": (
        "CoreSnapshot SnapshotBuilder::build() { return CoreSnapshot{1}; }\n"
    ),
    "src/broker/broker_core.cpp": (
        "int BrokerCore::dispatch(int event) {\n"
        "  if (event > 0) { return event; }\n"
        "  return 0;\n"
        "}\n"
        "int BrokerCore::dispatch_pinned(int event) { return event; }\n"
        "int BrokerCore::match_all(int event) { return event; }\n"
        "void BrokerCore::add_subscription(int id) { registry_.insert(id); }\n"
    ),
    "src/matching/pst_matcher.cpp": (
        "void PstMatcher::match(int event) const { (void)event; }\n"
        "void PstMatcher::match_into(int event, int out) const {\n"
        "  (void)event; (void)out;\n"
        "}\n"
    ),
}

BASE_CONFIG = {
    "scan_dirs": ["src"],
    "extra_files": [],
    "never_traverse": ["begin", "clear", "end", "find", "insert", "push_back",
                       "reserve", "size"],
    "call_aliases": {},
    "planes": {
        "data_plane_files": [
            "src/matching/compiled_pst.h",
            "src/matching/compiled_pst.cpp",
            "src/matching/shard_router.h",
            "src/matching/covering_snapshot.h",
            "src/routing/compiled_annotation.h",
            "src/routing/compiled_annotation.cpp",
            "src/broker/dispatch_batch.h",
        ],
        "data_plane_functions": [
            ["src/broker/broker_core.cpp", "BrokerCore::dispatch"],
            ["src/broker/broker_core.cpp", "BrokerCore::dispatch_pinned"],
            ["src/broker/broker_core.cpp", "BrokerCore::match_all"],
            ["src/matching/pst_matcher.cpp", "PstMatcher::match"],
            ["src/matching/pst_matcher.cpp", "PstMatcher::match_into"],
        ],
        "forbidden_tokens": [
            "add_with_result", "remove_with_result", "add_subscription",
            "remove_subscription", "publish_snapshot", "registry_",
            "space_counts_", "builder_", "snapshot_.store",
        ],
        "reachability_roots": [
            "BrokerCore::dispatch", "BrokerCore::dispatch_pinned",
            "BrokerCore::match_all",
        ],
        "allowed_locking": [],
        "forbidden_calls": [
            "add_with_result", "remove_with_result", "add_subscription",
            "remove_subscription", "publish_snapshot",
        ],
        "forbidden_members": {"BrokerCore": ["registry_", "builder_"]},
        "snapshot": {
            "type": "CoreSnapshot",
            "home": ["src/broker/core_snapshot.h", "src/broker/core_snapshot.cpp"],
            "scan_prefixes": ["src/"],
        },
    },
    "locks": {"declared_edges": []},
    "alloc": {
        "roots": ["BrokerCore::dispatch", "BrokerCore::dispatch_pinned"],
        "allocating_types": ["vector", "string", "TritVector"],
        "max_suppressions": 4,
        "expected_suppressions": None,
    },
}


def run_analyzer(root, config_path, rules=None, frontend="fallback",
                 json_out=None):
    cmd = [sys.executable, str(ANALYZER), "--root", str(root),
           "--config", str(config_path), "--frontend", frontend]
    if rules:
        cmd += ["--rules", rules]
    if json_out:
        cmd += ["--json", str(json_out)]
    return subprocess.run(cmd, capture_output=True, text=True, check=False)


class AnalyzeFixtureTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = pathlib.Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write_tree(self, overrides=None, config_overrides=None):
        files = dict(CLEAN_TREE)
        if overrides:
            files.update(overrides)
        for rel, content in files.items():
            path = self.root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)
        cfg = json.loads(json.dumps(BASE_CONFIG))
        for key, value in (config_overrides or {}).items():
            node = cfg
            parts = key.split(".")
            for part in parts[:-1]:
                node = node[part]
            node[parts[-1]] = value
        cfg_path = self.root / "analyze_config.json"
        cfg_path.write_text(json.dumps(cfg))
        return cfg_path

    def run_tree(self, overrides=None, config_overrides=None, rules=None):
        cfg = self.write_tree(overrides, config_overrides)
        return run_analyzer(self.root, cfg, rules=rules)


# ---------------------------------------------------------------------------
# check_planes parity: every verdict of the retired fixture suite
# ---------------------------------------------------------------------------


class PlanesTest(AnalyzeFixtureTest):
    def test_clean_tree_passes(self):
        result = self.run_tree()
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("all invariants hold", result.stdout)

    def test_forbidden_token_in_data_plane_tu(self):
        result = self.run_tree({
            "src/matching/compiled_pst.cpp":
                "int compiled_match() { return add_with_result(1); }\n",
        })
        self.assertEqual(result.returncode, 1)
        self.assertIn("compiled_pst.cpp:1", result.stderr)
        self.assertIn("add_with_result", result.stderr)

    def test_forbidden_token_in_covering_snapshot_rejected(self):
        # The covering sidecar is read on every dispatch; it must never
        # reach back into the control plane's registry.
        result = self.run_tree({
            "src/matching/covering_snapshot.h":
                "struct CoveringSnapshot { int n = registry_.size(); };\n",
        })
        self.assertEqual(result.returncode, 1)
        self.assertIn("covering_snapshot.h:1", result.stderr)
        self.assertIn("registry_", result.stderr)

    def test_forbidden_token_in_data_plane_function_body(self):
        result = self.run_tree({
            "src/broker/broker_core.cpp": (
                "int BrokerCore::dispatch(int event) {\n"
                "  publish_snapshot(event);\n"
                "  return 0;\n"
                "}\n"
                "int BrokerCore::dispatch_pinned(int event) { return event; }\n"
                "int BrokerCore::match_all(int event) { return event; }\n"
            ),
        })
        self.assertEqual(result.returncode, 1)
        self.assertIn("broker_core.cpp:2", result.stderr)
        self.assertIn("BrokerCore::dispatch", result.stderr)
        self.assertIn("publish_snapshot", result.stderr)

    def test_control_plane_function_in_same_tu_is_allowed(self):
        # add_subscription touching registry_ lives in the same TU as
        # dispatch; only the data-plane *bodies* (and what they reach) are
        # constrained.
        result = self.run_tree()
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_snapshot_construction_outside_home_rejected(self):
        result = self.run_tree({
            "src/broker/broker_core.cpp": (
                CLEAN_TREE["src/broker/broker_core.cpp"]
                + "void BrokerCore::rebuild() {\n"
                "  auto s = std::make_shared<CoreSnapshot>();\n"
                "}\n"
            ),
        })
        self.assertEqual(result.returncode, 1)
        self.assertIn("CoreSnapshot constructed outside", result.stderr)

    def test_brace_init_construction_rejected(self):
        result = self.run_tree({
            "src/routing/psg_annotation.cpp":
                "int f() { auto s = CoreSnapshot{2}; return s.version; }\n",
        })
        self.assertEqual(result.returncode, 1)
        self.assertIn("psg_annotation.cpp:1", result.stderr)

    def test_comments_and_strings_ignored(self):
        result = self.run_tree({
            "src/matching/compiled_pst.cpp": (
                "// prose about add_with_result and publish_snapshot\n"
                "/* registry_ and new CoreSnapshot in a block comment */\n"
                'const char* k = "snapshot_.store(CoreSnapshot{})";\n'
                "int compiled_match() { return 1; }\n"
            ),
        })
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_missing_data_plane_function_reported(self):
        result = self.run_tree({
            "src/broker/broker_core.cpp":
                "int BrokerCore::match_all(int event) { return event; }\n",
        })
        self.assertEqual(result.returncode, 1)
        self.assertIn("no definition of data-plane function", result.stderr)

    def test_declaration_is_not_a_body(self):
        # A declaration of dispatch (ends in ';') must not be treated as a
        # definition; the definition after it still is.
        result = self.run_tree({
            "src/broker/broker_core.cpp": (
                "int BrokerCore::dispatch(int event);\n"
                "int BrokerCore::dispatch(int event) { return event; }\n"
                "int BrokerCore::dispatch_pinned(int event) { return event; }\n"
                "int BrokerCore::match_all(int event) { return event; }\n"
            ),
        })
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_mutex_reachable_from_dispatch_rejected(self):
        # The AST upgrade over check_planes: locking behind a call is
        # caught even though no forbidden token appears in the body.
        result = self.run_tree({
            "src/broker/broker_core.cpp": (
                "int BrokerCore::dispatch(int event) {\n"
                "  lookup(event);\n"
                "  return 0;\n"
                "}\n"
                "int BrokerCore::lookup(int event) {\n"
                "  MutexLock lock(mutex_);\n"
                "  return event;\n"
                "}\n"
                "int BrokerCore::dispatch_pinned(int event) { return event; }\n"
                "int BrokerCore::match_all(int event) { return event; }\n"
            ),
        })
        self.assertEqual(result.returncode, 1)
        self.assertIn("mutex acquisition in data-plane reachable code",
                      result.stderr)
        self.assertIn("BrokerCore::dispatch -> BrokerCore::lookup",
                      result.stderr)


# ---------------------------------------------------------------------------
# Lock-order rule
# ---------------------------------------------------------------------------

LOCK_HEADER = (
    "struct B;\n"
    "struct A {\n"
    "  void lock_then_call();\n"
    "  void locked_back();\n"
    "  gryphon::Mutex mu_;\n"
    "  B* peer_;\n"
    "};\n"
    "struct B {\n"
    "  void locked();\n"
    "  gryphon::Mutex mu_;\n"
    "  A* owner_;\n"
    "};\n"
)


class LocksTest(AnalyzeFixtureTest):
    def test_cross_tu_lock_order_inversion(self):
        # A::mu_ is held while calling into B (one TU); B::mu_ is held
        # while calling back into A (another TU): a cycle no single
        # translation unit exhibits.
        result = self.run_tree({
            "src/broker/ab.h": LOCK_HEADER,
            "src/broker/a.cpp": (
                "void A::lock_then_call() {\n"
                "  MutexLock lock(mu_);\n"
                "  peer_->locked();\n"
                "}\n"
                "void A::locked_back() { MutexLock lock(mu_); }\n"
            ),
            "src/broker/b.cpp": (
                "void B::locked() {\n"
                "  MutexLock lock(mu_);\n"
                "  owner_->locked_back();\n"
                "}\n"
            ),
        }, rules="locks")
        self.assertEqual(result.returncode, 1)
        self.assertIn("lock-order cycle", result.stderr)
        self.assertIn("A::mu_", result.stderr)
        self.assertIn("B::mu_", result.stderr)

    def test_scoped_release_breaks_the_cycle(self):
        # Same call shape, but A releases its guard (inner scope) before
        # calling out — scope-accurate replay must not fabricate the edge.
        result = self.run_tree({
            "src/broker/ab.h": LOCK_HEADER,
            "src/broker/a.cpp": (
                "void A::lock_then_call() {\n"
                "  { MutexLock lock(mu_); }\n"
                "  peer_->locked();\n"
                "}\n"
                "void A::locked_back() { MutexLock lock(mu_); }\n"
            ),
            "src/broker/b.cpp": (
                "void B::locked() {\n"
                "  MutexLock lock(mu_);\n"
                "  owner_->locked_back();\n"
                "}\n"
            ),
        }, rules="locks")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_multi_mutex_class_without_declared_order(self):
        result = self.run_tree({
            "src/broker/owner.h": (
                "struct Owner {\n"
                "  gryphon::Mutex a_;\n"
                "  gryphon::Mutex b_;\n"
                "};\n"
            ),
        }, rules="locks")
        self.assertEqual(result.returncode, 1)
        self.assertIn("no declared acquisition order", result.stderr)
        self.assertIn("Owner", result.stderr)

    def test_acquired_before_declares_the_order(self):
        result = self.run_tree({
            "src/broker/owner.h": (
                "struct Owner {\n"
                "  gryphon::Mutex a_ ACQUIRED_BEFORE(b_);\n"
                "  gryphon::Mutex b_;\n"
                "};\n"
            ),
        }, rules="locks")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_declared_order_contradicting_usage_is_a_cycle(self):
        # Annotation says a_ before b_; the code takes them the other way.
        result = self.run_tree({
            "src/broker/owner.h": (
                "struct Owner {\n"
                "  void backwards();\n"
                "  gryphon::Mutex a_ ACQUIRED_BEFORE(b_);\n"
                "  gryphon::Mutex b_;\n"
                "};\n"
            ),
            "src/broker/owner.cpp": (
                "void Owner::backwards() {\n"
                "  MutexLock lb(b_);\n"
                "  MutexLock la(a_);\n"
                "}\n"
            ),
        }, rules="locks")
        self.assertEqual(result.returncode, 1)
        self.assertIn("lock-order cycle", result.stderr)


# ---------------------------------------------------------------------------
# Hot-path allocation rule
# ---------------------------------------------------------------------------


class AllocTest(AnalyzeFixtureTest):
    def test_allocation_reachable_from_dispatch_pinned(self):
        # One direct `new`, one container growth behind a call, one
        # by-value parameter of an allocating type.
        result = self.run_tree({
            "src/broker/broker_core.cpp": (
                "int BrokerCore::dispatch(int event) { return event; }\n"
                "int BrokerCore::dispatch_pinned(int event) {\n"
                "  int* p = new int(event);\n"
                "  stage(event);\n"
                "  return *p;\n"
                "}\n"
                "void BrokerCore::stage(int event) { scratch_.push_back(event); }\n"
                "void BrokerCore::sink(std::vector<int> items) { (void)items; }\n"
                "int BrokerCore::match_all(int event) { sink({}); return event; }\n"
            ),
        }, rules="alloc")
        self.assertEqual(result.returncode, 1)
        self.assertIn("new allocation", result.stderr)
        self.assertIn("grow allocation", result.stderr)
        self.assertIn("dispatch_pinned -> BrokerCore::stage", result.stderr)
        # sink is only reachable from match_all, which is not an alloc
        # root — its by-value vector parameter must NOT be flagged.
        self.assertNotIn("'items'", result.stderr)

    def test_by_value_param_on_dispatch_path_flagged(self):
        result = self.run_tree({
            "src/broker/broker_core.cpp": (
                "int BrokerCore::dispatch(int event) { sink({}); return event; }\n"
                "int BrokerCore::dispatch_pinned(int event) { return event; }\n"
                "int BrokerCore::match_all(int event) { return event; }\n"
                "void BrokerCore::sink(std::vector<int> items) { (void)items; }\n"
            ),
        }, rules="alloc")
        self.assertEqual(result.returncode, 1)
        self.assertIn("by-value parameter 'items' of allocating type",
                      result.stderr)

    def test_suppression_silences_a_counted_site(self):
        result = self.run_tree({
            "src/broker/broker_core.cpp": (
                "int BrokerCore::dispatch(int event) { return event; }\n"
                "int BrokerCore::dispatch_pinned(int event) {\n"
                "  // gryphon-analyze: allow(alloc): fixture-justified growth\n"
                "  scratch_.push_back(event);\n"
                "  return event;\n"
                "}\n"
                "int BrokerCore::match_all(int event) { return event; }\n"
            ),
        }, rules="alloc")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_suppressions_over_budget_rejected(self):
        result = self.run_tree({
            "src/broker/broker_core.cpp": (
                "int BrokerCore::dispatch(int event) { return event; }\n"
                "int BrokerCore::dispatch_pinned(int event) {\n"
                "  // gryphon-analyze: allow(alloc): fixture-justified growth\n"
                "  scratch_.push_back(event);\n"
                "  return event;\n"
                "}\n"
                "int BrokerCore::match_all(int event) { return event; }\n"
            ),
        }, config_overrides={"alloc.max_suppressions": 0}, rules="alloc")
        self.assertEqual(result.returncode, 1)
        self.assertIn("exceed the budget", result.stderr)

    def test_suppression_count_drift_rejected(self):
        # The baseline pins the count both ways: a *removed* suppression
        # must force a config update too, or the budget rots.
        result = self.run_tree(
            config_overrides={"alloc.expected_suppressions": 2}, rules="alloc")
        self.assertEqual(result.returncode, 1)
        self.assertIn("suppression count drifted", result.stderr)


# ---------------------------------------------------------------------------
# Protocol exhaustiveness rule
# ---------------------------------------------------------------------------

PROTO_WIRE = (
    "enum class FrameType : std::uint8_t {\n"
    "  kHello = 1,\n"
    "  kData = 2,\n"
    "  kBye = 3,\n"
    "};\n"
    "inline constexpr int kFrameTypeCount = 3;\n"
)
PROTO_BROKER = (
    "struct Broker {\n"
    "  struct Stats {\n"
    "    int frames{0};\n"
    "    int drops{0};\n"
    "  };\n"
    "};\n"
    "void on_frame(FrameType t) {\n"
    "  switch (t) {\n"
    "    case FrameType::kHello: break;\n"
    "    case FrameType::kData: break;\n"
    "    case FrameType::kBye: break;\n"
    "  }\n"
    "}\n"
)
PROTO_TEST = (
    "int cover() {\n"
    "  int a = static_cast<int>(FrameType::kHello);\n"
    "  int b = static_cast<int>(FrameType::kData);\n"
    "  int c = static_cast<int>(FrameType::kBye);\n"
    "  return a + b + c + kFrameTypeCount;\n"
    "}\n"
)
PROTO_REPORT = (
    "void report(const Broker::Stats& s) {\n"
    "  print(s.frames);\n"
    "  print(s.drops);\n"
    "}\n"
)
PROTO_CONFIG = {
    "extra_files": ["tests/test_wire.cpp", "tools/report.cpp"],
    "protocol": {
        "enum": "FrameType",
        "enum_file": "src/broker/wire.h",
        "count_token": "kFrameTypeCount",
        "handler_files": ["src/broker/broker.cpp"],
        "test_file": "tests/test_wire.cpp",
        "stats_class": "Broker::Stats",
        "stats_report_file": "tools/report.cpp",
        "stats_doc_file": "docs/stats.md",
    },
}


class ProtocolTest(AnalyzeFixtureTest):
    def proto_tree(self, overrides=None):
        files = {
            "src/broker/wire.h": PROTO_WIRE,
            "src/broker/broker.cpp": PROTO_BROKER,
            "tests/test_wire.cpp": PROTO_TEST,
            "tools/report.cpp": PROTO_REPORT,
            "docs/stats.md": "| frames | decoded |\n| drops | rejected |\n",
        }
        files.update(overrides or {})
        cfg_overrides = {"extra_files": PROTO_CONFIG["extra_files"],
                         "protocol": PROTO_CONFIG["protocol"]}
        cfg = self.write_tree(files, cfg_overrides)
        return run_analyzer(self.root, cfg, rules="protocol")

    def test_clean_protocol_fixture_passes(self):
        result = self.proto_tree()
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_unhandled_frame_type_rejected(self):
        result = self.proto_tree({
            "src/broker/broker.cpp": PROTO_BROKER.replace(
                "    case FrameType::kBye: break;\n", ""),
        })
        self.assertEqual(result.returncode, 1)
        self.assertIn("FrameType::kBye has no `case` arm", result.stderr)

    def test_missing_round_trip_coverage_rejected(self):
        result = self.proto_tree({
            "tests/test_wire.cpp": PROTO_TEST.replace(
                "  int c = static_cast<int>(FrameType::kBye);\n",
                "  int c = 3;\n"),
        })
        self.assertEqual(result.returncode, 1)
        self.assertIn("no round-trip coverage", result.stderr)

    def test_stale_frame_count_rejected(self):
        result = self.proto_tree({
            "src/broker/wire.h": PROTO_WIRE.replace(
                "kFrameTypeCount = 3", "kFrameTypeCount = 4"),
        })
        self.assertEqual(result.returncode, 1)
        self.assertIn("kFrameTypeCount = 4 but FrameType has 3 enumerators",
                      result.stderr)

    def test_unreported_stats_counter_rejected(self):
        result = self.proto_tree({
            "tools/report.cpp": PROTO_REPORT.replace(
                "  print(s.drops);\n", ""),
        })
        self.assertEqual(result.returncode, 1)
        self.assertIn("Broker::Stats::drops never reaches the shutdown report",
                      result.stderr)

    def test_undocumented_stats_counter_rejected(self):
        result = self.proto_tree({
            "docs/stats.md": "| frames | decoded |\n",
        })
        self.assertEqual(result.returncode, 1)
        self.assertIn("Broker::Stats::drops is undocumented", result.stderr)


# ---------------------------------------------------------------------------
# CLI plumbing + the live tree
# ---------------------------------------------------------------------------


class CliTest(AnalyzeFixtureTest):
    def test_unknown_rule_is_a_usage_error(self):
        cfg = self.write_tree()
        result = run_analyzer(self.root, cfg, rules="planes,nonsense")
        self.assertEqual(result.returncode, 2)
        self.assertIn("unknown rule", result.stderr)

    def test_missing_config_is_a_usage_error(self):
        self.write_tree()
        result = run_analyzer(self.root, self.root / "no_such_config.json")
        self.assertEqual(result.returncode, 2)
        self.assertIn("cannot load config", result.stderr)

    def test_json_artifact_written(self):
        cfg = self.write_tree({
            "src/matching/compiled_pst.cpp":
                "int compiled_match() { return add_with_result(1); }\n",
        })
        out = self.root / "findings.json"
        result = run_analyzer(self.root, cfg, json_out=out)
        self.assertEqual(result.returncode, 1)
        payload = json.loads(out.read_text())
        self.assertEqual(payload["frontend"], "fallback")
        self.assertTrue(any(f["rule"] == "planes" and
                            "add_with_result" in f["message"]
                            for f in payload["findings"]))


class LiveTreeTest(unittest.TestCase):
    def test_real_repo_is_clean(self):
        result = run_analyzer(REPO, ANALYZER.parent / "config.json")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("all invariants hold", result.stdout)

    @unittest.skipUnless(_have_cindex(), "clang.cindex not importable")
    def test_cindex_frontend_agrees_on_live_tree(self):
        result = run_analyzer(REPO, ANALYZER.parent / "config.json",
                              frontend="cindex")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("frontend=cindex", result.stdout)


if __name__ == "__main__":
    unittest.main()
