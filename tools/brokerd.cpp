// brokerd — a standalone content-based pub/sub broker over TCP.
//
// Usage:
//   brokerd --id 0 --brokers 3 --links "0-1:10,1-2:25" --listen 7000 ...
//           [--dial "1=127.0.0.1:7001"]... ...
//           --schema "trades issue:string price:double volume:int" ...
//           [--schema "alarms severity:int"]... ...
//           [--gc-seconds 3600] [--match-threads N|auto] [--verbose]
//           [--shards N] [--batch-max N]
//           [--link-rto-ms 50] [--link-heartbeat-ms 500]
//           [--link-idle-timeout-ms 2000] [--redial-backoff-ms 20]
//           [--redial-backoff-max-ms 5000] [--redial-budget 0]
//           [--replica-listen PORT] [--repl-window 4096]
//           [--standby-of HOST:PORT] [--promote-timeout-ms 2000]
//
// Replication (docs/fault-tolerance.md § Replication): a primary started
// with --replica-listen accepts a hot standby on a second port and streams
// every durable mutation to it; the standby is started with --standby-of
// pointing at that port (and no --dial — neighbors redial the standby after
// promotion). The standby keeps redialing its primary while the link is
// down, and promotes itself to the primary's role and identity once the
// replication stream has been idle for --promote-timeout-ms.
//
// Flags are parsed and validated by tools::parse_broker_config (one entry
// point for the whole flag surface; see tool_config.h), so every
// diagnostic here is a BrokerConfig error message plus the usage text.
//
// Every broker in the network must be given the same --brokers/--links
// topology and the same --schema list (information spaces are positional).
// A broker dials the peers listed in --dial; the peer side accepts
// automatically, so each link should be dialed from exactly one end.
// Dialed links are supervised (docs/fault-tolerance.md): heartbeats keep
// them alive, a link idle past --link-idle-timeout-ms is dropped and
// redialed with exponential backoff, and after --redial-budget consecutive
// failures (0 = never) the link is declared dead and forwards to it are
// dropped with a counter instead of queueing forever.
//
// --shards partitions each factored space's compiled matching state into
// independently matchable shards; --batch-max bounds how many events one
// match worker drains into a single DispatchBatch (docs/concurrency.md).
//
// Example three-node line on one machine:
//   brokerd --id 0 --brokers 3 --links 0-1,1-2 --listen 7000 --schema "t a:int" &
//   brokerd --id 1 --brokers 3 --links 0-1,1-2 --listen 7001 ...
//           --dial 0=127.0.0.1:7000 --schema "t a:int" &
//   brokerd --id 2 --brokers 3 --links 0-1,1-2 --listen 7002 ...
//           --dial 1=127.0.0.1:7001 --schema "t a:int" &
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>
#include <unordered_map>

#include "broker/broker.h"
#include "broker/link_supervisor.h"
#include "broker/tcp_transport.h"
#include "common/logging.h"
#include "tool_config.h"

using namespace gryphon;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

struct Relay : TransportHandler {
  TransportHandler* target{nullptr};
  // Standby side: the replication connection under watch, so the main loop
  // can redial the primary when it drops (transport callbacks run on the
  // reader thread).
  std::atomic<ConnId> repl_watch{kInvalidConn};
  std::atomic<bool> repl_down{false};
  void on_connect(ConnId c) override { target->on_connect(c); }
  void on_frame(ConnId c, std::span<const std::uint8_t> f) override { target->on_frame(c, f); }
  void on_disconnect(ConnId c) override {
    if (c == repl_watch.load()) repl_down.store(true);
    target->on_disconnect(c);
  }
};

[[noreturn]] void usage(const char* argv0, const char* error) {
  std::fprintf(stderr, "error: %s\n", error);
  std::fprintf(stderr,
               "usage: %s --id N --brokers N --links \"0-1:10,...\" --listen PORT\n"
               "          [--dial ID=HOST:PORT]... --schema \"NAME attr:type ...\" ...\n"
               "          [--gc-seconds N] [--match-threads N|auto] [--verbose]\n"
               "          [--shards N] [--batch-max N]\n"
               "          [--no-covering] [--delta-segment-target N] [--max-delta-segments N]\n"
               "          [--link-rto-ms N] [--link-heartbeat-ms N]\n"
               "          [--link-idle-timeout-ms N] [--redial-backoff-ms N]\n"
               "          [--redial-backoff-max-ms N] [--redial-budget N]\n"
               "          [--replica-listen PORT] [--repl-window N]\n"
               "          [--standby-of HOST:PORT] [--promote-timeout-ms N]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  tools::BrokerConfig config;
  try {
    config = tools::parse_broker_config(std::vector<std::string>(argv + 1, argv + argc));
  } catch (const std::exception& e) {
    usage(argv[0], e.what());
  }
  set_log_level(config.verbose ? LogLevel::kDebug : LogLevel::kWarn);

  try {
    const BrokerNetwork topology = config.topology();

    Broker::Options options;
    options.log_retention = ticks_from_seconds(config.gc_seconds);
    options.match_threads = config.match_threads;
    options.shards = config.shards;
    options.match_batch_max = config.batch_max;
    options.control.covering = config.covering;
    options.control.delta_segment_target = config.delta_segment_target;
    options.control.max_delta_segments = config.max_delta_segments;
    options.link_retransmit_timeout = ticks_from_millis(config.link_rto_ms);
    options.link_heartbeat_interval = ticks_from_millis(config.link_heartbeat_ms);
    options.standby = config.standby();
    options.replicate = config.replica_listen_port >= 0;
    options.repl_log_window = config.repl_window;
    options.repl_retransmit_timeout = ticks_from_millis(config.link_rto_ms);
    Relay relay;
    TcpTransport transport(relay);
    Broker broker(BrokerId{config.id}, topology, config.schemas, transport, options);
    relay.target = &broker;
    const std::uint16_t port =
        transport.listen(static_cast<std::uint16_t>(config.listen_port));
    std::printf(
        "brokerd: broker %d listening on 127.0.0.1:%u (%zu spaces, %zu brokers, "
        "%zu match threads, %zu shards, batch %zu)%s\n",
        config.id, port, config.schemas.size(), config.brokers, config.match_threads,
        config.shards, config.batch_max, config.standby() ? " [standby]" : "");
    if (config.replica_listen_port >= 0) {
      const std::uint16_t replica_port =
          transport.listen(static_cast<std::uint16_t>(config.replica_listen_port));
      std::printf("brokerd: replication stream on 127.0.0.1:%u (window %zu)\n",
                  replica_port, config.repl_window);
    }

    // Dialed links are owned by the supervisor: it makes the initial dial
    // on its first tick and keeps redialing (with backoff) whenever the
    // link drops or goes idle, so a peer that is down at startup or dies
    // mid-run no longer takes this broker with it.
    std::unordered_map<BrokerId, tools::DialTarget> dial_targets;
    for (const tools::DialTarget& target : config.dials) dial_targets[target.peer] = target;
    LinkSupervisor::Options sup_options;
    sup_options.idle_timeout = ticks_from_millis(config.link_idle_timeout_ms);
    sup_options.backoff_initial = ticks_from_millis(config.redial_backoff_ms);
    sup_options.backoff_max = ticks_from_millis(config.redial_backoff_max_ms);
    sup_options.redial_budget = static_cast<std::uint32_t>(config.redial_budget);
    LinkSupervisor supervisor(
        broker,
        [&](BrokerId peer) -> ConnId {
          const auto it = dial_targets.find(peer);
          if (it == dial_targets.end()) return kInvalidConn;
          try {
            const ConnId conn = transport.connect(it->second.host, it->second.port);
            std::printf("brokerd: linked to broker %d at %s:%u\n", peer.value,
                        it->second.host.c_str(), it->second.port);
            return conn;
          } catch (const std::exception& e) {
            GRYPHON_WARN("brokerd") << "dial to broker " << peer.value
                                    << " failed: " << e.what();
            return kInvalidConn;
          }
        },
        sup_options);
    for (const auto& [peer, target] : dial_targets) supervisor.supervise(peer);
    supervisor.start(std::chrono::milliseconds(std::max(
        1, std::min(config.link_heartbeat_ms, config.link_idle_timeout_ms) / 4)));

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    // Standby: dial the primary's replica listener (retried below while the
    // link is down) and auto-promote once the stream has been idle past the
    // promote timeout.
    bool standby_active = config.standby();
    const auto dial_primary = [&] {
      try {
        const ConnId conn = transport.connect(config.standby_host, config.standby_port);
        relay.repl_down.store(false);
        relay.repl_watch.store(conn);
        broker.attach_replication_link(conn);
        std::printf("brokerd: standby shadowing primary at %s:%u (promote after %d ms "
                    "replication idle)\n",
                    config.standby_host.c_str(), config.standby_port,
                    config.promote_timeout_ms);
        return true;
      } catch (const std::exception& e) {
        GRYPHON_WARN("brokerd") << "replication dial to " << config.standby_host << ":"
                                << config.standby_port << " failed: " << e.what();
        return false;
      }
    };
    if (standby_active) dial_primary();
    auto last_gc = std::chrono::steady_clock::now();
    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      if (standby_active) {
        const auto last = broker.replication_last_activity();
        if (last && broker.clock_now() - *last >
                        ticks_from_millis(config.promote_timeout_ms)) {
          std::printf("brokerd: replication stream idle past %d ms -- promoting to "
                      "primary\n",
                      config.promote_timeout_ms);
          broker.promote();
          standby_active = false;
        } else if (!last || relay.repl_down.load()) {
          dial_primary();  // primary unreachable or the link dropped: redial
        }
        continue;  // pre-promotion the primary drives log truncation, not GC
      }
      const auto now = std::chrono::steady_clock::now();
      if (now - last_gc > std::chrono::seconds(30)) {
        const std::size_t collected = broker.collect_garbage();
        if (collected > 0 && config.verbose) {
          std::printf("brokerd: garbage-collected %zu log entries\n", collected);
        }
        last_gc = now;
      }
    }
    supervisor.stop();
    const auto stats = broker.stats();
    std::printf(
        "brokerd: shutting down (published=%llu relayed=%llu forwarded=%llu delivered=%llu "
        "subscriptions=%llu matching_steps=%llu)\n",
        static_cast<unsigned long long>(stats.events_published),
        static_cast<unsigned long long>(stats.events_relayed),
        static_cast<unsigned long long>(stats.events_forwarded),
        static_cast<unsigned long long>(stats.events_delivered),
        static_cast<unsigned long long>(stats.subscriptions_active),
        static_cast<unsigned long long>(stats.matching_steps));
    std::printf(
        "brokerd: link health (retransmits=%llu duplicates_dropped=%llu link_flaps=%llu "
        "frames_rejected=%llu forwards_dropped_dead_link=%llu)\n",
        static_cast<unsigned long long>(stats.retransmits),
        static_cast<unsigned long long>(stats.duplicates_dropped),
        static_cast<unsigned long long>(stats.link_flaps),
        static_cast<unsigned long long>(stats.frames_rejected),
        static_cast<unsigned long long>(stats.forwards_dropped_dead_link));
    std::printf(
        "brokerd: replication (repl_updates_sent=%llu repl_snapshots_sent=%llu "
        "repl_updates_applied=%llu repl_snapshots_applied=%llu promotions=%llu "
        "failover_seq_rebases=%llu)\n",
        static_cast<unsigned long long>(stats.repl_updates_sent),
        static_cast<unsigned long long>(stats.repl_snapshots_sent),
        static_cast<unsigned long long>(stats.repl_updates_applied),
        static_cast<unsigned long long>(stats.repl_snapshots_applied),
        static_cast<unsigned long long>(stats.promotions),
        static_cast<unsigned long long>(stats.failover_seq_rebases));
    const auto& cp = stats.control_plane;
    const unsigned long long compiles = cp.compile_publishes;
    std::printf(
        "brokerd: control plane (frontier=%llu covered=%llu delta=%llu full=%llu "
        "covering_only=%llu segments_compiled=%llu segments_reused=%llu "
        "avg_compile_us=%llu)\n",
        static_cast<unsigned long long>(cp.frontier_subscriptions),
        static_cast<unsigned long long>(cp.covered_subscriptions),
        static_cast<unsigned long long>(cp.delta_publishes),
        static_cast<unsigned long long>(cp.full_publishes),
        static_cast<unsigned long long>(cp.covering_only_publishes),
        static_cast<unsigned long long>(cp.segments_compiled),
        static_cast<unsigned long long>(cp.segments_reused),
        compiles == 0 ? 0ULL
                      : static_cast<unsigned long long>(cp.compile_us_total) / compiles);
    if (config.verbose) {
      std::printf("brokerd: compile latency histogram (log2 us buckets):");
      for (std::size_t b = 0; b < ControlPlaneStats::kHistogramBuckets; ++b) {
        if (cp.compile_us_histogram[b] != 0) {
          std::printf(" [%zu]=%llu", b,
                      static_cast<unsigned long long>(cp.compile_us_histogram[b]));
        }
      }
      std::printf("\n");
    }
    transport.shutdown();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "brokerd: %s\n", e.what());
    return 1;
  }
  return 0;
}
