// brokerd — a standalone content-based pub/sub broker over TCP.
//
// Usage:
//   brokerd --id 0 --brokers 3 --links "0-1:10,1-2:25" --listen 7000 ...
//           [--dial "1=127.0.0.1:7001"]... ...
//           --schema "trades issue:string price:double volume:int" ...
//           [--schema "alarms severity:int"]... ...
//           [--gc-seconds 3600] [--match-threads N|auto] [--verbose]
//           [--link-rto-ms 50] [--link-heartbeat-ms 500]
//           [--link-idle-timeout-ms 2000] [--redial-backoff-ms 20]
//           [--redial-backoff-max-ms 5000] [--redial-budget 0]
//
// Every broker in the network must be given the same --brokers/--links
// topology and the same --schema list (information spaces are positional).
// A broker dials the peers listed in --dial; the peer side accepts
// automatically, so each link should be dialed from exactly one end.
// Dialed links are supervised (docs/fault-tolerance.md): heartbeats keep
// them alive, a link idle past --link-idle-timeout-ms is dropped and
// redialed with exponential backoff, and after --redial-budget consecutive
// failures (0 = never) the link is declared dead and forwards to it are
// dropped with a counter instead of queueing forever.
//
// Example three-node line on one machine:
//   brokerd --id 0 --brokers 3 --links 0-1,1-2 --listen 7000 --schema "t a:int" &
//   brokerd --id 1 --brokers 3 --links 0-1,1-2 --listen 7001 ...
//           --dial 0=127.0.0.1:7000 --schema "t a:int" &
//   brokerd --id 2 --brokers 3 --links 0-1,1-2 --listen 7002 ...
//           --dial 1=127.0.0.1:7001 --schema "t a:int" &
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>
#include <unordered_map>

#include "broker/broker.h"
#include "broker/link_supervisor.h"
#include "broker/tcp_transport.h"
#include "common/logging.h"
#include "tool_config.h"

using namespace gryphon;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

struct Relay : TransportHandler {
  TransportHandler* target{nullptr};
  void on_connect(ConnId c) override { target->on_connect(c); }
  void on_frame(ConnId c, std::span<const std::uint8_t> f) override { target->on_frame(c, f); }
  void on_disconnect(ConnId c) override { target->on_disconnect(c); }
};

[[noreturn]] void usage(const char* argv0, const char* error) {
  std::fprintf(stderr, "error: %s\n", error);
  std::fprintf(stderr,
               "usage: %s --id N --brokers N --links \"0-1:10,...\" --listen PORT\n"
               "          [--dial ID=HOST:PORT]... --schema \"NAME attr:type ...\" ...\n"
               "          [--gc-seconds N] [--match-threads N|auto] [--verbose]\n"
               "          [--link-rto-ms N] [--link-heartbeat-ms N]\n"
               "          [--link-idle-timeout-ms N] [--redial-backoff-ms N]\n"
               "          [--redial-backoff-max-ms N] [--redial-budget N]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  int id = -1;
  int brokers = -1;
  std::string links;
  int listen_port = -1;
  std::vector<std::string> dials;
  std::vector<std::string> schemas;
  int gc_seconds = 3600;
  std::string match_threads = "0";
  bool verbose = false;
  int link_rto_ms = 50;
  int link_heartbeat_ms = 500;
  int link_idle_timeout_ms = 2000;
  int redial_backoff_ms = 20;
  int redial_backoff_max_ms = 5000;
  int redial_budget = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], ("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--id") id = std::atoi(next().c_str());
    else if (arg == "--brokers") brokers = std::atoi(next().c_str());
    else if (arg == "--links") links = next();
    else if (arg == "--listen") listen_port = std::atoi(next().c_str());
    else if (arg == "--dial") dials.push_back(next());
    else if (arg == "--schema") schemas.push_back(next());
    else if (arg == "--gc-seconds") gc_seconds = std::atoi(next().c_str());
    else if (arg == "--match-threads") match_threads = next();
    else if (arg == "--verbose") verbose = true;
    else if (arg == "--link-rto-ms") link_rto_ms = std::atoi(next().c_str());
    else if (arg == "--link-heartbeat-ms") link_heartbeat_ms = std::atoi(next().c_str());
    else if (arg == "--link-idle-timeout-ms") link_idle_timeout_ms = std::atoi(next().c_str());
    else if (arg == "--redial-backoff-ms") redial_backoff_ms = std::atoi(next().c_str());
    else if (arg == "--redial-backoff-max-ms") redial_backoff_max_ms = std::atoi(next().c_str());
    else if (arg == "--redial-budget") redial_budget = std::atoi(next().c_str());
    else usage(argv[0], ("unknown argument " + arg).c_str());
  }
  if (id < 0) usage(argv[0], "--id is required");
  if (brokers <= 0) usage(argv[0], "--brokers is required");
  if (listen_port < 0) usage(argv[0], "--listen is required");
  if (schemas.empty()) usage(argv[0], "at least one --schema is required");
  set_log_level(verbose ? LogLevel::kDebug : LogLevel::kWarn);

  try {
    std::vector<SchemaPtr> spaces;
    for (const std::string& spec : schemas) spaces.push_back(tools::parse_schema_spec(spec));
    const BrokerNetwork topology =
        tools::parse_topology_spec(static_cast<std::size_t>(brokers), links);

    Broker::Options options;
    options.log_retention = ticks_from_seconds(gc_seconds);
    options.match_threads = tools::parse_thread_count(match_threads);
    options.link_retransmit_timeout = ticks_from_millis(link_rto_ms);
    options.link_heartbeat_interval = ticks_from_millis(link_heartbeat_ms);
    Relay relay;
    TcpTransport transport(relay);
    Broker broker(BrokerId{id}, topology, spaces, transport, options);
    relay.target = &broker;
    const std::uint16_t port = transport.listen(static_cast<std::uint16_t>(listen_port));
    std::printf(
        "brokerd: broker %d listening on 127.0.0.1:%u (%zu spaces, %zu brokers, "
        "%zu match threads)\n",
        id, port, spaces.size(), static_cast<std::size_t>(brokers), options.match_threads);

    // Dialed links are owned by the supervisor: it makes the initial dial
    // on its first tick and keeps redialing (with backoff) whenever the
    // link drops or goes idle, so a peer that is down at startup or dies
    // mid-run no longer takes this broker with it.
    std::unordered_map<BrokerId, tools::DialTarget> dial_targets;
    for (const std::string& spec : dials) {
      const auto target = tools::parse_dial_spec(spec);
      dial_targets[target.peer] = target;
    }
    LinkSupervisor::Options sup_options;
    sup_options.idle_timeout = ticks_from_millis(link_idle_timeout_ms);
    sup_options.backoff_initial = ticks_from_millis(redial_backoff_ms);
    sup_options.backoff_max = ticks_from_millis(redial_backoff_max_ms);
    sup_options.redial_budget = static_cast<std::uint32_t>(redial_budget);
    LinkSupervisor supervisor(
        broker,
        [&](BrokerId peer) -> ConnId {
          const auto it = dial_targets.find(peer);
          if (it == dial_targets.end()) return kInvalidConn;
          try {
            const ConnId conn = transport.connect(it->second.host, it->second.port);
            std::printf("brokerd: linked to broker %d at %s:%u\n", peer.value,
                        it->second.host.c_str(), it->second.port);
            return conn;
          } catch (const std::exception& e) {
            GRYPHON_WARN("brokerd") << "dial to broker " << peer.value
                                    << " failed: " << e.what();
            return kInvalidConn;
          }
        },
        sup_options);
    for (const auto& [peer, target] : dial_targets) supervisor.supervise(peer);
    supervisor.start(std::chrono::milliseconds(
        std::max(1, std::min(link_heartbeat_ms, link_idle_timeout_ms) / 4)));

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    auto last_gc = std::chrono::steady_clock::now();
    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      const auto now = std::chrono::steady_clock::now();
      if (now - last_gc > std::chrono::seconds(30)) {
        const std::size_t collected = broker.collect_garbage();
        if (collected > 0 && verbose) {
          std::printf("brokerd: garbage-collected %zu log entries\n", collected);
        }
        last_gc = now;
      }
    }
    supervisor.stop();
    const auto stats = broker.stats();
    std::printf(
        "brokerd: shutting down (published=%llu relayed=%llu forwarded=%llu delivered=%llu "
        "subscriptions=%llu)\n",
        static_cast<unsigned long long>(stats.events_published),
        static_cast<unsigned long long>(stats.events_relayed),
        static_cast<unsigned long long>(stats.events_forwarded),
        static_cast<unsigned long long>(stats.events_delivered),
        static_cast<unsigned long long>(stats.subscriptions_active));
    std::printf(
        "brokerd: link health (retransmits=%llu duplicates_dropped=%llu link_flaps=%llu "
        "frames_rejected=%llu forwards_dropped_dead_link=%llu)\n",
        static_cast<unsigned long long>(stats.retransmits),
        static_cast<unsigned long long>(stats.duplicates_dropped),
        static_cast<unsigned long long>(stats.link_flaps),
        static_cast<unsigned long long>(stats.frames_rejected),
        static_cast<unsigned long long>(stats.forwards_dropped_dead_link));
    transport.shutdown();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "brokerd: %s\n", e.what());
    return 1;
  }
  return 0;
}
