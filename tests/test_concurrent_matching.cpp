// Concurrent matching: dispatch from many threads while the control plane
// churns subscriptions. Readers pin an immutable snapshot per event, so a
// dispatch must never observe a half-applied subscription change; every
// reported id is checked against brute-force predicate evaluation, and
// subscriptions that are stable across the churn window must never be lost.
// This file is the primary ThreadSanitizer target (see tools/ci.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "broker/broker_core.h"
#include "broker/client.h"
#include "broker/inproc_transport.h"
#include "common/rng.h"
#include "topology/builders.h"
#include "workload/generators.h"

namespace gryphon {
namespace {

constexpr SpaceId kSpace0{0};

TEST(ConcurrentMatching, DispatchSeesConsistentSnapshotsUnderChurn) {
  const auto schema = make_synthetic_schema(4, 3);
  const BrokerNetwork topo = make_line(3, 10, 0, 1);
  BrokerCore core(BrokerId{1}, topo, {schema});

  Rng rng(7041);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.85, 0.8, 1.0});

  // Stable subscriptions: present before the readers start, never removed.
  // Churn subscriptions: added and removed in a loop by the writer. The
  // oracle map covers both, so a reader can validate any id it sees.
  constexpr std::int64_t kStableCount = 60;
  constexpr std::int64_t kChurnCount = 40;
  constexpr std::int64_t kChurnBase = 1000;
  std::map<SubscriptionId, Subscription> oracle;
  std::map<SubscriptionId, BrokerId> owner;
  for (std::int64_t i = 0; i < kStableCount; ++i) {
    const SubscriptionId id{i};
    const BrokerId o{static_cast<BrokerId::rep_type>(i % 3)};
    oracle.emplace(id, gen.generate(rng));
    owner.emplace(id, o);
    core.add_subscription(kSpace0, id, oracle.at(id), o);
  }
  for (std::int64_t k = 0; k < kChurnCount; ++k) {
    const SubscriptionId id{kChurnBase + k};
    oracle.emplace(id, gen.generate(rng));
    owner.emplace(id, BrokerId{static_cast<BrokerId::rep_type>(k % 3)});
  }

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int round = 0; round < 150; ++round) {
      for (std::int64_t k = 0; k < kChurnCount; ++k) {
        const SubscriptionId id{kChurnBase + k};
        core.add_subscription(kSpace0, id, oracle.at(id), owner.at(id));
      }
      for (std::int64_t k = 0; k < kChurnCount; ++k) {
        ASSERT_TRUE(core.remove_subscription(SubscriptionId{kChurnBase + k}));
      }
    }
    done.store(true, std::memory_order_release);
  });

  const auto reader = [&](unsigned seed) {
    Rng thread_rng(seed);
    EventGenerator events(schema);
    MatchScratch scratch;
    while (!done.load(std::memory_order_acquire)) {
      const Event e = events.generate(thread_rng);
      const BrokerId root{static_cast<BrokerId::rep_type>(thread_rng.below(3))};
      const auto d = core.dispatch(kSpace0, e, root, scratch);

      EXPECT_EQ(d.deliver_locally, !d.local_matches.empty());
      std::set<SubscriptionId> seen;
      for (const SubscriptionId id : d.local_matches) {
        EXPECT_TRUE(seen.insert(id).second) << "duplicate local match " << id.value;
        ASSERT_TRUE(oracle.contains(id));
        EXPECT_EQ(owner.at(id), BrokerId{1}) << "non-local id " << id.value;
        EXPECT_TRUE(oracle.at(id).matches(e)) << "false positive id " << id.value;
      }
      for (const BrokerId next : d.forward) {
        EXPECT_TRUE(next == BrokerId{0} || next == BrokerId{2});
      }
      // Stable completeness: a matching stable subscription owned here must
      // be reported no matter which snapshot the dispatch pinned.
      for (std::int64_t i = 0; i < kStableCount; ++i) {
        const SubscriptionId id{i};
        if (owner.at(id) == BrokerId{1} && oracle.at(id).matches(e)) {
          EXPECT_TRUE(seen.contains(id)) << "lost stable match " << id.value;
        }
      }

      // match_all: the network-wide stable set must survive churn too.
      const auto all = core.match_all(kSpace0, e);
      const std::set<SubscriptionId> all_set(all.begin(), all.end());
      EXPECT_EQ(all_set.size(), all.size()) << "duplicate in match_all";
      for (const SubscriptionId id : all) {
        ASSERT_TRUE(oracle.contains(id));
        EXPECT_TRUE(oracle.at(id).matches(e));
      }
      for (std::int64_t i = 0; i < kStableCount; ++i) {
        const SubscriptionId id{i};
        if (oracle.at(id).matches(e)) {
          EXPECT_TRUE(all_set.contains(id)) << "lost stable match_all id " << id.value;
        }
      }
    }
  };

  std::vector<std::thread> readers;
  for (unsigned t = 0; t < 4; ++t) readers.emplace_back(reader, 100 + t);
  writer.join();
  for (auto& r : readers) r.join();
}

// Sharded batch dispatch under churn: readers drain whole DispatchBatches
// against a factored, sharded core while the writer churns subscriptions.
// Each batch pins one snapshot, so every decision in a batch must be
// consistent with a single subscription state; shard ids must stay inside
// the published shard layout. This is the TSan target for the sharded
// data plane (the batch context reuses its scratch across items).
TEST(ConcurrentMatching, ShardedBatchDispatchUnderChurn) {
  const auto schema = make_synthetic_schema(4, 3);
  const BrokerNetwork topo = make_line(3, 10, 0, 1);
  PstMatcherOptions matcher;
  matcher.factoring_levels = 2;
  BrokerCore core(BrokerId{1}, topo, {schema}, matcher, 4);
  ASSERT_EQ(core.shard_count(kSpace0), 4u);

  Rng rng(8088);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.85, 0.8, 1.0});
  constexpr std::int64_t kStableCount = 50;
  constexpr std::int64_t kChurnCount = 30;
  constexpr std::int64_t kChurnBase = 2000;
  std::map<SubscriptionId, Subscription> oracle;
  std::map<SubscriptionId, BrokerId> owner;
  for (std::int64_t i = 0; i < kStableCount; ++i) {
    const SubscriptionId id{i};
    const BrokerId o{static_cast<BrokerId::rep_type>(i % 3)};
    oracle.emplace(id, gen.generate(rng));
    owner.emplace(id, o);
    core.add_subscription(kSpace0, id, oracle.at(id), o);
  }
  for (std::int64_t k = 0; k < kChurnCount; ++k) {
    const SubscriptionId id{kChurnBase + k};
    oracle.emplace(id, gen.generate(rng));
    owner.emplace(id, BrokerId{static_cast<BrokerId::rep_type>(k % 3)});
  }

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int round = 0; round < 100; ++round) {
      for (std::int64_t k = 0; k < kChurnCount; ++k) {
        const SubscriptionId id{kChurnBase + k};
        core.add_subscription(kSpace0, id, oracle.at(id), owner.at(id));
      }
      for (std::int64_t k = 0; k < kChurnCount; ++k) {
        ASSERT_TRUE(core.remove_subscription(SubscriptionId{kChurnBase + k}));
      }
    }
    done.store(true, std::memory_order_release);
  });

  const auto reader = [&](unsigned seed) {
    Rng thread_rng(seed);
    EventGenerator events(schema);
    DispatchBatch batch;
    std::vector<Event> pool;
    while (!done.load(std::memory_order_acquire)) {
      pool.clear();
      batch.clear();
      for (int b = 0; b < 16; ++b) pool.push_back(events.generate(thread_rng));
      for (const Event& e : pool) {
        batch.add(kSpace0, e, BrokerId{static_cast<BrokerId::rep_type>(
                                  thread_rng.below(3))});
      }
      const auto decisions = core.dispatch(batch);
      ASSERT_EQ(decisions.size(), pool.size());
      for (std::size_t i = 0; i < pool.size(); ++i) {
        const Decision& d = decisions[i];
        EXPECT_LT(d.shard, 4u);
        EXPECT_EQ(d.deliver_locally, !d.local_matches.empty());
        std::set<SubscriptionId> seen;
        for (const SubscriptionId id : d.local_matches) {
          EXPECT_TRUE(seen.insert(id).second) << "duplicate local match " << id.value;
          ASSERT_TRUE(oracle.contains(id));
          EXPECT_EQ(owner.at(id), BrokerId{1}) << "non-local id " << id.value;
          EXPECT_TRUE(oracle.at(id).matches(pool[i])) << "false positive " << id.value;
        }
        // Stable completeness survives sharding: a matching stable local
        // subscription must be reported from whichever shard holds it.
        for (std::int64_t s = 0; s < kStableCount; ++s) {
          const SubscriptionId id{s};
          if (owner.at(id) == BrokerId{1} && oracle.at(id).matches(pool[i])) {
            EXPECT_TRUE(seen.contains(id)) << "lost stable match " << id.value;
          }
        }
      }
    }
  };

  std::vector<std::thread> readers;
  for (unsigned t = 0; t < 4; ++t) readers.emplace_back(reader, 300 + t);
  writer.join();
  for (auto& r : readers) r.join();
}

// Covering + delta compilation under concurrent dispatch: the writer churns
// a workload designed to park/promote constantly (broad coverers over a
// stable covered set) against a core with aggressive slice growth, while
// readers validate every reported id and the stable subscriptions' matches.
// Covering-only publishes share the compiled tables between snapshots and
// the expansion path reads the persistent CoveringSnapshot slices — this is
// the TSan target for those structures.
TEST(ConcurrentMatching, CoveringChurnKeepsSnapshotsConsistent) {
  const auto schema = make_synthetic_schema(4, 3);
  const BrokerNetwork topo = make_line(3, 10, 0, 1);
  ControlPlaneOptions control;
  control.delta_segment_target = 16;  // force multi-segment + growth early
  control.max_delta_segments = 8;
  BrokerCore core(BrokerId{1}, topo, {schema}, PstMatcherOptions(), 1, control);

  Rng rng(60321);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.85, 0.6, 1.0});
  constexpr std::int64_t kStableCount = 60;
  constexpr std::int64_t kChurnCount = 30;
  constexpr std::int64_t kChurnBase = 5000;
  std::map<SubscriptionId, Subscription> oracle;
  std::map<SubscriptionId, BrokerId> owner;
  for (std::int64_t i = 0; i < kStableCount; ++i) {
    const SubscriptionId id{i};
    const BrokerId o{static_cast<BrokerId::rep_type>(i % 3)};
    oracle.emplace(id, gen.generate(rng));
    owner.emplace(id, o);
    core.add_subscription(kSpace0, id, oracle.at(id), o);
  }
  // Churn set: all-don't-care coverers — every add demotes broad swathes of
  // the stable set, every remove promotes them back.
  for (std::int64_t k = 0; k < kChurnCount; ++k) {
    const SubscriptionId id{kChurnBase + k};
    oracle.emplace(id, Subscription::match_all(schema));
    owner.emplace(id, BrokerId{static_cast<BrokerId::rep_type>(k % 3)});
  }

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int round = 0; round < 120; ++round) {
      for (std::int64_t k = 0; k < kChurnCount; ++k) {
        const SubscriptionId id{kChurnBase + k};
        core.add_subscription(kSpace0, id, oracle.at(id), owner.at(id));
      }
      for (std::int64_t k = 0; k < kChurnCount; ++k) {
        ASSERT_TRUE(core.remove_subscription(SubscriptionId{kChurnBase + k}));
      }
    }
    done.store(true, std::memory_order_release);
  });

  const auto reader = [&](unsigned seed) {
    Rng thread_rng(seed);
    EventGenerator events(schema);
    MatchScratch scratch;
    while (!done.load(std::memory_order_acquire)) {
      const Event e = events.generate(thread_rng);
      const BrokerId root{static_cast<BrokerId::rep_type>(thread_rng.below(3))};
      const auto d = core.dispatch(kSpace0, e, root, scratch);
      EXPECT_EQ(d.deliver_locally, !d.local_matches.empty());
      std::set<SubscriptionId> seen;
      for (const SubscriptionId id : d.local_matches) {
        EXPECT_TRUE(seen.insert(id).second) << "duplicate local match " << id.value;
        ASSERT_TRUE(oracle.contains(id));
        EXPECT_EQ(owner.at(id), BrokerId{1}) << "non-local id " << id.value;
        EXPECT_TRUE(oracle.at(id).matches(e)) << "false positive id " << id.value;
      }
      // A stable matching local subscription must be reported whether the
      // pinned snapshot has it on the frontier or parked under a coverer.
      for (std::int64_t i = 0; i < kStableCount; ++i) {
        const SubscriptionId id{i};
        if (owner.at(id) == BrokerId{1} && oracle.at(id).matches(e)) {
          EXPECT_TRUE(seen.contains(id)) << "lost stable match " << id.value;
        }
      }
      const auto all = core.match_all(kSpace0, e);
      const std::set<SubscriptionId> all_set(all.begin(), all.end());
      EXPECT_EQ(all_set.size(), all.size()) << "duplicate in match_all";
      for (std::int64_t i = 0; i < kStableCount; ++i) {
        const SubscriptionId id{i};
        if (oracle.at(id).matches(e)) {
          EXPECT_TRUE(all_set.contains(id)) << "lost stable match_all id " << id.value;
        }
      }
    }
  };

  std::vector<std::thread> readers;
  for (unsigned t = 0; t < 4; ++t) readers.emplace_back(reader, 700 + t);
  writer.join();
  for (auto& r : readers) r.join();
}

TEST(ConcurrentMatching, SnapshotVersionMonotonicUnderWriters) {
  const auto schema = make_synthetic_schema(3, 3);
  const BrokerNetwork topo = make_line(2, 10, 0, 1);
  BrokerCore core(BrokerId{0}, topo, {schema});

  std::atomic<bool> done{false};
  std::thread observer([&] {
    std::uint64_t last = core.snapshot_version();
    while (!done.load(std::memory_order_acquire)) {
      const std::uint64_t v = core.snapshot_version();
      EXPECT_GE(v, last);
      last = v;
    }
  });
  Rng rng(99);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.8, 0.8, 1.0});
  for (std::int64_t i = 0; i < 500; ++i) {
    core.add_subscription(kSpace0, SubscriptionId{i}, gen.generate(rng), BrokerId{0});
    if (i % 2 == 0) {
      ASSERT_TRUE(core.remove_subscription(SubscriptionId{i}));
    }
  }
  done.store(true, std::memory_order_release);
  observer.join();
}

// End-to-end: a broker pipeline with match workers delivers exactly the
// matching events, no losses and no duplicates, while frame handling and
// matching run on different threads.
TEST(ConcurrentMatching, BrokerPipelineDeliversExactly) {
  const SchemaPtr schema =
      make_schema("trades", {Attribute{"issue", AttributeType::kString, {}},
                             Attribute{"price", AttributeType::kDouble, {}},
                             Attribute{"volume", AttributeType::kInt, {}}});
  const BrokerNetwork topo = make_line(2, 10, 0, 1);
  InProcNetwork net;
  Broker::Options options;
  options.match_threads = 3;
  std::vector<std::unique_ptr<Broker>> brokers;
  for (int b = 0; b < 2; ++b) {
    auto* endpoint = net.create_endpoint("broker" + std::to_string(b));
    brokers.push_back(std::make_unique<Broker>(BrokerId{b}, topo,
                                               std::vector<SchemaPtr>{schema}, *endpoint,
                                               options));
    endpoint->set_handler(brokers.back().get());
  }
  const ConnId link = net.connect("broker0", "broker1");
  brokers[0]->attach_broker_link(link, BrokerId{1});
  net.pump();

  const auto add_client = [&](const std::string& name, int broker,
                              std::vector<std::unique_ptr<Client>>& out) -> Client& {
    auto* endpoint = net.create_endpoint(name);
    out.push_back(std::make_unique<Client>(name, *endpoint, std::vector<SchemaPtr>{schema}));
    endpoint->set_handler(out.back().get());
    out.back()->bind(net.connect(name, "broker" + std::to_string(broker)));
    net.pump();
    return *out.back();
  };

  std::vector<std::unique_ptr<Client>> clients;
  Client& subscriber = add_client("sub", 1, clients);
  Client& local_sub = add_client("near", 0, clients);
  Client& publisher = add_client("pub", 0, clients);
  subscriber.subscribe(0, "issue = \"IBM\"");
  local_sub.subscribe(0, "issue = \"IBM\" & volume > 5");
  net.pump();
  brokers[0]->flush();
  brokers[1]->flush();

  constexpr int kMatching = 120;
  constexpr int kNoise = 80;
  int published_matching = 0, published_noise = 0, big_volume = 0;
  while (published_matching < kMatching || published_noise < kNoise) {
    if (published_matching < kMatching) {
      const int volume = published_matching % 10;
      big_volume += volume > 5 ? 1 : 0;
      publisher.publish(0, Event(schema, {Value("IBM"), Value(100.0), Value(volume)}));
      ++published_matching;
    }
    if (published_noise < kNoise) {
      publisher.publish(0, Event(schema, {Value("HP"), Value(50.0), Value(1)}));
      ++published_noise;
    }
    // Drain: publish frames to broker0, match there, forwards to broker1,
    // match there, deliveries back out to the clients.
    for (int round = 0; round < 3; ++round) {
      net.pump();
      brokers[0]->flush();
      brokers[1]->flush();
    }
    net.pump();
  }

  const auto remote = subscriber.take_deliveries();
  ASSERT_EQ(remote.size(), static_cast<std::size_t>(kMatching));
  std::uint64_t last_seq = 0;
  for (const auto& d : remote) {
    EXPECT_GT(d.seq, last_seq);  // strictly increasing: no duplicates
    last_seq = d.seq;
    EXPECT_EQ(d.event.values()[0], Value("IBM"));
  }
  EXPECT_EQ(local_sub.take_deliveries().size(), static_cast<std::size_t>(big_volume));

  const auto stats = brokers[0]->stats();
  EXPECT_EQ(stats.events_published, static_cast<std::uint64_t>(kMatching + kNoise));
  EXPECT_EQ(stats.events_forwarded, static_cast<std::uint64_t>(kMatching));
}

// Destruction with a busy pipeline: queued events are drained, not dropped,
// before the workers exit.
TEST(ConcurrentMatching, BrokerDrainsQueueOnDestruction) {
  const auto schema = make_synthetic_schema(3, 3);
  const BrokerNetwork topo = make_line(1, 10, 0, 1);
  InProcNetwork net;
  Broker::Options options;
  options.match_threads = 2;
  {
    auto* endpoint = net.create_endpoint("broker0");
    Broker broker(BrokerId{0}, topo, {schema}, *endpoint, options);
    endpoint->set_handler(&broker);
    broker.flush();  // flush on an idle pipeline returns immediately
  }
  SUCCEED();
}

}  // namespace
}  // namespace gryphon
