// The trit algebra of paper Figure 4, verified cell by cell.
#include "routing/trit.h"

#include <gtest/gtest.h>

namespace gryphon {
namespace {

constexpr Trit Y = Trit::Yes;
constexpr Trit M = Trit::Maybe;
constexpr Trit N = Trit::No;

TEST(TritAlgebra, AlternativeCombineTruthTable) {
  // Figure 4, left table.
  EXPECT_EQ(alternative_combine(Y, Y), Y);
  EXPECT_EQ(alternative_combine(Y, M), M);
  EXPECT_EQ(alternative_combine(Y, N), M);
  EXPECT_EQ(alternative_combine(M, Y), M);
  EXPECT_EQ(alternative_combine(M, M), M);
  EXPECT_EQ(alternative_combine(M, N), M);
  EXPECT_EQ(alternative_combine(N, Y), M);
  EXPECT_EQ(alternative_combine(N, M), M);
  EXPECT_EQ(alternative_combine(N, N), N);
}

TEST(TritAlgebra, ParallelCombineTruthTable) {
  // Figure 4, right table.
  EXPECT_EQ(parallel_combine(Y, Y), Y);
  EXPECT_EQ(parallel_combine(Y, M), Y);
  EXPECT_EQ(parallel_combine(Y, N), Y);
  EXPECT_EQ(parallel_combine(M, Y), Y);
  EXPECT_EQ(parallel_combine(M, M), M);
  EXPECT_EQ(parallel_combine(M, N), M);
  EXPECT_EQ(parallel_combine(N, Y), Y);
  EXPECT_EQ(parallel_combine(N, M), M);
  EXPECT_EQ(parallel_combine(N, N), N);
}

TEST(TritAlgebra, BothCommutativeAndAssociative) {
  const Trit all[] = {Y, M, N};
  for (const Trit a : all) {
    for (const Trit b : all) {
      EXPECT_EQ(alternative_combine(a, b), alternative_combine(b, a));
      EXPECT_EQ(parallel_combine(a, b), parallel_combine(b, a));
      for (const Trit c : all) {
        EXPECT_EQ(alternative_combine(alternative_combine(a, b), c),
                  alternative_combine(a, alternative_combine(b, c)));
        EXPECT_EQ(parallel_combine(parallel_combine(a, b), c),
                  parallel_combine(a, parallel_combine(b, c)));
      }
    }
  }
}

TEST(TritVector, FromStringRoundTrip) {
  const auto v = TritVector::from_string("YMN");
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.at(0), Y);
  EXPECT_EQ(v.at(1), M);
  EXPECT_EQ(v.at(2), N);
  EXPECT_EQ(v.to_string(), "YMN");
  EXPECT_THROW(TritVector::from_string("YXZ"), std::invalid_argument);
}

TEST(TritVector, PaperFigure5Example) {
  // MYY A NYN = MYM; MYM P YYN = YYM.
  auto alt = TritVector::from_string("MYY");
  alt.alternative_with(TritVector::from_string("NYN"));
  EXPECT_EQ(alt.to_string(), "MYM");
  alt.parallel_with(TritVector::from_string("YYN"));
  EXPECT_EQ(alt.to_string(), "YYM");
}

TEST(TritVector, RefineReplacesOnlyMaybes) {
  auto mask = TritVector::from_string("YMNM");
  mask.refine_with(TritVector::from_string("NYNY"));
  EXPECT_EQ(mask.to_string(), "YYNY");
}

TEST(TritVector, PromoteYesFromSubsearch) {
  auto mask = TritVector::from_string("MMNM");
  mask.promote_yes_from(TritVector::from_string("YNNN"));
  // Only Maybes with a subsearch Yes flip; subsearch No leaves Maybe alone
  // (another sibling's subsearch may still produce a Yes).
  EXPECT_EQ(mask.to_string(), "YMNM");
}

TEST(TritVector, MaybesToNo) {
  auto mask = TritVector::from_string("YMNM");
  mask.maybes_to_no();
  EXPECT_EQ(mask.to_string(), "YNNN");
}

TEST(TritVector, Queries) {
  const auto v = TritVector::from_string("YMNY");
  EXPECT_TRUE(v.has_maybe());
  EXPECT_TRUE(v.any_yes());
  EXPECT_EQ(v.count(Trit::Yes), 2u);
  EXPECT_EQ(v.count(Trit::Maybe), 1u);
  EXPECT_EQ(v.count(Trit::No), 1u);
  const auto yes = v.yes_links();
  ASSERT_EQ(yes.size(), 2u);
  EXPECT_EQ(yes[0].value, 0);
  EXPECT_EQ(yes[1].value, 3);

  const auto refined = TritVector::from_string("YNNN");
  EXPECT_FALSE(refined.has_maybe());
  EXPECT_FALSE(TritVector::from_string("NNN").any_yes());
}

TEST(TritVector, SizeMismatchThrows) {
  auto v = TritVector::from_string("YM");
  EXPECT_THROW(v.refine_with(TritVector::from_string("Y")), std::invalid_argument);
  EXPECT_THROW(v.alternative_with(TritVector::from_string("YMN")), std::invalid_argument);
}

TEST(TritVector, FillAndEquality) {
  TritVector v(4, Trit::Maybe);
  EXPECT_EQ(v.to_string(), "MMMM");
  v.fill(Trit::No);
  EXPECT_EQ(v, TritVector::from_string("NNNN"));
  EXPECT_NE(v, TritVector::from_string("NNNY"));
  EXPECT_TRUE(v.equals(TritVector::from_string("NNNN").span()));
}

}  // namespace
}  // namespace gryphon
