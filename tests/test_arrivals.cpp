#include "workload/arrivals.h"

#include <gtest/gtest.h>

namespace gryphon {
namespace {

constexpr double kTicksPerSecond = 1e6 / kMicrosPerTick;

TEST(Ticks, Conversions) {
  EXPECT_EQ(ticks_from_micros(12.0), 1);
  EXPECT_EQ(ticks_from_millis(1.0), 83);  // 1000 / 12 rounded
  EXPECT_EQ(ticks_from_millis(65.0), 5417);
  EXPECT_NEAR(ticks_to_millis(ticks_from_millis(25.0)), 25.0, 0.1);
  EXPECT_NEAR(ticks_to_seconds(ticks_from_seconds(2.0)), 2.0, 1e-3);
}

TEST(PoissonArrivals, MeanGapMatchesRate) {
  PoissonArrivals arrivals(100.0);  // 100 events/second
  Rng rng(8);
  const int n = 20000;
  Ticks total = 0;
  for (int i = 0; i < n; ++i) total += arrivals.next_gap(rng);
  const double mean_gap_seconds = static_cast<double>(total) / n / kTicksPerSecond;
  EXPECT_NEAR(mean_gap_seconds, 0.01, 0.001);
}

TEST(PoissonArrivals, GapsArePositive) {
  PoissonArrivals arrivals(1e6);  // extremely fast: gaps clamp to 1 tick
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(arrivals.next_gap(rng), 1);
}

TEST(PoissonArrivals, RejectsBadRate) {
  EXPECT_THROW(PoissonArrivals(0.0), std::invalid_argument);
  EXPECT_THROW(PoissonArrivals(-1.0), std::invalid_argument);
}

TEST(BurstyArrivals, MeanRateAccountsForOffPeriods) {
  BurstyArrivals arrivals(200.0, 1.0, 1.0);  // 50% duty cycle
  EXPECT_NEAR(arrivals.mean_rate(), 100.0, 1.0);
}

TEST(BurstyArrivals, LongRunRateApproximatesMeanRate) {
  BurstyArrivals arrivals(200.0, 0.5, 0.5);
  Rng rng(77);
  const int n = 20000;
  Ticks total = 0;
  for (int i = 0; i < n; ++i) total += arrivals.next_gap(rng);
  const double seconds = static_cast<double>(total) / kTicksPerSecond;
  const double rate = n / seconds;
  EXPECT_NEAR(rate, arrivals.mean_rate(), arrivals.mean_rate() * 0.1);
}

TEST(BurstyArrivals, BurstierThanPoissonAtSameRate) {
  // Compare squared-coefficient-of-variation of inter-arrival gaps: the
  // ON/OFF process must be more variable than Poisson (CV^2 = 1).
  BurstyArrivals bursty(1000.0, 0.05, 0.45);  // 10% duty cycle
  Rng rng(5);
  const int n = 20000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double gap = static_cast<double>(bursty.next_gap(rng));
    sum += gap;
    sum_sq += gap * gap;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  const double cv2 = variance / (mean * mean);
  EXPECT_GT(cv2, 2.0);
}

TEST(BurstyArrivals, RejectsBadParameters) {
  EXPECT_THROW(BurstyArrivals(0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(BurstyArrivals(10.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(BurstyArrivals(10.0, 1.0, -1.0), std::invalid_argument);
}

TEST(BurstyArrivals, ZeroOffIsPurePoisson) {
  BurstyArrivals arrivals(100.0, 1.0, 0.0);
  EXPECT_NEAR(arrivals.mean_rate(), 100.0, 1e-6);
  Rng rng(3);
  const int n = 10000;
  Ticks total = 0;
  for (int i = 0; i < n; ++i) total += arrivals.next_gap(rng);
  const double rate = n / (static_cast<double>(total) / kTicksPerSecond);
  EXPECT_NEAR(rate, 100.0, 10.0);
}

}  // namespace
}  // namespace gryphon
