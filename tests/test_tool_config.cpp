#include "../tools/tool_config.h"

#include <gtest/gtest.h>

namespace gryphon::tools {
namespace {

TEST(SchemaSpec, ParsesTypesAndName) {
  const auto schema =
      parse_schema_spec("trades issue:string price:double volume:int urgent:bool");
  EXPECT_EQ(schema->name(), "trades");
  ASSERT_EQ(schema->attribute_count(), 4u);
  EXPECT_EQ(schema->attribute(0).type, AttributeType::kString);
  EXPECT_EQ(schema->attribute(1).type, AttributeType::kDouble);
  EXPECT_EQ(schema->attribute(2).type, AttributeType::kInt);
  EXPECT_EQ(schema->attribute(3).type, AttributeType::kBool);
  EXPECT_FALSE(schema->attribute(2).has_finite_domain());
}

TEST(SchemaSpec, IntDomain) {
  const auto schema = parse_schema_spec("synthetic a1:int(0..4) a2:int(2..2)");
  EXPECT_EQ(schema->attribute(0).domain.size(), 5u);
  EXPECT_EQ(schema->attribute(1).domain.size(), 1u);
  EXPECT_TRUE(schema->accepts(0, Value(4)));
  EXPECT_FALSE(schema->accepts(0, Value(5)));
}

TEST(SchemaSpec, Errors) {
  EXPECT_THROW(parse_schema_spec(""), std::invalid_argument);
  EXPECT_THROW(parse_schema_spec("name"), std::invalid_argument);
  EXPECT_THROW(parse_schema_spec("name attr"), std::invalid_argument);
  EXPECT_THROW(parse_schema_spec("name attr:float"), std::invalid_argument);
  EXPECT_THROW(parse_schema_spec("name a:int(0..x)"), std::invalid_argument);
  EXPECT_THROW(parse_schema_spec("name a:int(4..0)"), std::invalid_argument);
  EXPECT_THROW(parse_schema_spec("name a:string(0..4)"), std::invalid_argument);
  EXPECT_THROW(parse_schema_spec("name a:int(0..4"), std::invalid_argument);
}

TEST(TopologySpec, LinksAndDelays) {
  const auto net = parse_topology_spec(3, "0-1:10,1-2:25");
  EXPECT_EQ(net.broker_count(), 3u);
  const auto port01 = net.port_to_broker(BrokerId{0}, BrokerId{1});
  EXPECT_EQ(net.ports(BrokerId{0})[static_cast<std::size_t>(port01.value)].delay,
            ticks_from_millis(10));
  const auto port12 = net.port_to_broker(BrokerId{1}, BrokerId{2});
  EXPECT_EQ(net.ports(BrokerId{1})[static_cast<std::size_t>(port12.value)].delay,
            ticks_from_millis(25));
}

TEST(TopologySpec, DefaultDelayAndEmpty) {
  const auto net = parse_topology_spec(2, "0-1");
  const auto port = net.port_to_broker(BrokerId{0}, BrokerId{1});
  EXPECT_EQ(net.ports(BrokerId{0})[static_cast<std::size_t>(port.value)].delay,
            ticks_from_millis(1));
  const auto lonely = parse_topology_spec(1, "");
  EXPECT_EQ(lonely.broker_count(), 1u);
}

TEST(TopologySpec, Errors) {
  EXPECT_THROW(parse_topology_spec(2, "01"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec(2, "0-x"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec(2, "0-5"), std::out_of_range);
}

TEST(DialSpec, Parses) {
  const auto target = parse_dial_spec("2=192.168.1.9:7002");
  EXPECT_EQ(target.peer, BrokerId{2});
  EXPECT_EQ(target.host, "192.168.1.9");
  EXPECT_EQ(target.port, 7002);
}

TEST(DialSpec, Errors) {
  EXPECT_THROW(parse_dial_spec("2-127.0.0.1:7002"), std::invalid_argument);
  EXPECT_THROW(parse_dial_spec("2=127.0.0.1"), std::invalid_argument);
  EXPECT_THROW(parse_dial_spec("x=127.0.0.1:7002"), std::invalid_argument);
}

TEST(EndpointSpec, RfindHandlesColonsInHost) {
  std::string host;
  std::uint16_t port = 0;
  parse_endpoint("localhost:8080", host, port);
  EXPECT_EQ(host, "localhost");
  EXPECT_EQ(port, 8080);
}

TEST(ThreadCountSpec, ParsesNumbersAndAuto) {
  EXPECT_EQ(parse_thread_count("0"), 0u);
  EXPECT_EQ(parse_thread_count("8"), 8u);
  EXPECT_GE(parse_thread_count("auto"), 1u);
  EXPECT_THROW(parse_thread_count("-1"), std::invalid_argument);
  EXPECT_THROW(parse_thread_count("eight"), std::invalid_argument);
}

std::vector<std::string> minimal_args() {
  return {"--id", "0", "--brokers", "2", "--links", "0-1",
          "--listen", "7000", "--schema", "t a:int"};
}

TEST(BrokerConfigSpec, MinimalDefaults) {
  const BrokerConfig config = parse_broker_config(minimal_args());
  EXPECT_EQ(config.id, 0);
  EXPECT_EQ(config.brokers, 2u);
  EXPECT_EQ(config.listen_port, 7000);
  ASSERT_EQ(config.schemas.size(), 1u);
  EXPECT_EQ(config.schemas[0]->name(), "t");
  EXPECT_EQ(config.match_threads, 0u);
  EXPECT_EQ(config.shards, 1u);
  EXPECT_EQ(config.batch_max, 32u);
  EXPECT_TRUE(config.covering);
  EXPECT_EQ(config.delta_segment_target, 16384u);
  EXPECT_EQ(config.max_delta_segments, 64u);
  EXPECT_EQ(config.gc_seconds, 3600);
  EXPECT_FALSE(config.verbose);
  EXPECT_EQ(config.link_rto_ms, 50);
  EXPECT_EQ(config.link_heartbeat_ms, 500);
  EXPECT_EQ(config.link_idle_timeout_ms, 2000);
  EXPECT_EQ(config.redial_backoff_ms, 20);
  EXPECT_EQ(config.redial_backoff_max_ms, 5000);
  EXPECT_EQ(config.redial_budget, 0);
  EXPECT_FALSE(config.standby());
  EXPECT_EQ(config.replica_listen_port, -1);
  EXPECT_EQ(config.repl_window, 4096u);
  EXPECT_EQ(config.promote_timeout_ms, 2000);
  EXPECT_EQ(config.topology().broker_count(), 2u);
}

TEST(BrokerConfigSpec, AllFlagFamiliesParse) {
  auto args = minimal_args();
  for (const char* extra :
       {"--dial", "1=127.0.0.1:7001", "--schema", "u b:double", "--match-threads", "auto",
        "--shards", "4", "--batch-max", "64", "--gc-seconds", "60", "--verbose",
        "--no-covering", "--delta-segment-target", "4096", "--max-delta-segments", "8",
        "--link-rto-ms", "25", "--link-heartbeat-ms", "100", "--link-idle-timeout-ms", "400",
        "--redial-backoff-ms", "10", "--redial-backoff-max-ms", "1000",
        "--redial-budget", "3"}) {
    args.emplace_back(extra);
  }
  const BrokerConfig config = parse_broker_config(args);
  ASSERT_EQ(config.dials.size(), 1u);
  EXPECT_EQ(config.dials[0].peer, BrokerId{1});
  EXPECT_EQ(config.schemas.size(), 2u);
  EXPECT_GE(config.match_threads, 1u);  // "auto" resolves to >= 1
  EXPECT_EQ(config.shards, 4u);
  EXPECT_EQ(config.batch_max, 64u);
  EXPECT_FALSE(config.covering);
  EXPECT_EQ(config.delta_segment_target, 4096u);
  EXPECT_EQ(config.max_delta_segments, 8u);
  EXPECT_EQ(config.gc_seconds, 60);
  EXPECT_TRUE(config.verbose);
  EXPECT_EQ(config.link_rto_ms, 25);
  EXPECT_EQ(config.link_heartbeat_ms, 100);
  EXPECT_EQ(config.link_idle_timeout_ms, 400);
  EXPECT_EQ(config.redial_backoff_ms, 10);
  EXPECT_EQ(config.redial_backoff_max_ms, 1000);
  EXPECT_EQ(config.redial_budget, 3);
}

TEST(BrokerConfigSpec, RequiredFlagsEnforced) {
  const auto without = [](const std::string& flag) {
    std::vector<std::string> args;
    const auto all = minimal_args();
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (all[i] == flag) {
        ++i;  // skip the flag's value too
        continue;
      }
      args.push_back(all[i]);
    }
    return args;
  };
  EXPECT_THROW(parse_broker_config(without("--id")), std::invalid_argument);
  EXPECT_THROW(parse_broker_config(without("--brokers")), std::invalid_argument);
  EXPECT_THROW(parse_broker_config(without("--listen")), std::invalid_argument);
  EXPECT_THROW(parse_broker_config(without("--schema")), std::invalid_argument);
}

TEST(BrokerConfigSpec, ErrorMessagesNameTheFlag) {
  auto args = minimal_args();
  args.insert(args.end(), {"--shards", "0"});
  try {
    parse_broker_config(args);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--shards"), std::string::npos) << e.what();
  }
}

TEST(BrokerConfigSpec, RejectsInvalidValues) {
  const auto with = [](std::initializer_list<const char*> extra) {
    auto args = minimal_args();
    for (const char* a : extra) args.emplace_back(a);
    return args;
  };
  EXPECT_THROW(parse_broker_config(with({"--shards", "0"})), std::invalid_argument);
  EXPECT_THROW(parse_broker_config(with({"--batch-max", "0"})), std::invalid_argument);
  EXPECT_THROW(parse_broker_config(with({"--batch-max", "-3"})), std::invalid_argument);
  EXPECT_THROW(parse_broker_config(with({"--delta-segment-target", "0"})),
               std::invalid_argument);
  EXPECT_THROW(parse_broker_config(with({"--max-delta-segments", "0"})),
               std::invalid_argument);
  EXPECT_THROW(parse_broker_config(with({"--link-rto-ms", "0"})), std::invalid_argument);
  EXPECT_THROW(parse_broker_config(with({"--listen", "70000"})), std::invalid_argument);
  EXPECT_THROW(parse_broker_config(with({"--redial-budget", "-1"})), std::invalid_argument);
  // Cross-field checks.
  EXPECT_THROW(parse_broker_config(with({"--redial-backoff-ms", "500",
                                         "--redial-backoff-max-ms", "100"})),
               std::invalid_argument);
  EXPECT_THROW(parse_broker_config(with({"--dial", "7=127.0.0.1:7007"})),
               std::invalid_argument);
  // --id must be inside the topology.
  EXPECT_THROW(parse_broker_config({"--id", "5", "--brokers", "2", "--links", "0-1",
                                    "--listen", "7000", "--schema", "t a:int"}),
               std::invalid_argument);
  // Unknown flags and missing values are named.
  EXPECT_THROW(parse_broker_config(with({"--bogus"})), std::invalid_argument);
  EXPECT_THROW(parse_broker_config(with({"--shards"})), std::invalid_argument);
}

TEST(BrokerConfigSpec, ReplicationFlagsParse) {
  const auto with = [](std::initializer_list<const char*> extra) {
    auto args = minimal_args();
    for (const char* a : extra) args.emplace_back(a);
    return args;
  };
  // Primary serving a standby.
  const BrokerConfig primary = parse_broker_config(
      with({"--replica-listen", "7100", "--repl-window", "512"}));
  EXPECT_FALSE(primary.standby());
  EXPECT_EQ(primary.replica_listen_port, 7100);
  EXPECT_EQ(primary.repl_window, 512u);
  // Standby shadowing it.
  const BrokerConfig standby = parse_broker_config(
      with({"--standby-of", "127.0.0.1:7100", "--promote-timeout-ms", "750"}));
  EXPECT_TRUE(standby.standby());
  EXPECT_EQ(standby.standby_host, "127.0.0.1");
  EXPECT_EQ(standby.standby_port, 7100);
  EXPECT_EQ(standby.promote_timeout_ms, 750);
}

TEST(BrokerConfigSpec, RejectsConflictingReplicationRoles) {
  const auto with = [](std::initializer_list<const char*> extra) {
    auto args = minimal_args();
    for (const char* a : extra) args.emplace_back(a);
    return args;
  };
  // A standby cannot also serve a replication stream...
  try {
    parse_broker_config(with({"--standby-of", "127.0.0.1:7100",
                              "--replica-listen", "7200"}));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--standby-of"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("--replica-listen"), std::string::npos)
        << e.what();
  }
  // ...and must not dial broker links before promotion.
  EXPECT_THROW(parse_broker_config(with({"--standby-of", "127.0.0.1:7100",
                                         "--dial", "1=127.0.0.1:7001"})),
               std::invalid_argument);
  // Malformed values are rejected like every other flag family.
  EXPECT_THROW(parse_broker_config(with({"--standby-of", "localhost"})),
               std::invalid_argument);
  EXPECT_THROW(parse_broker_config(with({"--replica-listen", "70000"})),
               std::invalid_argument);
  EXPECT_THROW(parse_broker_config(with({"--repl-window", "0"})), std::invalid_argument);
  EXPECT_THROW(parse_broker_config(with({"--promote-timeout-ms", "0"})),
               std::invalid_argument);
}

}  // namespace
}  // namespace gryphon::tools
