#include "../tools/tool_config.h"

#include <gtest/gtest.h>

namespace gryphon::tools {
namespace {

TEST(SchemaSpec, ParsesTypesAndName) {
  const auto schema =
      parse_schema_spec("trades issue:string price:double volume:int urgent:bool");
  EXPECT_EQ(schema->name(), "trades");
  ASSERT_EQ(schema->attribute_count(), 4u);
  EXPECT_EQ(schema->attribute(0).type, AttributeType::kString);
  EXPECT_EQ(schema->attribute(1).type, AttributeType::kDouble);
  EXPECT_EQ(schema->attribute(2).type, AttributeType::kInt);
  EXPECT_EQ(schema->attribute(3).type, AttributeType::kBool);
  EXPECT_FALSE(schema->attribute(2).has_finite_domain());
}

TEST(SchemaSpec, IntDomain) {
  const auto schema = parse_schema_spec("synthetic a1:int(0..4) a2:int(2..2)");
  EXPECT_EQ(schema->attribute(0).domain.size(), 5u);
  EXPECT_EQ(schema->attribute(1).domain.size(), 1u);
  EXPECT_TRUE(schema->accepts(0, Value(4)));
  EXPECT_FALSE(schema->accepts(0, Value(5)));
}

TEST(SchemaSpec, Errors) {
  EXPECT_THROW(parse_schema_spec(""), std::invalid_argument);
  EXPECT_THROW(parse_schema_spec("name"), std::invalid_argument);
  EXPECT_THROW(parse_schema_spec("name attr"), std::invalid_argument);
  EXPECT_THROW(parse_schema_spec("name attr:float"), std::invalid_argument);
  EXPECT_THROW(parse_schema_spec("name a:int(0..x)"), std::invalid_argument);
  EXPECT_THROW(parse_schema_spec("name a:int(4..0)"), std::invalid_argument);
  EXPECT_THROW(parse_schema_spec("name a:string(0..4)"), std::invalid_argument);
  EXPECT_THROW(parse_schema_spec("name a:int(0..4"), std::invalid_argument);
}

TEST(TopologySpec, LinksAndDelays) {
  const auto net = parse_topology_spec(3, "0-1:10,1-2:25");
  EXPECT_EQ(net.broker_count(), 3u);
  const auto port01 = net.port_to_broker(BrokerId{0}, BrokerId{1});
  EXPECT_EQ(net.ports(BrokerId{0})[static_cast<std::size_t>(port01.value)].delay,
            ticks_from_millis(10));
  const auto port12 = net.port_to_broker(BrokerId{1}, BrokerId{2});
  EXPECT_EQ(net.ports(BrokerId{1})[static_cast<std::size_t>(port12.value)].delay,
            ticks_from_millis(25));
}

TEST(TopologySpec, DefaultDelayAndEmpty) {
  const auto net = parse_topology_spec(2, "0-1");
  const auto port = net.port_to_broker(BrokerId{0}, BrokerId{1});
  EXPECT_EQ(net.ports(BrokerId{0})[static_cast<std::size_t>(port.value)].delay,
            ticks_from_millis(1));
  const auto lonely = parse_topology_spec(1, "");
  EXPECT_EQ(lonely.broker_count(), 1u);
}

TEST(TopologySpec, Errors) {
  EXPECT_THROW(parse_topology_spec(2, "01"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec(2, "0-x"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec(2, "0-5"), std::out_of_range);
}

TEST(DialSpec, Parses) {
  const auto target = parse_dial_spec("2=192.168.1.9:7002");
  EXPECT_EQ(target.peer, BrokerId{2});
  EXPECT_EQ(target.host, "192.168.1.9");
  EXPECT_EQ(target.port, 7002);
}

TEST(DialSpec, Errors) {
  EXPECT_THROW(parse_dial_spec("2-127.0.0.1:7002"), std::invalid_argument);
  EXPECT_THROW(parse_dial_spec("2=127.0.0.1"), std::invalid_argument);
  EXPECT_THROW(parse_dial_spec("x=127.0.0.1:7002"), std::invalid_argument);
}

TEST(EndpointSpec, RfindHandlesColonsInHost) {
  std::string host;
  std::uint16_t port = 0;
  parse_endpoint("localhost:8080", host, port);
  EXPECT_EQ(host, "localhost");
  EXPECT_EQ(port, 8080);
}

TEST(ThreadCountSpec, ParsesNumbersAndAuto) {
  EXPECT_EQ(parse_thread_count("0"), 0u);
  EXPECT_EQ(parse_thread_count("8"), 8u);
  EXPECT_GE(parse_thread_count("auto"), 1u);
  EXPECT_THROW(parse_thread_count("-1"), std::invalid_argument);
  EXPECT_THROW(parse_thread_count("eight"), std::invalid_argument);
}

}  // namespace
}  // namespace gryphon::tools
