#include "event/value.h"

#include <gtest/gtest.h>

namespace gryphon {
namespace {

TEST(Value, DefaultIsUnset) {
  Value v;
  EXPECT_FALSE(v.is_set());
  EXPECT_FALSE(v.is_int());
  EXPECT_EQ(v.to_text(), "<unset>");
}

TEST(Value, IntRoundTrip) {
  Value v(std::int64_t{42});
  EXPECT_TRUE(v.is_set());
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_EQ(v.to_text(), "42");
}

TEST(Value, PlainIntPromotes) {
  Value v(7);
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 7);
}

TEST(Value, DoubleRoundTrip) {
  Value v(2.5);
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.as_double(), 2.5);
}

TEST(Value, StringRoundTrip) {
  Value v(std::string("IBM"));
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "IBM");
  EXPECT_EQ(v.to_text(), "\"IBM\"");
}

TEST(Value, CStringConverts) {
  Value v("hello");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "hello");
}

TEST(Value, BoolRoundTrip) {
  Value t(true), f(false);
  EXPECT_TRUE(t.is_bool());
  EXPECT_TRUE(t.as_bool());
  EXPECT_FALSE(f.as_bool());
  EXPECT_EQ(t.to_text(), "true");
  EXPECT_EQ(f.to_text(), "false");
}

TEST(Value, EqualitySameType) {
  EXPECT_EQ(Value(3), Value(3));
  EXPECT_NE(Value(3), Value(4));
  EXPECT_EQ(Value("x"), Value("x"));
  EXPECT_NE(Value("x"), Value("y"));
}

TEST(Value, EqualityAcrossTypesIsFalse) {
  EXPECT_NE(Value(1), Value(true));
  EXPECT_NE(Value(1), Value(1.0));
  EXPECT_NE(Value(0), Value(std::string()));
}

TEST(Value, OrderingWithinType) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LE(Value(2), Value(2));
  EXPECT_GT(Value("b"), Value("a"));
  EXPECT_GE(Value(3.0), Value(2.5));
}

TEST(Value, MatchesType) {
  EXPECT_TRUE(Value(1).matches_type(AttributeType::kInt));
  EXPECT_FALSE(Value(1).matches_type(AttributeType::kDouble));
  EXPECT_TRUE(Value(1.0).matches_type(AttributeType::kDouble));
  EXPECT_TRUE(Value("s").matches_type(AttributeType::kString));
  EXPECT_TRUE(Value(true).matches_type(AttributeType::kBool));
  EXPECT_FALSE(Value().matches_type(AttributeType::kInt));
}

TEST(Value, AsNumberWidens) {
  EXPECT_DOUBLE_EQ(Value(3).as_number(), 3.0);
  EXPECT_DOUBLE_EQ(Value(2.5).as_number(), 2.5);
}

TEST(Value, HashDistinguishesTypes) {
  // int 1 and bool true must hash differently (distinct branch keys).
  EXPECT_NE(Value(1).hash(), Value(true).hash());
  EXPECT_EQ(Value(5).hash(), Value(5).hash());
}

TEST(AttributeType, Names) {
  EXPECT_STREQ(to_string(AttributeType::kInt), "int");
  EXPECT_STREQ(to_string(AttributeType::kDouble), "double");
  EXPECT_STREQ(to_string(AttributeType::kString), "string");
  EXPECT_STREQ(to_string(AttributeType::kBool), "bool");
}

}  // namespace
}  // namespace gryphon
